package rif

import (
	"repro/internal/nvme"
	"repro/internal/ssd"
)

// This file re-exports the NVMe front end: submission/completion
// rings, doorbells and arbitration over a simulated device.

// NVMeCommand is a submission queue entry.
type NVMeCommand = nvme.Command

// NVMeCompletion is a completion queue entry.
type NVMeCompletion = nvme.Completion

// NVMeStatus is an NVMe status code (0 = success).
type NVMeStatus = nvme.Status

// NVMe opcodes and statuses used by the model.
const (
	NVMeRead         = nvme.OpRead
	NVMeWrite        = nvme.OpWrite
	NVMeFlush        = nvme.OpFlush
	NVMeOK           = nvme.StatusSuccess
	NVMeInvalidOp    = nvme.StatusInvalidOp
	NVMeInvalidField = nvme.StatusInvalidField
	NVMeInternal     = nvme.StatusInternal
	// NVMeMediaError (SCT 2h / SC 81h, unrecovered read error) is what
	// a read returns when the device exhausts its retry ladder.
	NVMeMediaError = nvme.StatusMediaError
)

// NVMeController owns queue pairs and arbitration.
type NVMeController = nvme.Controller

// NVMeBackend adapts a simulated SSD to the NVMe front end.
type NVMeBackend = ssd.NVMeBackend

// NVMe arbitration policies.
const (
	RoundRobin         = nvme.RoundRobin
	WeightedRoundRobin = nvme.WeightedRoundRobin
)

// NewNVMeDevice wraps a simulated SSD with an NVMe controller: the
// caller creates queue pairs, submits commands, rings the doorbell,
// drains the backend, and reaps completions.
func NewNVMeDevice(dev *SSD, arb nvme.Arbitration) (*NVMeBackend, *NVMeController) {
	backend := ssd.NewNVMeBackend(dev)
	return backend, nvme.NewController(backend, arb)
}
