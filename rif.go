// Package rif is the public API of the RiF (Retry-in-Flash)
// reproduction: a library for studying read-retry behaviour of modern
// SSDs, including the on-die early-retry (ODEAR) engine proposed in
// "RiF: Improving Read Performance of Modern SSDs Using an On-Die
// Early-Retry Engine" (HPCA 2024).
//
// The library bundles four layers, all usable on their own:
//
//   - a QC-LDPC codec with syndrome-weight machinery (internal/ldpc),
//   - a calibrated 3D TLC NAND reliability model (internal/nand),
//   - the ODEAR read-retry predictor and voltage selector
//     (internal/odear), and
//   - a discrete-event SSD simulator with seven retry schemes
//     (internal/ssd).
//
// This package re-exports the pieces an application needs to build
// SSD configurations, run workloads, and regenerate every figure and
// table of the paper. See examples/ for runnable entry points.
package rif

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// Scheme selects a read-retry design. See the constants below.
type Scheme = ssd.Scheme

// The seven SSD configurations of the paper's evaluation (§VI-A).
const (
	// SSDZero never retries: the hypothetical performance upper bound.
	SSDZero = ssd.Zero
	// SSDOne is an ideal off-chip retry (NRR = 1).
	SSDOne = ssd.One
	// SENC is the Sentinel baseline.
	SENC = ssd.Sentinel
	// SWR is the Swift-Read baseline.
	SWR = ssd.SWR
	// SWRPlus adds proactive VREF tracking to SWR.
	SWRPlus = ssd.SWRPlus
	// RPSSD places the retry predictor at the controller.
	RPSSD = ssd.RPOnly
	// RiFSSD is the full Retry-in-Flash design.
	RiFSSD = ssd.RiF
)

// AllSchemes lists every scheme in the paper's comparison order.
func AllSchemes() []Scheme { return ssd.AllSchemes() }

// Config assembles a simulated SSD; DefaultConfig returns the paper's
// Table I device.
type Config = ssd.Config

// Metrics is the result of one simulation run.
type Metrics = ssd.Metrics

// SSD is a single-use simulated device.
type SSD = ssd.SSD

// Workload feeds the closed-loop host.
type Workload = ssd.Workload

// DefaultConfig returns the Table I SSD with the given scheme and
// wear state (P/E cycles).
func DefaultConfig(scheme Scheme, peCycles int) Config {
	return ssd.DefaultConfig(scheme, peCycles)
}

// New builds a simulated SSD.
func New(cfg Config, w Workload) (*SSD, error) { return ssd.New(cfg, w) }

// WorkloadSpec statistically describes a block I/O workload.
type WorkloadSpec = trace.Spec

// Workloads returns the paper's eight Table II workload specs.
func Workloads() []WorkloadSpec { return trace.TableII() }

// WorkloadNames lists the Table II workload names.
func WorkloadNames() []string { return trace.Names() }

// WorkloadByName finds a Table II spec.
func WorkloadByName(name string) (WorkloadSpec, error) { return trace.ByName(name) }

// NewWorkload instantiates a deterministic request generator for a
// spec.
func NewWorkload(spec WorkloadSpec, seed uint64) (*trace.Generator, error) {
	return trace.NewGenerator(spec, seed)
}

// RunParams sizes experiment runs; see core.DefaultRunParams.
type RunParams = core.RunParams

// DefaultRunParams returns the sizing the cmd tools use.
func DefaultRunParams() RunParams { return core.DefaultRunParams() }

// Run simulates a single (scheme, workload, P/E) cell.
func Run(p RunParams, scheme Scheme, workload string, peCycles int) (*Metrics, error) {
	return core.RunOne(p, scheme, workload, peCycles)
}

// BandwidthTable is a Fig. 6 / Fig. 17 style result grid.
type BandwidthTable = core.BandwidthTable

// CompareSchemes runs a scheme-by-workload-by-wear bandwidth grid.
func CompareSchemes(p RunParams, schemes []Scheme, workloads []string, peCycles []int) (*BandwidthTable, error) {
	return core.CompareSchemes(p, schemes, workloads, peCycles)
}

// Registry is the observability metrics registry: atomic counters,
// gauges and streaming histograms. Attach one via Config.Obs or
// RunParams.Obs; a nil registry disables collection at zero hot-path
// cost.
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Tracer records sim-time resource occupancies into a bounded ring
// buffer and exports them as Chrome trace_event JSON.
type Tracer = obs.Tracer

// NewTracer returns a tracer with the given span capacity (values < 1
// select the default).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// RunManifest is the machine-readable record of one simulation run.
type RunManifest = obs.Manifest

// RunCollection gathers the manifests of a multi-run experiment; set
// it as RunParams.Collect to record every simulated cell.
type RunCollection = obs.Collection

// NewRunCollection returns an empty manifest collection.
func NewRunCollection() *RunCollection { return obs.NewCollection() }

// MetricsSnapshot is a point-in-time copy of a registry's instruments.
type MetricsSnapshot = obs.Snapshot
