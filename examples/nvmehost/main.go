// Nvmehost: drive the simulated RiF SSD the way a real host does —
// through NVMe submission/completion rings with weighted round-robin
// arbitration — instead of the built-in closed-loop driver. Two queue
// pairs share the device: a heavy read queue and a light write queue.
package main

import (
	"fmt"
	"log"

	rif "repro"
)

func main() {
	cfg := rif.DefaultConfig(rif.RiFSSD, 2000)
	cfg.Geometry.BlocksPerPlane = 256
	cfg.Geometry.PagesPerBlock = 128

	spec, err := rif.WorkloadByName("Ali124")
	if err != nil {
		log.Fatal(err)
	}
	spec.FootprintPages = 1 << 16
	workload, err := rif.NewWorkload(spec, 1) // supplies cold-data ages
	if err != nil {
		log.Fatal(err)
	}
	dev, err := rif.New(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	backend, ctrl := rif.NewNVMeDevice(dev, rif.WeightedRoundRobin)
	readQ := ctrl.CreateQueuePair(256, 3) // weight 3: reads favored
	writeQ := ctrl.CreateQueuePair(256, 1)

	// Submit 120 reads of 128 KiB (32 x 4-KiB LBAs) and 40 writes of
	// 64 KiB, then ring the doorbell once — the controller arbitrates.
	var cid uint16
	for i := 0; i < 120; i++ {
		cid++
		// Contiguous 128-KiB reads: the striping spreads them across
		// all channels and planes.
		err := ctrl.Submit(readQ, rif.NVMeCommand{
			Opcode: rif.NVMeRead, CID: cid, SLBA: int64(i) * 32, NLB: 31,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		cid++
		err := ctrl.Submit(writeQ, rif.NVMeCommand{
			Opcode: rif.NVMeWrite, CID: cid, SLBA: 4_000_000 + int64(i)*256, NLB: 15,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	ctrl.Doorbell()

	m, err := backend.Drain()
	if err != nil {
		log.Fatal(err)
	}
	reads, _ := ctrl.Reap(readQ, 1000)
	writes, _ := ctrl.Reap(writeQ, 1000)

	ok := 0
	for _, c := range append(reads, writes...) {
		if c.Status == rif.NVMeOK {
			ok++
		}
	}
	fmt.Printf("completions: %d reads + %d writes, %d successful\n", len(reads), len(writes), ok)
	fmt.Printf("device time: %s for %.1f MiB read, %.1f MiB written\n",
		m.Makespan, float64(m.BytesRead)/(1<<20), float64(m.BytesWritten)/(1<<20))
	fmt.Printf("read retries on-die: %d pages predicted and re-read by ODEAR\n", m.AvoidedTransfers)
	idle, cor, uncor, wait := m.Channels.Fractions()
	fmt.Printf("channel usage: idle=%.2f cor=%.2f uncor=%.2f eccwait=%.2f\n", idle, cor, uncor, wait)
}
