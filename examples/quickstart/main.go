// Quickstart: build the paper's Table I SSD with the RiF scheme, run
// the most read-intensive Table II workload at heavy wear, and print
// what the on-die early-retry engine did.
package main

import (
	"fmt"
	"log"

	rif "repro"
)

func main() {
	// A Table I SSD (8 channels x 4 dies x 4 planes) at 2K P/E
	// cycles, using the full Retry-in-Flash scheme. Shrink the
	// per-plane geometry so the demo runs in well under a second.
	cfg := rif.DefaultConfig(rif.RiFSSD, 2000)
	cfg.Geometry.BlocksPerPlane = 256
	cfg.Geometry.PagesPerBlock = 128

	// The Ali124 workload: 96% reads, 79% of them cold (month-scale
	// retention ages — exactly the reads that need retries).
	spec, err := rif.WorkloadByName("Ali124")
	if err != nil {
		log.Fatal(err)
	}
	spec.FootprintPages = 1 << 17
	workload, err := rif.NewWorkload(spec, 1)
	if err != nil {
		log.Fatal(err)
	}

	dev, err := rif.New(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	m, err := dev.Run(2000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s at %d P/E cycles, %d requests\n",
		spec.Name, cfg.PECycles, m.RequestsCompleted)
	fmt.Printf("bandwidth:           %8.0f MB/s\n", m.Bandwidth())
	fmt.Printf("pages retried:       %8.1f%% of reads\n", 100*m.RetryRate())
	fmt.Printf("prediction accuracy: %8.2f%%\n", 100*m.PredictionAccuracy())
	fmt.Printf("avoided transfers:   %8d doomed pages kept on-die\n", m.AvoidedTransfers)
	fmt.Printf("net energy delta:    %8.1f uJ (negative = saved)\n", m.EnergyDeltaNJ()/1000)
	idle, cor, uncor, wait := m.Channels.Fractions()
	fmt.Printf("channel usage:       idle=%.2f cor=%.2f uncor=%.2f eccwait=%.2f\n",
		idle, cor, uncor, wait)
	fmt.Printf("read latency:        p50=%.0fus p99=%.0fus p99.99=%.0fus\n",
		m.ReadLatencies.Percentile(50),
		m.ReadLatencies.Percentile(99),
		m.ReadLatencies.Percentile(99.99))
}
