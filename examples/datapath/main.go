// Datapath: drive the functional RiF-enabled chip end to end on real
// bits — program a page, age it, and watch the ODEAR engine rescue it
// without an off-chip retry, versus the conventional chip that must
// ship the doomed page and loop through the controller.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand/v2"

	rif "repro"
)

func main() {
	seed := flag.Uint64("seed", 42, "run seed for the programmed page data")
	flag.Parse()

	run := func(odear bool) *rif.PageReadStats {
		cfg := rif.DefaultChipConfig()
		cfg.ODEAR = odear
		dev, err := rif.NewChip(cfg)
		if err != nil {
			log.Fatal(err)
		}
		ctrl := rif.NewChipController(cfg.Code)

		// Program a page of random data.
		rng := rand.New(rand.NewPCG(*seed, 0))
		data := make([]byte, cfg.PageBytes)
		for i := range data {
			data[i] = byte(rng.UintN(256))
		}
		addr := rif.PageAddr{Plane: 0, Block: 0, Page: 2} // an MSB page
		if err := dev.Program(addr, data); err != nil {
			log.Fatal(err)
		}

		// Read it back after three weeks of retention at 2K P/E:
		// well past the retry onset.
		cond := rif.ChipCondition{PECycles: 2000, RetentionDays: 21}
		stats, err := ctrl.ReadPage(dev, addr, cond, 3)
		if err != nil {
			log.Fatal(err)
		}
		if !stats.OK || !bytes.Equal(stats.Data, data) {
			log.Fatalf("odear=%v: data not recovered", odear)
		}
		return stats
	}

	conv := run(false)
	rifd := run(true)

	fmt.Println("Reading a 21-day-old page at 2K P/E (recovered byte-exactly in both cases):")
	fmt.Printf("%-22s %8s %10s %16s %12s\n", "chip", "senses", "transfers", "off-chip retries", "LDPC iters")
	fmt.Printf("%-22s %8d %10d %16d %12d\n", "conventional", conv.Senses, conv.Transfers, conv.OffChipRetries, conv.Iterations)
	fmt.Printf("%-22s %8d %10d %16d %12d\n", "RiF-enabled (ODEAR)", rifd.Senses, rifd.Transfers, rifd.OffChipRetries, rifd.Iterations)
	fmt.Println()
	fmt.Println("The RiF chip re-reads in-die after its syndrome-weight check, so the")
	fmt.Println("channel carries one decodable transfer instead of a doomed one plus a retry —")
	fmt.Println("the mechanism behind the Fig. 8 timeline and the Fig. 17/18 gains.")
}
