// Fleetcompare: sweep every read-retry scheme across workloads and
// wear states and print a Fig. 17-style normalized bandwidth table —
// the experiment a storage architect would run to decide whether
// RiF-enabled flash is worth the die change. Every simulated cell is
// also recorded as a run manifest and written to
// fleetcompare_runs.json for downstream tooling.
package main

import (
	"fmt"
	"log"

	rif "repro"
)

func main() {
	p := rif.DefaultRunParams()
	p.Requests = 1500 // keep the demo quick; raise for tighter numbers
	p.Tool = "fleetcompare"
	p.Experiment = "fig17-slice"
	collect := rif.NewRunCollection()
	p.Collect = collect

	// A representative slice of Table II: the two most read-intensive
	// cloud traces plus one mixed and one write-heavy trace.
	workloads := []string{"Ali124", "Sys0", "Ali81", "Ali2"}

	tbl, err := rif.CompareSchemes(p, rif.AllSchemes(), workloads, rif.PaperPECycles())
	if err != nil {
		log.Fatal(err)
	}

	for _, pe := range rif.PaperPECycles() {
		fmt.Printf("== %dK P/E cycles — bandwidth normalized to SENC ==\n", pe/1000)
		fmt.Printf("%-8s", "scheme")
		for _, w := range workloads {
			fmt.Printf("%9s", w)
		}
		fmt.Println()
		for _, s := range rif.AllSchemes() {
			fmt.Printf("%-8s", s)
			for _, w := range workloads {
				r, err := tbl.Ratio(s, rif.SENC, w, pe)
				if err != nil {
					// Missing SENC baseline: flag the cell instead of
					// printing +Inf/NaN.
					fmt.Printf("%9s", "n/a")
					continue
				}
				fmt.Printf("%9.2f", r)
			}
			fmt.Println()
		}
		fmt.Printf("RiF over SENC (geomean): %+.1f%%\n\n",
			100*tbl.GeoMeanGain(rif.RiFSSD, rif.SENC, pe))
	}
	fmt.Println("paper (all 8 workloads): +23.8% @0K, +47.4% @1K, +72.1% @2K")

	if err := collect.WriteFile("fleetcompare_runs.json"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d run manifests to fleetcompare_runs.json\n", collect.Len())
}
