// Fleetcompare: sweep every read-retry scheme across workloads and
// wear states and print a Fig. 17-style normalized bandwidth table —
// the experiment a storage architect would run to decide whether
// RiF-enabled flash is worth the die change.
package main

import (
	"fmt"
	"log"

	rif "repro"
)

func main() {
	p := rif.DefaultRunParams()
	p.Requests = 1500 // keep the demo quick; raise for tighter numbers

	// A representative slice of Table II: the two most read-intensive
	// cloud traces plus one mixed and one write-heavy trace.
	workloads := []string{"Ali124", "Sys0", "Ali81", "Ali2"}

	tbl, err := rif.CompareSchemes(p, rif.AllSchemes(), workloads, rif.PaperPECycles())
	if err != nil {
		log.Fatal(err)
	}

	for _, pe := range rif.PaperPECycles() {
		fmt.Printf("== %dK P/E cycles — bandwidth normalized to SENC ==\n", pe/1000)
		fmt.Printf("%-8s", "scheme")
		for _, w := range workloads {
			fmt.Printf("%9s", w)
		}
		fmt.Println()
		for _, s := range rif.AllSchemes() {
			fmt.Printf("%-8s", s)
			for _, w := range workloads {
				base := tbl.Get(rif.SENC, w, pe)
				fmt.Printf("%9.2f", tbl.Get(s, w, pe)/base)
			}
			fmt.Println()
		}
		fmt.Printf("RiF over SENC (geomean): %+.1f%%\n\n",
			100*tbl.GeoMeanGain(rif.RiFSSD, rif.SENC, pe))
	}
	fmt.Println("paper (all 8 workloads): +23.8% @0K, +47.4% @1K, +72.1% @2K")
}
