// Retrystudy: exercise the code-level machinery behind the ODEAR
// engine — measure the QC-LDPC decoder's capability cliff, the
// syndrome-weight correlation that makes the read-retry predictor
// possible, and the predictor's accuracy with and without the
// hardware approximations (Figs. 3, 10, 11 and 14 of the paper).
package main

import (
	"fmt"
	"log"

	rif "repro"
)

func main() {
	p := rif.DefaultCodeParams()
	p.Samples = 120 // per RBER point; raise for smoother curves

	const capability = 0.0085 // the 4-KiB LDPC correction capability

	// Fig. 3: the decoder works until the capability, then falls off
	// a cliff while iteration counts (and hence tECC) explode.
	fmt.Println("-- LDPC capability (Fig. 3) --")
	for _, pt := range rif.LDPCCapability(p, []float64{0.004, 0.006, 0.008, 0.0085, 0.010}) {
		fmt.Printf("  RBER %.4f: P(fail)=%.3f avg iterations=%.1f\n",
			pt.RBER, pt.FailureProb, pt.AvgIters)
	}

	// Fig. 10: syndrome weight tracks RBER tightly, which is what
	// lets a threshold test (rhoS) stand in for a full decode.
	fmt.Println("-- syndrome-weight correlation (Fig. 10) --")
	points, rhoFull, rhoPruned := rif.SyndromeCorrelation(p, []float64{0.004, 0.0085, 0.013})
	for _, pt := range points {
		fmt.Printf("  RBER %.4f: full weight=%.0f pruned weight=%.0f\n",
			pt.RBER, pt.AvgFullWeight, pt.AvgPrunedWeight)
	}
	fmt.Printf("  rhoS: full=%d pruned=%d (paper: 3830 for the 4-KiB code)\n", rhoFull, rhoPruned)

	// Figs. 11 and 14: prediction accuracy, exact vs hardware form.
	fmt.Println("-- RP accuracy --")
	full := rif.RPAccuracy(p, nil, false)
	approx := rif.RPAccuracy(p, nil, true)
	fmt.Printf("  mean accuracy above capability, full syndromes:   %.3f (paper 0.991)\n",
		rif.MeanAccuracyAbove(full, capability))
	fmt.Printf("  mean accuracy above capability, chunked + pruned: %.3f (paper 0.987)\n",
		rif.MeanAccuracyAbove(approx, capability))

	// And the end-to-end payoff: the Figs. 7/8 timelines.
	fmt.Println("-- 256-KiB read timelines (Figs. 7/8) --")
	timelines, err := rif.Timelines(0)
	if err != nil {
		log.Fatal(err)
	}
	for _, tl := range timelines {
		fmt.Printf("  %-8s %6.1fus (paper %.0fus)\n",
			tl.Scheme, tl.Total.Microseconds(), tl.PaperUS)
	}
}
