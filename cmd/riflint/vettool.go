package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"

	"repro/internal/analysis"
)

// vetConfig is the per-package configuration the go command hands a
// -vettool (the x/tools "unitchecker" protocol). Only the fields
// riflint needs are decoded.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path in source -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVettool analyzes one compilation unit described by cfgPath and
// prints findings in the plain file:line:col form the go command
// relays. It always writes the facts file the protocol requires (we
// carry no facts, so it is a constant placeholder).
func runVettool(cfgPath string, stdout, stderr *os.File) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "riflint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("riflint has no facts\n"), 0o666); err != nil {
			fmt.Fprintln(stderr, "riflint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.Check(fset, cfg.ImportPath, files, importer.ForCompiler(fset, "gc", lookup), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}

	diags := analysis.Run([]*analysis.Package{pkg}, analysis.All())
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
