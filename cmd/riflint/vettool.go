package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"

	"repro/internal/analysis"
)

// vetConfig is the per-package configuration the go command hands a
// -vettool (the x/tools "unitchecker" protocol). Only the fields
// riflint needs are decoded.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path in source -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	PackageVetx               map[string]string // canonical path -> vetx facts file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxFacts is the riflint fact payload propagated along the import
// graph by the go command between vettool invocations.
type vetxFacts struct {
	// DeepSim is true when this package is a deep-sim root or imports
	// a package whose facts say it is deep. This covers the
	// transitive-importer direction of the blast radius; the
	// deps-of-importers direction needs the whole module import graph,
	// which standalone riflint derives via go list but a per-unit
	// vettool cannot see. The standalone run is the CI-blocking path.
	DeepSim bool
}

// deriveVetxDeepSim computes this unit's depth from its imports' facts.
func deriveVetxDeepSim(cfg *vetConfig) bool {
	if analysis.IsDeepSimRoot(cfg.ImportPath) {
		return true
	}
	for _, vetxFile := range cfg.PackageVetx {
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			continue
		}
		var facts vetxFacts
		if json.Unmarshal(data, &facts) == nil && facts.DeepSim {
			return true
		}
	}
	return false
}

// runVettool analyzes one compilation unit described by cfgPath and
// prints findings in the plain file:line:col form the go command
// relays. The facts file the protocol requires carries the deep-sim
// bit forward along the import graph.
func runVettool(cfgPath string, stdout, stderr *os.File) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "riflint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	deepSim := deriveVetxDeepSim(&cfg)
	if cfg.VetxOutput != "" {
		facts, err := json.Marshal(vetxFacts{DeepSim: deepSim})
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, facts, 0o666)
		}
		if err != nil {
			fmt.Fprintln(stderr, "riflint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.Check(fset, cfg.ImportPath, files, importer.ForCompiler(fset, "gc", lookup), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}
	pkg.DeepSim = deepSim

	diags := analysis.Run([]*analysis.Package{pkg}, analysis.All())
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
