package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestTreeIsClean is the smoke test the acceptance criteria require:
// the full suite over the whole module must report nothing. Any
// finding here means either a new violation slipped in (fix the code)
// or an analyzer grew a false positive (fix the analyzer) — both are
// blocking.
func TestTreeIsClean(t *testing.T) {
	pkgs, err := analysis.Load("", []string{"repro/..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern repro/... no longer matches the module?", len(pkgs))
	}
	for _, d := range analysis.Run(pkgs, analysis.All()) {
		t.Errorf("riflint violation: %s", d)
	}
}

// TestVersionFlag covers the -V=full probe the go command sends a
// -vettool before trusting it.
func TestVersionFlag(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-V=full"}, w, os.Stderr); code != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", code)
	}
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(buf.String())
	if len(fields) < 3 || fields[0] != "riflint" || fields[1] != "version" {
		t.Fatalf("-V=full output %q does not match %q", buf.String(), "riflint version <v>")
	}
}

// TestGoVetVettool builds the binary and drives it through the real
// `go vet -vettool` protocol: clean on a real package, failing on a
// throwaway module with a violation.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "riflint")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building riflint: %v\n%s", err, out)
	}

	// Clean package: vet must succeed.
	clean := exec.Command("go", "vet", "-vettool="+tool, "repro/internal/sim")
	if out, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean package failed: %v\n%s", err, out)
	}

	// Violating module: vet must fail and name the violation.
	dir := filepath.Join(tmp, "badmod")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module badmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "bad.go"), `package badmod

import "math/rand/v2"

func Roll() int { return rand.IntN(6) }
`)
	vet := exec.Command("go", "vet", "-vettool="+tool, ".")
	vet.Dir = dir
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on violating module unexpectedly passed:\n%s", out)
	}
	if !strings.Contains(string(out), "process-global random stream") {
		t.Fatalf("go vet output does not name the violation:\n%s", out)
	}
}

// TestJSONOutput drives the built binary with -json on a violating
// throwaway module and on a clean package: the former must emit a
// parseable array naming the finding, the latter exactly [].
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs it")
	}
	tmp := t.TempDir()
	tool := filepath.Join(tmp, "riflint")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building riflint: %v\n%s", err, out)
	}

	dir := filepath.Join(tmp, "badmod")
	if err := os.MkdirAll(dir, 0o777); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module badmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "bad.go"), `package badmod

import "math/rand/v2"

func Roll() int { return rand.IntN(6) }
`)
	cmd := exec.Command(tool, "-json", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err == nil {
		t.Fatalf("riflint -json on violating module unexpectedly exited 0:\n%s", out)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out, &diags); err != nil {
		t.Fatalf("parsing -json output: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json output is empty; expected the globalrand finding")
	}
	d := diags[0]
	if d.Analyzer != "simdeterminism" || d.Category != "globalrand" {
		t.Errorf("finding attributed to %s/%s, want simdeterminism/globalrand", d.Analyzer, d.Category)
	}
	if d.File == "" || d.Line == 0 || d.Column == 0 {
		t.Errorf("finding position incomplete: %+v", d)
	}
	if !strings.Contains(d.Message, "process-global random stream") {
		t.Errorf("finding message %q does not name the violation", d.Message)
	}

	clean := exec.Command(tool, "-json", "repro/internal/sim")
	cleanOut, err := clean.Output()
	if err != nil {
		t.Fatalf("riflint -json on clean package failed: %v\n%s", err, cleanOut)
	}
	var empty []jsonDiagnostic
	if err := json.Unmarshal(cleanOut, &empty); err != nil {
		t.Fatalf("parsing clean -json output: %v\n%s", err, cleanOut)
	}
	if len(empty) != 0 {
		t.Errorf("clean package produced %d findings in -json output", len(empty))
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
