// Riflint is the multichecker for the repository's custom static
// analyzers (see internal/analysis): simdeterminism, simtime, obssafe
// and seedflow. It enforces the invariants that keep simulation runs
// bit-reproducible from their seed and the observability plane
// trustworthy.
//
// Standalone usage (the blessed path — CI runs exactly this):
//
//	go run ./cmd/riflint ./...
//	go run ./cmd/riflint -analyzers simtime,seedflow ./internal/ssd
//
// It also speaks the `go vet -vettool` unit-checker protocol:
//
//	go build -o riflint ./cmd/riflint
//	go vet -vettool=$(pwd)/riflint ./...
//
// Exit status: 0 when clean, 1 on a violation or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// `go vet -vettool` probes the tool's version with -V=full before
	// handing it per-package .cfg files; both shapes bypass flag
	// parsing entirely.
	for _, arg := range args {
		switch arg {
		case "-V=full", "--V=full":
			// The go command parses "<name> version <semver>".
			fmt.Fprintf(stdout, "riflint version v1.0.0\n")
			return 0
		case "-flags", "--flags":
			// The go command asks which vet flags the tool accepts
			// (a JSON array of flag descriptions); riflint takes none.
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return runVettool(args[n-1], stdout, stderr)
	}

	fs := flag.NewFlagSet("riflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: riflint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}

	pkgs, err := analysis.Load("", fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "riflint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
