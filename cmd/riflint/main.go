// Riflint is the multichecker for the repository's custom static
// analyzers (see internal/analysis): simdeterminism, simtime, obssafe,
// seedflow, hotpath, errorflow and ctxflow. It enforces the invariants
// that keep simulation runs bit-reproducible from their seed, the hot
// paths allocation-free, the degradation ladders honest about errors,
// and the observability plane trustworthy.
//
// Standalone usage (the blessed path — CI runs exactly this):
//
//	go run ./cmd/riflint ./...
//	go run ./cmd/riflint -analyzers simtime,seedflow ./internal/ssd
//	go run ./cmd/riflint -json ./...   # machine-readable diagnostics
//
// It also speaks the `go vet -vettool` unit-checker protocol:
//
//	go build -o riflint ./cmd/riflint
//	go vet -vettool=$(pwd)/riflint ./...
//
// Exit status: 0 when clean, 1 on a violation or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// `go vet -vettool` probes the tool's version with -V=full before
	// handing it per-package .cfg files; both shapes bypass flag
	// parsing entirely.
	for _, arg := range args {
		switch arg {
		case "-V=full", "--V=full":
			// The go command parses "<name> version <semver>".
			fmt.Fprintf(stdout, "riflint version v1.0.0\n")
			return 0
		case "-flags", "--flags":
			// The go command asks which vet flags the tool accepts
			// (a JSON array of flag descriptions); riflint takes none.
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return runVettool(args[n-1], stdout, stderr)
	}

	fs := flag.NewFlagSet("riflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of plain text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: riflint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}

	pkgs, err := analysis.Load("", fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "riflint:", err)
		return 1
	}
	diags := analysis.Run(pkgs, analyzers)
	if *jsonOut {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "riflint:", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "riflint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// jsonDiagnostic is the -json output shape: one object per finding,
// stable field names, position split out for machine consumption.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics as one indented JSON array. An empty
// run prints [] so consumers can parse unconditionally.
func writeJSON(stdout *os.File, diags []analysis.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Category: d.Category,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
