package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/replay"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LoadConfig describes one load run against a rifserve instance.
type LoadConfig struct {
	// URL is the rifserve base URL (no trailing slash).
	URL string
	// Experiment/Requests shape every submitted spec.
	Experiment string
	Requests   int
	// Submissions is the total number of jobs to submit.
	Submissions int
	// Clients is the number of concurrent submitters.
	Clients int
	// HotSpecs is the size of the repeated-spec pool; HitRatio is the
	// probability a submission draws from it instead of minting a
	// never-seen spec. After warmup, hot submissions are answered from
	// the server's result cache (when enabled).
	HotSpecs int
	HitRatio float64
	// Rate paces submissions (jobs/second) through a replay arrival
	// process; 0 submits as fast as the clients drain. Arrivals selects
	// the process: "poisson" (default) or "fixed".
	Rate     float64
	Arrivals string
	// Seed drives the hit/miss mix and the Poisson arrival clock.
	Seed uint64
	// Verify cross-checks artifacts: for every spec submitted more than
	// once, the /report bytes must be identical across submissions, and
	// the /runs bytes identical modulo the wall_time_s host-noise field.
	Verify bool
	// Timeout bounds each HTTP request, progress stream included; a
	// request that exceeds it counts as a dropped stream and is retried.
	// 0 means no timeout. Ignored when Client is set.
	Timeout time.Duration
	// Retries bounds the re-submissions attempted per job after a
	// retryable failure (transport error, 5xx, 429, dropped stream,
	// cancelled/shed terminal). Resubmission is idempotent: the spec's
	// content address means a retry hits the cache or joins the
	// single-flight leader if the first attempt's work survived. 0
	// disables retry.
	Retries int
	// Backoff is the initial retry delay, doubled per attempt with full
	// jitter, capped at MaxBackoff; a server-sent Retry-After is
	// honored in preference to this schedule. Zero values default to
	// 100ms and 5s when Retries > 0.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Client overrides the HTTP client (nil means a client honoring
	// Timeout).
	Client *http.Client
}

// LatencySummary is the client-observed submit-to-terminal latency
// distribution in milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// Summary is the load run's result, printed as JSON by the CLI.
type Summary struct {
	Submissions    int            `json:"submissions"`
	Hits           int64          `json:"hits"`
	Misses         int64          `json:"misses"`
	Errors         int64          `json:"errors"`
	Retries        int64          `json:"retries"`
	VerifyFailures int64          `json:"verify_failures"`
	ElapsedS       float64        `json:"elapsed_s"`
	JobsPerSec     float64        `json:"jobs_per_s"`
	Latency        LatencySummary `json:"latency"`
	LastError      string         `json:"last_error,omitempty"`
}

// submission is one unit of client work: the spec body and the stable
// identity verification groups artifacts under.
type submission struct {
	specID int
	spec   string
}

// workerResult accumulates one client's counts; merged after the run
// so the hot path never contends on shared counters.
type workerResult struct {
	hits, misses, errors, retries int64
	lastErr                       error
	sketch                        *stats.Sketch
}

// wallTimeField is the one manifest field that is host noise rather
// than simulation output; verification masks it on both sides.
var wallTimeField = regexp.MustCompile(`"wall_time_s": [0-9eE.+-]+`)

// loader shares the verification state across clients.
type loader struct {
	cfg    LoadConfig
	client *http.Client

	mu             sync.Mutex
	reportHash     map[int][sha256.Size]byte
	runsHash       map[int][sha256.Size]byte
	verifyFailures int64
}

// runLoad executes the configured load and summarizes it.
func runLoad(cfg LoadConfig) (*Summary, error) {
	if cfg.Submissions <= 0 {
		return nil, fmt.Errorf("rifload: submissions %d; want > 0", cfg.Submissions)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.HitRatio < 0 || cfg.HitRatio > 1 {
		return nil, fmt.Errorf("rifload: hit ratio %v; want [0,1]", cfg.HitRatio)
	}
	if cfg.HitRatio > 0 && cfg.HotSpecs <= 0 {
		cfg.HotSpecs = 1
	}
	var arrivals replay.Arrivals
	if cfg.Rate > 0 {
		var err error
		switch cfg.Arrivals {
		case "", "poisson":
			arrivals, err = replay.NewPoisson(cfg.Rate, cfg.Seed)
		case "fixed":
			arrivals, err = replay.NewFixed(cfg.Rate)
		default:
			err = fmt.Errorf("rifload: unknown arrival process %q (poisson, fixed)", cfg.Arrivals)
		}
		if err != nil {
			return nil, err
		}
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("rifload: retries %d; want >= 0", cfg.Retries)
	}
	if cfg.Retries > 0 {
		if cfg.Backoff <= 0 {
			cfg.Backoff = 100 * time.Millisecond
		}
		if cfg.MaxBackoff <= 0 {
			cfg.MaxBackoff = 5 * time.Second
		}
	}
	l := &loader{
		cfg:        cfg,
		client:     cfg.Client,
		reportHash: map[int][sha256.Size]byte{},
		runsHash:   map[int][sha256.Size]byte{},
	}
	if l.client == nil {
		// http.Client.Timeout covers the whole exchange including the
		// NDJSON body, so a stalled stream surfaces as a (retryable)
		// dropped stream instead of hanging the client forever.
		l.client = &http.Client{Timeout: cfg.Timeout}
	}

	jobs := make(chan submission)
	quit := make(chan struct{})
	defer close(quit)
	results := make([]workerResult, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		results[c].sketch = stats.NewSketch(0)
		wg.Add(1)
		go func(idx int, res *workerResult) {
			defer wg.Done()
			l.clientLoop(idx, jobs, quit, res)
		}(c, &results[c])
	}

	mix := newMix(cfg.Seed)
	//riflint:allow wallclock -- load harness measures a live HTTP service, not a simulation
	start := time.Now()
	for i := 0; i < cfg.Submissions; i++ {
		if arrivals != nil {
			due := start.Add(time.Duration(arrivals.Next(0)))
			//riflint:allow wallclock -- open-loop pacing of real HTTP submissions
			if d := time.Until(due); d > 0 {
				//riflint:allow wallclock -- open-loop pacing of real HTTP submissions
				time.Sleep(d)
			}
		}
		jobs <- l.submission(i, mix)
	}
	close(jobs)
	wg.Wait()
	//riflint:allow wallclock -- load harness measures a live HTTP service, not a simulation
	elapsed := time.Since(start)

	sum := &Summary{Submissions: cfg.Submissions, ElapsedS: elapsed.Seconds()}
	merged := stats.NewSketch(0)
	var lastErr error
	for i := range results {
		r := &results[i]
		sum.Hits += r.hits
		sum.Misses += r.misses
		sum.Errors += r.errors
		sum.Retries += r.retries
		if r.lastErr != nil {
			lastErr = r.lastErr
		}
		merged.Merge(r.sketch)
	}
	if lastErr != nil {
		sum.LastError = lastErr.Error()
	}
	sum.VerifyFailures = l.verifyFailures
	if sum.ElapsedS > 0 {
		sum.JobsPerSec = float64(cfg.Submissions) / sum.ElapsedS
	}
	if merged.N() > 0 {
		sum.Latency = LatencySummary{
			P50:  merged.Quantile(0.50),
			P90:  merged.Quantile(0.90),
			P99:  merged.Quantile(0.99),
			Max:  merged.Max(),
			Mean: merged.Mean(),
		}
	}
	return sum, nil
}

// newMix returns the hit/miss mix RNG for a seed: its own named
// stream, so the mix is a pure function of the seed.
func newMix(seed uint64) *sim.RNG { return sim.NewRNG(seed, 0x10ad) }

// submission builds the i-th spec: hot submissions cycle the shared
// pool (so the server's cache can answer repeats), the rest carry a
// never-repeated seed.
func (l *loader) submission(i int, mix *sim.RNG) submission {
	specID := l.cfg.HotSpecs + i // unique: one spec per submission index
	seed := uint64(1_000_000 + i)
	if mix.Bernoulli(l.cfg.HitRatio) {
		specID = i % l.cfg.HotSpecs
		seed = uint64(1 + specID)
	}
	return submission{
		specID: specID,
		spec: fmt.Sprintf(`{"experiment":%q,"requests":%d,"seed":%d}`,
			l.cfg.Experiment, l.cfg.Requests, seed),
	}
}

// clientLoop drains submissions until the feed closes or quit fires.
// Each client owns a jitter RNG stream derived from (seed, client
// index), so back-off delays are decorrelated across clients but the
// run as a whole is still a function of its seed.
func (l *loader) clientLoop(idx int, jobs <-chan submission, quit <-chan struct{}, res *workerResult) {
	jitter := sim.NewRNG(l.cfg.Seed, 0xb0ff+uint64(idx))
	for {
		select {
		case <-quit:
			return
		case sub, ok := <-jobs:
			if !ok {
				return
			}
			latency, cached, err := l.submitOne(sub, jitter, res)
			if err != nil {
				res.errors++
				res.lastErr = err
				continue
			}
			if cached {
				res.hits++
			} else {
				res.misses++
			}
			res.sketch.Add(float64(latency) / float64(time.Millisecond))
		}
	}
}

// permanentErr marks a failure no retry can fix (bad spec, failed job,
// byte-identity violation); everything else — transport errors, 5xx,
// 429 backpressure, dropped streams, cancelled/shed terminals — is
// worth resubmitting, because resubmission is idempotent by content
// address.
type permanentErr struct{ err error }

func (p permanentErr) Error() string { return p.err.Error() }
func (p permanentErr) Unwrap() error { return p.err }

// retryAfterErr carries the server's Retry-After hint alongside a
// retryable 429.
type retryAfterErr struct {
	err   error
	delay time.Duration
}

func (r retryAfterErr) Error() string { return r.err.Error() }
func (r retryAfterErr) Unwrap() error { return r.err }

// submitOne submits one spec, retrying retryable failures with
// jittered exponential backoff (server Retry-After hints take
// precedence), and returns the client-observed latency across all
// attempts and whether the final answer came from the server's cache.
func (l *loader) submitOne(sub submission, jitter *sim.RNG, res *workerResult) (time.Duration, bool, error) {
	//riflint:allow wallclock -- client-observed latency of a live HTTP service
	start := time.Now()
	for attempt := 0; ; attempt++ {
		cached, err := l.attempt(sub)
		if err == nil {
			//riflint:allow wallclock -- client-observed latency of a live HTTP service
			return time.Since(start), cached, nil
		}
		var perm permanentErr
		if errors.As(err, &perm) || attempt >= l.cfg.Retries {
			return 0, false, err
		}
		res.retries++
		//riflint:allow wallclock -- retry back-off against a live HTTP service
		time.Sleep(l.backoffDelay(attempt, err, jitter))
	}
}

// backoffDelay picks the wait before retry attempt+1: the server's
// Retry-After verbatim when it sent one (capped at MaxBackoff), else
// full-jitter exponential backoff — U(0, min(Backoff·2^attempt,
// MaxBackoff)) — so a burst of turned-away clients decorrelates
// instead of returning in lockstep.
func (l *loader) backoffDelay(attempt int, err error, jitter *sim.RNG) time.Duration {
	var ra retryAfterErr
	if errors.As(err, &ra) && ra.delay > 0 {
		if ra.delay > l.cfg.MaxBackoff {
			return l.cfg.MaxBackoff
		}
		return ra.delay
	}
	d := l.cfg.Backoff
	for i := 0; i < attempt && d < l.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > l.cfg.MaxBackoff {
		d = l.cfg.MaxBackoff
	}
	return time.Duration(jitter.Float64() * float64(d))
}

// attempt posts one spec and follows the NDJSON stream to the terminal
// event. Failures come back classified: permanentErr for outcomes a
// retry cannot change, retryAfterErr for 429 backpressure carrying the
// server's hint, and plain errors for everything retryable.
func (l *loader) attempt(sub submission) (bool, error) {
	resp, err := l.client.Post(l.cfg.URL+"/jobs", "application/json", strings.NewReader(sub.spec))
	if err != nil {
		return false, err // transport failure: retryable
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, readErr := io.ReadAll(io.LimitReader(resp.Body, 256))
		if readErr != nil {
			body = []byte(readErr.Error())
		}
		err := fmt.Errorf("rifload: submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			delay := time.Duration(0)
			if secs, atoiErr := strconv.Atoi(resp.Header.Get("Retry-After")); atoiErr == nil && secs > 0 {
				delay = time.Duration(secs) * time.Second
			}
			return false, retryAfterErr{err: err, delay: delay}
		case resp.StatusCode >= 500:
			return false, err // includes 503 shutting-down: retryable
		default:
			return false, permanentErr{err}
		}
	}
	var last serve.Event
	sawEvent := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			// A dropped connection tears the final line mid-JSON;
			// reconnect-and-resubmit rather than giving up.
			return false, fmt.Errorf("rifload: dropped stream (bad event line %q): %w", sc.Text(), err)
		}
		sawEvent = true
	}
	if err := sc.Err(); err != nil {
		return false, fmt.Errorf("rifload: dropped stream: %w", err)
	}
	switch {
	case !sawEvent || !serve.State(last.Event).Terminal():
		// The server went away mid-stream without a terminal event.
		return false, fmt.Errorf("rifload: dropped stream: job %s last event %q", last.Job, last.Event)
	case last.Event == string(serve.Done):
	case last.Event == string(serve.Cancelled) || last.Event == string(serve.Shed):
		// The server drained or stopped under us; the work (if any) is
		// addressable, so resubmission either hits the cache or reruns.
		return false, fmt.Errorf("rifload: job %s ended %q", last.Job, last.Event)
	default:
		return false, permanentErr{fmt.Errorf("rifload: job %s ended %q: %s", last.Job, last.Event, last.Error)}
	}
	if l.cfg.Verify {
		if err := l.verify(sub.specID, last.Job); err != nil {
			return false, err
		}
	}
	return last.Cached, nil
}

// verify fetches the job's artifacts and pins them against the first
// submission of the same spec: identical /report bytes, identical
// /runs bytes after masking the wall-clock field. A mismatch is both
// counted and returned — it means the cache (or the determinism
// contract underneath it) served wrong bytes.
func (l *loader) verify(specID int, jobID string) error {
	report, err := l.get("/jobs/" + jobID + "/report")
	if err != nil {
		return err
	}
	runs, err := l.get("/runs/" + jobID)
	if err != nil {
		return err
	}
	reportSum := sha256.Sum256(report)
	runsSum := sha256.Sum256(wallTimeField.ReplaceAll(runs, []byte(`"wall_time_s": 0`)))

	l.mu.Lock()
	defer l.mu.Unlock()
	prevReport, seen := l.reportHash[specID]
	if !seen {
		l.reportHash[specID] = reportSum
		l.runsHash[specID] = runsSum
		return nil
	}
	if prevReport != reportSum || l.runsHash[specID] != runsSum {
		l.verifyFailures++
		// Permanent: the pinned hashes will not change, and a retry
		// would double-count the violation.
		return permanentErr{fmt.Errorf("rifload: job %s artifacts differ from an earlier submission of the same spec", jobID)}
	}
	return nil
}

// get fetches one endpoint fully.
func (l *loader) get(path string) ([]byte, error) {
	resp, err := l.client.Get(l.cfg.URL + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rifload: GET %s: %s", path, resp.Status)
	}
	return body, nil
}
