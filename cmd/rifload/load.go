package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"time"

	"repro/internal/replay"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
)

// LoadConfig describes one load run against a rifserve instance.
type LoadConfig struct {
	// URL is the rifserve base URL (no trailing slash).
	URL string
	// Experiment/Requests shape every submitted spec.
	Experiment string
	Requests   int
	// Submissions is the total number of jobs to submit.
	Submissions int
	// Clients is the number of concurrent submitters.
	Clients int
	// HotSpecs is the size of the repeated-spec pool; HitRatio is the
	// probability a submission draws from it instead of minting a
	// never-seen spec. After warmup, hot submissions are answered from
	// the server's result cache (when enabled).
	HotSpecs int
	HitRatio float64
	// Rate paces submissions (jobs/second) through a replay arrival
	// process; 0 submits as fast as the clients drain. Arrivals selects
	// the process: "poisson" (default) or "fixed".
	Rate     float64
	Arrivals string
	// Seed drives the hit/miss mix and the Poisson arrival clock.
	Seed uint64
	// Verify cross-checks artifacts: for every spec submitted more than
	// once, the /report bytes must be identical across submissions, and
	// the /runs bytes identical modulo the wall_time_s host-noise field.
	Verify bool
	// Client overrides the HTTP client (nil means http.DefaultClient).
	Client *http.Client
}

// LatencySummary is the client-observed submit-to-terminal latency
// distribution in milliseconds.
type LatencySummary struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// Summary is the load run's result, printed as JSON by the CLI.
type Summary struct {
	Submissions    int            `json:"submissions"`
	Hits           int64          `json:"hits"`
	Misses         int64          `json:"misses"`
	Errors         int64          `json:"errors"`
	VerifyFailures int64          `json:"verify_failures"`
	ElapsedS       float64        `json:"elapsed_s"`
	JobsPerSec     float64        `json:"jobs_per_s"`
	Latency        LatencySummary `json:"latency"`
	LastError      string         `json:"last_error,omitempty"`
}

// submission is one unit of client work: the spec body and the stable
// identity verification groups artifacts under.
type submission struct {
	specID int
	spec   string
}

// workerResult accumulates one client's counts; merged after the run
// so the hot path never contends on shared counters.
type workerResult struct {
	hits, misses, errors int64
	lastErr              error
	sketch               *stats.Sketch
}

// wallTimeField is the one manifest field that is host noise rather
// than simulation output; verification masks it on both sides.
var wallTimeField = regexp.MustCompile(`"wall_time_s": [0-9eE.+-]+`)

// loader shares the verification state across clients.
type loader struct {
	cfg    LoadConfig
	client *http.Client

	mu             sync.Mutex
	reportHash     map[int][sha256.Size]byte
	runsHash       map[int][sha256.Size]byte
	verifyFailures int64
}

// runLoad executes the configured load and summarizes it.
func runLoad(cfg LoadConfig) (*Summary, error) {
	if cfg.Submissions <= 0 {
		return nil, fmt.Errorf("rifload: submissions %d; want > 0", cfg.Submissions)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.HitRatio < 0 || cfg.HitRatio > 1 {
		return nil, fmt.Errorf("rifload: hit ratio %v; want [0,1]", cfg.HitRatio)
	}
	if cfg.HitRatio > 0 && cfg.HotSpecs <= 0 {
		cfg.HotSpecs = 1
	}
	var arrivals replay.Arrivals
	if cfg.Rate > 0 {
		var err error
		switch cfg.Arrivals {
		case "", "poisson":
			arrivals, err = replay.NewPoisson(cfg.Rate, cfg.Seed)
		case "fixed":
			arrivals, err = replay.NewFixed(cfg.Rate)
		default:
			err = fmt.Errorf("rifload: unknown arrival process %q (poisson, fixed)", cfg.Arrivals)
		}
		if err != nil {
			return nil, err
		}
	}
	l := &loader{
		cfg:        cfg,
		client:     cfg.Client,
		reportHash: map[int][sha256.Size]byte{},
		runsHash:   map[int][sha256.Size]byte{},
	}
	if l.client == nil {
		l.client = http.DefaultClient
	}

	jobs := make(chan submission)
	quit := make(chan struct{})
	defer close(quit)
	results := make([]workerResult, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		results[c].sketch = stats.NewSketch(0)
		wg.Add(1)
		go func(res *workerResult) {
			defer wg.Done()
			l.clientLoop(jobs, quit, res)
		}(&results[c])
	}

	mix := newMix(cfg.Seed)
	//riflint:allow wallclock -- load harness measures a live HTTP service, not a simulation
	start := time.Now()
	for i := 0; i < cfg.Submissions; i++ {
		if arrivals != nil {
			due := start.Add(time.Duration(arrivals.Next(0)))
			//riflint:allow wallclock -- open-loop pacing of real HTTP submissions
			if d := time.Until(due); d > 0 {
				//riflint:allow wallclock -- open-loop pacing of real HTTP submissions
				time.Sleep(d)
			}
		}
		jobs <- l.submission(i, mix)
	}
	close(jobs)
	wg.Wait()
	//riflint:allow wallclock -- load harness measures a live HTTP service, not a simulation
	elapsed := time.Since(start)

	sum := &Summary{Submissions: cfg.Submissions, ElapsedS: elapsed.Seconds()}
	merged := stats.NewSketch(0)
	var lastErr error
	for i := range results {
		r := &results[i]
		sum.Hits += r.hits
		sum.Misses += r.misses
		sum.Errors += r.errors
		if r.lastErr != nil {
			lastErr = r.lastErr
		}
		merged.Merge(r.sketch)
	}
	if lastErr != nil {
		sum.LastError = lastErr.Error()
	}
	sum.VerifyFailures = l.verifyFailures
	if sum.ElapsedS > 0 {
		sum.JobsPerSec = float64(cfg.Submissions) / sum.ElapsedS
	}
	if merged.N() > 0 {
		sum.Latency = LatencySummary{
			P50:  merged.Quantile(0.50),
			P90:  merged.Quantile(0.90),
			P99:  merged.Quantile(0.99),
			Max:  merged.Max(),
			Mean: merged.Mean(),
		}
	}
	return sum, nil
}

// newMix returns the hit/miss mix RNG for a seed: its own named
// stream, so the mix is a pure function of the seed.
func newMix(seed uint64) *sim.RNG { return sim.NewRNG(seed, 0x10ad) }

// submission builds the i-th spec: hot submissions cycle the shared
// pool (so the server's cache can answer repeats), the rest carry a
// never-repeated seed.
func (l *loader) submission(i int, mix *sim.RNG) submission {
	specID := l.cfg.HotSpecs + i // unique: one spec per submission index
	seed := uint64(1_000_000 + i)
	if mix.Bernoulli(l.cfg.HitRatio) {
		specID = i % l.cfg.HotSpecs
		seed = uint64(1 + specID)
	}
	return submission{
		specID: specID,
		spec: fmt.Sprintf(`{"experiment":%q,"requests":%d,"seed":%d}`,
			l.cfg.Experiment, l.cfg.Requests, seed),
	}
}

// clientLoop drains submissions until the feed closes or quit fires.
func (l *loader) clientLoop(jobs <-chan submission, quit <-chan struct{}, res *workerResult) {
	for {
		select {
		case <-quit:
			return
		case sub, ok := <-jobs:
			if !ok {
				return
			}
			latency, cached, err := l.submitOne(sub)
			if err != nil {
				res.errors++
				res.lastErr = err
				continue
			}
			if cached {
				res.hits++
			} else {
				res.misses++
			}
			res.sketch.Add(float64(latency) / float64(time.Millisecond))
		}
	}
}

// submitOne posts one spec, follows the NDJSON stream to the terminal
// event, and returns the client-observed latency and whether the
// server answered from its result cache.
func (l *loader) submitOne(sub submission) (time.Duration, bool, error) {
	//riflint:allow wallclock -- client-observed latency of a live HTTP service
	start := time.Now()
	resp, err := l.client.Post(l.cfg.URL+"/jobs", "application/json", strings.NewReader(sub.spec))
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, readErr := io.ReadAll(io.LimitReader(resp.Body, 256))
		if readErr != nil {
			body = []byte(readErr.Error())
		}
		return 0, false, fmt.Errorf("rifload: submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var last serve.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			return 0, false, fmt.Errorf("rifload: bad event line %q: %w", sc.Text(), err)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, false, err
	}
	if last.Event != string(serve.Done) {
		return 0, false, fmt.Errorf("rifload: job %s ended %q: %s", last.Job, last.Event, last.Error)
	}
	//riflint:allow wallclock -- client-observed latency of a live HTTP service
	latency := time.Since(start)
	if l.cfg.Verify {
		if err := l.verify(sub.specID, last.Job); err != nil {
			return 0, false, err
		}
	}
	return latency, last.Cached, nil
}

// verify fetches the job's artifacts and pins them against the first
// submission of the same spec: identical /report bytes, identical
// /runs bytes after masking the wall-clock field. A mismatch is both
// counted and returned — it means the cache (or the determinism
// contract underneath it) served wrong bytes.
func (l *loader) verify(specID int, jobID string) error {
	report, err := l.get("/jobs/" + jobID + "/report")
	if err != nil {
		return err
	}
	runs, err := l.get("/runs/" + jobID)
	if err != nil {
		return err
	}
	reportSum := sha256.Sum256(report)
	runsSum := sha256.Sum256(wallTimeField.ReplaceAll(runs, []byte(`"wall_time_s": 0`)))

	l.mu.Lock()
	defer l.mu.Unlock()
	prevReport, seen := l.reportHash[specID]
	if !seen {
		l.reportHash[specID] = reportSum
		l.runsHash[specID] = runsSum
		return nil
	}
	if prevReport != reportSum || l.runsHash[specID] != runsSum {
		l.verifyFailures++
		return fmt.Errorf("rifload: job %s artifacts differ from an earlier submission of the same spec", jobID)
	}
	return nil
}

// get fetches one endpoint fully.
func (l *loader) get(path string) ([]byte, error) {
	resp, err := l.client.Get(l.cfg.URL + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("rifload: GET %s: %s", path, resp.Status)
	}
	return body, nil
}
