package main

import (
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

// newServer starts an in-process rifserve and returns its base URL.
func newServer(t *testing.T, cacheBytes int64) string {
	t.Helper()
	srv := serve.New(serve.Config{
		QueueDepth: 64,
		JobWorkers: 2,
		CacheBytes: cacheBytes,
	})
	srv.Start()
	t.Cleanup(srv.Stop)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestLoadSmokeCacheHitsAndByteIdentity is the serve-load-smoke CI
// gate: a short mixed workload against an in-process rifserve must
// complete without errors, observe cache hits (repeats answered from
// the content-addressed cache), and pass rifload's own byte-identity
// verification across every repeated spec — all under -race via the
// Makefile target.
func TestLoadSmokeCacheHitsAndByteIdentity(t *testing.T) {
	url := newServer(t, serve.DefaultCacheBytes)
	sum, err := runLoad(LoadConfig{
		URL:         url,
		Experiment:  "chaos",
		Requests:    30,
		Submissions: 12,
		Clients:     3,
		HotSpecs:    2,
		HitRatio:    0.75,
		Seed:        1,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("load run had %d errors (last: %s)", sum.Errors, sum.LastError)
	}
	if sum.VerifyFailures != 0 {
		t.Fatalf("byte-identity verification failed %d times", sum.VerifyFailures)
	}
	if sum.Hits == 0 {
		t.Fatal("no cache hits on a 75%-hot workload")
	}
	if sum.Hits+sum.Misses != int64(sum.Submissions) {
		t.Fatalf("hits %d + misses %d != submissions %d", sum.Hits, sum.Misses, sum.Submissions)
	}
	if sum.Latency.P99 < sum.Latency.P50 || sum.Latency.Max <= 0 {
		t.Fatalf("implausible latency summary: %+v", sum.Latency)
	}
}

// TestLoadAgainstUncachedServer pins that the harness itself makes no
// caching assumption: with the cache disabled every submission is a
// miss, and byte-identity across repeats still holds (determinism,
// not storage, is what guarantees it).
func TestLoadAgainstUncachedServer(t *testing.T) {
	url := newServer(t, 0)
	sum, err := runLoad(LoadConfig{
		URL:         url,
		Experiment:  "chaos",
		Requests:    30,
		Submissions: 6,
		Clients:     2,
		HotSpecs:    1,
		HitRatio:    1.0,
		Seed:        2,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("load run had %d errors (last: %s)", sum.Errors, sum.LastError)
	}
	if sum.Hits != 0 {
		t.Fatalf("%d cache hits reported by a cache-disabled server", sum.Hits)
	}
	if sum.VerifyFailures != 0 {
		t.Fatalf("byte-identity verification failed %d times without cache", sum.VerifyFailures)
	}
}

// TestLoadConfigValidation pins the CLI-facing error paths.
func TestLoadConfigValidation(t *testing.T) {
	for _, cfg := range []LoadConfig{
		{Submissions: 0},
		{Submissions: 5, HitRatio: 1.5},
		{Submissions: 5, Rate: 10, Arrivals: "bogus"},
	} {
		if _, err := runLoad(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestSubmissionMixDeterministic pins that the same seed produces the
// same spec sequence — load runs are replayable.
func TestSubmissionMixDeterministic(t *testing.T) {
	mk := func() []submission {
		l := &loader{cfg: LoadConfig{
			Experiment: "chaos", Requests: 30, HotSpecs: 2, HitRatio: 0.5, Seed: 7,
		}}
		mix := newMix(7)
		subs := make([]submission, 20)
		for i := range subs {
			subs[i] = l.submission(i, mix)
		}
		return subs
	}
	a, b := mk(), mk()
	hot := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("submission %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].specID < 2 {
			hot++
		}
	}
	if hot == 0 || hot == len(a) {
		t.Fatalf("mix produced %d/%d hot submissions; want a genuine mix", hot, len(a))
	}
}
