package main

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/sim"
)

// newServer starts an in-process rifserve and returns its base URL.
func newServer(t *testing.T, cacheBytes int64) string {
	t.Helper()
	srv := serve.New(serve.Config{
		QueueDepth: 64,
		JobWorkers: 2,
		CacheBytes: cacheBytes,
	})
	srv.Start()
	t.Cleanup(srv.Stop)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestLoadSmokeCacheHitsAndByteIdentity is the serve-load-smoke CI
// gate: a short mixed workload against an in-process rifserve must
// complete without errors, observe cache hits (repeats answered from
// the content-addressed cache), and pass rifload's own byte-identity
// verification across every repeated spec — all under -race via the
// Makefile target.
func TestLoadSmokeCacheHitsAndByteIdentity(t *testing.T) {
	url := newServer(t, serve.DefaultCacheBytes)
	sum, err := runLoad(LoadConfig{
		URL:         url,
		Experiment:  "chaos",
		Requests:    30,
		Submissions: 12,
		Clients:     3,
		HotSpecs:    2,
		HitRatio:    0.75,
		Seed:        1,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("load run had %d errors (last: %s)", sum.Errors, sum.LastError)
	}
	if sum.VerifyFailures != 0 {
		t.Fatalf("byte-identity verification failed %d times", sum.VerifyFailures)
	}
	if sum.Hits == 0 {
		t.Fatal("no cache hits on a 75%-hot workload")
	}
	if sum.Hits+sum.Misses != int64(sum.Submissions) {
		t.Fatalf("hits %d + misses %d != submissions %d", sum.Hits, sum.Misses, sum.Submissions)
	}
	if sum.Latency.P99 < sum.Latency.P50 || sum.Latency.Max <= 0 {
		t.Fatalf("implausible latency summary: %+v", sum.Latency)
	}
}

// TestLoadAgainstUncachedServer pins that the harness itself makes no
// caching assumption: with the cache disabled every submission is a
// miss, and byte-identity across repeats still holds (determinism,
// not storage, is what guarantees it).
func TestLoadAgainstUncachedServer(t *testing.T) {
	url := newServer(t, 0)
	sum, err := runLoad(LoadConfig{
		URL:         url,
		Experiment:  "chaos",
		Requests:    30,
		Submissions: 6,
		Clients:     2,
		HotSpecs:    1,
		HitRatio:    1.0,
		Seed:        2,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("load run had %d errors (last: %s)", sum.Errors, sum.LastError)
	}
	if sum.Hits != 0 {
		t.Fatalf("%d cache hits reported by a cache-disabled server", sum.Hits)
	}
	if sum.VerifyFailures != 0 {
		t.Fatalf("byte-identity verification failed %d times without cache", sum.VerifyFailures)
	}
}

// TestLoadConfigValidation pins the CLI-facing error paths.
func TestLoadConfigValidation(t *testing.T) {
	for _, cfg := range []LoadConfig{
		{Submissions: 0},
		{Submissions: 5, HitRatio: 1.5},
		{Submissions: 5, Rate: 10, Arrivals: "bogus"},
	} {
		if _, err := runLoad(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestSubmissionMixDeterministic pins that the same seed produces the
// same spec sequence — load runs are replayable.
func TestSubmissionMixDeterministic(t *testing.T) {
	mk := func() []submission {
		l := &loader{cfg: LoadConfig{
			Experiment: "chaos", Requests: 30, HotSpecs: 2, HitRatio: 0.5, Seed: 7,
		}}
		mix := newMix(7)
		subs := make([]submission, 20)
		for i := range subs {
			subs[i] = l.submission(i, mix)
		}
		return subs
	}
	a, b := mk(), mk()
	hot := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("submission %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].specID < 2 {
			hot++
		}
	}
	if hot == 0 || hot == len(a) {
		t.Fatalf("mix produced %d/%d hot submissions; want a genuine mix", hot, len(a))
	}
}

// flakyServer runs a scripted handler and counts POST /jobs attempts.
func flakyServer(t *testing.T, handler func(attempt int64, w http.ResponseWriter, r *http.Request)) (string, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler(attempts.Add(1), w, r)
	}))
	t.Cleanup(ts.Close)
	return ts.URL, &attempts
}

// doneStream writes the minimal NDJSON lifecycle a submission expects.
func doneStream(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	fmt.Fprintln(w, `{"event":"queued","job":"job-1","experiment":"chaos"}`)
	fmt.Fprintln(w, `{"event":"done","job":"job-1","completed":12}`)
}

// TestRetryHonorsRetryAfterBackpressure pins the 429 contract: turned-
// away submissions wait out the server's Retry-After hint (capped at
// MaxBackoff) and resubmit until admitted, with the retries counted
// and no client-visible error.
func TestRetryHonorsRetryAfterBackpressure(t *testing.T) {
	url, attempts := flakyServer(t, func(attempt int64, w http.ResponseWriter, _ *http.Request) {
		if attempt <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "rifload test: queue full", http.StatusTooManyRequests)
			return
		}
		doneStream(w)
	})
	sum, err := runLoad(LoadConfig{
		URL: url, Experiment: "chaos", Requests: 30,
		Submissions: 1, Clients: 1, Seed: 3,
		// MaxBackoff caps the server's 1s hint so the test stays fast.
		Retries: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 || sum.Retries != 2 || attempts.Load() != 3 {
		t.Fatalf("errors=%d retries=%d attempts=%d; want 0/2/3 (last: %s)",
			sum.Errors, sum.Retries, attempts.Load(), sum.LastError)
	}
}

// TestRetryRecoversDroppedStream pins the reconnect-and-resubmit path:
// a connection torn mid-stream (after a non-terminal event) is
// retryable, and the resubmission completes the job with zero
// client-visible errors.
func TestRetryRecoversDroppedStream(t *testing.T) {
	url, attempts := flakyServer(t, func(attempt int64, w http.ResponseWriter, _ *http.Request) {
		if attempt == 1 {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprintln(w, `{"event":"queued","job":"job-1","experiment":"chaos"}`)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler) // tear the connection mid-stream
		}
		doneStream(w)
	})
	sum, err := runLoad(LoadConfig{
		URL: url, Experiment: "chaos", Requests: 30,
		Submissions: 1, Clients: 1, Seed: 3,
		Retries: 2, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 || sum.Retries != 1 || attempts.Load() != 2 {
		t.Fatalf("errors=%d retries=%d attempts=%d; want 0/1/2 (last: %s)",
			sum.Errors, sum.Retries, attempts.Load(), sum.LastError)
	}
}

// TestPermanentFailureNotRetried pins the classification boundary: a
// 4xx rejection is a spec problem no retry can fix — one attempt, one
// error, zero retries.
func TestPermanentFailureNotRetried(t *testing.T) {
	url, attempts := flakyServer(t, func(_ int64, w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "rifload test: bad spec", http.StatusBadRequest)
	})
	sum, err := runLoad(LoadConfig{
		URL: url, Experiment: "chaos", Requests: 30,
		Submissions: 1, Clients: 1, Seed: 3,
		Retries: 5, Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 1 || sum.Retries != 0 || attempts.Load() != 1 {
		t.Fatalf("errors=%d retries=%d attempts=%d; want 1/0/1", sum.Errors, sum.Retries, attempts.Load())
	}
}

// TestBackoffDelaySchedule pins the delay policy: Retry-After is
// honored verbatim up to MaxBackoff and capped above it; without a
// hint the delay is full-jitter exponential — uniform in (0, cap] with
// the cap doubling per attempt up to MaxBackoff.
func TestBackoffDelaySchedule(t *testing.T) {
	l := &loader{cfg: LoadConfig{Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}}
	jitter := sim.NewRNG(1, 0xb0ff)
	hint := errors.New("429")
	if d := l.backoffDelay(0, retryAfterErr{err: hint, delay: 700 * time.Millisecond}, jitter); d != 700*time.Millisecond {
		t.Fatalf("Retry-After 700ms produced %v", d)
	}
	if d := l.backoffDelay(0, retryAfterErr{err: hint, delay: 5 * time.Second}, jitter); d != time.Second {
		t.Fatalf("Retry-After above cap produced %v, want the 1s cap", d)
	}
	for attempt, cap := range map[int]time.Duration{
		0: 100 * time.Millisecond,
		1: 200 * time.Millisecond,
		2: 400 * time.Millisecond,
		9: time.Second,
	} {
		for i := 0; i < 32; i++ {
			if d := l.backoffDelay(attempt, hint, jitter); d < 0 || d > cap {
				t.Fatalf("attempt %d delay %v outside [0, %v]", attempt, d, cap)
			}
		}
	}
}

// TestLoadUnderStorageFaults is the end-to-end acceptance pin: with
// every storage-fault class injecting at a nonzero rate, a mixed
// verified workload completes with zero client-visible errors and zero
// byte-identity violations — persistence degrades, results do not.
func TestLoadUnderStorageFaults(t *testing.T) {
	srv := serve.New(serve.Config{
		QueueDepth: 64,
		JobWorkers: 2,
		CacheBytes: serve.DefaultCacheBytes,
		StoreDir:   t.TempDir(),
		StorageFaults: faults.StorageConfig{
			WriteErrorRate: 0.3,
			TornWriteRate:  0.3,
			SyncErrorRate:  0.3,
			BitRotRate:     0.3,
			SlowIORate:     0.3,
			SlowIODelayMS:  1,
		},
		StorageFaultSeed: 5,
		Logf:             t.Logf,
	})
	srv.Start()
	t.Cleanup(srv.Stop)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	sum, err := runLoad(LoadConfig{
		URL:         ts.URL,
		Experiment:  "chaos",
		Requests:    30,
		Submissions: 10,
		Clients:     2,
		HotSpecs:    2,
		HitRatio:    0.5,
		Seed:        4,
		Verify:      true,
		Timeout:     2 * time.Minute,
		Retries:     3,
		Backoff:     time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("load under storage faults had %d errors (last: %s)", sum.Errors, sum.LastError)
	}
	if sum.VerifyFailures != 0 {
		t.Fatalf("byte-identity verification failed %d times under storage faults", sum.VerifyFailures)
	}
	if sum.Hits+sum.Misses != int64(sum.Submissions) {
		t.Fatalf("hits %d + misses %d != submissions %d", sum.Hits, sum.Misses, sum.Submissions)
	}
}
