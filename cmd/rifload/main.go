// Command rifload is the load harness for rifserve: concurrent NDJSON
// clients submit experiment jobs at a configurable arrival rate and
// hit/miss mix, follow each job's progress stream to its terminal
// event, and report client-observed latency quantiles and cache
// effectiveness as JSON.
//
// Usage:
//
//	rifserve -addr :8080 &
//	rifload -url http://localhost:8080 -n 200 -clients 8 -hit 0.9
//
// The hit/miss mix models a result-cache workload: -hot specs are
// drawn repeatedly with probability -hit (after first touch, the
// server answers them from its content-addressed cache), the rest are
// never-repeated specs that always compute. -rate paces submissions
// through the replay engine's arrival processes (-arrivals poisson or
// fixed); 0 submits as fast as the clients drain.
//
// With -verify (default), rifload cross-checks the serving layer's
// core contract: every submission of the same spec must yield
// byte-identical /report bytes and /runs bytes (modulo the wall-clock
// field), whether computed fresh, deduplicated onto an in-flight run,
// or served from the cache. Mismatches are counted as
// verify_failures and the run exits nonzero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "rifserve base URL")
	experiment := flag.String("experiment", "chaos", "experiment every spec names")
	requests := flag.Int("requests", 40, "host requests per simulation in every spec")
	n := flag.Int("n", 50, "total jobs to submit")
	clients := flag.Int("clients", 4, "concurrent submitters")
	hot := flag.Int("hot", 4, "size of the repeated-spec pool")
	hit := flag.Float64("hit", 0.9, "fraction of submissions drawn from the repeated pool")
	rate := flag.Float64("rate", 0, "submission arrival rate in jobs/second (0 = unpaced)")
	arrivals := flag.String("arrivals", "poisson", "arrival process at -rate: poisson or fixed")
	seed := flag.Uint64("seed", 1, "seed for the hit/miss mix, poisson arrivals, and retry jitter")
	verify := flag.Bool("verify", true, "pin byte-identity of artifacts across submissions of the same spec")
	timeout := flag.Duration("timeout", 2*time.Minute,
		"per-request timeout, progress stream included; an exceeded stream counts as dropped and is retried (0 = none)")
	retries := flag.Int("retries", 4,
		"re-submissions attempted per job after a retryable failure (transport error, 5xx, 429, dropped stream); 0 disables")
	backoff := flag.Duration("backoff", 100*time.Millisecond,
		"initial retry delay, doubled per attempt with full jitter and capped at 5s; a server Retry-After takes precedence")
	flag.Parse()

	sum, err := runLoad(LoadConfig{
		URL:         *url,
		Experiment:  *experiment,
		Requests:    *requests,
		Submissions: *n,
		Clients:     *clients,
		HotSpecs:    *hot,
		HitRatio:    *hit,
		Rate:        *rate,
		Arrivals:    *arrivals,
		Seed:        *seed,
		Verify:      *verify,
		Timeout:     *timeout,
		Retries:     *retries,
		Backoff:     *backoff,
	})
	if err != nil {
		//riflint:allow droppederr -- stderr diagnostic on the exit path
		fmt.Fprintln(os.Stderr, "rifload:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		//riflint:allow droppederr -- stderr diagnostic on the exit path
		fmt.Fprintln(os.Stderr, "rifload:", err)
		os.Exit(1)
	}
	if sum.Errors > 0 || sum.VerifyFailures > 0 {
		os.Exit(1)
	}
}
