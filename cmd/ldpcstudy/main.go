// Command ldpcstudy regenerates the code-level figures of the RiF
// paper with the real QC-LDPC machinery: the decoder capability curve
// (Fig. 3), the RBER-to-syndrome-weight correlation (Fig. 10), and
// the RP prediction accuracy with and without the hardware
// approximations (Figs. 11 and 14).
//
// Usage:
//
//	ldpcstudy -fig 3  [-t 256] [-samples 200]
//	ldpcstudy -fig 10
//	ldpcstudy -fig 11
//	ldpcstudy -fig 14
//
// Use -t 1024 for the paper-scale 4-KiB codeword (slower).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ldpc"
	"repro/internal/nand"
	"repro/internal/plot"
)

func main() {
	fig := flag.Int("fig", 3, "figure to regenerate: 3, 10, 11 or 14 (0 = soft-decoding study)")
	t := flag.Int("t", 256, "circulant size (1024 = paper scale)")
	samples := flag.Int("samples", 200, "codewords per RBER point")
	seed := flag.Uint64("seed", 7, "random seed")
	alist := flag.String("alist", "", "write the parity-check matrix to this file (alist format) and exit")
	flag.Parse()

	p := core.DefaultCodeParams()
	p.Circulant = *t
	p.Samples = *samples
	p.Seed = *seed

	if *alist != "" {
		if err := dumpAlist(p, *alist); err != nil {
			fmt.Fprintln(os.Stderr, "ldpcstudy:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*fig, p); err != nil {
		fmt.Fprintln(os.Stderr, "ldpcstudy:", err)
		os.Exit(1)
	}
}

// dumpAlist exports the study's exact parity-check matrix for
// cross-checking against external LDPC tools.
func dumpAlist(p core.CodeParams, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	code := ldpc.NewCode(p.BlockRows, p.BlockCols, p.Circulant, p.Seed)
	if err := code.WriteAlist(f); err != nil {
		return err
	}
	fmt.Printf("wrote %dx%d parity-check matrix to %s\n", code.M(), code.N(), path)
	return nil
}

func run(fig int, p core.CodeParams) error {
	switch fig {
	case 0:
		points, softCap := core.SoftGainStudy(p, nil)
		fmt.Println("Extension — soft-decision decoding gain over the hard capability")
		fmt.Print(core.FormatSoftGain(points, softCap))
		return nil

	case 3:
		fmt.Printf("Fig. 3 — QC-LDPC capability (N=%d bits, %d samples/point)\n",
			p.BlockCols*p.Circulant, p.Samples)
		points := core.Fig3(p, nil)
		fmt.Print(core.FormatFig3(points))
		var fail, iters plot.Series
		fail.Name = "P(failure)"
		iters.Name = "avg iterations / 20"
		for _, pt := range points {
			fail.Points = append(fail.Points, plot.XY{X: pt.RBER * 1000, Y: pt.FailureProb})
			iters.Points = append(iters.Points, plot.XY{X: pt.RBER * 1000, Y: pt.AvgIters / 20})
		}
		fmt.Println()
		fmt.Print(plot.Chart("capability cliff (x: RBER x1e-3)", []plot.Series{fail, iters}, 56, 12))
		fmt.Printf("paper: failure probability exceeds 1e-1 and iterations reach 20 near RBER %.4f\n",
			nand.ECCCapabilityRBER)
		return nil

	case 10:
		points, rhoFull, rhoPruned := core.Fig10(p, nil)
		fmt.Println("Fig. 10 — RBER vs syndrome weight")
		fmt.Printf("%10s %12s %14s\n", "RBER", "full weight", "pruned weight")
		for _, pt := range points {
			fmt.Printf("%10.4f %12.1f %14.1f\n", pt.RBER, pt.AvgFullWeight, pt.AvgPrunedWeight)
		}
		fmt.Printf("rhoS (full) = %d, rhoS (pruned, used by RP hardware) = %d\n", rhoFull, rhoPruned)
		fmt.Println("paper: rhoS = 3830 at RBER 0.0085 for the full 4-KiB code")
		return nil

	case 11, 14:
		approx := fig == 14
		label := "w/o approximations (Fig. 11)"
		paper := 0.991
		if approx {
			label = "w/ chunking + syndrome pruning (Fig. 14)"
			paper = 0.987
		}
		points := core.RPAccuracy(p, nil, approx)
		fmt.Printf("RP prediction accuracy %s\n", label)
		fmt.Print(core.FormatAccuracy(points))
		fmt.Printf("mean accuracy above capability: %.3f (paper: %.3f)\n",
			core.MeanAccuracyAbove(points, nand.ECCCapabilityRBER), paper)
		return nil
	}
	return fmt.Errorf("unknown figure %d", fig)
}
