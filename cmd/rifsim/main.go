// Command rifsim runs the SSD-level experiments of the RiF paper:
// the bandwidth comparisons (Figs. 6 and 17), the channel-usage
// breakdown (Fig. 18), the read-latency tails (Fig. 19), the
// execution timelines (Figs. 7 and 8) and the §VI-C overhead study.
//
// Usage:
//
//	rifsim -fig 17 [-requests 3000] [-seed 1] [-full]
//	rifsim -fig 18 -metrics out.json    # per-run manifests (config, clocks, counters)
//	rifsim -fig 19 -chrome-trace t.json # sim-time spans for Perfetto/chrome://tracing
//	rifsim -fig 6 -json                 # manifests as JSON on stdout, no text report
//	rifsim -fig 17 -prom metrics.prom   # Prometheus text exposition
//	rifsim -fig overhead
//	rifsim -fig chaos -timeout 30s      # fault-injection sweep; timeout/^C cancel
//	                                    # cleanly and flush partial manifests
//
// Run rifsim -fig help (or any unknown figure) to list every
// experiment and ablation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func main() {
	fig := flag.String("fig", "17", "experiment: one of "+strings.Join(validFigs(), ", "))
	requests := flag.Int("requests", 3000, "host requests per simulation run")
	seed := flag.Uint64("seed", 1, "random seed")
	full := flag.Bool("full", false, "simulate the full 2-TiB array instead of a shrunken one")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel simulation workers for grid experiments (1 = sequential; the report is byte-identical either way)")
	metrics := flag.String("metrics", "", "write per-run manifests (config, seed, clocks, final counters) as JSON to this file")
	chromeTrace := flag.String("chrome-trace", "", "write sim-time spans as Chrome trace_event JSON to this file")
	prom := flag.String("prom", "", "write per-run metrics in Prometheus text exposition format to this file")
	jsonOut := flag.Bool("json", false, "print the per-run manifests as JSON on stdout and suppress the text report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	timeout := flag.Duration("timeout", 0,
		"stop launching new grid cells after this wall-clock duration (0 = no limit); completed runs are flushed as partial artifacts")
	flag.Parse()

	p := core.DefaultRunParams()
	p.Requests = *requests
	p.Seed = *seed
	p.Shrink = !*full
	p.Workers = *workers
	p.Tool = "rifsim"
	p.Experiment = *fig
	p.Stop = cancelHook(*timeout)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rifsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rifsim:", err)
			os.Exit(1)
		}
	}

	var collect *obs.Collection
	if *metrics != "" || *prom != "" || *jsonOut {
		collect = obs.NewCollection()
		p.Collect = collect
	}
	var tracer *obs.Tracer
	if *chromeTrace != "" {
		tracer = obs.NewTracer(0)
		p.Trace = tracer
	}

	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = io.Discard
	}

	err := run(out, *fig, p)
	if errors.Is(err, fleet.ErrStopped) {
		// Cancellation (timeout or ^C) is a clean exit: the completed
		// cells' manifests are flushed, marked partial.
		collect.SetPartial(true)
		fmt.Fprintln(os.Stderr, "rifsim: stopped before the grid completed; flushing partial artifacts")
		err = nil
	}
	if err == nil {
		err = writeArtifacts(collect, tracer, *metrics, *chromeTrace, *prom, *jsonOut)
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if memErr := writeMemProfile(*memProfile); memErr != nil && err == nil {
		err = memErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rifsim:", err)
		os.Exit(1)
	}
}

// cancelHook arms the run's cancellation sources — an optional
// wall-clock timeout and SIGINT/SIGTERM — and returns the stop
// predicate the grids poll between cells. All of this is host-side
// control flow: it decides when to stop launching simulations and
// never feeds a value into one, so sim determinism is unaffected (a
// cancelled run's completed cells match the full run's).
func cancelHook(timeout time.Duration) func() bool {
	var stopped atomic.Bool
	if timeout > 0 {
		//riflint:allow wallclock -- host-side cancellation timer, never feeds the sim
		time.AfterFunc(timeout, func() { stopped.Store(true) })
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		stopped.Store(true)
		// Restore default handling so a second ^C force-kills.
		signal.Stop(sigc)
	}()
	return stopped.Load
}

// writeMemProfile snapshots the heap (after a GC, so the profile
// reflects live steady-state allocations) into path; a "" path is a
// no-op.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeArtifacts emits the machine-readable outputs after a
// successful run.
func writeArtifacts(collect *obs.Collection, tracer *obs.Tracer, metricsPath, tracePath, promPath string, jsonOut bool) error {
	if metricsPath != "" {
		if err := collect.WriteFile(metricsPath); err != nil {
			return err
		}
	}
	if promPath != "" {
		f, err := os.Create(promPath)
		if err != nil {
			return err
		}
		if err := collect.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonOut {
		return obs.WriteJSON(os.Stdout, collect)
	}
	return nil
}

// validFigs lists every experiment run accepts, in presentation
// order; unknown -fig values echo it so the valid set is
// discoverable from the command line.
func validFigs() []string {
	return []string{
		"6", "7", "8", "17", "18", "19", "overhead",
		"ablate-chunk", "ablate-buffer", "ablate-accuracy",
		"ablate-scheduling", "ablate-secondcheck",
		"refresh", "tenants", "chaos",
	}
}

func run(out io.Writer, fig string, p core.RunParams) error {
	switch fig {
	case "6":
		tbl, err := core.Fig6(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig. 6 — SSDone vs SSDzero I/O bandwidth (MB/s)")
		for _, pe := range core.PaperPECycles {
			fmt.Fprintf(out, "%dK P/E:\n", pe/1000)
			for _, w := range []string{"Ali121", "Ali124", "Sys0", "Sys1"} {
				zero := tbl.Get(ssd.Zero, w, pe)
				one := tbl.Get(ssd.One, w, pe)
				if zero <= 0 {
					fmt.Fprintf(out, "  %-8s SSDzero=%6.0f  SSDone=%6.0f  (n/a)\n", w, zero, one)
					continue
				}
				fmt.Fprintf(out, "  %-8s SSDzero=%6.0f  SSDone=%6.0f  (%+.1f%%)\n",
					w, zero, one, 100*(one/zero-1))
			}
		}
		return nil

	case "7", "8":
		results, err := core.Timelines(p.Workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figs. 7/8 — 256-KiB read execution timelines")
		fmt.Fprint(out, core.FormatTimelines(results))
		for _, scheme := range []ssd.Scheme{ssd.Zero, ssd.One, ssd.RiF} {
			gantt, err := core.TimelineGantt(scheme)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "\n%v (1 column = 5us; lowercase = retry):\n%s", scheme, gantt)
		}
		return nil

	case "17":
		tbl, err := core.Fig17(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig. 17 — I/O bandwidth normalized to SENC")
		fmt.Fprint(out, tbl.Format(ssd.Sentinel, ssd.AllSchemes(), trace.Names()))
		for _, pe := range core.PaperPECycles {
			fmt.Fprintf(out, "RiF over SENC at %dK P/E: %+.1f%% (paper: +23.8/+47.4/+72.1%%)\n",
				pe/1000, 100*tbl.GeoMeanGain(ssd.RiF, ssd.Sentinel, pe))
		}
		var bars []plot.Bar
		for _, s := range ssd.AllSchemes() {
			bars = append(bars, plot.Bar{
				Label: s.String(),
				Value: 1 + tbl.GeoMeanGain(s, ssd.Sentinel, 2000),
			})
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, plot.HBar("geomean bandwidth vs SENC at 2K P/E", bars, 50))
		return nil

	case "18":
		cells, err := core.Fig18(p, []ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.SWRPlus, ssd.RPOnly, ssd.RiF})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig. 18 — channel usage breakdown")
		fmt.Fprint(out, core.FormatUsage(cells))
		return nil

	case "19":
		curves, err := core.Fig19(p, []ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.SWRPlus, ssd.RPOnly, ssd.RiF})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig. 19 — Ali124 read-latency percentiles")
		fmt.Fprint(out, core.FormatLatency(curves))
		for _, pe := range core.PaperPECycles {
			var series []plot.Series
			for _, c := range curves {
				if c.PECycles != pe {
					continue
				}
				s := plot.Series{Name: c.Scheme.String()}
				for _, pt := range c.CDF {
					s.Points = append(s.Points, plot.XY{X: pt.X / 1000, Y: pt.F})
				}
				series = append(series, s)
			}
			fmt.Fprintln(out)
			fmt.Fprint(out, plot.Chart(
				fmt.Sprintf("CDF of read latency (ms), %dK P/E cycles", pe/1000),
				series, 64, 14))
		}
		return nil

	case "overhead":
		o, err := core.OverheadStudy(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "§VI-C — RP module overhead")
		fmt.Fprint(out, o.Format())
		return nil

	case "ablate-chunk":
		pts, err := core.AblateChunkSize(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — RP chunk size (paper picks 4 KiB, §V-A1)")
		fmt.Fprint(out, core.FormatChunkAblation(pts))
		return nil

	case "ablate-buffer":
		pts, err := core.AblateECCBuffer(p, ssd.One)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — channel ECC buffer depth (SSDone at 2K P/E)")
		fmt.Fprint(out, core.FormatBufferAblation(pts))
		return nil

	case "ablate-accuracy":
		pts, err := core.AblateAccuracy(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — RP accuracy floor (RiF at 2K P/E)")
		fmt.Fprint(out, core.FormatAccuracyAblation(pts))
		return nil

	case "ablate-scheduling":
		pts, err := core.AblateDieScheduling(p, []ssd.Scheme{ssd.One, ssd.RiF})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — die scheduling policy (Sys0 at 2K P/E)")
		fmt.Fprint(out, core.FormatScheduling(pts))
		return nil

	case "refresh":
		pts, err := core.AblateRefreshHorizon(p, ssd.One, 1000)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Study — refresh horizon vs read performance (SSDone at 1K P/E)")
		fmt.Fprint(out, core.FormatRefresh(pts))
		return nil

	case "tenants":
		results, err := core.MultiTenantStudy(p,
			[]ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.RiF}, 2000)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Study — multi-queue tenant isolation at 2K P/E")
		fmt.Fprint(out, core.FormatMultiTenant(results))
		return nil

	case "chaos":
		pts, err := core.ChaosStudy(p, nil, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Study — chaos sweep: every fault class injected, Ali124 at 2K P/E")
		fmt.Fprint(out, core.FormatChaos(pts))
		return nil

	case "ablate-secondcheck":
		res, err := core.AblateSecondCheck(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — footnote-4 second RP pass (RiF at 3K P/E)")
		_, _, u0, _ := res.Without.Channels.Fractions()
		_, _, u1, _ := res.With.Channels.Fractions()
		fmt.Fprintf(out, "without: %7.0f MB/s, uncor %.2f%%, avoided %d\n",
			res.Without.Bandwidth(), 100*u0, res.Without.AvoidedTransfers)
		fmt.Fprintf(out, "with:    %7.0f MB/s, uncor %.2f%%, avoided %d\n",
			res.With.Bandwidth(), 100*u1, res.With.AvoidedTransfers)
		return nil
	}
	return fmt.Errorf("unknown experiment %q; valid figures/ablations: %s",
		fig, strings.Join(validFigs(), ", "))
}
