// Command rifsim runs the SSD-level experiments of the RiF paper:
// the bandwidth comparisons (Figs. 6 and 17), the channel-usage
// breakdown (Fig. 18), the read-latency tails (Fig. 19), the
// execution timelines (Figs. 7 and 8) and the §VI-C overhead study.
//
// Usage:
//
//	rifsim -fig 17 [-requests 3000] [-seed 1] [-full]
//	rifsim -fig 18 -metrics out.json    # per-run manifests (config, clocks, counters)
//	rifsim -fig 19 -chrome-trace t.json # sim-time spans for Perfetto/chrome://tracing
//	rifsim -fig 6 -json                 # manifests as JSON on stdout, no text report
//	rifsim -fig 17 -prom metrics.prom   # Prometheus text exposition
//	rifsim -fig overhead
//	rifsim -fig chaos -timeout 30s      # fault-injection sweep; timeout/^C cancel
//	                                    # cleanly and flush partial manifests
//	rifsim -fig tailsweep               # open-loop P99.99-vs-intensity sweep
//	rifsim -fig agesweep                # a simulated drive-year: read disturb,
//	                                    # read-reclaim and wear, per scheme
//	rifsim -replay t.csv -rates 10000,20000,50000 -scheme RiFSSD
//	tracegen -n 1000000 | rifsim -replay - -rate 30000
//
// -replay streams a recorded trace (native CSV or MSR-Cambridge,
// auto-detected) through the open-loop arrival engine: memory stays
// flat however long the trace is, and latencies come from a mergeable
// quantile sketch instead of a per-request slice.
//
// Run rifsim -fig help (or any unknown figure) to list every
// experiment and ablation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func main() {
	fig := flag.String("fig", "17", "experiment: one of "+strings.Join(validFigs(), ", "))
	replayFile := flag.String("replay", "", "replay a trace file open-loop instead of running -fig (native CSV or MSR-Cambridge format, auto-detected; \"-\" reads stdin)")
	rate := flag.Float64("rate", 0, "with -replay: Poisson arrival rate in IOPS (0 honours the trace's own timestamps)")
	rates := flag.String("rates", "", "with -replay: comma-separated Poisson arrival-rate ladder in IOPS (sweeps one cell per rate)")
	speed := flag.Float64("speed", 1, "with -replay and no rate: trace-timestamp speedup (2 = twice as fast)")
	schemeName := flag.String("scheme", "RiFSSD", "with -replay: retry scheme to simulate")
	pe := flag.Int("pe", 2000, "with -replay: P/E cycle wear state")
	inflight := flag.Int("inflight", 0, "with -replay: open-loop in-flight ring bound (0 = default)")
	age := flag.Float64("age", 30, "with -replay: initial retention age of cold data, days")
	requests := flag.Int("requests", 3000, "host requests per simulation run (with -replay: cap per cell; unset replays the whole trace)")
	seed := flag.Uint64("seed", 1, "random seed")
	full := flag.Bool("full", false, "simulate the full 2-TiB array instead of a shrunken one")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel simulation workers for grid experiments (1 = sequential; the report is byte-identical either way)")
	metrics := flag.String("metrics", "", "write per-run manifests (config, seed, clocks, final counters) as JSON to this file")
	chromeTrace := flag.String("chrome-trace", "", "write sim-time spans as Chrome trace_event JSON to this file")
	prom := flag.String("prom", "", "write per-run metrics in Prometheus text exposition format to this file")
	jsonOut := flag.Bool("json", false, "print the per-run manifests as JSON on stdout and suppress the text report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	timeout := flag.Duration("timeout", 0,
		"stop launching new grid cells after this wall-clock duration (0 = no limit); completed runs are flushed as partial artifacts")
	flag.Parse()

	if err := validateFlags(*workers, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "rifsim:", err)
		os.Exit(2)
	}

	p := core.DefaultRunParams()
	p.Requests = *requests
	p.Seed = *seed
	p.Shrink = !*full
	p.Workers = *workers
	p.Tool = "rifsim"
	p.Experiment = *fig
	p.Stop = cancelHook(*timeout)
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rifsim:", err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rifsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rifsim:", err)
			os.Exit(1)
		}
	}

	var collect *obs.Collection
	if *metrics != "" || *prom != "" || *jsonOut {
		collect = obs.NewCollection()
		p.Collect = collect
	}
	var tracer *obs.Tracer
	if *chromeTrace != "" {
		tracer = obs.NewTracer(0)
		p.Trace = tracer
	}

	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = io.Discard
	}

	var err error
	if *replayFile != "" {
		p.Experiment = "replay"
		err = runReplay(out, p, replayOptions{
			file:     *replayFile,
			rate:     *rate,
			rates:    *rates,
			speed:    *speed,
			scheme:   *schemeName,
			pe:       *pe,
			inflight: *inflight,
			age:      *age,
			requests: requestsCap(*requests),
		})
	} else {
		err = run(out, *fig, p)
	}
	if errors.Is(err, fleet.ErrStopped) {
		// Cancellation (timeout or ^C) is a clean exit: the completed
		// cells' manifests are flushed, marked partial.
		collect.SetPartial(true)
		fmt.Fprintln(os.Stderr, "rifsim: stopped before the grid completed; flushing partial artifacts")
		err = nil
	}
	if err == nil {
		err = writeArtifacts(collect, tracer, *metrics, *chromeTrace, *prom, *jsonOut)
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if memErr := writeMemProfile(*memProfile); memErr != nil && err == nil {
		err = memErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rifsim:", err)
		os.Exit(1)
	}
}

// cancelHook arms the run's cancellation sources — an optional
// wall-clock timeout and SIGINT/SIGTERM — and returns the stop
// predicate the grids poll between cells. All of this is host-side
// control flow: it decides when to stop launching simulations and
// never feeds a value into one, so sim determinism is unaffected (a
// cancelled run's completed cells match the full run's).
func cancelHook(timeout time.Duration) func() bool {
	var stopped atomic.Bool
	if timeout > 0 {
		//riflint:allow wallclock -- host-side cancellation timer, never feeds the sim
		time.AfterFunc(timeout, func() { stopped.Store(true) })
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		stopped.Store(true)
		// Restore default handling so a second ^C force-kills.
		signal.Stop(sigc)
	}()
	return stopped.Load
}

// writeMemProfile snapshots the heap (after a GC, so the profile
// reflects live steady-state allocations) into path; a "" path is a
// no-op.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeArtifacts emits the machine-readable outputs after a
// successful run.
func writeArtifacts(collect *obs.Collection, tracer *obs.Tracer, metricsPath, tracePath, promPath string, jsonOut bool) error {
	if metricsPath != "" {
		if err := collect.WriteFile(metricsPath); err != nil {
			return err
		}
	}
	if promPath != "" {
		f, err := os.Create(promPath)
		if err != nil {
			return err
		}
		if err := collect.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonOut {
		return obs.WriteJSON(os.Stdout, collect)
	}
	return nil
}

// validateFlags rejects the numeric CLI inputs that used to be
// silently reinterpreted: -workers 0 or negative no longer means
// "auto" (pass nothing to get one worker per CPU), and a non-positive
// -requests no longer fails deep inside a study.
func validateFlags(workers, requests int) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d); omit the flag for one worker per CPU", workers)
	}
	if requests < 1 {
		return fmt.Errorf("-requests must be >= 1 (got %d)", requests)
	}
	return nil
}

// validFigs lists every experiment run accepts, in presentation
// order; unknown -fig values echo it so the valid set is
// discoverable from the command line.
func validFigs() []string { return core.ValidExperiments() }

// run dispatches one experiment through the dispatcher shared with
// cmd/rifserve, so a served job's report is byte-identical to the
// same spec run here.
func run(out io.Writer, fig string, p core.RunParams) error {
	return core.RunExperiment(out, fig, p)
}

// replayOptions carries the -replay flag set.
type replayOptions struct {
	file     string
	rate     float64
	rates    string
	speed    float64
	scheme   string
	pe       int
	inflight int
	age      float64
	requests int64
}

// requestsCap distinguishes an explicit -requests (a per-cell cap)
// from the untouched default (replay the whole trace).
func requestsCap(requests int) int64 {
	explicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "requests" {
			explicit = true
		}
	})
	if explicit {
		return int64(requests)
	}
	return 0
}

// parseRates turns -rate/-rates into the sweep ladder (nil = honour
// the trace's timestamps).
func parseRates(rate float64, rates string) ([]float64, error) {
	if rates != "" {
		if rate != 0 {
			return nil, fmt.Errorf("-rate and -rates are mutually exclusive")
		}
		var out []float64
		for _, s := range strings.Split(rates, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("-rates entry %q: want a positive IOPS value", s)
			}
			out = append(out, v)
		}
		return out, nil
	}
	if rate != 0 {
		if rate < 0 {
			return nil, fmt.Errorf("-rate %v: want a positive IOPS value", rate)
		}
		return []float64{rate}, nil
	}
	return nil, nil
}

// runReplay drives the open-loop trace replay: one cell per arrival
// rate (or one cell at the trace's own timestamps), reported as a
// tail-latency table.
func runReplay(out io.Writer, p core.RunParams, o replayOptions) error {
	scheme, err := ssd.SchemeByName(o.scheme)
	if err != nil {
		return err
	}
	ladder, err := parseRates(o.rate, o.rates)
	if err != nil {
		return err
	}
	if o.file == "-" && len(ladder) > 1 {
		return fmt.Errorf("stdin replay cannot sweep %d rates (the stream is consumed by the first cell); pass a file or a single -rate", len(ladder))
	}
	pageBytes := nand.PaperGeometry().PageBytes
	open := func() (replay.Source, io.Closer, error) {
		if o.file == "-" {
			src, err := trace.NewStream(os.Stdin, pageBytes, -1)
			return src, nil, err
		}
		f, err := os.Open(o.file)
		if err != nil {
			return nil, nil, err
		}
		src, err := trace.NewStream(f, pageBytes, -1)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return src, f, nil
	}
	pts, err := core.ReplaySweep(p, core.ReplayParams{
		Open:           open,
		Workload:       o.file,
		Scheme:         scheme,
		PECycles:       o.pe,
		Rates:          ladder,
		Speed:          o.speed,
		AgeDays:        o.age,
		MaxRequests:    o.requests,
		MaxInFlight:    o.inflight,
		FootprintPages: p.FootprintPages,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Open-loop replay of %s — %v at %d P/E cycles\n", o.file, scheme, o.pe)
	fmt.Fprint(out, core.FormatTailSweep(pts))
	return nil
}
