// Command rifsim runs the SSD-level experiments of the RiF paper:
// the bandwidth comparisons (Figs. 6 and 17), the channel-usage
// breakdown (Fig. 18), the read-latency tails (Fig. 19), the
// execution timelines (Figs. 7 and 8) and the §VI-C overhead study.
//
// Usage:
//
//	rifsim -fig 17 [-requests 3000] [-seed 1] [-full]
//	rifsim -fig 18 -metrics out.json    # per-run manifests (config, clocks, counters)
//	rifsim -fig 19 -chrome-trace t.json # sim-time spans for Perfetto/chrome://tracing
//	rifsim -fig 6 -json                 # manifests as JSON on stdout, no text report
//	rifsim -fig 17 -prom metrics.prom   # Prometheus text exposition
//	rifsim -fig overhead
//	rifsim -fig chaos -timeout 30s      # fault-injection sweep; timeout/^C cancel
//	                                    # cleanly and flush partial manifests
//
// Run rifsim -fig help (or any unknown figure) to list every
// experiment and ablation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	fig := flag.String("fig", "17", "experiment: one of "+strings.Join(validFigs(), ", "))
	requests := flag.Int("requests", 3000, "host requests per simulation run")
	seed := flag.Uint64("seed", 1, "random seed")
	full := flag.Bool("full", false, "simulate the full 2-TiB array instead of a shrunken one")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"parallel simulation workers for grid experiments (1 = sequential; the report is byte-identical either way)")
	metrics := flag.String("metrics", "", "write per-run manifests (config, seed, clocks, final counters) as JSON to this file")
	chromeTrace := flag.String("chrome-trace", "", "write sim-time spans as Chrome trace_event JSON to this file")
	prom := flag.String("prom", "", "write per-run metrics in Prometheus text exposition format to this file")
	jsonOut := flag.Bool("json", false, "print the per-run manifests as JSON on stdout and suppress the text report")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	timeout := flag.Duration("timeout", 0,
		"stop launching new grid cells after this wall-clock duration (0 = no limit); completed runs are flushed as partial artifacts")
	flag.Parse()

	if err := validateFlags(*workers, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "rifsim:", err)
		os.Exit(2)
	}

	p := core.DefaultRunParams()
	p.Requests = *requests
	p.Seed = *seed
	p.Shrink = !*full
	p.Workers = *workers
	p.Tool = "rifsim"
	p.Experiment = *fig
	p.Stop = cancelHook(*timeout)
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "rifsim:", err)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rifsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rifsim:", err)
			os.Exit(1)
		}
	}

	var collect *obs.Collection
	if *metrics != "" || *prom != "" || *jsonOut {
		collect = obs.NewCollection()
		p.Collect = collect
	}
	var tracer *obs.Tracer
	if *chromeTrace != "" {
		tracer = obs.NewTracer(0)
		p.Trace = tracer
	}

	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = io.Discard
	}

	err := run(out, *fig, p)
	if errors.Is(err, fleet.ErrStopped) {
		// Cancellation (timeout or ^C) is a clean exit: the completed
		// cells' manifests are flushed, marked partial.
		collect.SetPartial(true)
		fmt.Fprintln(os.Stderr, "rifsim: stopped before the grid completed; flushing partial artifacts")
		err = nil
	}
	if err == nil {
		err = writeArtifacts(collect, tracer, *metrics, *chromeTrace, *prom, *jsonOut)
	}
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if memErr := writeMemProfile(*memProfile); memErr != nil && err == nil {
		err = memErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rifsim:", err)
		os.Exit(1)
	}
}

// cancelHook arms the run's cancellation sources — an optional
// wall-clock timeout and SIGINT/SIGTERM — and returns the stop
// predicate the grids poll between cells. All of this is host-side
// control flow: it decides when to stop launching simulations and
// never feeds a value into one, so sim determinism is unaffected (a
// cancelled run's completed cells match the full run's).
func cancelHook(timeout time.Duration) func() bool {
	var stopped atomic.Bool
	if timeout > 0 {
		//riflint:allow wallclock -- host-side cancellation timer, never feeds the sim
		time.AfterFunc(timeout, func() { stopped.Store(true) })
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		stopped.Store(true)
		// Restore default handling so a second ^C force-kills.
		signal.Stop(sigc)
	}()
	return stopped.Load
}

// writeMemProfile snapshots the heap (after a GC, so the profile
// reflects live steady-state allocations) into path; a "" path is a
// no-op.
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeArtifacts emits the machine-readable outputs after a
// successful run.
func writeArtifacts(collect *obs.Collection, tracer *obs.Tracer, metricsPath, tracePath, promPath string, jsonOut bool) error {
	if metricsPath != "" {
		if err := collect.WriteFile(metricsPath); err != nil {
			return err
		}
	}
	if promPath != "" {
		f, err := os.Create(promPath)
		if err != nil {
			return err
		}
		if err := collect.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonOut {
		return obs.WriteJSON(os.Stdout, collect)
	}
	return nil
}

// validateFlags rejects the numeric CLI inputs that used to be
// silently reinterpreted: -workers 0 or negative no longer means
// "auto" (pass nothing to get one worker per CPU), and a non-positive
// -requests no longer fails deep inside a study.
func validateFlags(workers, requests int) error {
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1 (got %d); omit the flag for one worker per CPU", workers)
	}
	if requests < 1 {
		return fmt.Errorf("-requests must be >= 1 (got %d)", requests)
	}
	return nil
}

// validFigs lists every experiment run accepts, in presentation
// order; unknown -fig values echo it so the valid set is
// discoverable from the command line.
func validFigs() []string { return core.ValidExperiments() }

// run dispatches one experiment through the dispatcher shared with
// cmd/rifserve, so a served job's report is byte-identical to the
// same spec run here.
func run(out io.Writer, fig string, p core.RunParams) error {
	return core.RunExperiment(out, fig, p)
}
