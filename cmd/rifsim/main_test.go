package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/nand"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// TestUnknownFigListsValidExperiments pins the CLI contract: a typo'd
// -fig value must name every valid figure and ablation in the error.
func TestUnknownFigListsValidExperiments(t *testing.T) {
	err := run(io.Discard, "bogus", core.DefaultRunParams())
	if err == nil {
		t.Fatal("unknown figure did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error does not echo the bad value: %q", msg)
	}
	for _, fig := range validFigs() {
		if !strings.Contains(msg, fig) {
			t.Errorf("error does not list valid figure %q: %q", fig, msg)
		}
	}
}

// TestValidFigsAreAccepted ensures the advertised list and the switch
// stay in sync: every advertised figure must be dispatchable (we use
// a zero-request params so runs fail fast with a non-"unknown" error
// rather than simulating).
func TestValidFigsAreAccepted(t *testing.T) {
	p := core.RunParams{} // invalid sizing: experiments fail fast
	for _, fig := range validFigs() {
		err := run(io.Discard, fig, p)
		if err != nil && strings.Contains(err.Error(), "unknown experiment") {
			t.Errorf("advertised figure %q rejected as unknown", fig)
		}
	}
}

// TestValidateFlags pins the CLI-side numeric guards: an explicit
// -workers 0 (or any negative sizing) must fail fast at flag-parse
// time instead of deadlocking or misbehaving deep inside a study.
func TestValidateFlags(t *testing.T) {
	for _, tc := range []struct {
		workers, requests int
		ok                bool
	}{
		{1, 1, true},
		{8, 3000, true},
		{0, 3000, false},
		{-2, 3000, false},
		{4, 0, false},
		{4, -10, false},
	} {
		err := validateFlags(tc.workers, tc.requests)
		if tc.ok && err != nil {
			t.Errorf("validateFlags(%d, %d) = %v, want nil", tc.workers, tc.requests, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("validateFlags(%d, %d) accepted", tc.workers, tc.requests)
		}
	}
}

// TestParseRates pins the -rate/-rates ladder parsing: mutual
// exclusion, positivity, and nil (= trace timestamps) when neither is
// set.
func TestParseRates(t *testing.T) {
	for _, tc := range []struct {
		rate  float64
		rates string
		want  []float64
		ok    bool
	}{
		{0, "", nil, true},
		{25000, "", []float64{25000}, true},
		{0, "10000,20000, 30000", []float64{10000, 20000, 30000}, true},
		{25000, "10000,20000", nil, false}, // mutually exclusive
		{-5, "", nil, false},
		{0, "10000,bogus", nil, false},
		{0, "10000,-2", nil, false},
	} {
		got, err := parseRates(tc.rate, tc.rates)
		if tc.ok && err != nil {
			t.Errorf("parseRates(%v, %q) = %v, want nil error", tc.rate, tc.rates, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("parseRates(%v, %q) accepted", tc.rate, tc.rates)
			}
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseRates(%v, %q) = %v, want %v", tc.rate, tc.rates, got, tc.want)
		}
	}
}

// writeTempTrace synthesizes a small native-format trace file.
func writeTempTrace(t *testing.T, n int) string {
	t.Helper()
	spec, err := trace.ByName("Ali124")
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = g.Next()
		reqs[i].At = sim.Time(i) * 25 * sim.Microsecond
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunReplayEndToEnd drives the -replay path over a real file: one
// cell per ladder rung, table header, and the trace fully consumed.
func TestRunReplayEndToEnd(t *testing.T) {
	path := writeTempTrace(t, 150)
	p := core.DefaultRunParams()
	p.Workers = 2
	var buf bytes.Buffer
	err := runReplay(&buf, p, replayOptions{
		file:   path,
		rates:  "20000,40000",
		speed:  1,
		scheme: "RiFSSD",
		pe:     2000,
		age:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "Open-loop replay of "+path) {
		t.Errorf("missing report header:\n%s", got)
	}
	for _, want := range []string{"rateIOPS", "p99.99us", "20000", "40000"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

// TestRunReplayRejections pins the fail-fast paths: unknown scheme,
// bad ladder, multi-rate stdin sweep, missing file.
func TestRunReplayRejections(t *testing.T) {
	p := core.DefaultRunParams()
	base := replayOptions{file: "nope.csv", speed: 1, scheme: "RiFSSD", pe: 2000}

	o := base
	o.scheme = "NotAScheme"
	if err := runReplay(io.Discard, p, o); err == nil || !strings.Contains(err.Error(), "NotAScheme") {
		t.Errorf("unknown scheme: err = %v", err)
	}

	o = base
	o.rates = "10,bogus"
	if err := runReplay(io.Discard, p, o); err == nil {
		t.Error("bad -rates accepted")
	}

	o = base
	o.file, o.rates = "-", "10000,20000"
	if err := runReplay(io.Discard, p, o); err == nil || !strings.Contains(err.Error(), "stdin") {
		t.Errorf("stdin multi-rate sweep: err = %v", err)
	}

	o = base
	o.rate = 10000
	if err := runReplay(io.Discard, p, o); err == nil {
		t.Error("missing trace file accepted")
	}
}

// TestRunReplayMSRSampleEndToEnd drives -replay over the checked-in
// MSR-Cambridge sample (internal/trace/testdata): format sniffing,
// byte-to-page conversion, and the open-loop sweep all the way to the
// tail-latency table. Together with the trace package's parsing pin,
// this keeps a real-world-format trace working end to end.
func TestRunReplayMSRSampleEndToEnd(t *testing.T) {
	path := filepath.Join("..", "..", "internal", "trace", "testdata", "msr-sample.csv")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checked-in MSR sample missing: %v", err)
	}
	p := core.DefaultRunParams()
	p.Workers = 2
	var buf bytes.Buffer
	err := runReplay(&buf, p, replayOptions{
		file:   path,
		rates:  "5000,20000",
		speed:  1,
		scheme: "RiFSSD",
		pe:     2000,
		age:    30,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "Open-loop replay of "+path) {
		t.Errorf("missing report header:\n%s", got)
	}
	for _, want := range []string{"rateIOPS", "5000", "20000"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// FormatTailSweep does not print request counts, so pin full trace
	// consumption through the same sweep path the CLI took: every cell
	// must have replayed all 24 sample rows.
	scheme, err := ssd.SchemeByName("RiFSSD")
	if err != nil {
		t.Fatal(err)
	}
	pageBytes := nand.PaperGeometry().PageBytes
	pts, err := core.ReplaySweep(p, core.ReplayParams{
		Open: func() (replay.Source, io.Closer, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, nil, err
			}
			src, err := trace.NewStream(f, pageBytes, -1)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			return src, f, nil
		},
		Workload:       path,
		Scheme:         scheme,
		PECycles:       2000,
		Rates:          []float64{5000, 20000},
		AgeDays:        30,
		FootprintPages: p.FootprintPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Requests != 24 {
			t.Errorf("rate %v cell replayed %d requests, want all 24", pt.RateIOPS, pt.Requests)
		}
	}
}
