package main

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestUnknownFigListsValidExperiments pins the CLI contract: a typo'd
// -fig value must name every valid figure and ablation in the error.
func TestUnknownFigListsValidExperiments(t *testing.T) {
	err := run(io.Discard, "bogus", core.DefaultRunParams())
	if err == nil {
		t.Fatal("unknown figure did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bogus"`) {
		t.Errorf("error does not echo the bad value: %q", msg)
	}
	for _, fig := range validFigs() {
		if !strings.Contains(msg, fig) {
			t.Errorf("error does not list valid figure %q: %q", fig, msg)
		}
	}
}

// TestValidFigsAreAccepted ensures the advertised list and the switch
// stay in sync: every advertised figure must be dispatchable (we use
// a zero-request params so runs fail fast with a non-"unknown" error
// rather than simulating).
func TestValidFigsAreAccepted(t *testing.T) {
	p := core.RunParams{} // invalid sizing: experiments fail fast
	for _, fig := range validFigs() {
		err := run(io.Discard, fig, p)
		if err != nil && strings.Contains(err.Error(), "unknown experiment") {
			t.Errorf("advertised figure %q rejected as unknown", fig)
		}
	}
}

// TestValidateFlags pins the CLI-side numeric guards: an explicit
// -workers 0 (or any negative sizing) must fail fast at flag-parse
// time instead of deadlocking or misbehaving deep inside a study.
func TestValidateFlags(t *testing.T) {
	for _, tc := range []struct {
		workers, requests int
		ok                bool
	}{
		{1, 1, true},
		{8, 3000, true},
		{0, 3000, false},
		{-2, 3000, false},
		{4, 0, false},
		{4, -10, false},
	} {
		err := validateFlags(tc.workers, tc.requests)
		if tc.ok && err != nil {
			t.Errorf("validateFlags(%d, %d) = %v, want nil", tc.workers, tc.requests, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("validateFlags(%d, %d) accepted", tc.workers, tc.requests)
		}
	}
}
