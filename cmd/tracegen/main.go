// Command tracegen synthesizes Table II workloads into replayable CSV
// traces (arrival_us,op,lpn,pages).
//
// Usage:
//
//	tracegen -workload Ali124 -n 10000 -out ali124.csv
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	name := flag.String("workload", "Ali124", "Table II workload name")
	n := flag.Int("n", 10000, "number of requests")
	out := flag.String("out", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 1, "random seed")
	rate := flag.Float64("iops", 100000, "arrival rate for synthetic timestamps")
	list := flag.Bool("list", false, "list the Table II workloads")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %10s %15s\n", "name", "read", "cold read")
		for _, s := range trace.TableII() {
			fmt.Printf("%-8s %10.2f %15.2f\n", s.Name, s.ReadRatio, s.ColdReadRatio)
		}
		return
	}

	if err := generate(*name, *n, *out, *seed, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// generate streams n requests through a trace.CSVWriter, one at a
// time: memory is constant in n, so arbitrarily long synthetic traces
// can feed rifsim -replay (or a pipe) without a file-sized buffer.
func generate(name string, n int, out string, seed uint64, iops float64) error {
	if n <= 0 {
		return fmt.Errorf("-n must be >= 1 (got %d)", n)
	}
	if iops <= 0 {
		return fmt.Errorf("-iops must be > 0 (got %v)", iops)
	}
	spec, err := trace.ByName(name)
	if err != nil {
		return err
	}
	g, err := trace.NewGenerator(spec, seed)
	if err != nil {
		return err
	}
	arrivals := sim.NewRNG(seed, 0x77)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	cw := trace.NewCSVWriter(w)
	var at sim.Time
	for i := 0; i < n; i++ {
		r := g.Next()
		at += sim.Time(arrivals.Exponential(1e9 / iops))
		r.At = at
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	return cw.Flush()
}
