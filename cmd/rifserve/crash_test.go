package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// wallTime matches the one manifest field that is host noise rather
// than simulation output; masking it pins every other byte.
var wallTime = regexp.MustCompile(`"wall_time_s": [0-9eE.+-]+`)

func maskWallTime(s string) string {
	return wallTime.ReplaceAllString(s, `"wall_time_s": 0`)
}

// smokeEvent is the slice of the event stream the smoke asserts on.
type smokeEvent struct {
	Event     string `json:"event"`
	Job       string `json:"job"`
	Completed int    `json:"completed"`
	Partial   bool   `json:"partial"`
	Cached    bool   `json:"cached"`
	Error     string `json:"error"`
}

// startRifserve launches the built binary on an ephemeral port against
// storeDir and returns the process plus its base URL, parsed from the
// "listening on" line the server prints once bound.
func startRifserve(t *testing.T, bin, storeDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-store-dir", storeDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "rifserve: listening on "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		//riflint:allow droppederr -- best-effort cleanup of a child that never came up
		cmd.Process.Kill()
		//riflint:allow droppederr -- the kill above makes Wait's error meaningless
		cmd.Wait()
		t.Fatalf("rifserve never announced its address (scan err %v)", sc.Err())
	}
	// Keep draining stderr so the child never blocks on a full pipe.
	go func() {
		//riflint:allow droppederr -- the pipe closes when the child exits; nothing to recover
		io.Copy(io.Discard, stderr)
	}()
	return cmd, "http://" + addr
}

// followEvents streams a job's NDJSON events to the end of the stream.
func followEvents(t *testing.T, client *http.Client, url string) []smokeEvent {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var events []smokeEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e smokeEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatalf("empty event stream from %s", url)
	}
	return events
}

func getBody(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCrashRecoverySmoke is the end-to-end crash drill (`make
// crash-smoke`): a real rifserve process is SIGKILLed mid-grid, a
// second process on the same store and journal replays the WAL, reruns
// the interrupted job under its original ID, and serves /report and
// /runs byte-identical to an uninterrupted run — with the store warm,
// so a resubmission is answered from cache without simulating.
//
// Gated behind CRASH_SMOKE=1: it builds and kills real processes,
// which is CI-tier work, not unit-test-tier.
func TestCrashRecoverySmoke(t *testing.T) {
	if os.Getenv("CRASH_SMOKE") != "1" {
		t.Skip("set CRASH_SMOKE=1 to run the crash-recovery smoke (make crash-smoke)")
	}
	bin := filepath.Join(t.TempDir(), "rifserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(t.TempDir(), "store")
	spec := `{"experiment":"chaos","requests":40,"seed":21}`
	// The whole-stream timeout doubles as the wedge detector: a child
	// that hangs fails the test instead of hanging CI.
	client := &http.Client{Timeout: 2 * time.Minute}

	// Life 1: submit, then SIGKILL after the second cell — no shutdown
	// path runs, the journal holds an accepted-but-unresolved job.
	cmd1, url1 := startRifserve(t, bin, storeDir)
	resp, err := client.Post(url1+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && cells < 2 {
		var e smokeEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		if e.Event == "cell" {
			cells++
		}
		if e.Event == "failed" {
			t.Fatalf("job failed before the kill: %s", e.Error)
		}
	}
	if cells < 2 {
		t.Fatalf("stream ended after %d cells, before the kill point", cells)
	}
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	//riflint:allow droppederr -- a SIGKILLed child always reports "signal: killed"
	cmd1.Wait()
	resp.Body.Close()

	// Life 2: same dirs. Replay re-enqueues job-1 and recomputes it.
	cmd2, url2 := startRifserve(t, bin, storeDir)
	defer func() {
		//riflint:allow droppederr -- best-effort graceful stop at test end
		cmd2.Process.Signal(syscall.SIGTERM)
		//riflint:allow droppederr -- exit status after SIGTERM is not under test
		cmd2.Wait()
	}()
	events := followEvents(t, client, url2+"/jobs/job-1/events")
	last := events[len(events)-1]
	if last.Event != "done" || last.Job != "job-1" || last.Partial {
		t.Fatalf("replayed job ended %+v, want done under its original ID", last)
	}
	report := getBody(t, client, url2+"/jobs/job-1/report")
	runs := getBody(t, client, url2+"/runs/job-1")

	// Uninterrupted baseline, in-process.
	base := serve.New(serve.Config{QueueDepth: 2, JobWorkers: 1})
	base.Start()
	defer base.Stop()
	bts := httptest.NewServer(base.Handler())
	defer bts.Close()
	bresp, err := client.Post(bts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var blast smokeEvent
	bsc := bufio.NewScanner(bresp.Body)
	for bsc.Scan() {
		if err := json.Unmarshal(bsc.Bytes(), &blast); err != nil {
			t.Fatal(err)
		}
	}
	bresp.Body.Close()
	if blast.Event != "done" {
		t.Fatalf("baseline ended %q", blast.Event)
	}
	wantReport := getBody(t, client, bts.URL+"/jobs/"+blast.Job+"/report")
	wantRuns := getBody(t, client, bts.URL+"/runs/"+blast.Job)

	if report != wantReport {
		t.Error("post-crash report differs from the uninterrupted run")
	}
	if maskWallTime(runs) != maskWallTime(wantRuns) {
		t.Error("post-crash manifests differ from the uninterrupted run (wall_time_s masked)")
	}

	// The recomputed result reached the store: a resubmission is served
	// from cache, no simulation behind it.
	rresp, err := client.Post(url2+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var rlast smokeEvent
	rsc := bufio.NewScanner(rresp.Body)
	for rsc.Scan() {
		if err := json.Unmarshal(rsc.Bytes(), &rlast); err != nil {
			t.Fatal(err)
		}
	}
	rresp.Body.Close()
	if rlast.Event != "done" || !rlast.Cached {
		t.Fatalf("post-recovery resubmission not served warm: %+v", rlast)
	}
	if rbody := getBody(t, client, url2+"/jobs/"+rlast.Job+"/report"); rbody != wantReport {
		t.Error("warm-cache report differs from the uninterrupted run")
	}
}
