package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/serve"
)

// TestSigintStopsWithPartialManifest exercises the hard-stop half of
// the signal contract with the same wiring main uses: SIGINT is raised
// against the test process itself, received on a notify channel, and
// answered with serve.Stop — after which the mid-flight job has
// flushed exactly one manifest collection marked partial and the
// service refuses new submissions.
func TestSigintStopsWithPartialManifest(t *testing.T) {
	spool := t.TempDir()
	srv := serve.New(serve.Config{QueueDepth: 2, JobWorkers: 1, SpoolDir: spool})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT)
	defer signal.Stop(sigc)
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		<-sigc
		srv.Stop()
	}()

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"experiment":"chaos","requests":6000,"workers":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var last struct {
		Event     string `json:"event"`
		Completed int    `json:"completed"`
		Partial   bool   `json:"partial"`
	}
	raised := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		if last.Event == "cell" && !raised {
			raised = true
			if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	<-stopped

	if last.Event != "cancelled" || !last.Partial || last.Completed < 1 || last.Completed >= 12 {
		t.Fatalf("terminal event %+v, want mid-job cancelled with partial=true", last)
	}

	names, err := filepath.Glob(filepath.Join(spool, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("spool files after SIGINT: %v, want exactly one", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `"partial"`); got != 1 || !strings.Contains(string(data), `"partial": true`) {
		t.Fatalf(`spool file must say "partial": true exactly once (%d found):`+"\n%s", got, data)
	}

	resp2, err := http.Post(ts.URL+"/jobs?stream=0", "application/json",
		strings.NewReader(`{"experiment":"chaos"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after SIGINT: %d, want 503", resp2.StatusCode)
	}
}

// TestSigtermDrainsInFlightToCompletion exercises the graceful half:
// SIGTERM answered with serve.Drain lets the mid-flight job run its
// whole grid to a complete (non-partial) done while new submissions
// are refused — the same wiring main installs for SIGTERM.
func TestSigtermDrainsInFlightToCompletion(t *testing.T) {
	srv := serve.New(serve.Config{QueueDepth: 2, JobWorkers: 1, StoreDir: t.TempDir()})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	defer signal.Stop(sigc)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-sigc
		srv.Drain()
	}()

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"experiment":"chaos","requests":40,"seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var last struct {
		Event     string `json:"event"`
		Completed int    `json:"completed"`
		Partial   bool   `json:"partial"`
	}
	raised := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		if last.Event == "cell" && !raised {
			raised = true
			if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	<-drained

	// The chaos grid is 4 rates x 3 schemes = 12 cells; a drained
	// in-flight job finishes every one of them.
	if last.Event != "done" || last.Partial || last.Completed != 12 {
		t.Fatalf("terminal event %+v, want a complete done", last)
	}

	resp2, err := http.Post(ts.URL+"/jobs?stream=0", "application/json",
		strings.NewReader(`{"experiment":"chaos"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after SIGTERM: %d, want 503", resp2.StatusCode)
	}
}
