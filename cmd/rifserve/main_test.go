package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/serve"
)

// TestSigtermDrainsWithPartialManifest exercises the signal half of
// graceful shutdown with the same wiring main uses: SIGTERM is raised
// against the test process itself, received on a notify channel, and
// answered with serve.Stop — after which the mid-flight job has
// flushed exactly one manifest collection marked partial and the
// service refuses new submissions.
func TestSigtermDrainsWithPartialManifest(t *testing.T) {
	spool := t.TempDir()
	srv := serve.New(serve.Config{QueueDepth: 2, JobWorkers: 1, SpoolDir: spool})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM)
	defer signal.Stop(sigc)
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		<-sigc
		srv.Stop()
	}()

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"experiment":"chaos","requests":6000,"workers":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var last struct {
		Event     string `json:"event"`
		Completed int    `json:"completed"`
		Partial   bool   `json:"partial"`
	}
	raised := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		if last.Event == "cell" && !raised {
			raised = true
			if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	<-stopped

	if last.Event != "cancelled" || !last.Partial || last.Completed < 1 || last.Completed >= 12 {
		t.Fatalf("terminal event %+v, want mid-job cancelled with partial=true", last)
	}

	names, err := filepath.Glob(filepath.Join(spool, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("spool files after SIGTERM: %v, want exactly one", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `"partial"`); got != 1 || !strings.Contains(string(data), `"partial": true`) {
		t.Fatalf(`spool file must say "partial": true exactly once (%d found):`+"\n%s", got, data)
	}

	resp2, err := http.Post(ts.URL+"/jobs?stream=0", "application/json",
		strings.NewReader(`{"experiment":"chaos"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after SIGTERM: %d, want 503", resp2.StatusCode)
	}
}
