// Command rifserve runs the RiF experiment suite as a long-lived HTTP
// service: POST job specs, stream NDJSON progress, scrape Prometheus
// metrics, and fetch run manifests — the serving front-end over the
// same deterministic dispatcher cmd/rifsim drives one-shot.
//
// Usage:
//
//	rifserve -addr :8080 -queue 8 -jobs 1 -spool runs/ -store-dir cache/
//
//	curl -d '{"experiment":"chaos","requests":500,"seed":7}' localhost:8080/jobs
//	curl localhost:8080/metrics
//	curl localhost:8080/runs/job-1
//
// A job spec is byte-for-byte replayable offline:
//
//	rifsim -fig chaos -requests 500 -seed 7
//
// prints exactly the bytes GET /jobs/job-1/report serves.
//
// Completed results are content-addressed: resubmitting a spec that
// canonicalizes to the same configuration is answered from the result
// cache (the terminal event carries "cached": true) and identical
// concurrent submissions share one computation. -cache-size bounds the
// memory cache in bytes; 0 disables it. -store-dir adds the disk tier:
// completed artifacts persist as content-addressed files (written
// atomically, verified by re-hashing on read) and survive restarts.
// -journal enables the write-ahead job journal: accepted specs are
// journaled before admission, completions after caching, and a
// restarted server replays the journal — completed jobs reappear with
// their exact bytes, incomplete jobs re-enqueue and recompute to the
// same bytes. Grid cells from all running jobs shard across one
// work-stealing scheduler sized by -cell-workers; results are
// byte-identical for every worker count.
//
// SIGTERM drains gracefully: in-flight jobs run to completion and are
// journaled/cached, queued-but-unstarted jobs end with a terminal
// "shed" event, and the journal is fsynced before exit. SIGINT stops
// hard: in-flight jobs are cancelled through the fleet stop hook
// (running grid cells finish) and their manifests are flushed to the
// spool marked "partial": true. Either way the HTTP listener drains
// before the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", serve.DefaultQueueDepth,
		"pending-job queue depth; a full queue rejects submissions with 429 + Retry-After")
	jobs := flag.Int("jobs", 1, "jobs run concurrently (grid cells from all jobs shard across the shared -cell-workers scheduler)")
	spool := flag.String("spool", "", "directory receiving one manifest collection JSON per finished job (empty disables)")
	instance := flag.String("instance", "", "value of the instance label added to every /metrics sample")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for the HTTP listener")
	cacheSize := flag.Int64("cache-size", serve.DefaultCacheBytes,
		"result cache budget in bytes; repeat submissions are answered from cached artifacts and identical concurrent submissions share one computation (0 disables)")
	cellWorkers := flag.Int("cell-workers", 0,
		"workers in the shared work-stealing cell scheduler (0 = GOMAXPROCS); results are byte-identical for every value")
	storeDir := flag.String("store-dir", "",
		"directory of the durable result store: completed artifacts persist as content-addressed files and survive restarts (empty disables)")
	journalPath := flag.String("journal", "",
		"write-ahead job journal path; replayed on restart (empty defaults to <store-dir>/journal.ndjson when -store-dir is set)")
	storeFaults := flag.String("store-faults", "",
		`storage fault injection config as JSON, e.g. '{"write_error_rate":0.1,"torn_write_rate":0.05}' (see faults.StorageConfig; empty disables)`)
	storeFaultSeed := flag.Uint64("store-fault-seed", 1, "seed for the storage-fault injector streams")
	flag.Parse()

	if *queue < 1 {
		fmt.Fprintln(os.Stderr, "rifserve: -queue must be >= 1")
		os.Exit(2)
	}
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "rifserve: -jobs must be >= 1")
		os.Exit(2)
	}
	if *cellWorkers < 0 {
		fmt.Fprintln(os.Stderr, "rifserve: -cell-workers must be >= 0")
		os.Exit(2)
	}
	if *spool != "" {
		if err := os.MkdirAll(*spool, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "rifserve:", err)
			os.Exit(1)
		}
	}
	var storageFaults faults.StorageConfig
	if *storeFaults != "" {
		if err := json.Unmarshal([]byte(*storeFaults), &storageFaults); err != nil {
			fmt.Fprintln(os.Stderr, "rifserve: -store-faults:", err)
			os.Exit(2)
		}
		if err := storageFaults.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "rifserve:", err)
			os.Exit(2)
		}
	}

	var labels map[string]string
	if *instance != "" {
		labels = map[string]string{"instance": *instance}
	}
	srv := serve.New(serve.Config{
		QueueDepth:       *queue,
		JobWorkers:       *jobs,
		SpoolDir:         *spool,
		Labels:           labels,
		CacheBytes:       *cacheSize,
		CellWorkers:      *cellWorkers,
		StoreDir:         *storeDir,
		JournalPath:      *journalPath,
		StorageFaults:    storageFaults,
		StorageFaultSeed: *storeFaultSeed,
		//riflint:allow wallclock -- host-side stall service for injected slow I/O, never feeds the sim
		StoreSleep: time.Sleep,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	srv.Start()

	// Listen before installing the signal handler so the printed address
	// is the bound one (":0" resolves to a real port) — the crash-smoke
	// harness parses it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rifserve:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-sigc
		// A second signal force-kills.
		signal.Stop(sigc)
		if sig == syscall.SIGTERM {
			// Graceful drain: in-flight jobs finish and are journaled and
			// cached, queued jobs end "shed", the journal fsyncs closed.
			fmt.Fprintf(os.Stderr, "rifserve: %v: draining (in-flight jobs run to completion)\n", sig)
			srv.Drain()
		} else {
			// Hard stop: cancel jobs first so progress streams reach
			// their terminal events, then drain the listener.
			fmt.Fprintf(os.Stderr, "rifserve: %v: stopping (in-flight jobs flush partial manifests)\n", sig)
			srv.Stop()
		}
		//riflint:allow wallclock -- host-side HTTP drain deadline, never feeds the sim
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "rifserve: shutdown:", err)
		}
	}()

	fmt.Fprintf(os.Stderr, "rifserve: listening on %s\n", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "rifserve:", err)
		os.Exit(1)
	}
	<-done
}
