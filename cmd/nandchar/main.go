// Command nandchar regenerates the device-characterization figures of
// the RiF paper from the calibrated NAND reliability model: the
// retention-until-retry distributions (Fig. 4) and the intra-page
// chunk RBER similarity (Fig. 12).
//
// Usage:
//
//	nandchar -fig 4  [-blocks 300]
//	nandchar -fig 12 [-pages 2000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fit"
	"repro/internal/nand"
)

func main() {
	fig := flag.Int("fig", 4, "figure to regenerate: 4 or 12 (0 = calibration fit)")
	blocks := flag.Int("blocks", 300, "blocks sampled per condition (fig 4)")
	pages := flag.Int("pages", 2000, "pages sampled per condition (fig 12)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	switch *fig {
	case 0:
		res, err := fit.Calibrate(nand.DefaultModelParams(), fit.PaperTargets(), fit.Options{Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nandchar:", err)
			os.Exit(1)
		}
		fmt.Println("Calibration — fitting the Vth model to the Fig. 4 frontier")
		fmt.Printf("RMSLE = %.4f over %d evaluations\n", res.RMSLE, res.Evaluations)
		got := fit.CrossingDays(res.Params, fit.PaperTargets(), *seed)
		fmt.Printf("%8s %10s %10s\n", "P/E", "target", "fitted")
		for i, t := range fit.PaperTargets() {
			fmt.Printf("%8d %9.1fd %9.1fd\n", t.PECycles, t.CrossDays, got[i])
		}
		fmt.Printf("fitted knobs: RetentionShift=%.1f PEShiftBoost=%.3f PEWiden=%.3f\n",
			res.Params.RetentionShift, res.Params.PEShiftBoost, res.Params.PEWiden)

	case 4:
		p := core.DefaultFig4Params()
		p.Blocks = *blocks
		p.Seed = *seed
		cells := core.Fig4(p, nil)
		fmt.Println("Fig. 4 — retention time until RBER exceeds the ECC capability")
		fmt.Print(core.FormatFig4(cells, p.MaxDays))
		fmt.Println("paper onsets: 17d @0 P/E, 14d @200, 10d @500, 8d @1000")

	case 12:
		pts := core.Fig12(*seed, *pages)
		fmt.Println("Fig. 12 — RBER similarity among fixed-size chunks of a 16-KiB page")
		fmt.Print(core.FormatFig12(pts))
		fmt.Printf("worst spreads: 4K=%.1f%% 2K=%.1f%% 1K=%.1f%% (paper: 4.5%% / ~8%% / 13.5%%)\n",
			100*core.MaxSpreadFor(pts, 4), 100*core.MaxSpreadFor(pts, 2), 100*core.MaxSpreadFor(pts, 1))

	default:
		fmt.Fprintf(os.Stderr, "nandchar: unknown figure %d\n", *fig)
		os.Exit(1)
	}
}
