# One entry point for the checks that gate a change, so they run
# identically on a laptop and in CI (.github/workflows/ci.yml calls
# these exact targets).

GO ?= go

# External tools are version-pinned for reproducible CI. `go run
# pkg@version` compiles them on demand (cached by the go build cache)
# without adding anything to go.mod.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build test race shuffle serve-e2e serve-load-smoke crash-smoke bench bench-smoke chaos-smoke agesweep-smoke replay-smoke lint fmt-check vet riflint staticcheck govulncheck

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# shuffle reruns the whole suite twice in randomized test order:
# it catches tests coupled through package state or relying on
# earlier tests' side effects. CI runs this on every change.
shuffle:
	$(GO) test -shuffle=on -count=2 ./...

# serve-e2e drives the rifserve service end to end under the race
# detector: submit over HTTP, stream NDJSON progress, verify report
# byte-identity with the dispatcher, scrape /metrics with hostile
# labels, and shut down gracefully mid-job (exactly one manifest
# flushed marked partial). CI runs this on every change.
serve-e2e:
	$(GO) test -race -count=1 ./internal/serve/ ./cmd/rifserve/

# serve-load-smoke drives rifload against an in-process cached server
# under the race detector: a mixed hit/miss workload with -verify on,
# asserting zero errors, zero byte-identity violations, and that hot
# specs actually land in the result cache. CI runs this on every
# change.
serve-load-smoke:
	$(GO) test -race -count=1 -run TestLoadSmoke -v ./cmd/rifload/

# crash-smoke is the end-to-end crash drill under the race detector: a
# real rifserve process is SIGKILLed mid-grid, a second process on the
# same store and journal replays the WAL, reruns the interrupted job
# under its original ID with byte-identical /report and /runs, and
# serves a resubmission warm from the recovered store. CI runs this on
# every change.
crash-smoke:
	CRASH_SMOKE=1 $(GO) test -race -count=1 -run TestCrashRecoverySmoke -v ./cmd/rifserve/

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# bench-smoke compiles and runs every benchmark exactly once: it
# catches benchmarks broken by refactors without paying for stable
# timings. CI runs this on every change.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./...

# chaos-smoke drives the fault-injection sweep end to end under the
# race detector at a tiny sizing: every fault class fires across the
# rate x scheme grid and every cell must degrade gracefully (no
# panic, no race). CI runs this on every change.
chaos-smoke:
	$(GO) run -race ./cmd/rifsim -fig chaos -requests 120 -workers 2 -metrics /dev/null

# agesweep-smoke fast-forwards the simulated drive-year end to end
# under the race detector at a tiny sizing: read disturb accumulates,
# read-reclaim fires, and per-block state carries across every epoch
# seeding a fresh device. CI runs this on every change.
agesweep-smoke:
	$(GO) run -race ./cmd/rifsim -fig agesweep -requests 120 -workers 2 -metrics /dev/null

# replay-smoke streams a 1M-request open-loop replay under the race
# detector and asserts the heap high-water mark stays within 4 MiB of
# its early baseline: the flat-memory pin behind "10M-request replays
# in minutes". CI runs this on every change.
replay-smoke:
	REPLAY_SMOKE_REQUESTS=1000000 $(GO) test -race -count=1 -run TestReplaySmokeHeapFlat -v ./internal/replay/

# lint is the network-free gate: formatting, go vet, and the
# repository's own invariant suite (internal/analysis via
# cmd/riflint: simdeterminism, simtime, obssafe, seedflow, hotpath,
# errorflow, ctxflow). ./... includes internal/analysis and
# cmd/riflint themselves, so the suite is self-hosting. It must pass
# before every commit.
lint: fmt-check vet riflint

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

riflint:
	$(GO) run ./cmd/riflint ./...

# staticcheck and govulncheck need network access the first time (to
# fetch the pinned tool); CI runs them as separate blocking steps.
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...
