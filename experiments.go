package rif

import (
	"repro/internal/core"
	"repro/internal/ldpc"
)

// This file re-exports the experiment harnesses that regenerate the
// paper's figures, so downstream users can reproduce or extend the
// studies through the public API.

// CodeParams sizes the QC-LDPC code-level studies (Figs. 3/10/11/14).
type CodeParams = core.CodeParams

// DefaultCodeParams returns the fast-sweep code configuration.
func DefaultCodeParams() CodeParams { return core.DefaultCodeParams() }

// CapabilityPoint is one point of the LDPC capability curve (Fig. 3).
type CapabilityPoint = core.CapabilityPoint

// LDPCCapability measures decoding failure probability and iteration
// counts across an RBER sweep (Fig. 3). Pass nil for the default
// sweep.
func LDPCCapability(p CodeParams, rbers []float64) []CapabilityPoint {
	return core.Fig3(p, rbers)
}

// CorrelationPoint is one point of the syndrome-weight correlation
// (Fig. 10).
type CorrelationPoint = core.CorrelationPoint

// SyndromeCorrelation measures the RBER-to-syndrome-weight relation
// and the calibrated thresholds rhoS (Fig. 10).
func SyndromeCorrelation(p CodeParams, rbers []float64) (points []CorrelationPoint, rhoSFull, rhoSPruned int) {
	return core.Fig10(p, rbers)
}

// AccuracyPoint is one point of an RP accuracy sweep (Figs. 11/14).
type AccuracyPoint = core.AccuracyPoint

// RPAccuracy measures the read-retry predictor's agreement with the
// real LDPC decoder. approximate=true applies the chunking and
// syndrome-pruning hardware heuristics (Fig. 14 vs Fig. 11).
func RPAccuracy(p CodeParams, rbers []float64, approximate bool) []AccuracyPoint {
	return core.RPAccuracy(p, rbers, approximate)
}

// MeanAccuracyAbove averages measured accuracy over RBER points above
// the ECC capability (the paper's 99.1%/98.7% headlines).
func MeanAccuracyAbove(points []AccuracyPoint, capability float64) float64 {
	return core.MeanAccuracyAbove(points, capability)
}

// SoftGainPoint pairs hard- and soft-decoding outcomes at one RBER.
type SoftGainPoint = ldpc.SoftGainPoint

// SoftGainStudy measures the capability extension soft-decision
// decoding buys over the hard capability (an extension beyond the
// paper; pass nil for the default sweep). It returns the paired
// failure curves and the estimated soft capability.
func SoftGainStudy(p CodeParams, rbers []float64) ([]SoftGainPoint, float64) {
	return core.SoftGainStudy(p, rbers)
}

// RetentionCell is one cell of the retention-until-retry distribution
// (Fig. 4).
type RetentionCell = core.RetentionCell

// RetentionStudy regenerates Fig. 4 for the given P/E counts (nil for
// the paper's set).
func RetentionStudy(blocks int, peCycles []int) []RetentionCell {
	p := core.DefaultFig4Params()
	if blocks > 0 {
		p.Blocks = blocks
	}
	return core.Fig4(p, peCycles)
}

// SimilarityPoint is one cell of the chunk RBER similarity study
// (Fig. 12).
type SimilarityPoint = core.SimilarityPoint

// ChunkSimilarity regenerates the Fig. 12 intra-page chunk RBER
// similarity study over the given page sample size.
func ChunkSimilarity(seed uint64, pages int) []SimilarityPoint {
	return core.Fig12(seed, pages)
}

// MaxChunkSpread reports the worst (RBERmax-RBERmin)/RBERmin for a
// chunk size across all conditions of a Fig. 12 result.
func MaxChunkSpread(points []SimilarityPoint, chunkKiB int) float64 {
	return core.MaxSpreadFor(points, chunkKiB)
}

// TimelineResult is one Fig. 7/8 execution-timeline measurement.
type TimelineResult = core.TimelineResult

// Timelines reproduces the 256-KiB-read timelines of Figs. 7 and 8.
// workers bounds the pool sharding the per-scheme runs (0 means one
// per CPU, 1 runs them sequentially); results are identical either
// way.
func Timelines(workers int) ([]TimelineResult, error) { return core.Timelines(workers) }

// Overhead is the §VI-C hardware/energy study result.
type Overhead = core.Overhead

// OverheadStudy evaluates the RP module's energy accounting on a
// worn, read-heavy run.
func OverheadStudy(p RunParams) (*Overhead, error) { return core.OverheadStudy(p) }

// UsageCell is one channel-usage breakdown row (Fig. 18).
type UsageCell = core.UsageCell

// ChannelUsageStudy measures the Fig. 18 channel usage breakdown for
// the given schemes.
func ChannelUsageStudy(p RunParams, schemes []Scheme) ([]UsageCell, error) {
	return core.Fig18(p, schemes)
}

// LatencyCurve is one read-latency distribution (Fig. 19).
type LatencyCurve = core.LatencyCurve

// LatencyStudy measures Fig. 19's read-latency CDFs.
func LatencyStudy(p RunParams, schemes []Scheme) ([]LatencyCurve, error) {
	return core.Fig19(p, schemes)
}

// PaperPECycles are the paper's three evaluated wear states.
func PaperPECycles() []int { return append([]int(nil), core.PaperPECycles...) }

// ChunkAblationPoint is one RP chunk-size configuration result.
type ChunkAblationPoint = core.ChunkAblationPoint

// AblateChunkSize sweeps the RP chunk size (§V-A1's 4-KiB choice):
// smaller chunks predict faster but mispredict more.
func AblateChunkSize(p RunParams) ([]ChunkAblationPoint, error) {
	return core.AblateChunkSize(p)
}

// BufferAblationPoint is one ECC buffer depth result.
type BufferAblationPoint = core.BufferAblationPoint

// AblateECCBuffer sweeps the channel ECC raw-buffer depth for an
// off-chip scheme, quantifying how much ECCWAIT deeper buffers
// recover.
func AblateECCBuffer(p RunParams, scheme Scheme) ([]BufferAblationPoint, error) {
	return core.AblateECCBuffer(p, scheme)
}

// AccuracyAblationPoint is one prediction-floor result.
type AccuracyAblationPoint = core.AccuracyAblationPoint

// AblateAccuracy sweeps the RP accuracy floor, quantifying the
// prediction quality RiF's benefit requires.
func AblateAccuracy(p RunParams) ([]AccuracyAblationPoint, error) {
	return core.AblateAccuracy(p)
}

// SecondCheckResult compares RiF with and without the footnote-4
// second prediction pass.
type SecondCheckResult = core.SecondCheckResult

// AblateSecondCheck measures the footnote-4 extension at very heavy
// wear.
func AblateSecondCheck(p RunParams) (*SecondCheckResult, error) {
	return core.AblateSecondCheck(p)
}

// RefreshPoint is one refresh-horizon configuration result.
type RefreshPoint = core.RefreshPoint

// AblateRefreshHorizon sweeps the background refresh period
// (footnote 3): retry suppression versus refresh write tax.
func AblateRefreshHorizon(p RunParams, scheme Scheme, peCycles int) ([]RefreshPoint, error) {
	return core.AblateRefreshHorizon(p, scheme, peCycles)
}

// MultiTenantResult compares tenant isolation across schemes.
type MultiTenantResult = core.MultiTenantResult

// MultiTenantStudy runs a read-heavy and a write-heavy tenant on
// shared hardware through two NVMe-style host queues per scheme.
func MultiTenantStudy(p RunParams, schemes []Scheme, peCycles int) ([]MultiTenantResult, error) {
	return core.MultiTenantStudy(p, schemes, peCycles)
}
