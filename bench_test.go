// Benchmarks that regenerate every table and figure of the RiF paper
// (HPCA 2024). Each benchmark runs the corresponding experiment at a
// reduced-but-faithful sizing and reports the headline quantity as a
// custom metric, so `go test -bench=.` doubles as the reproduction
// harness. The cmd/ tools run the same experiments at full sizing.
package rif_test

import (
	"testing"

	rif "repro"
)

func benchParams(requests int) rif.RunParams {
	p := rif.DefaultRunParams()
	p.Requests = requests
	return p
}

func benchCode() rif.CodeParams {
	p := rif.DefaultCodeParams()
	p.Samples = 60
	return p
}

// BenchmarkTableI_DeviceBuild measures assembling the Table I device:
// 8 channels x 4 dies x 4 planes with per-block state.
func BenchmarkTableI_DeviceBuild(b *testing.B) {
	spec, _ := rif.WorkloadByName("Ali124")
	spec.FootprintPages = 1 << 15
	for i := 0; i < b.N; i++ {
		w, err := rif.NewWorkload(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := rif.DefaultConfig(rif.RiFSSD, 1000)
		if _, err := rif.New(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII_WorkloadGen measures the Table II request
// generator and reports the realized read ratio of Ali124.
func BenchmarkTableII_WorkloadGen(b *testing.B) {
	spec, _ := rif.WorkloadByName("Ali124")
	w, err := rif.NewWorkload(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	reads := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := w.Next(); r.Op == 0 {
			reads++
		}
	}
	b.ReportMetric(float64(reads)/float64(b.N), "read-ratio")
}

// BenchmarkFig03_LDPCCapability regenerates the decoder capability
// curve at the capability point and reports failure probability and
// average iterations (paper: P(fail) > 0.1 and 20 iterations at RBER
// 0.0085).
func BenchmarkFig03_LDPCCapability(b *testing.B) {
	p := benchCode()
	var fail, iters float64
	for i := 0; i < b.N; i++ {
		pts := rif.LDPCCapability(p, []float64{0.0085})
		fail, iters = pts[0].FailureProb, pts[0].AvgIters
	}
	b.ReportMetric(fail, "P(fail)@cap")
	b.ReportMetric(iters, "iters@cap")
}

// BenchmarkFig04_RetentionUntilRetry regenerates the
// retention-until-retry distributions and reports the 1K-P/E onset
// day (paper: 8 days).
func BenchmarkFig04_RetentionUntilRetry(b *testing.B) {
	var onset int
	for i := 0; i < b.N; i++ {
		cells := rif.RetentionStudy(100, nil)
		onset = onsetOf(cells, 1000)
	}
	b.ReportMetric(float64(onset), "onset-days@1K")
}

func onsetOf(cells []rif.RetentionCell, pe int) int {
	onset := -1
	for _, c := range cells {
		if c.PECycles == pe && (onset < 0 || c.Day < onset) {
			onset = c.Day
		}
	}
	return onset
}

// BenchmarkFig06_OneVsZero regenerates the motivation study: the
// bandwidth SSDone loses to read retries at 2K P/E on Ali124
// (paper: ~50% average across workloads at 2K).
func BenchmarkFig06_OneVsZero(b *testing.B) {
	p := benchParams(800)
	var drop float64
	for i := 0; i < b.N; i++ {
		tbl, err := rif.CompareSchemes(p, []rif.Scheme{rif.SSDZero, rif.SSDOne}, []string{"Ali124"}, []int{2000})
		if err != nil {
			b.Fatal(err)
		}
		drop = 1 - tbl.Get(rif.SSDOne, "Ali124", 2000)/tbl.Get(rif.SSDZero, "Ali124", 2000)
	}
	b.ReportMetric(100*drop, "%bw-lost@2K")
}

// BenchmarkFig07_Timeline regenerates the SSDzero/SSDone execution
// timelines (paper: 252 us and 418 us).
func BenchmarkFig07_Timeline(b *testing.B) {
	var zero, one float64
	for i := 0; i < b.N; i++ {
		res, err := rif.Timelines(0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			switch r.Scheme {
			case rif.SSDZero:
				zero = r.Total.Microseconds()
			case rif.SSDOne:
				one = r.Total.Microseconds()
			}
		}
	}
	b.ReportMetric(zero, "zero-us")
	b.ReportMetric(one, "one-us")
}

// BenchmarkFig08_RiFTimeline regenerates the RiF timeline
// (paper: 292 us).
func BenchmarkFig08_RiFTimeline(b *testing.B) {
	var rifUS float64
	for i := 0; i < b.N; i++ {
		res, err := rif.Timelines(0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Scheme == rif.RiFSSD {
				rifUS = r.Total.Microseconds()
			}
		}
	}
	b.ReportMetric(rifUS, "rif-us")
}

// BenchmarkFig10_SyndromeCorrelation regenerates the syndrome-weight
// correlation and reports the calibrated pruned threshold rhoS.
func BenchmarkFig10_SyndromeCorrelation(b *testing.B) {
	p := benchCode()
	var rho float64
	for i := 0; i < b.N; i++ {
		_, _, pruned := rif.SyndromeCorrelation(p, []float64{0.0085})
		rho = float64(pruned)
	}
	b.ReportMetric(rho, "rhoS-pruned")
}

// BenchmarkFig11_RPAccuracy measures the exact predictor's accuracy
// above the capability (paper: 99.1%).
func BenchmarkFig11_RPAccuracy(b *testing.B) {
	p := benchCode()
	rbers := []float64{0.011, 0.017, 0.025, 0.033}
	var acc float64
	for i := 0; i < b.N; i++ {
		acc = rif.MeanAccuracyAbove(rif.RPAccuracy(p, rbers, false), 0.0085)
	}
	b.ReportMetric(100*acc, "%accuracy")
}

// BenchmarkFig12_ChunkSimilarity regenerates the chunk similarity
// study and reports the worst 4-KiB spread (paper: <= 4.5%).
func BenchmarkFig12_ChunkSimilarity(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		spread = rif.MaxChunkSpread(rif.ChunkSimilarity(1, 500), 4)
	}
	b.ReportMetric(100*spread, "%max-spread-4K")
}

// BenchmarkFig14_RPApproxAccuracy measures the hardware predictor's
// accuracy above the capability (paper: 98.7%).
func BenchmarkFig14_RPApproxAccuracy(b *testing.B) {
	p := benchCode()
	rbers := []float64{0.011, 0.017, 0.025, 0.033}
	var acc float64
	for i := 0; i < b.N; i++ {
		acc = rif.MeanAccuracyAbove(rif.RPAccuracy(p, rbers, true), 0.0085)
	}
	b.ReportMetric(100*acc, "%accuracy")
}

// BenchmarkFig17_AllSchemes regenerates the headline comparison on
// the most read-intensive workload and reports RiF's gain over SENC
// at 2K P/E (paper: +72.1% averaged over all eight workloads).
func BenchmarkFig17_AllSchemes(b *testing.B) {
	p := benchParams(600)
	var gain float64
	for i := 0; i < b.N; i++ {
		tbl, err := rif.CompareSchemes(p, rif.AllSchemes(), []string{"Ali124", "Sys0"}, []int{2000})
		if err != nil {
			b.Fatal(err)
		}
		gain = tbl.GeoMeanGain(rif.RiFSSD, rif.SENC, 2000)
	}
	b.ReportMetric(100*gain, "%RiF-over-SENC@2K")
}

// BenchmarkFig17_AllSchemesObserved is BenchmarkFig17_AllSchemes with
// full observability attached (per-run registries, manifests, live
// latency histograms). Comparing the two ns/op pins the metrics
// overhead; the acceptance bar is < 5% regression (tracked in
// BENCH_obs.json).
func BenchmarkFig17_AllSchemesObserved(b *testing.B) {
	p := benchParams(600)
	p.Tool = "bench"
	p.Experiment = "fig17"
	var gain float64
	var runs int
	for i := 0; i < b.N; i++ {
		collect := rif.NewRunCollection()
		p.Collect = collect
		tbl, err := rif.CompareSchemes(p, rif.AllSchemes(), []string{"Ali124", "Sys0"}, []int{2000})
		if err != nil {
			b.Fatal(err)
		}
		gain = tbl.GeoMeanGain(rif.RiFSSD, rif.SENC, 2000)
		runs = collect.Len()
	}
	b.ReportMetric(100*gain, "%RiF-over-SENC@2K")
	b.ReportMetric(float64(runs), "manifests")
}

// BenchmarkFig18_ChannelUsage regenerates the channel usage breakdown
// and reports the wasted fraction (UNCOR+ECCWAIT) for SWR vs RiF at
// 2K P/E (paper: 54.4% vs ~2% on Ali124).
func BenchmarkFig18_ChannelUsage(b *testing.B) {
	p := benchParams(600)
	var swrWaste, rifWaste float64
	for i := 0; i < b.N; i++ {
		cells, err := rif.ChannelUsageStudy(p, []rif.Scheme{rif.SWR, rif.RiFSSD})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Workload != "Ali124" || c.PECycles != 2000 {
				continue
			}
			if c.Scheme == rif.SWR {
				swrWaste = c.Uncor + c.ECCWait
			} else {
				rifWaste = c.Uncor + c.ECCWait
			}
		}
	}
	b.ReportMetric(100*swrWaste, "%SWR-wasted")
	b.ReportMetric(100*rifWaste, "%RiF-wasted")
}

// BenchmarkFig19_TailLatency regenerates the read-latency tails on
// Ali124 at 2K and reports RiF's P99.99 reduction vs SENC
// (paper: 91.8%).
func BenchmarkFig19_TailLatency(b *testing.B) {
	p := benchParams(800)
	var reduction float64
	for i := 0; i < b.N; i++ {
		curves, err := rif.LatencyStudy(p, []rif.Scheme{rif.SENC, rif.RiFSSD})
		if err != nil {
			b.Fatal(err)
		}
		var senc, rf float64
		for _, c := range curves {
			if c.PECycles != 2000 {
				continue
			}
			if c.Scheme == rif.SENC {
				senc = c.P9999
			} else {
				rf = c.P9999
			}
		}
		if senc > 0 {
			reduction = 1 - rf/senc
		}
	}
	b.ReportMetric(100*reduction, "%p9999-cut@2K")
}

// BenchmarkOverhead_Energy regenerates the §VI-C energy accounting
// and reports the net saving per avoided transfer regime.
func BenchmarkOverhead_Energy(b *testing.B) {
	p := benchParams(600)
	var net float64
	for i := 0; i < b.N; i++ {
		o, err := rif.OverheadStudy(p)
		if err != nil {
			b.Fatal(err)
		}
		net = o.NetEnergyDeltaNJ / 1000
	}
	b.ReportMetric(net, "net-uJ")
}
