package obs

import (
	"math"
	"sync"
	"testing"
)

// TestNilInstrumentsAreNoOps exercises every method on nil receivers:
// the disabled path must be safe to call from any layer.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(1)
	g.Add(2)
	g.SetMax(3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not a no-op")
	}
	var tr *Tracer
	tr.Span("die0", "A", 0, 10)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer not a no-op")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestDisabledPathAllocatesNothing pins the acceptance criterion:
// instrumented hot paths cost zero allocations when sinks are
// disabled (nil instruments).
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.SetMax(7)
		h.Observe(3.5)
		tr.Span("ch0", "A", 0, 100)
	})
	if allocs != 0 {
		t.Fatalf("disabled instruments allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledObserveAllocatesNothing checks the live path too: buckets
// are preallocated, so Observe and Add must not allocate either.
func TestEnabledObserveAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.SetMax(9)
		h.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("enabled instruments allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestConcurrentHammering drives counters, gauges, histograms and the
// tracer from many goroutines; run with -race this is the data-race
// proof for the shared-registry mode the parallel grids use.
func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(1024)
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("events_total")
			g := r.Gauge("depth_highwater")
			h := r.Histogram("latency_us")
			for i := 0; i < iters; i++ {
				c.Add(1)
				g.SetMax(int64(w*iters + i))
				h.Observe(float64(i % 100))
				tr.Span("die0", "A", 0, 10)
				// Interleave lookups with updates: creation must be
				// safe against concurrent readers.
				r.Counter("events_total").Inc()
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Counters["events_total"]; got != 2*workers*iters {
		t.Fatalf("counter = %d, want %d", got, 2*workers*iters)
	}
	if got := s.Gauges["depth_highwater"]; got != workers*iters-1 {
		t.Fatalf("gauge high-water = %d, want %d", got, workers*iters-1)
	}
	hs := s.Histograms["latency_us"]
	if hs.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", hs.Count, workers*iters)
	}
	if tr.Len() != 1024 || tr.Dropped() != int64(workers*iters-1024) {
		t.Fatalf("tracer len=%d dropped=%d, want 1024 and %d",
			tr.Len(), tr.Dropped(), workers*iters-1024)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(ExponentialBuckets(1, 2, 20))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("mean = %v, want 500.5", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v, want exact min 1", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("q1 = %v, want exact max 1000", got)
	}
	// The median lives in the (256, 512] bucket; the estimate must be
	// in that bucket and within a bucket's width of the truth.
	med := h.Quantile(0.5)
	if med <= 256 || med > 512 {
		t.Fatalf("median estimate %v outside its bucket (256, 512]", med)
	}
}

func TestGaugeSetMaxMonotone(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax lowered the gauge: %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax did not raise the gauge: %d", g.Value())
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity not stable")
	}
	if r.Histogram("h") != r.HistogramWith("h", ExponentialBuckets(1, 10, 3)) {
		t.Fatal("histogram identity not stable (bounds fixed at creation)")
	}
}
