// Package obs is the simulator-wide observability subsystem: a
// low-overhead metrics registry (atomic counters, gauges and
// streaming histograms), a sim-time span tracer with Chrome
// trace_event export, and machine-readable per-run manifests.
//
// Every instrument is nil-safe: methods on a nil *Registry, *Counter,
// *Gauge, *Histogram or *Tracer are no-ops, so instrumented hot paths
// cost a single nil check (and zero allocations) when observability
// is disabled. Layers accept a possibly-nil registry and hold typed
// handles; the run harness decides whether anything is collected.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; a nil Counter discards updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//riflint:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (a high-water mark).
//
//riflint:hotpath
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reports the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a streaming histogram: exponential buckets for
// quantile estimates plus a stats.Summary for exact count, mean and
// extremes. Observations are mutex-protected (the grids run many
// simulations concurrently); the buckets are preallocated so Observe
// never allocates. A nil Histogram discards observations.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // bucket upper bounds, ascending; last is +Inf sentinel
	buckets []int64   // len(bounds)+1, last catches > bounds[len-1]
	sum     stats.Summary
}

// DefaultBuckets spans [base, base*growth^(n-1)] exponentially. The
// registry's default histogram covers 0.1..~1e7 (microsecond-scale
// latencies in a nanosecond-clock simulator fit comfortably).
func DefaultBuckets() []float64 { return ExponentialBuckets(0.1, 2, 28) }

// ExponentialBuckets returns n upper bounds starting at base, each
// growth times the previous.
func ExponentialBuckets(base, growth float64, n int) []float64 {
	if n <= 0 || base <= 0 || growth <= 1 {
		return nil
	}
	out := make([]float64, n)
	b := base
	for i := range out {
		out[i] = b
		b *= growth
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBuckets()
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]int64, len(bounds)+1),
	}
}

// Observe folds one observation into the histogram.
//
//riflint:hotpath
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sum.Add(x)
	h.buckets[h.bucketOf(x)]++
	h.mu.Unlock()
}

// bucketOf binary-searches the bounds; callers hold the lock.
func (h *Histogram) bucketOf(x float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if x <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum.N()
}

// Mean reports the arithmetic mean of the observations.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum.Mean()
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket that contains the nearest-rank observation.
//
// The edge-case convention matches stats.Sample.Quantile exactly (the
// exact-percentile path the figures use): an empty histogram yields
// 0, q <= 0 yields the exact minimum, q >= 1 the exact maximum, and
// otherwise the target is the ceil(q*n)-th smallest observation
// (1-based, integer rank — a rank landing exactly on a bucket
// boundary selects that bucket, never the next one). The estimate is
// interpolated inside the target's bucket with the bucket bounds
// clamped to the exact observed [min, max], so it always lies in the
// same bucket as the exact answer — within one bucket width of
// stats.Sample on identical data, and exactly equal for empty,
// single-observation, point-mass and q∈{0,1} cases.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.sum.N()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.sum.Min()
	}
	if q >= 1 {
		return h.sum.Max()
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i, cnt := range h.buckets {
		if cnt == 0 {
			continue
		}
		if seen+cnt < rank {
			seen += cnt
			continue
		}
		// The target rank lands in this bucket: ranks (seen, seen+cnt].
		// Clamp both bucket edges to the exact extremes so sparse
		// buckets (single observation, point mass) reproduce the exact
		// value instead of an interpolated bound.
		lo := h.sum.Min()
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		hi := h.sum.Max()
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		frac := float64(rank-seen) / float64(cnt)
		return lo + (hi-lo)*frac
	}
	return h.sum.Max()
}

// snapshotLocked captures the histogram state; callers hold no lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count: h.sum.N(),
		Mean:  h.sum.Mean(),
		Min:   h.sum.Min(),
		Max:   h.sum.Max(),
	}
	for i, cnt := range h.buckets {
		if cnt == 0 {
			continue
		}
		bound := "+Inf"
		if i < len(h.bounds) {
			bound = trimFloat(h.bounds[i])
		}
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: bound, Count: cnt})
	}
	return s
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Mean    float64       `json:"mean"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Registry is a named collection of instruments. Instruments are
// created on first use and live for the registry's lifetime, so hot
// paths hold handles rather than performing lookups. A nil *Registry
// hands out nil instruments, making the disabled path free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Returns
// nil (a valid no-op instrument) when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with default buckets,
// creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the named histogram, creating it with the
// given bucket upper bounds (nil selects DefaultBuckets). Bounds are
// fixed at creation; later calls return the existing histogram.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every instrument's current value, with
// deterministic (sorted) ordering for serialization and goldens.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{}
	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Value()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, v := range hists {
			s.Histograms[k] = v.snapshot()
		}
	}
	return s
}

// Snapshot is a point-in-time copy of a registry's instruments.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// sortedKeys returns m's keys in order (generics keep the three
// instrument maps on one helper).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
