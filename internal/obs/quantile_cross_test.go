package obs

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// These tests pin the cross-implementation quantile contract: the
// streaming Histogram.Quantile and the exact stats.Sample.Quantile
// share one edge-case convention (empty -> 0, q<=0 -> min, q>=1 ->
// max, otherwise nearest-rank ceil(q*n)), and on identical data the
// histogram estimate always lands in the same bucket as the exact
// answer — within one bucket width. Fig. 19's tail percentiles are
// computed through both paths, so a divergence here is a silent
// corruption of a headline number.

// crossQs are the probed quantiles: the extremes, values that land
// ranks exactly on bucket/cumulative-count boundaries, and the deep
// tails the paper reports (P99, P99.99).
var crossQs = []float64{
	0, 1e-12, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 1 - 1e-12, 1,
}

// bucketWidthAround reports the clamped width of the histogram bucket
// containing x; callers use it as the agreement tolerance.
func bucketWidthAround(h *Histogram, x float64) float64 {
	i := h.bucketOf(x)
	lo := h.sum.Min()
	if i > 0 && h.bounds[i-1] > lo {
		lo = h.bounds[i-1]
	}
	hi := h.sum.Max()
	if i < len(h.bounds) && h.bounds[i] < hi {
		hi = h.bounds[i]
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// checkAgreement observes xs into both implementations and asserts
// the contract at every probed q plus every exact rank boundary k/n.
func checkAgreement(t *testing.T, name string, bounds, xs []float64) {
	t.Helper()
	h := newHistogram(bounds)
	var s stats.Sample
	for _, x := range xs {
		h.Observe(x)
		s.Add(x)
	}
	qs := append([]float64(nil), crossQs...)
	for k := 1; k <= len(xs) && k <= 64; k++ {
		qs = append(qs, float64(k)/float64(len(xs)))
	}
	for _, q := range qs {
		got := h.Quantile(q)
		want := s.Quantile(q)
		tol := bucketWidthAround(h, want)
		if math.Abs(got-want) > tol {
			t.Errorf("%s: Quantile(%v) = %v, exact %v, |diff| > bucket width %v",
				name, q, got, want, tol)
		}
	}
	// The anchored cases must agree exactly, not just within a bucket.
	if got, want := h.Quantile(0), s.Quantile(0); got != want {
		t.Errorf("%s: q=0 histogram %v != exact min %v", name, got, want)
	}
	if got, want := h.Quantile(1), s.Quantile(1); got != want {
		t.Errorf("%s: q=1 histogram %v != exact max %v", name, got, want)
	}
}

func TestQuantileCrossEmpty(t *testing.T) {
	h := newHistogram(nil)
	var s stats.Sample
	for _, q := range crossQs {
		if h.Quantile(q) != 0 || s.Quantile(q) != 0 {
			t.Fatalf("empty: Quantile(%v) = (%v, %v), both must be 0",
				q, h.Quantile(q), s.Quantile(q))
		}
	}
}

// A single observation must be reproduced exactly at every q: the
// containing bucket clamps to [min, max] = [x, x].
func TestQuantileCrossSingleObservation(t *testing.T) {
	h := newHistogram(ExponentialBuckets(1, 2, 16))
	var s stats.Sample
	h.Observe(7.3)
	s.Add(7.3)
	for _, q := range crossQs {
		if got, want := h.Quantile(q), s.Quantile(q); got != want {
			t.Errorf("single: Quantile(%v) = %v, want exact %v", q, got, want)
		}
	}
}

// A point mass (every observation identical) must be exact at every
// q, even though the mass sits mid-bucket.
func TestQuantileCrossPointMass(t *testing.T) {
	h := newHistogram(ExponentialBuckets(1, 2, 16))
	var s stats.Sample
	for i := 0; i < 100; i++ {
		h.Observe(42)
		s.Add(42)
	}
	for _, q := range crossQs {
		if got, want := h.Quantile(q), s.Quantile(q); got != want {
			t.Errorf("point mass: Quantile(%v) = %v, want exact %v", q, got, want)
		}
	}
}

// Ranks landing exactly on cumulative bucket boundaries must select
// the earlier bucket (nearest-rank: ceil lands ON the boundary, not
// past it). Ten observations at 1.0 fill bucket (..,1] exactly;
// q=0.5 over twenty observations is rank 10 — the last observation
// of that bucket, so the estimate must be exactly 1.0.
func TestQuantileCrossBucketBoundaryRank(t *testing.T) {
	h := newHistogram(ExponentialBuckets(1, 2, 12))
	var s stats.Sample
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
		s.Add(1.0)
		h.Observe(3.0)
		s.Add(3.0)
	}
	if got, want := s.Quantile(0.5), 1.0; got != want {
		t.Fatalf("exact median = %v, want %v", got, want)
	}
	if got := h.Quantile(0.5); got != 1.0 {
		t.Errorf("histogram median = %v, want 1.0 (rank 10 lies in the (..,1] bucket)", got)
	}
	// One rank past the boundary flips to the next bucket in both.
	if got, want := s.Quantile(0.55), 3.0; got != want {
		t.Fatalf("exact q=0.55 = %v, want %v", got, want)
	}
	got := h.Quantile(0.55)
	if got <= 2 || got > 3 {
		t.Errorf("histogram q=0.55 = %v, want inside (2, 3] (the bucket holding 3.0)", got)
	}
	checkAgreement(t, "boundary", ExponentialBuckets(1, 2, 12), nil)
}

func TestQuantileCrossUniform(t *testing.T) {
	var xs []float64
	for i := 1; i <= 1000; i++ {
		xs = append(xs, float64(i))
	}
	checkAgreement(t, "uniform", ExponentialBuckets(1, 2, 20), xs)
	checkAgreement(t, "uniform/default-buckets", nil, xs)
}

// A latency-shaped sample: dense body, sparse heavy tail — the Fig. 19
// regime where the two paths previously disagreed.
func TestQuantileCrossHeavyTail(t *testing.T) {
	var xs []float64
	for i := 0; i < 960; i++ {
		xs = append(xs, 80+float64(i%40))
	}
	for i := 0; i < 39; i++ {
		xs = append(xs, 4000+250*float64(i))
	}
	xs = append(xs, 120000)
	checkAgreement(t, "heavy tail", nil, xs)
}

// Percentile is Quantile with the axis scaled by 100; exact-decimal
// pairs must agree bit-for-bit.
func TestPercentileQuantileEquivalence(t *testing.T) {
	var s stats.Sample
	for i := 1; i <= 357; i++ {
		s.Add(float64(i * i % 101))
	}
	for _, pq := range [][2]float64{{0, 0}, {25, 0.25}, {50, 0.5}, {75, 0.75}, {100, 1}} {
		if got, want := s.Percentile(pq[0]), s.Quantile(pq[1]); got != want {
			t.Errorf("Percentile(%v) = %v != Quantile(%v) = %v", pq[0], got, pq[1], want)
		}
	}
}
