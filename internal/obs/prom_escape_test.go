package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestPromLabelEscaping pins the label-value escaping rules of the
// Prometheus text exposition format: exactly backslash, double-quote
// and newline are escaped; tabs and non-ASCII pass through raw. Go's
// %q (the previous implementation) emits \t and \uNNNN escapes the
// format does not define.
func TestPromLabelEscaping(t *testing.T) {
	got := promLabels(map[string]string{
		"scheme":   `Ri"F\SSD`,
		"trace":    "line1\nline2",
		"path":     `C:\dev\nul`,
		"unicode":  "99\u00b5s\twide",
		"workload": "plain",
	})
	want := `{path="C:\\dev\\nul",scheme="Ri\"F\\SSD",trace="line1\nline2",unicode="99` +
		"\u00b5s\twide" + `",workload="plain"}`
	if got != want {
		t.Fatalf("promLabels escaping:\n got %q\nwant %q", got, want)
	}
}

// parsePromText is a miniature exposition-format parser: it walks
// every line of text, skipping comments, and checks each sample line
// is NAME{k="v",...} VALUE with label values using only the three
// legal escapes. It returns the number of sample lines. An unescaped
// newline inside a label value splits the sample across two lines, so
// both halves fail the grammar here — the parser catches every class
// of escaping bug the writer could have.
func parsePromText(text string) (int, error) {
	isNameByte := func(b byte) bool {
		return b == '_' || b == ':' ||
			(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
	}
	samples := 0
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := 0
		for i < len(line) && isNameByte(line[i]) {
			i++
		}
		if i == 0 {
			return samples, fmt.Errorf("line %d: no metric name: %q", ln+1, line)
		}
		if i < len(line) && line[i] == '{' {
			i++
			for {
				start := i
				for i < len(line) && isNameByte(line[i]) {
					i++
				}
				if i == start || i+1 >= len(line) || line[i] != '=' || line[i+1] != '"' {
					return samples, fmt.Errorf("line %d: bad label at byte %d: %q", ln+1, i, line)
				}
				i += 2
				for {
					if i >= len(line) {
						return samples, fmt.Errorf("line %d: unterminated label value: %q", ln+1, line)
					}
					if line[i] == '\\' {
						if i+1 >= len(line) || (line[i+1] != '\\' && line[i+1] != '"' && line[i+1] != 'n') {
							return samples, fmt.Errorf("line %d: illegal escape at byte %d: %q", ln+1, i, line)
						}
						i += 2
						continue
					}
					if line[i] == '"' {
						i++
						break
					}
					i++
				}
				if i < len(line) && line[i] == ',' {
					i++
					continue
				}
				break
			}
			if i >= len(line) || line[i] != '}' {
				return samples, fmt.Errorf("line %d: unterminated label set: %q", ln+1, line)
			}
			i++
		}
		if i >= len(line) || line[i] != ' ' {
			return samples, fmt.Errorf("line %d: missing value separator: %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err != nil {
			return samples, fmt.Errorf("line %d: bad value %q: %v", ln+1, line[i+1:], err)
		}
		samples++
	}
	return samples, nil
}

// TestSnapshotPrometheusHostileLabels runs a full snapshot exposition
// with label values containing every character class that needs
// escaping and validates the output against the format grammar.
func TestSnapshotPrometheusHostileLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_jobs_total").Add(5)
	r.Gauge("serve_queue_depth").Set(2)
	h := r.Histogram("serve_latency_us")
	h.Observe(3)
	h.Observe(900)

	hostile := map[string]string{
		"instance": "ci\"runner\\1\nblue",
		"trace":    "Ali\t124\u00b5",
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf, hostile); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	n, err := parsePromText(out)
	if err != nil {
		t.Fatalf("hostile-label exposition is malformed: %v\nfull text:\n%s", err, out)
	}
	if n == 0 {
		t.Fatal("exposition produced no samples")
	}
	want := `serve_jobs_total{instance="ci\"runner\\1\nblue",trace="Ali` + "\t124\u00b5" + `"} 5`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing escaped sample %q in:\n%s", want, out)
	}
	// The raw (unescaped) forms must NOT appear: an embedded newline
	// would start a bogus line; an unescaped quote would end the value
	// early.
	if strings.Contains(out, "runner\\1\nblue") {
		t.Fatal("label newline reached the exposition unescaped")
	}
}

// TestCollectionPrometheusHostileRuns pushes hostile bytes through the
// multi-run exposition path (scheme/workload labels come from run
// manifests, i.e. attacker-adjacent trace names).
func TestCollectionPrometheusHostileRuns(t *testing.T) {
	m := sampleManifest(`Ri"F\SSD`+"\nv2", 2000)
	m.Workload = "w\t1"
	c := NewCollection()
	c.Add(m)
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := parsePromText(buf.String()); err != nil {
		t.Fatalf("hostile-run exposition is malformed: %v\nfull text:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), `scheme="Ri\"F\\SSD\nv2"`) {
		t.Fatalf("scheme label not escaped:\n%s", buf.String())
	}
}
