package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Span("die0", "A", sim.Time(i), sim.Time(i+1))
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	spans := tr.Spans()
	// The two oldest spans (start 0 and 1) were overwritten.
	if spans[0].Start != 2 || spans[len(spans)-1].Start != 5 {
		t.Fatalf("unexpected surviving spans: %+v", spans)
	}
}

func TestTracerSpansSorted(t *testing.T) {
	tr := NewTracer(8)
	tr.Span("ch0", "B", 50, 60)
	tr.Span("die1", "A", 10, 20)
	tr.Span("die0", "A", 10, 15)
	spans := tr.Spans()
	if spans[0].Resource != "die0" || spans[1].Resource != "die1" || spans[2].Resource != "ch0" {
		t.Fatalf("spans not sorted by (start, resource): %+v", spans)
	}
}

// sampleTracer builds the deterministic span set behind the golden
// file: a die sense, a channel transfer, an ECC decode and a retry.
func sampleTracer() *Tracer {
	tr := NewTracer(16)
	tr.Span("die0", "A", 0, 40000)
	tr.Span("ch0", "A", 40000, 53250)
	tr.Span("ecc-ch0", "A", 53250, 58000)
	tr.Span("die0", "A'", 58000, 98000)
	tr.Span("die1", "W", 10000, 410000)
	return tr
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test -run Golden -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceShape validates the trace_event structure Perfetto
// and chrome://tracing require: a traceEvents array whose "X" events
// carry ts/dur in microseconds and whose threads are named via "M"
// metadata events.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var meta, complete int
	threadNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[ev.TID] = ev.Args["name"].(string)
			}
		case "X":
			complete++
			if ev.Dur == nil {
				t.Fatalf("complete event %q lacks dur", ev.Name)
			}
			if ev.PID != 1 {
				t.Fatalf("complete event %q pid = %d", ev.Name, ev.PID)
			}
			if want := threadNames[ev.TID]; want == "" {
				t.Fatalf("complete event %q on unnamed tid %d", ev.Name, ev.TID)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 5 {
		t.Fatalf("complete events = %d, want 5", complete)
	}
	// One process_name plus one thread_name per distinct resource.
	if meta != 1+4 {
		t.Fatalf("metadata events = %d, want 5", meta)
	}
	// die0's sense: 40000 ns -> ts 0, dur 40 us.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "A" && threadNames[ev.TID] == "die0" {
			if ev.Ts != 0 || *ev.Dur != 40 {
				t.Fatalf("die0 A: ts=%v dur=%v, want 0/40us", ev.Ts, *ev.Dur)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("die0's A span missing from trace")
	}
}
