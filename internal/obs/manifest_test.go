package obs

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func sampleManifest(scheme string, pe int) Manifest {
	r := NewRegistry()
	r.Counter("ssd_page_reads_total").Add(1234)
	r.Gauge("ssd_die_queue_depth_highwater").SetMax(17)
	h := r.Histogram("ssd_read_latency_us")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	return Manifest{
		Tool:       "rifsim",
		Experiment: "fig17",
		Scheme:     scheme,
		Workload:   "Ali124",
		PECycles:   pe,
		Seed:       1,
		Requests:   3000,
		SimTimeNS:  987654321,
		WallTimeS:  0.25,
		BandwidthM: 812.5,
		Metrics:    r.Snapshot(),
	}
}

// TestManifestRoundTrip serializes a collection and restores it,
// asserting run identity and every instrument survive the trip.
func TestManifestRoundTrip(t *testing.T) {
	c := NewCollection()
	c.Add(sampleManifest("RiFSSD", 2000))
	c.Add(sampleManifest("SENC", 0))

	dir := t.TempDir()
	path := filepath.Join(dir, "runs.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Collection
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("restored %d runs, want 2", back.Len())
	}
	runs := back.Runs()
	// Runs() sorts by scheme: RiFSSD before SENC.
	m := runs[0]
	if m.Scheme != "RiFSSD" || m.Workload != "Ali124" || m.PECycles != 2000 {
		t.Fatalf("run identity lost: %+v", m)
	}
	if m.Tool != "rifsim" || m.Experiment != "fig17" || m.Seed != 1 || m.Requests != 3000 {
		t.Fatalf("run provenance lost: %+v", m)
	}
	if m.SimTimeNS != 987654321 || m.WallTimeS != 0.25 || m.BandwidthM != 812.5 {
		t.Fatalf("run clocks lost: %+v", m)
	}
	if got := m.Metrics.Counters["ssd_page_reads_total"]; got != 1234 {
		t.Fatalf("counter lost: %d", got)
	}
	if got := m.Metrics.Gauges["ssd_die_queue_depth_highwater"]; got != 17 {
		t.Fatalf("gauge lost: %d", got)
	}
	h := m.Metrics.Histograms["ssd_read_latency_us"]
	if h.Count != 100 || h.Min != 1 || h.Max != 100 {
		t.Fatalf("histogram summary lost: %+v", h)
	}
	var n int64
	for _, b := range h.Buckets {
		n += b.Count
	}
	if n != 100 {
		t.Fatalf("histogram buckets lost %d of 100 observations", 100-n)
	}
}

// TestSnapshotPrometheus checks the single-snapshot exposition: TYPE
// lines, label rendering and cumulative histogram buckets.
func TestSnapshotPrometheus(t *testing.T) {
	m := sampleManifest("RiFSSD", 2000)
	var buf bytes.Buffer
	if err := m.Metrics.WritePrometheus(&buf, map[string]string{"scheme": "RiFSSD"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ssd_page_reads_total counter",
		`ssd_page_reads_total{scheme="RiFSSD"} 1234`,
		"# TYPE ssd_die_queue_depth_highwater gauge",
		"# TYPE ssd_read_latency_us histogram",
		`ssd_read_latency_us_count{scheme="RiFSSD"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the last bucket line carries the
	// full count.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "ssd_read_latency_us_bucket") {
			last = l
		}
	}
	if !strings.HasSuffix(last, " 100") {
		t.Fatalf("last histogram bucket not cumulative: %q", last)
	}
}

// TestCollectionPrometheus checks the multi-run exposition: one TYPE
// line per metric, one labelled sample per run.
func TestCollectionPrometheus(t *testing.T) {
	c := NewCollection()
	c.Add(sampleManifest("RiFSSD", 2000))
	c.Add(sampleManifest("SENC", 0))
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "# TYPE ssd_page_reads_total counter"); got != 1 {
		t.Fatalf("TYPE line emitted %d times, want exactly 1", got)
	}
	for _, want := range []string{`scheme="RiFSSD"`, `scheme="SENC"`, `pe="2000"`, `pe="0"`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing label %s", want)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":    "ok_name",
		"with-dash":  "with_dash",
		"with.dot":   "with_dot",
		"9starts":    "_9starts",
		"ns:counter": "ns:counter",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSnapshotFormat(t *testing.T) {
	m := sampleManifest("RiFSSD", 2000)
	out := m.Metrics.Format()
	for _, want := range []string{"counters:", "gauges:", "histograms:", "ssd_page_reads_total", "n=100"} {
		if !strings.Contains(out, want) {
			t.Errorf("terminal summary missing %q in:\n%s", want, out)
		}
	}
}
