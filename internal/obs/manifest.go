package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Manifest is the machine-readable record of one simulation run: what
// was configured, how long it took (in both clocks), and every final
// instrument value. Serialized to JSON it is the run artifact other
// tooling (perf trackers, dashboards, regression tests) consumes.
type Manifest struct {
	// Tool names the producing binary or harness ("rifsim",
	// "fleetcompare", "bench").
	Tool string `json:"tool,omitempty"`
	// Experiment names the figure or study the run belongs to.
	Experiment string `json:"experiment,omitempty"`

	// Run identity.
	Scheme   string `json:"scheme,omitempty"`
	Workload string `json:"workload,omitempty"`
	PECycles int    `json:"pe_cycles"`
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests,omitempty"`
	// RateIOPS is the open-loop arrival intensity of a replay cell
	// (0 for closed-loop runs).
	RateIOPS float64 `json:"rate_iops,omitempty"`

	// Config carries the full simulator configuration when the caller
	// provides one (any JSON-serializable value).
	Config any `json:"config,omitempty"`

	// Clocks: the virtual makespan and the host wall time.
	SimTimeNS  int64   `json:"sim_time_ns"`
	WallTimeS  float64 `json:"wall_time_s"`
	BandwidthM float64 `json:"bandwidth_mbps,omitempty"`

	// Metrics is the final registry snapshot.
	Metrics Snapshot `json:"metrics"`
}

// SetSimTime records the virtual makespan.
func (m *Manifest) SetSimTime(t sim.Time) { m.SimTimeNS = int64(t) }

// WriteJSON serializes any artifact (a Manifest, a Collection, a
// result table) as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("obs: json encode: %w", err)
	}
	return nil
}

// WriteJSONFile serializes an artifact to a file.
func WriteJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := WriteJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Collection gathers the manifests of a multi-run experiment (a
// scheme x workload x wear grid). Add is safe for concurrent use —
// the grids run cells in parallel.
type Collection struct {
	mu      sync.Mutex
	runs    []Manifest
	partial bool
	onAdd   func(Manifest)
}

// NewCollection returns an empty collection.
func NewCollection() *Collection { return &Collection{} }

// SetOnAdd registers a hook invoked after every Add with the manifest
// just collected (outside the collection's lock, so the hook may call
// back into the collection). The serving layer uses it to stream
// per-run progress; completion order across a parallel grid is
// scheduler-dependent, so hooks must not feed anything
// order-sensitive. Nil-safe; a nil fn clears the hook.
func (c *Collection) SetOnAdd(fn func(Manifest)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onAdd = fn
	c.mu.Unlock()
}

// Add appends one run's manifest. Nil-safe.
func (c *Collection) Add(m Manifest) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.runs = append(c.runs, m)
	fn := c.onAdd
	c.mu.Unlock()
	if fn != nil {
		fn(m)
	}
}

// Runs returns the collected manifests sorted by (experiment, scheme,
// workload, P/E) so output is deterministic regardless of completion
// order.
func (c *Collection) Runs() []Manifest {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]Manifest(nil), c.runs...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.PECycles != b.PECycles {
			return a.PECycles < b.PECycles
		}
		return a.RateIOPS < b.RateIOPS
	})
	return out
}

// SetPartial marks the collection as an incomplete flush: the run was
// cancelled (timeout, SIGINT) before every cell finished. Nil-safe.
func (c *Collection) SetPartial(v bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.partial = v
	c.mu.Unlock()
}

// Partial reports whether the collection was flushed before the
// experiment completed.
func (c *Collection) Partial() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partial
}

// Len reports the number of collected runs.
func (c *Collection) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// MarshalJSON serializes the collection as {"runs": [...]}, with
// "partial": true when the flush preceded completion.
func (c *Collection) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Partial bool       `json:"partial,omitempty"`
		Runs    []Manifest `json:"runs"`
	}{Partial: c.Partial(), Runs: c.Runs()})
}

// UnmarshalJSON restores a collection written by MarshalJSON.
func (c *Collection) UnmarshalJSON(data []byte) error {
	var raw struct {
		Partial bool       `json:"partial"`
		Runs    []Manifest `json:"runs"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	c.mu.Lock()
	c.runs = raw.Runs
	c.partial = raw.Partial
	c.mu.Unlock()
	return nil
}

// WriteFile serializes the collection to a JSON file.
func (c *Collection) WriteFile(path string) error {
	return WriteJSONFile(path, c)
}

// runLabels identifies one run in a multi-run exposition.
func runLabels(m Manifest) map[string]string {
	l := map[string]string{}
	if m.Scheme != "" {
		l["scheme"] = m.Scheme
	}
	if m.Workload != "" {
		l["workload"] = m.Workload
	}
	if m.Experiment != "" {
		l["experiment"] = m.Experiment
	}
	l["pe"] = fmt.Sprintf("%d", m.PECycles)
	return l
}

// WritePrometheus renders every collected run in the Prometheus text
// exposition format, one labelled sample set per run. Each metric
// name's # TYPE line is emitted once (the format forbids duplicates),
// then every run contributes its samples with scheme/workload/pe
// labels.
func (c *Collection) WritePrometheus(w io.Writer) error {
	runs := c.Runs()
	counterNames := map[string]bool{}
	gaugeNames := map[string]bool{}
	histNames := map[string]bool{}
	for _, m := range runs {
		for k := range m.Metrics.Counters {
			counterNames[k] = true
		}
		for k := range m.Metrics.Gauges {
			gaugeNames[k] = true
		}
		for k := range m.Metrics.Histograms {
			histNames[k] = true
		}
	}
	for _, name := range sortedKeys(counterNames) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", n); err != nil {
			return err
		}
		for _, m := range runs {
			v, ok := m.Metrics.Counters[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", n, promLabels(runLabels(m)), v); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(gaugeNames) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", n); err != nil {
			return err
		}
		for _, m := range runs {
			v, ok := m.Metrics.Gauges[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", n, promLabels(runLabels(m)), v); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(histNames) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		for _, m := range runs {
			h, ok := m.Metrics.Histograms[name]
			if !ok {
				continue
			}
			lbl := runLabels(m)
			cum := int64(0)
			for _, b := range h.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n, histLabels(lbl, b.UpperBound), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", n, promLabels(lbl), h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_mean%s %g\n", n, promLabels(lbl), h.Mean); err != nil {
				return err
			}
		}
	}
	return nil
}

var promInvalid = regexp.MustCompile(`[^a-zA-Z0-9_:]`)

// promName sanitizes a metric name for the Prometheus exposition
// format (letters, digits, underscores and colons only).
func promName(name string) string {
	s := promInvalid.ReplaceAllString(name, "_")
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		s = "_" + s
	}
	return s
}

// promLabelValue escapes a label value per the Prometheus text
// exposition format: exactly backslash, double-quote and newline are
// escaped (as \\, \" and \n); every other byte — tabs, high Unicode —
// passes through as raw UTF-8. Go's %q is NOT equivalent: it emits
// \t, \xNN and \uNNNN escapes the format does not define, so a trace
// name or fault label containing such bytes would render as malformed
// exposition text.
var promLabelValue = strings.NewReplacer(
	`\`, `\\`,
	`"`, `\"`,
	"\n", `\n`,
)

// promLabels renders a label set as {k="v",...} (empty for none) with
// values escaped for the exposition format.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := sortedKeys(labels)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(k))
		b.WriteString(`="`)
		promLabelValue.WriteString(&b, labels[k])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as the conventional _bucket/_sum-less
// cumulative form with _count, _min, _max and _mean companions.
func (s Snapshot) WritePrometheus(w io.Writer, labels map[string]string) error {
	lbl := promLabels(labels)
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", n, n, lbl, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", n, n, lbl, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := b.UpperBound
			bl := histLabels(labels, le)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", n, bl, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", n, lbl, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_mean%s %g\n", n, lbl, h.Mean); err != nil {
			return err
		}
	}
	return nil
}

// histLabels merges the shared label set with a le bucket label.
func histLabels(labels map[string]string, le string) string {
	merged := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		merged[k] = v
	}
	merged["le"] = le
	return promLabels(merged)
}

// Format renders the snapshot as a sorted human-readable summary for
// terminal output.
func (s Snapshot) Format() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-44s %d\n", name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&b, "gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-44s %d\n", name, s.Gauges[name])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&b, "histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			fmt.Fprintf(&b, "  %-44s n=%d mean=%.4g min=%.4g max=%.4g\n",
				name, h.Count, h.Mean, h.Min, h.Max)
		}
	}
	return b.String()
}
