package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Span is one recorded occupancy on a simulated resource: a die
// sense, a channel transfer, an ECC decode. Times are sim-time
// nanoseconds. It generalizes the Fig. 7/8 Gantt span recording to
// every run.
type Span struct {
	Resource string   `json:"resource"` // "die0", "ch3", "ecc-ch3"
	Label    string   `json:"label"`    // command tag: "A", "B'", "W"
	Start    sim.Time `json:"start_ns"`
	End      sim.Time `json:"end_ns"`
}

// Tracer records spans into a bounded ring buffer. When the buffer
// fills, the oldest spans are overwritten and Dropped counts them, so
// long runs trace the tail of execution at a fixed memory cost. A nil
// Tracer discards spans.
type Tracer struct {
	mu      sync.Mutex
	ring    []Span
	next    int
	full    bool
	dropped int64
}

// DefaultTracerSpans is the default ring capacity: enough for a few
// thousand requests' worth of die/channel/ECC occupancies.
const DefaultTracerSpans = 1 << 16

// NewTracer returns a tracer with the given ring capacity (values < 1
// select DefaultTracerSpans).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultTracerSpans
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Span records one occupancy. Zero-length spans are kept: an
// instantaneous event still marks the timeline.
func (t *Tracer) Span(resource, label string, start, end sim.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.ring[t.next] = Span{Resource: resource, Label: label, Start: start, End: end}
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Len reports how many spans are currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns the buffered spans ordered by (start, resource).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []Span
	if t.full {
		out = make([]Span, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append([]Span(nil), t.ring[:t.next]...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" complete events for spans, ph "M" metadata for thread names.
// Timestamps are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// resourceCategory buckets a resource name for trace coloring.
func resourceCategory(resource string) string {
	switch {
	case len(resource) >= 3 && resource[:3] == "die":
		return "nand"
	case len(resource) >= 4 && resource[:4] == "ecc-":
		return "ecc"
	case len(resource) >= 2 && resource[:2] == "ch":
		return "channel"
	}
	return "sim"
}

// WriteChromeTrace serializes the buffered spans as Chrome
// trace_event JSON, loadable in Perfetto or chrome://tracing. Each
// resource becomes one named thread under a single "ssd" process;
// spans become complete ("X") events with microsecond timestamps.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()

	// Stable resource -> tid mapping, sorted so the track order is
	// deterministic (dies, then channels, then ECC engines by name).
	tids := map[string]int{}
	var resources []string
	for _, sp := range spans {
		if _, ok := tids[sp.Resource]; !ok {
			tids[sp.Resource] = 0
			resources = append(resources, sp.Resource)
		}
	}
	sort.Strings(resources)
	for i, r := range resources {
		tids[r] = i + 1
	}

	events := make([]chromeEvent, 0, len(spans)+len(resources)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "ssd"},
	})
	for _, r := range resources {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tids[r],
			Args: map[string]any{"name": r},
		})
	}
	for _, sp := range spans {
		name := sp.Label
		if name == "" {
			name = sp.Resource
		}
		dur := (sp.End - sp.Start).Microseconds()
		events = append(events, chromeEvent{
			Name: name,
			Cat:  resourceCategory(sp.Resource),
			Ph:   "X",
			Ts:   sp.Start.Microseconds(),
			Dur:  &dur,
			PID:  1,
			TID:  tids[sp.Resource],
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ns"}); err != nil {
		return fmt.Errorf("obs: chrome trace encode: %w", err)
	}
	return nil
}
