// Package trace generates and replays block-level I/O workloads. The
// built-in specs reproduce Table II of the RiF paper: the eight
// AliCloud/Systor traces' read ratios and cold-read ratios, the two
// properties that determine read-retry pressure (cold reads carry
// month-scale retention ages and thus high RBER).
package trace

import (
	"fmt"

	"repro/internal/sim"
)

// Op is a request direction.
type Op uint8

// Request operations.
const (
	Read Op = iota
	Write
)

// String names the op in trace files.
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Request is one block I/O request in units of 16-KiB logical pages.
type Request struct {
	At    sim.Time // arrival (0 in closed-loop use)
	Op    Op
	LPN   int64 // first logical page
	Pages int   // length in pages
}

// Spec statistically describes one workload (a Table II row plus the
// shape parameters the paper's text implies).
type Spec struct {
	// Name is the paper's trace name.
	Name string
	// ReadRatio is the fraction of requests that are reads.
	ReadRatio float64
	// ColdReadRatio is the fraction of reads that target pages never
	// updated during the run (long retention, high retry pressure).
	ColdReadRatio float64
	// FootprintPages is the logical space the workload touches.
	FootprintPages int64
	// HotFraction is the share of the footprint that is written (and
	// hot-read); the rest is the cold, read-only region.
	HotFraction float64
	// MeanReqPages is the mean read-request length in pages. Reads in
	// these cloud block traces are larger than writes (scans,
	// prefetching); writes are sized at WriteSizeRatio of this mean.
	MeanReqPages float64
	// WriteSizeRatio scales the mean write size relative to
	// MeanReqPages.
	WriteSizeRatio float64
	// MaxAgeDays bounds the initial retention age of cold data (the
	// refresh horizon; the paper assumes monthly refresh).
	MaxAgeDays float64
	// MinAgeDays is the youngest cold data.
	MinAgeDays float64
}

// Validate reports an error for out-of-range parameters.
func (s Spec) Validate() error {
	switch {
	case s.ReadRatio < 0 || s.ReadRatio > 1:
		return fmt.Errorf("trace %q: read ratio %v", s.Name, s.ReadRatio)
	case s.ColdReadRatio < 0 || s.ColdReadRatio > 1:
		return fmt.Errorf("trace %q: cold read ratio %v", s.Name, s.ColdReadRatio)
	case s.FootprintPages <= 0:
		return fmt.Errorf("trace %q: footprint %d", s.Name, s.FootprintPages)
	case s.HotFraction <= 0 || s.HotFraction >= 1:
		return fmt.Errorf("trace %q: hot fraction %v", s.Name, s.HotFraction)
	case s.MeanReqPages < 1:
		return fmt.Errorf("trace %q: mean request pages %v", s.Name, s.MeanReqPages)
	case s.WriteSizeRatio <= 0 || s.WriteSizeRatio > 1:
		return fmt.Errorf("trace %q: write size ratio %v", s.Name, s.WriteSizeRatio)
	case s.MaxAgeDays < s.MinAgeDays || s.MinAgeDays < 0:
		return fmt.Errorf("trace %q: age range [%v, %v]", s.Name, s.MinAgeDays, s.MaxAgeDays)
	}
	return nil
}

// defaults shared by the Table II specs.
func tableIISpec(name string, readRatio, coldRatio float64) Spec {
	return Spec{
		Name:           name,
		ReadRatio:      readRatio,
		ColdReadRatio:  coldRatio,
		FootprintPages: 1 << 20, // 16 GiB at 16 KiB/page
		HotFraction:    0.2,
		MeanReqPages:   5,    // 80-KiB mean read
		WriteSizeRatio: 0.45, // ~36-KiB mean write
		MinAgeDays:     1,
		MaxAgeDays:     30,
	}
}

// TableII returns the eight workload specs with the paper's read and
// cold-read ratios (Table II).
func TableII() []Spec {
	return []Spec{
		tableIISpec("Ali2", 0.27, 0.50),
		tableIISpec("Ali46", 0.34, 0.75),
		tableIISpec("Ali81", 0.43, 0.74),
		tableIISpec("Ali121", 0.92, 0.70),
		tableIISpec("Ali124", 0.96, 0.79),
		tableIISpec("Ali295", 0.42, 0.73),
		tableIISpec("Sys0", 0.70, 0.82),
		tableIISpec("Sys1", 0.72, 0.83),
	}
}

// ByName returns the Table II spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range TableII() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("trace: unknown workload %q", name)
}

// Names lists the Table II workload names in paper order.
func Names() []string {
	specs := TableII()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
