package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

const msrSample = `128166372003061629,web0,0,Read,1048576,32768,1221
128166372013061629,web0,0,Write,2097152,16384,800
128166372023061629,web0,1,Read,0,4096,90
128166372033061629,web0,0,Read,1064960,16384,500
`

func TestReadMSRBasics(t *testing.T) {
	reqs, err := ReadMSR(strings.NewReader(msrSample), 16*1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("%d requests (disk filter), want 3", len(reqs))
	}
	// First request: offset 1 MiB = page 64, 32 KiB = 2 pages, t=0.
	r := reqs[0]
	if r.Op != Read || r.LPN != 64 || r.Pages != 2 || r.At != 0 {
		t.Fatalf("first request %+v", r)
	}
	// Second: write at 2 MiB = page 128, 1 page, 1 s later
	// (1e7 filetime ticks = 1 s).
	w := reqs[1]
	if w.Op != Write || w.LPN != 128 || w.Pages != 1 {
		t.Fatalf("second request %+v", w)
	}
	if w.At != sim.Second {
		t.Fatalf("second arrival %v, want 1s", w.At)
	}
}

func TestReadMSRAllDisks(t *testing.T) {
	reqs, err := ReadMSR(strings.NewReader(msrSample), 16*1024, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatalf("%d requests without filter", len(reqs))
	}
}

func TestReadMSRPartialPages(t *testing.T) {
	// A 4-KiB read not aligned to 16-KiB pages still touches one page.
	in := "100,web,0,Read,1000,4096,1\n"
	reqs, err := ReadMSR(strings.NewReader(in), 16*1024, -1)
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].Pages != 1 || reqs[0].LPN != 0 {
		t.Fatalf("%+v", reqs[0])
	}
	// A request straddling a page boundary touches two.
	in = "100,web,0,Read,16000,1000,1\n"
	reqs, _ = ReadMSR(strings.NewReader(in), 16*1024, -1)
	if reqs[0].Pages != 2 {
		t.Fatalf("straddling request pages = %d", reqs[0].Pages)
	}
}

func TestReadMSRRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"x,web,0,Read,0,4096,1",  // bad timestamp
		"1,web,z,Read,0,4096,1",  // bad disk
		"1,web,0,Frob,0,4096,1",  // bad type
		"1,web,0,Read,-5,4096,1", // negative offset
		"1,web,0,Read,0,0,1",     // zero size
		"1,web,0,Read,0",         // too few fields
	} {
		if _, err := ReadMSR(strings.NewReader(in), 16*1024, -1); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
	if _, err := ReadMSR(strings.NewReader(""), 0, -1); err == nil {
		t.Error("accepted zero page size")
	}
}

func TestCompactRemapsDense(t *testing.T) {
	reqs := []Request{
		{Op: Read, LPN: 1 << 40, Pages: 4},
		{Op: Read, LPN: 1 << 50, Pages: 2},
		{Op: Read, LPN: 1 << 40, Pages: 4}, // repeat: same mapping
	}
	out := Compact(reqs, 1000)
	if out[0].LPN != 0 || out[1].LPN != 4 {
		t.Fatalf("remap: %+v", out)
	}
	if out[2].LPN != out[0].LPN {
		t.Fatal("repeated address mapped differently")
	}
	for _, r := range out {
		if r.LPN+int64(r.Pages) > 1000 {
			t.Fatalf("request %+v outside footprint", r)
		}
	}
}

func TestCompactNoopWithoutFootprint(t *testing.T) {
	reqs := []Request{{Op: Read, LPN: 12345, Pages: 1}}
	out := Compact(reqs, 0)
	if out[0].LPN != 12345 {
		t.Fatal("compact modified stream without footprint")
	}
}
