package trace

import (
	"math"

	"repro/internal/sim"
)

// Generator draws an endless request stream matching a Spec. It is a
// deterministic function of (spec, seed). The logical address space is
// laid out as [cold region | hot region]: writes and hot reads stay in
// the hot region, so the cold region is never updated — exactly the
// paper's definition of cold reads.
type Generator struct {
	spec Spec
	rng  *sim.RNG

	coldPages int64 // [0, coldPages) is the cold region
	hotPages  int64 // [coldPages, coldPages+hotPages) is the hot region
}

// NewGenerator builds a generator for the spec.
func NewGenerator(spec Spec, seed uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	hot := int64(float64(spec.FootprintPages) * spec.HotFraction)
	if hot < 1 {
		hot = 1
	}
	cold := spec.FootprintPages - hot
	if cold < 1 {
		cold = 1
	}
	return &Generator{
		spec:      spec,
		rng:       sim.NewRNG(seed, 0xace),
		coldPages: cold,
		hotPages:  hot,
	}, nil
}

// Spec returns the generator's workload description.
func (g *Generator) Spec() Spec { return g.spec }

// Next draws the next request. Arrival times are left zero: the
// closed-loop host driver issues requests as queue slots free up.
func (g *Generator) Next() Request {
	op := Write
	if g.rng.Bernoulli(g.spec.ReadRatio) {
		op = Read
	}
	pages := g.reqPages(op)
	var lpn int64
	if op == Read && g.rng.Bernoulli(g.spec.ColdReadRatio) {
		lpn = g.pick(g.coldPages, pages)
	} else {
		lpn = g.coldPages + g.pick(g.hotPages, pages)
	}
	return Request{Op: op, LPN: lpn, Pages: pages}
}

// reqPages draws a request length with the configured mean: a
// bounded geometric mixture that produces the small-random /
// large-sequential blend of cloud block traces.
func (g *Generator) reqPages(op Op) int {
	// 30% of requests are "large" (4x the mean), 70% small, keeping
	// the overall mean at MeanReqPages.
	mean := g.spec.MeanReqPages
	if op == Write {
		mean *= g.spec.WriteSizeRatio
	}
	small := mean * 0.4
	large := mean * 2.4
	m := small
	if g.rng.Bernoulli(0.3) {
		m = large
	}
	p := int(g.rng.Exponential(m)) + 1
	if p > 16 {
		p = 16 // one multi-plane stripe group cap, like a 256-KiB request
	}
	return p
}

// pick draws an aligned start so the request fits in [0, limit).
func (g *Generator) pick(limit int64, pages int) int64 {
	span := limit - int64(pages)
	if span <= 0 {
		return 0
	}
	// Align to the request size's stripe position so multi-page
	// requests map onto whole multi-plane groups when possible.
	lpn := g.rng.Int64N(span)
	if pages >= 4 {
		lpn &^= 3
	}
	return lpn
}

// InitialAgeDays reports the retention age of a logical page's data
// at simulation start. Cold pages carry ages spread over the refresh
// horizon; hot pages start essentially fresh.
func (g *Generator) InitialAgeDays(lpn int64) float64 {
	if lpn >= g.coldPages {
		return 0.02 // hot data: about half an hour old
	}
	span := g.spec.MaxAgeDays - g.spec.MinAgeDays
	return g.spec.MinAgeDays + span*hashUnit(uint64(lpn)*0x9e3779b97f4a7c15+1)
}

// hashUnit maps a key to a uniform [0,1) value.
func hashUnit(z uint64) float64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// MeasuredMix empirically verifies a generator reproduces its spec:
// it draws n requests and reports the realized read ratio and
// cold-read ratio.
func MeasuredMix(g *Generator, n int) (readRatio, coldReadRatio float64) {
	reads, cold := 0, 0
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Op != Read {
			continue
		}
		reads++
		if r.LPN < g.coldPages {
			cold++
		}
	}
	if n > 0 {
		readRatio = float64(reads) / float64(n)
	}
	if reads > 0 {
		coldReadRatio = float64(cold) / float64(reads)
	}
	return readRatio, coldReadRatio
}

// AgeProfile reports the mean initial age, in days, of the cold
// region sampled at k points — a calibration aid.
func (g *Generator) AgeProfile(k int) float64 {
	if k <= 0 {
		return 0
	}
	total := 0.0
	step := g.coldPages / int64(k)
	if step < 1 {
		step = 1
	}
	n := 0
	for lpn := int64(0); lpn < g.coldPages && n < k; lpn += step {
		total += g.InitialAgeDays(lpn)
		n++
	}
	return total / math.Max(float64(n), 1)
}
