package trace

import (
	"strings"
	"testing"
)

// Fuzz targets for the external-input parsers: they must never panic
// and must only return structurally valid requests.

func FuzzReadCSV(f *testing.F) {
	f.Add("100.5,R,7,2\n")
	f.Add("# comment\n\n1,W,0,1\n")
	f.Add("x,y,z\n")
	f.Add("1,R,9223372036854775807,1\n")
	f.Fuzz(func(t *testing.T, in string) {
		reqs, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, r := range reqs {
			if r.Pages <= 0 || r.LPN < 0 || r.At < 0 {
				t.Fatalf("invalid request accepted: %+v", r)
			}
		}
	})
}

func FuzzReadMSR(f *testing.F) {
	f.Add("128166372003061629,web0,0,Read,1048576,32768,1221\n")
	f.Add("1,h,0,Write,0,1,1\n")
	f.Add(",,,,,\n")
	f.Fuzz(func(t *testing.T, in string) {
		reqs, err := ReadMSR(strings.NewReader(in), 16*1024, -1)
		if err != nil {
			return
		}
		for _, r := range reqs {
			if r.Pages <= 0 || r.LPN < 0 {
				t.Fatalf("invalid request accepted: %+v", r)
			}
		}
	})
}
