package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// drain pulls a stream to EOF.
func drain(t *testing.T, st Stream) []Request {
	t.Helper()
	var out []Request
	for {
		req, err := st.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		out = append(out, req)
	}
}

// TestCSVStreamMatchesReadCSV pins that the incremental parser and the
// slice parser agree on a round-tripped trace.
func TestCSVStreamMatchesReadCSV(t *testing.T) {
	reqs := []Request{
		{At: 0, Op: Read, LPN: 10, Pages: 1},
		{At: 1500, Op: Write, LPN: 20, Pages: 4},
		{At: 99000, Op: Read, LPN: 0, Pages: 2},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	whole, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, NewCSVStream(bytes.NewReader(buf.Bytes())))
	if len(whole) != len(streamed) {
		t.Fatalf("lengths diverge: %d vs %d", len(whole), len(streamed))
	}
	for i := range whole {
		if whole[i] != streamed[i] {
			t.Fatalf("request %d: %+v vs %+v", i, whole[i], streamed[i])
		}
	}
}

// TestCSVWriterStreams pins incremental emission: per-request Write
// plus Flush produces the identical bytes WriteCSV does.
func TestCSVWriterStreams(t *testing.T) {
	reqs := []Request{
		{At: 100, Op: Read, LPN: 1, Pages: 1},
		{At: 2000, Op: Write, LPN: 2, Pages: 8},
	}
	var whole, streamed bytes.Buffer
	if err := WriteCSV(&whole, reqs); err != nil {
		t.Fatal(err)
	}
	cw := NewCSVWriter(&streamed)
	for _, r := range reqs {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if whole.String() != streamed.String() {
		t.Fatalf("streamed bytes diverge:\n%q\nvs\n%q", streamed.String(), whole.String())
	}
}

func TestMSRStreamMatchesReadMSR(t *testing.T) {
	const msr = `128166372003061629,src1,0,Read,8192,16384,1331
128166372004061629,src1,1,Write,0,4096,900
128166372013061629,src1,0,Write,40960,8192,544
128166372023061629,src1,0,Read,0,4096,100
`
	whole, err := ReadMSR(strings.NewReader(msr), 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewMSRStream(strings.NewReader(msr), 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, st)
	if len(whole) != 3 || len(streamed) != 3 {
		t.Fatalf("disk filter: %d whole, %d streamed (want 3)", len(whole), len(streamed))
	}
	for i := range whole {
		if whole[i] != streamed[i] {
			t.Fatalf("request %d: %+v vs %+v", i, whole[i], streamed[i])
		}
	}
}

// TestNewStreamSniffsFormat pins the format auto-detection both ways.
func TestNewStreamSniffsFormat(t *testing.T) {
	csv := "# arrival_us,op,lpn,pages\n0.000,R,5,1\n10.000,W,6,2\n"
	st, err := NewStream(strings.NewReader(csv), 4096, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*CSVStream); !ok {
		t.Fatalf("csv input sniffed as %T", st)
	}
	if got := drain(t, st); len(got) != 2 || got[1].Op != Write {
		t.Fatalf("csv parse through sniffer: %+v", got)
	}

	msr := "128166372003061629,src1,0,Read,8192,16384,1331\n"
	st, err = NewStream(strings.NewReader(msr), 4096, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*MSRStream); !ok {
		t.Fatalf("msr input sniffed as %T", st)
	}
	if got := drain(t, st); len(got) != 1 || got[0].Pages != 4 {
		t.Fatalf("msr parse through sniffer: %+v", got)
	}

	// Empty input is a valid, immediately dry stream.
	st, err = NewStream(strings.NewReader("# comment only\n"), 4096, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, st); len(got) != 0 {
		t.Fatalf("empty trace yielded %d requests", len(got))
	}
}

// TestCompactorMatchesCompact pins the streaming remap against the
// slice transform.
func TestCompactorMatchesCompact(t *testing.T) {
	reqs := []Request{
		{LPN: 1 << 40, Pages: 4},
		{LPN: 1 << 41, Pages: 2},
		{LPN: 1 << 40, Pages: 4},
		{LPN: 7, Pages: 1},
	}
	whole := Compact(reqs, 8)
	c := NewCompactor(8)
	for i, r := range reqs {
		if got := c.Apply(r); got != whole[i] {
			t.Fatalf("request %d: streaming %+v vs slice %+v", i, got, whole[i])
		}
	}
}
