package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// MSRStream incrementally parses block traces in the MSR-Cambridge
// CSV format, the most common public format for production storage
// traces:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is in Windows filetime units (100 ns ticks), Offset and
// Size are bytes, Type is "Read" or "Write". Requests are converted
// to pageBytes logical pages with timestamps rebased so the first
// request arrives at zero; requests on other disks than diskFilter
// are skipped (use -1 for all disks). Each Next call reads one line,
// so arbitrarily long traces replay in constant memory.
type MSRStream struct {
	ls         *lineScanner
	pageBytes  int
	diskFilter int
	base       int64
}

// NewMSRStream wraps r for incremental MSR parsing.
func NewMSRStream(r io.Reader, pageBytes int, diskFilter int) (*MSRStream, error) {
	if pageBytes <= 0 {
		return nil, fmt.Errorf("trace: page bytes %d", pageBytes)
	}
	return &MSRStream{ls: newLineScanner(r), pageBytes: pageBytes, diskFilter: diskFilter, base: -1}, nil
}

// Next returns the next request, or io.EOF at the end of the stream.
func (m *MSRStream) Next() (Request, error) {
	for {
		text, err := m.ls.next()
		if err != nil {
			return Request{}, err
		}
		req, ok, err := m.parseLine(text)
		if err != nil {
			return Request{}, err
		}
		if ok {
			return req, nil
		}
		// Filtered disk: keep scanning.
	}
}

func (m *MSRStream) parseLine(text string) (Request, bool, error) {
	line := m.ls.line
	parts := strings.Split(text, ",")
	if len(parts) < 6 {
		return Request{}, false, fmt.Errorf("trace: msr line %d: %d fields", line, len(parts))
	}
	ts, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil || ts < 0 {
		return Request{}, false, fmt.Errorf("trace: msr line %d: bad timestamp %q", line, parts[0])
	}
	disk, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return Request{}, false, fmt.Errorf("trace: msr line %d: bad disk %q", line, parts[2])
	}
	if m.diskFilter >= 0 && disk != m.diskFilter {
		return Request{}, false, nil
	}
	var op Op
	switch strings.ToLower(strings.TrimSpace(parts[3])) {
	case "read", "r":
		op = Read
	case "write", "w":
		op = Write
	default:
		return Request{}, false, fmt.Errorf("trace: msr line %d: bad type %q", line, parts[3])
	}
	off, err := strconv.ParseInt(strings.TrimSpace(parts[4]), 10, 64)
	if err != nil || off < 0 {
		return Request{}, false, fmt.Errorf("trace: msr line %d: bad offset %q", line, parts[4])
	}
	size, err := strconv.ParseInt(strings.TrimSpace(parts[5]), 10, 64)
	if err != nil || size <= 0 {
		return Request{}, false, fmt.Errorf("trace: msr line %d: bad size %q", line, parts[5])
	}
	if m.base < 0 {
		m.base = ts
	}
	firstPage := off / int64(m.pageBytes)
	lastPage := (off + size - 1) / int64(m.pageBytes)
	return Request{
		// Filetime ticks are 100 ns.
		At:    timeFromTicks(ts - m.base),
		Op:    op,
		LPN:   firstPage,
		Pages: int(lastPage-firstPage) + 1,
	}, true, nil
}

// ReadMSR parses an MSR-format trace into a slice. Long traces should
// prefer NewMSRStream, which never materializes the slice.
func ReadMSR(r io.Reader, pageBytes int, diskFilter int) ([]Request, error) {
	st, err := NewMSRStream(r, pageBytes, diskFilter)
	if err != nil {
		return nil, err
	}
	var out []Request
	for {
		req, err := st.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
}

// timeFromTicks converts 100-ns filetime ticks to simulation time.
func timeFromTicks(ticks int64) sim.Time {
	return sim.Time(ticks) * 100 * sim.Nanosecond
}

// Compactor streams the Compact transform: it rewrites logical
// addresses into a dense space of at most footprintPages while
// preserving the access pattern (same original address maps to the
// same compact pages). Memory is proportional to the trace's unique
// address count (its working set), not its length.
type Compactor struct {
	footprint int64
	remap     map[int64]int64
	next      int64
}

// NewCompactor returns a streaming compactor; footprintPages <= 0
// passes requests through unchanged.
func NewCompactor(footprintPages int64) *Compactor {
	return &Compactor{footprint: footprintPages, remap: make(map[int64]int64)}
}

// Apply remaps one request.
func (c *Compactor) Apply(r Request) Request {
	if c.footprint <= 0 {
		return r
	}
	// Remap each page run start; keep runs contiguous by mapping the
	// first page and extending (wrapping within footprint).
	mapped, ok := c.remap[r.LPN]
	if !ok {
		if c.next+int64(r.Pages) > c.footprint {
			c.next = 0
		}
		mapped = c.next
		c.remap[r.LPN] = mapped
		c.next += int64(r.Pages)
	}
	out := r
	out.LPN = mapped
	if mapped+int64(r.Pages) > c.footprint {
		out.Pages = int(c.footprint - mapped)
		if out.Pages < 1 {
			out.Pages = 1
			out.LPN = 0
		}
	}
	return out
}

// Compact rewrites the request stream's logical addresses into a
// dense space of at most footprintPages, preserving the access
// pattern (same blocks map to the same pages) — real traces address
// terabytes, while experiments size the simulated footprint.
func Compact(reqs []Request, footprintPages int64) []Request {
	if footprintPages <= 0 {
		return reqs
	}
	c := NewCompactor(footprintPages)
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		out[i] = c.Apply(r)
	}
	return out
}

// Stream is the incremental request source the open-loop replay
// engine consumes: Next returns requests in trace order and io.EOF
// when the stream ends. CSVStream and MSRStream implement it.
type Stream interface {
	Next() (Request, error)
}

// NewStream sniffs the trace format of r — the native 4-field CSV or
// the 7-field MSR-Cambridge layout — from its first data line and
// returns the matching incremental parser. pageBytes sizes the MSR
// byte-to-page conversion; diskFilter restricts MSR traces to one
// disk (-1 keeps all).
func NewStream(r io.Reader, pageBytes, diskFilter int) (Stream, error) {
	br := bufio.NewReader(r)
	line, err := peekDataLine(br)
	if err != nil {
		// An empty trace is a valid (immediately dry) CSV stream; real
		// read errors surface on the first Next.
		return NewCSVStream(br), nil
	}
	parts := strings.Split(line, ",")
	if len(parts) >= 6 {
		kind := strings.ToLower(strings.TrimSpace(parts[3]))
		if kind == "read" || kind == "write" || kind == "r" || kind == "w" {
			return NewMSRStream(br, pageBytes, diskFilter)
		}
	}
	return NewCSVStream(br), nil
}

// peekDataLine returns the first non-blank, non-comment line of br
// without consuming it.
func peekDataLine(br *bufio.Reader) (string, error) {
	for peekAt := 0; ; {
		buf, err := br.Peek(1 << 16)
		if len(buf) == 0 {
			if err == nil {
				err = io.EOF
			}
			return "", err
		}
		for peekAt < len(buf) {
			nl := strings.IndexByte(string(buf[peekAt:]), '\n')
			var line string
			if nl < 0 {
				if err == nil && len(buf) == 1<<16 {
					break // line longer than the peek window: re-peek impossible, treat rest as line
				}
				line = string(buf[peekAt:])
				peekAt = len(buf)
			} else {
				line = string(buf[peekAt : peekAt+nl])
				peekAt += nl + 1
			}
			line = strings.TrimSpace(line)
			if line != "" && !strings.HasPrefix(line, "#") {
				return line, nil
			}
			if nl < 0 {
				return "", io.EOF
			}
		}
		return "", fmt.Errorf("trace: cannot sniff format: first data line exceeds %d bytes", 1<<16)
	}
}
