package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ReadMSR parses block traces in the MSR-Cambridge CSV format, the
// most common public format for production storage traces:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is in Windows filetime units (100 ns ticks), Offset and
// Size are bytes, Type is "Read" or "Write". Requests are converted
// to 16-KiB logical pages with timestamps rebased so the first
// request arrives at zero; requests on other disks than diskFilter
// are skipped (use -1 for all disks).
func ReadMSR(r io.Reader, pageBytes int, diskFilter int) ([]Request, error) {
	if pageBytes <= 0 {
		return nil, fmt.Errorf("trace: page bytes %d", pageBytes)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Request
	var base int64 = -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 6 {
			return nil, fmt.Errorf("trace: msr line %d: %d fields", line, len(parts))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil || ts < 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad timestamp %q", line, parts[0])
		}
		disk, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d: bad disk %q", line, parts[2])
		}
		if diskFilter >= 0 && disk != diskFilter {
			continue
		}
		var op Op
		switch strings.ToLower(strings.TrimSpace(parts[3])) {
		case "read", "r":
			op = Read
		case "write", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: msr line %d: bad type %q", line, parts[3])
		}
		off, err := strconv.ParseInt(strings.TrimSpace(parts[4]), 10, 64)
		if err != nil || off < 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad offset %q", line, parts[4])
		}
		size, err := strconv.ParseInt(strings.TrimSpace(parts[5]), 10, 64)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("trace: msr line %d: bad size %q", line, parts[5])
		}
		if base < 0 {
			base = ts
		}
		firstPage := off / int64(pageBytes)
		lastPage := (off + size - 1) / int64(pageBytes)
		out = append(out, Request{
			// Filetime ticks are 100 ns.
			At:    timeFromTicks(ts - base),
			Op:    op,
			LPN:   firstPage,
			Pages: int(lastPage-firstPage) + 1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// timeFromTicks converts 100-ns filetime ticks to simulation time.
func timeFromTicks(ticks int64) sim.Time {
	return sim.Time(ticks) * 100 * sim.Nanosecond
}

// Compact rewrites the request stream's logical addresses into a
// dense space of at most footprintPages, preserving the access
// pattern (same blocks map to the same pages) — real traces address
// terabytes, while experiments size the simulated footprint.
func Compact(reqs []Request, footprintPages int64) []Request {
	if footprintPages <= 0 {
		return reqs
	}
	remap := make(map[int64]int64)
	var next int64
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		// Remap each page run start; keep runs contiguous by mapping
		// the first page and extending (wrapping within footprint).
		mapped, ok := remap[r.LPN]
		if !ok {
			if next+int64(r.Pages) > footprintPages {
				next = 0
			}
			mapped = next
			remap[r.LPN] = mapped
			next += int64(r.Pages)
		}
		out[i] = r
		out[i].LPN = mapped
		if mapped+int64(r.Pages) > footprintPages {
			out[i].Pages = int(footprintPages - mapped)
			if out[i].Pages < 1 {
				out[i].Pages = 1
				out[i].LPN = 0
			}
		}
	}
	return out
}
