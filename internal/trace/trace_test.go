package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableIIMatchesPaper(t *testing.T) {
	want := map[string][2]float64{
		"Ali2": {0.27, 0.50}, "Ali46": {0.34, 0.75}, "Ali81": {0.43, 0.74},
		"Ali121": {0.92, 0.70}, "Ali124": {0.96, 0.79}, "Ali295": {0.42, 0.73},
		"Sys0": {0.70, 0.82}, "Sys1": {0.72, 0.83},
	}
	specs := TableII()
	if len(specs) != 8 {
		t.Fatalf("%d workloads, want 8", len(specs))
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected workload %q", s.Name)
		}
		if s.ReadRatio != w[0] || s.ColdReadRatio != w[1] {
			t.Fatalf("%s: ratios (%v,%v), want (%v,%v)", s.Name, s.ReadRatio, s.ColdReadRatio, w[0], w[1])
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Ali124")
	if err != nil || s.Name != "Ali124" {
		t.Fatalf("ByName: %v %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if len(Names()) != 8 {
		t.Fatal("Names() wrong length")
	}
}

func TestSpecValidation(t *testing.T) {
	base := tableIISpec("x", 0.5, 0.5)
	bad := []func(*Spec){
		func(s *Spec) { s.ReadRatio = 1.5 },
		func(s *Spec) { s.ColdReadRatio = -0.1 },
		func(s *Spec) { s.FootprintPages = 0 },
		func(s *Spec) { s.HotFraction = 1 },
		func(s *Spec) { s.MeanReqPages = 0 },
		func(s *Spec) { s.MinAgeDays = 40 },
	}
	for i, mut := range bad {
		s := base
		mut(&s)
		if s.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGeneratorReproducesRatios(t *testing.T) {
	for _, spec := range TableII() {
		g, err := NewGenerator(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		read, cold := MeasuredMix(g, 50000)
		if math.Abs(read-spec.ReadRatio) > 0.02 {
			t.Errorf("%s: measured read ratio %v, spec %v", spec.Name, read, spec.ReadRatio)
		}
		if math.Abs(cold-spec.ColdReadRatio) > 0.02 {
			t.Errorf("%s: measured cold read ratio %v, spec %v", spec.Name, cold, spec.ColdReadRatio)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	spec, _ := ByName("Sys0")
	a, _ := NewGenerator(spec, 42)
	b, _ := NewGenerator(spec, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c, _ := NewGenerator(spec, 43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds matched %d/1000 draws", same)
	}
}

func TestWritesNeverTouchColdRegion(t *testing.T) {
	// The cold region must stay un-updated or cold reads would not be
	// cold (the paper's definition).
	spec, _ := ByName("Ali2") // most write-heavy
	g, _ := NewGenerator(spec, 7)
	for i := 0; i < 50000; i++ {
		r := g.Next()
		if r.Op == Write && r.LPN < g.coldPages {
			t.Fatalf("write at lpn %d inside cold region [0,%d)", r.LPN, g.coldPages)
		}
		if r.LPN < 0 || r.LPN+int64(r.Pages) > spec.FootprintPages {
			t.Fatalf("request [%d,+%d) outside footprint", r.LPN, r.Pages)
		}
		if r.Pages < 1 || r.Pages > 16 {
			t.Fatalf("request pages = %d", r.Pages)
		}
	}
}

func TestRequestSizeMean(t *testing.T) {
	spec, _ := ByName("Ali124")
	g, _ := NewGenerator(spec, 3)
	total := 0
	const n = 50000
	for i := 0; i < n; i++ {
		total += g.Next().Pages
	}
	mean := float64(total) / n
	if mean < spec.MeanReqPages*0.6 || mean > spec.MeanReqPages*1.4 {
		t.Fatalf("mean request size %v pages, spec %v", mean, spec.MeanReqPages)
	}
}

func TestInitialAges(t *testing.T) {
	spec, _ := ByName("Sys1")
	g, _ := NewGenerator(spec, 1)
	// Cold pages: ages within [min, max], varied.
	seen := map[int]bool{}
	for lpn := int64(0); lpn < 1000; lpn++ {
		age := g.InitialAgeDays(lpn)
		if age < spec.MinAgeDays || age > spec.MaxAgeDays {
			t.Fatalf("cold age %v outside [%v,%v]", age, spec.MinAgeDays, spec.MaxAgeDays)
		}
		seen[int(age)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("cold ages too uniform: %d distinct integer days", len(seen))
	}
	// Hot pages: fresh.
	if age := g.InitialAgeDays(g.coldPages + 5); age > 0.1 {
		t.Fatalf("hot age %v, want ~0", age)
	}
	// Deterministic.
	if g.InitialAgeDays(123) != g.InitialAgeDays(123) {
		t.Fatal("ages not deterministic")
	}
	if mean := g.AgeProfile(1000); mean < 10 || mean > 20 {
		t.Fatalf("mean cold age %v, want ~15.5", mean)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	spec, _ := ByName("Ali81")
	g, _ := NewGenerator(spec, 9)
	var reqs []Request
	for i := 0; i < 500; i++ {
		reqs = append(reqs, g.Next())
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("%d requests after round trip, want %d", len(back), len(reqs))
	}
	for i := range reqs {
		if back[i].Op != reqs[i].Op || back[i].LPN != reqs[i].LPN || back[i].Pages != reqs[i].Pages {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, back[i], reqs[i])
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"1,R,2",     // too few fields
		"x,R,2,3",   // bad time
		"1,Q,2,3",   // bad op
		"1,R,-2,3",  // negative lpn
		"1,R,2,0",   // zero pages
		"-1,R,2,3",  // negative time
		"1,R,two,3", // non-numeric lpn
		"1,R,2,3,4", // too many fields
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestCSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n100.5,R,7,2\n# trailing\n"
	reqs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 1 || reqs[0].LPN != 7 || reqs[0].Pages != 2 {
		t.Fatalf("parsed %+v", reqs)
	}
}

func TestReplayerWrapsAround(t *testing.T) {
	reqs := []Request{
		{Op: Read, LPN: 1, Pages: 1},
		{Op: Write, LPN: 2, Pages: 2},
	}
	r := NewReplayer(reqs, 12)
	for i := 0; i < 5; i++ {
		got := r.Next()
		want := reqs[i%2]
		if got.LPN != want.LPN {
			t.Fatalf("replay %d: %+v", i, got)
		}
	}
	if r.InitialAgeDays(999) != 12 {
		t.Fatal("replayer age wrong")
	}
}

func TestReplayerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty replayer accepted")
		}
	}()
	NewReplayer(nil, 0)
}
