package trace

import (
	"bytes"
	"io"
	"os"
	"testing"

	"repro/internal/sim"
)

// TestMSRSampleParses pins the checked-in MSR-Cambridge sample: the
// canonical 7-field layout (filetime ticks, byte offsets/sizes, mixed
// disks, comments and blank lines) parses to exactly the requests its
// rows describe. The same file is what cmd/rifsim's -replay e2e test
// feeds the open-loop engine, so a format drift fails here first with
// a parsing-level message.
func TestMSRSampleParses(t *testing.T) {
	data, err := os.ReadFile("testdata/msr-sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := ReadMSR(bytes.NewReader(data), 4096, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 24 {
		t.Fatalf("parsed %d requests, want 24", len(reqs))
	}

	// Timestamps rebase to zero and stay monotone at the trace's
	// 150000-tick (15 ms) cadence.
	if reqs[0].At != 0 {
		t.Errorf("first arrival %v, want 0 (rebased)", reqs[0].At)
	}
	if want := 15 * sim.Millisecond; reqs[1].At != want {
		t.Errorf("second arrival %v, want %v", reqs[1].At, want)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].At <= reqs[i-1].At {
			t.Fatalf("arrivals not monotone at row %d: %v then %v", i, reqs[i-1].At, reqs[i].At)
		}
	}

	// Byte-to-page conversion: offset 0 size 4096 is one page; offset
	// 512 size 4096 straddles a page boundary and spans two.
	if reqs[0].Op != Read || reqs[0].LPN != 0 || reqs[0].Pages != 1 {
		t.Errorf("row 1 = %+v, want aligned 1-page read of LPN 0", reqs[0])
	}
	if reqs[1].LPN != 0 || reqs[1].Pages != 2 {
		t.Errorf("row 2 = %+v, want unaligned read spanning pages 0-1", reqs[1])
	}

	reads := 0
	for _, r := range reqs {
		if r.Op == Read {
			reads++
		}
	}
	if reads != 17 || len(reqs)-reads != 7 {
		t.Errorf("op mix %d reads / %d writes, want 17/7", reads, len(reqs)-reads)
	}

	// Disk filtering keeps only the requested spindle.
	for filter, want := range map[int]int{0: 18, 1: 6} {
		got, err := ReadMSR(bytes.NewReader(data), 4096, filter)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != want {
			t.Errorf("disk %d: %d requests, want %d", filter, len(got), want)
		}
	}
}

// TestMSRSampleSniffedByNewStream pins format auto-detection: the
// sample must be recognized as MSR (not native CSV) and stream the
// same requests ReadMSR materializes — the path `rifsim -replay`
// actually takes.
func TestMSRSampleSniffedByNewStream(t *testing.T) {
	f, err := os.Open("testdata/msr-sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := NewStream(f, 4096, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*MSRStream); !ok {
		t.Fatalf("sniffed as %T, want *MSRStream", st)
	}
	var streamed []Request
	for {
		r, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, r)
	}

	data, err := os.ReadFile("testdata/msr-sample.csv")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReadMSR(bytes.NewReader(data), 4096, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d requests, materialized %d", len(streamed), len(want))
	}
	for i := range want {
		if streamed[i] != want[i] {
			t.Fatalf("request %d: streamed %+v, materialized %+v", i, streamed[i], want[i])
		}
	}
}
