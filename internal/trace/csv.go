package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// CSVWriter streams requests in the simple text format, one per line:
//
//	<arrival_us>,<R|W>,<lpn>,<pages>
//
// so synthesized workloads can be archived and replayed, and real
// block traces can be converted into it. Memory is constant in the
// trace length; call Flush once at the end.
type CSVWriter struct {
	bw     *bufio.Writer
	header bool
}

// NewCSVWriter wraps w for streaming emission.
func NewCSVWriter(w io.Writer) *CSVWriter {
	return &CSVWriter{bw: bufio.NewWriter(w)}
}

// Write emits one request (the header line precedes the first).
func (c *CSVWriter) Write(r Request) error {
	if !c.header {
		c.header = true
		if _, err := fmt.Fprintln(c.bw, "# arrival_us,op,lpn,pages"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(c.bw, "%.3f,%s,%d,%d\n",
		r.At.Microseconds(), r.Op, r.LPN, r.Pages)
	return err
}

// Flush drains the buffered output.
func (c *CSVWriter) Flush() error { return c.bw.Flush() }

// WriteCSV emits a recorded request slice through a CSVWriter (the
// streaming path for callers that never materialize a slice).
func WriteCSV(w io.Writer, reqs []Request) error {
	cw := NewCSVWriter(w)
	for _, r := range reqs {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	if !cw.header {
		// An empty trace still gets its header so the file round-trips.
		if _, err := fmt.Fprintln(cw.bw, "# arrival_us,op,lpn,pages"); err != nil {
			return err
		}
	}
	return cw.Flush()
}

// lineScanner is the shared incremental line reader of the trace
// parsers: it skips blanks and '#' comments and tracks line numbers
// for error messages. Memory is one line buffer regardless of trace
// length.
type lineScanner struct {
	sc   *bufio.Scanner
	line int
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &lineScanner{sc: sc}
}

// next returns the next non-blank, non-comment line, or io.EOF.
func (l *lineScanner) next() (string, error) {
	for l.sc.Scan() {
		l.line++
		text := strings.TrimSpace(l.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		return text, nil
	}
	if err := l.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// CSVStream incrementally parses the WriteCSV format: each Next call
// reads one line, so arbitrarily long traces replay in constant
// memory (no whole-trace slice).
type CSVStream struct {
	ls *lineScanner
}

// NewCSVStream wraps r for incremental parsing.
func NewCSVStream(r io.Reader) *CSVStream {
	return &CSVStream{ls: newLineScanner(r)}
}

// Next returns the next request, or io.EOF at the end of the stream.
func (c *CSVStream) Next() (Request, error) {
	text, err := c.ls.next()
	if err != nil {
		return Request{}, err
	}
	return parseCSVLine(text, c.ls.line)
}

func parseCSVLine(text string, line int) (Request, error) {
	parts := strings.Split(text, ",")
	if len(parts) != 4 {
		return Request{}, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(parts))
	}
	us, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil || us < 0 {
		return Request{}, fmt.Errorf("trace: line %d: bad arrival %q", line, parts[0])
	}
	var op Op
	switch strings.TrimSpace(parts[1]) {
	case "R", "r":
		op = Read
	case "W", "w":
		op = Write
	default:
		return Request{}, fmt.Errorf("trace: line %d: bad op %q", line, parts[1])
	}
	lpn, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
	if err != nil || lpn < 0 {
		return Request{}, fmt.Errorf("trace: line %d: bad lpn %q", line, parts[2])
	}
	pages, err := strconv.Atoi(strings.TrimSpace(parts[3]))
	if err != nil || pages <= 0 {
		return Request{}, fmt.Errorf("trace: line %d: bad pages %q", line, parts[3])
	}
	return Request{
		At:    sim.Time(us * float64(sim.Microsecond)),
		Op:    op,
		LPN:   lpn,
		Pages: pages,
	}, nil
}

// ReadCSV parses the WriteCSV format into a slice. Blank lines and
// lines starting with '#' are skipped. Long traces should prefer
// NewCSVStream, which never materializes the slice.
func ReadCSV(r io.Reader) ([]Request, error) {
	var out []Request
	st := NewCSVStream(r)
	for {
		req, err := st.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
}

// Replayer adapts a recorded request slice to the generator
// interface: Next returns requests in order and wraps around, so a
// short trace can drive an arbitrarily long closed-loop run.
type Replayer struct {
	reqs []Request
	next int
	// AgeDays is the initial retention age assigned to every logical
	// page (replayed traces carry no retention metadata).
	AgeDays float64
}

// NewReplayer wraps recorded requests. It panics on an empty slice:
// an empty trace cannot drive a run.
func NewReplayer(reqs []Request, ageDays float64) *Replayer {
	if len(reqs) == 0 {
		panic("trace: replaying empty trace")
	}
	return &Replayer{reqs: reqs, AgeDays: ageDays}
}

// Next returns the next recorded request, wrapping at the end.
func (r *Replayer) Next() Request {
	req := r.reqs[r.next]
	r.next = (r.next + 1) % len(r.reqs)
	return req
}

// InitialAgeDays reports the configured uniform initial age.
func (r *Replayer) InitialAgeDays(int64) float64 { return r.AgeDays }
