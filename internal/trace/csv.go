package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// WriteCSV emits requests in a simple text format, one per line:
//
//	<arrival_us>,<R|W>,<lpn>,<pages>
//
// so synthesized workloads can be archived and replayed, and real
// block traces can be converted into it.
func WriteCSV(w io.Writer, reqs []Request) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# arrival_us,op,lpn,pages"); err != nil {
		return err
	}
	for _, r := range reqs {
		if _, err := fmt.Fprintf(bw, "%.3f,%s,%d,%d\n",
			r.At.Microseconds(), r.Op, r.LPN, r.Pages); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format. Blank lines and lines starting
// with '#' are skipped.
func ReadCSV(r io.Reader) ([]Request, error) {
	var out []Request
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", line, len(parts))
		}
		us, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil || us < 0 {
			return nil, fmt.Errorf("trace: line %d: bad arrival %q", line, parts[0])
		}
		var op Op
		switch strings.TrimSpace(parts[1]) {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", line, parts[1])
		}
		lpn, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
		if err != nil || lpn < 0 {
			return nil, fmt.Errorf("trace: line %d: bad lpn %q", line, parts[2])
		}
		pages, err := strconv.Atoi(strings.TrimSpace(parts[3]))
		if err != nil || pages <= 0 {
			return nil, fmt.Errorf("trace: line %d: bad pages %q", line, parts[3])
		}
		out = append(out, Request{
			At:    sim.Time(us * float64(sim.Microsecond)),
			Op:    op,
			LPN:   lpn,
			Pages: pages,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Replayer adapts a recorded request slice to the generator
// interface: Next returns requests in order and wraps around, so a
// short trace can drive an arbitrarily long closed-loop run.
type Replayer struct {
	reqs []Request
	next int
	// AgeDays is the initial retention age assigned to every logical
	// page (replayed traces carry no retention metadata).
	AgeDays float64
}

// NewReplayer wraps recorded requests. It panics on an empty slice:
// an empty trace cannot drive a run.
func NewReplayer(reqs []Request, ageDays float64) *Replayer {
	if len(reqs) == 0 {
		panic("trace: replaying empty trace")
	}
	return &Replayer{reqs: reqs, AgeDays: ageDays}
}

// Next returns the next recorded request, wrapping at the end.
func (r *Replayer) Next() Request {
	req := r.reqs[r.next]
	r.next = (r.next + 1) % len(r.reqs)
	return req
}

// InitialAgeDays reports the configured uniform initial age.
func (r *Replayer) InitialAgeDays(int64) float64 { return r.AgeDays }
