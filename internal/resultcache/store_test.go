package resultcache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faults"
)

func testEntry() Entry {
	return Entry{
		Report: []byte("Figure 7: p99 read latency\nrif beats baseline\n"),
		Runs:   []byte(`{"runs":[{"scheme":"rif","wall_time_s": 0.25}]}`),
		Cells:  3,
	}
}

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func openTestStore(t *testing.T, dir string, opts StoreOptions) *Store {
	t.Helper()
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreRoundTripAndReopen pins the durability contract: a stored
// entry reads back byte-identical, both from the store that wrote it
// and from a fresh store opened on the same directory — the restart
// shape.
func TestStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	k, e := testKey(1), testEntry()
	if err := s.Put(k, e); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store) {
		t.Helper()
		got, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get = (%v, %v); want hit", ok, err)
		}
		if !bytes.Equal(got.Report, e.Report) || !bytes.Equal(got.Runs, e.Runs) || got.Cells != e.Cells {
			t.Fatalf("entry mutated across storage: %+v vs %+v", got, e)
		}
	}
	check(s)
	check(openTestStore(t, dir, StoreOptions{}))

	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != k {
		t.Fatalf("Keys = %v; want exactly %s", keys, k)
	}

	if _, ok, err := s.Get(testKey(2)); ok || err != nil {
		t.Fatalf("absent key Get = (%v, %v); want clean miss", ok, err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v; want 1 put, 1 hit, 1 miss", st)
	}
}

// TestStoreSweepsTempFiles pins crash hygiene: a temp file left by a
// crashed write is removed on open and never becomes a visible key.
func TestStoreSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, testKey(3).String()+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openTestStore(t, dir, StoreOptions{})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived open (stat err %v)", err)
	}
	if keys, _ := s.Keys(); len(keys) != 0 {
		t.Fatalf("temp file became a key: %v", keys)
	}
}

// TestStoreQuarantinesCorruptEntries pins the verified-read contract:
// a flipped byte anywhere in a stored file makes its Get report a
// wrapped ErrCorrupt, renames the file aside, and leaves the key
// reading as a clean miss — corrupt bytes are never served, and never
// re-served.
func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	// Flip one byte at several offsets: header magic, length fields,
	// digest, payload.
	for _, offset := range []int{0, 9, 20, 40, storeHeaderSize + 5} {
		dir := t.TempDir()
		s := openTestStore(t, dir, StoreOptions{})
		k := testKey(4)
		if err := s.Put(k, testEntry()); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, k.String())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[offset] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		_, ok, err := s.Get(k)
		if ok || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("offset %d: Get = (%v, %v); want quarantined ErrCorrupt", offset, ok, err)
		}
		if _, err := os.Stat(path + quarantineSuffix); err != nil {
			t.Fatalf("offset %d: no quarantine file: %v", offset, err)
		}
		if _, ok, err := s.Get(k); ok || err != nil {
			t.Fatalf("offset %d: post-quarantine Get = (%v, %v); want clean miss", offset, ok, err)
		}
		st := s.Stats()
		if st.VerifyFailures != 1 || st.Quarantined != 1 {
			t.Fatalf("offset %d: stats %+v; want 1 verify failure, 1 quarantined", offset, st)
		}
	}
}

// TestStoreTruncationDetected pins that a torn file (the crash shape)
// fails verification at every truncation point.
func TestStoreTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{})
	k := testKey(5)
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.String())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, storeHeaderSize - 1, storeHeaderSize, len(data) - 1} {
		if _, err := decodeEntry(data[:n]); err == nil {
			t.Errorf("decodeEntry accepted a %d/%d-byte prefix", n, len(data))
		}
	}
	if _, err := decodeEntry(append(append([]byte{}, data...), 'x')); err == nil {
		t.Error("decodeEntry accepted trailing garbage")
	}
}

// TestStoreInjectedWriteError pins the ENOSPC class: Put fails with
// the injected errno and leaves no visible entry and no temp litter.
func TestStoreInjectedWriteError(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{
		Faults: faults.NewStorage(faults.StorageConfig{WriteErrorRate: 1}, 1),
	})
	k := testKey(6)
	if err := s.Put(k, testEntry()); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under certain write faults: %v; want ENOSPC", err)
	}
	if names, _ := os.ReadDir(dir); len(names) != 0 {
		t.Fatalf("failed Put left files: %v", names)
	}
	if st := s.Stats(); st.PutErrors != 1 {
		t.Fatalf("stats %+v; want 1 put error", st)
	}
}

// TestStoreInjectedSyncError pins the fsync class: Put reports the
// failure (the write was never durable) and removes the temp file.
func TestStoreInjectedSyncError(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{
		Faults: faults.NewStorage(faults.StorageConfig{SyncErrorRate: 1}, 1),
	})
	if err := s.Put(testKey(7), testEntry()); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Put under certain sync faults: %v; want EIO", err)
	}
	if names, _ := os.ReadDir(dir); len(names) != 0 {
		t.Fatalf("failed Put left files: %v", names)
	}
}

// TestStoreInjectedTornWrite pins the power-cut class end to end: the
// torn Put "succeeds", but the read path refuses the file, quarantines
// it, and the key reads as a miss — the injected fault proves the
// verification that catches the organic one.
func TestStoreInjectedTornWrite(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{
		Faults: faults.NewStorage(faults.StorageConfig{TornWriteRate: 1}, 1),
	})
	k := testKey(8)
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatalf("torn write must report success (the crash shape): %v", err)
	}
	_, ok, err := s.Get(k)
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get of torn entry = (%v, %v); want quarantined ErrCorrupt", ok, err)
	}
	if _, ok, err := s.Get(k); ok || err != nil {
		t.Fatalf("post-quarantine Get = (%v, %v); want clean miss", ok, err)
	}
}

// TestStoreInjectedBitRot pins the rot-at-rest class: a verified read
// path turns one flipped bit into a quarantine, never into served
// bytes.
func TestStoreInjectedBitRot(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{
		Faults: faults.NewStorage(faults.StorageConfig{BitRotRate: 1}, 1),
	})
	k := testKey(9)
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	_, ok, err := s.Get(k)
	if ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get under certain bit rot = (%v, %v); want quarantined ErrCorrupt", ok, err)
	}
}

// TestStoreInjectedSlowIO pins the stall class: the injected delay is
// serviced through the Sleep hook and counted, and the operation still
// succeeds.
func TestStoreInjectedSlowIO(t *testing.T) {
	dir := t.TempDir()
	var stalls []time.Duration
	s := openTestStore(t, dir, StoreOptions{
		Faults: faults.NewStorage(faults.StorageConfig{SlowIORate: 1, SlowIODelayMS: 3}, 1),
		Sleep:  func(d time.Duration) { stalls = append(stalls, d) },
	})
	k := testKey(10)
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k); !ok || err != nil {
		t.Fatalf("Get under slow io = (%v, %v); want hit", ok, err)
	}
	if len(stalls) != 2 || stalls[0] != 3*time.Millisecond {
		t.Fatalf("stalls %v; want one 3ms stall per operation", stalls)
	}
	if st := s.Stats(); st.SlowIO != 2 {
		t.Fatalf("stats %+v; want 2 slow-io observations", st)
	}
}

// TestStoreNil pins the nil-store contract the serving layer leans on.
func TestStoreNil(t *testing.T) {
	var s *Store
	if err := s.Put(testKey(11), testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(testKey(11)); ok || err != nil {
		t.Fatalf("nil store Get = (%v, %v)", ok, err)
	}
	if keys, err := s.Keys(); keys != nil || err != nil {
		t.Fatalf("nil store Keys = (%v, %v)", keys, err)
	}
	if s.Dir() != "" || s.Stats() != (StoreStats{}) {
		t.Fatal("nil store reported state")
	}
}

// TestStoreRejectsImplausibleLengths pins the allocation guard: a
// corrupted length field reads as corruption, not as a multi-gigabyte
// allocation.
func TestStoreRejectsImplausibleLengths(t *testing.T) {
	data := encodeEntry(testEntry())
	// Overwrite reportLen (offset 16) with an absurd value.
	for i := 16; i < 24; i++ {
		data[i] = 0xff
	}
	_, err := decodeEntry(data)
	if err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("decodeEntry = %v; want implausible-length rejection", err)
	}
}
