package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faults"
)

// The disk tier: content-addressed entry files under one directory,
// named by the same SHA-256 key the memory cache uses, so a completed
// job's artifacts survive the process that computed them. The write
// discipline is the classic atomic trio — temp file, fsync, rename,
// fsync the directory — and every read is verified by re-hashing the
// payload against the digest stored in the header; an entry that fails
// verification (torn write, bit rot, truncation) is quarantined in
// place and reported as a miss, never served.

// storeMagic opens every entry file; storeVersion is the on-disk
// format generation (bump on layout change, old entries then read as
// corrupt and are quarantined rather than misdecoded).
var storeMagic = [8]byte{'R', 'I', 'F', 'S', 'T', 'O', 'R', 'E'}

const storeVersion = 1

// storeHeaderSize is the fixed prefix of an entry file: magic,
// version, cells, report length, runs length, payload SHA-256.
const storeHeaderSize = 8 + 4 + 4 + 8 + 8 + sha256.Size

// maxEntryPayload bounds a decoded entry's claimed payload so a
// corrupted length field cannot drive a multi-gigabyte allocation.
const maxEntryPayload = 1 << 31

// quarantineSuffix marks an entry file that failed verification; the
// rename keeps the evidence for post-mortems while removing the key
// from the served namespace.
const quarantineSuffix = ".quarantine"

// tmpSuffix marks an in-progress write; a crash can leave one behind
// and OpenStore sweeps them (they were never renamed, so they were
// never visible).
const tmpSuffix = ".tmp"

// ErrCorrupt reports an entry that failed on-read verification and
// was quarantined.
var ErrCorrupt = errors.New("resultcache: corrupt store entry")

// StoreStats is a point-in-time snapshot of the disk tier's health
// counters.
type StoreStats struct {
	// Puts/PutErrors count entry writes attempted and failed.
	Puts, PutErrors int64
	// Hits/Misses count verified reads and absent keys; ReadErrors
	// counts I/O failures on present files.
	Hits, Misses, ReadErrors int64
	// VerifyFailures counts entries that failed re-hashing;
	// Quarantined counts the subset successfully renamed aside.
	VerifyFailures, Quarantined int64
	// SlowIO counts injected device stalls observed.
	SlowIO int64
}

// Store is the disk tier: a directory of content-addressed entry
// files. All operations are concurrency-safe behind one mutex (writes
// are rare — one per computed job — and reads are small). A nil *Store
// is valid and holds nothing, so callers can wire it unconditionally.
type Store struct {
	dir   string
	inj   *faults.StorageInjector
	sleep func(time.Duration)

	mu    sync.Mutex
	stats StoreStats
}

// StoreOptions configures the optional fault-injection and stall
// plumbing of a Store.
type StoreOptions struct {
	// Faults, when non-nil, injects storage failures into every
	// operation (see faults.StorageConfig).
	Faults *faults.StorageInjector
	// Sleep services injected slow-I/O stalls; nil drops them (the
	// decision is still counted). Production callers pass time.Sleep;
	// tests pass a recorder.
	Sleep func(time.Duration)
}

// OpenStore opens (creating if needed) the disk tier rooted at dir and
// sweeps temp files a previous crash may have left behind.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: open store: %w", err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*"+tmpSuffix))
	if err != nil {
		return nil, fmt.Errorf("resultcache: open store: %w", err)
	}
	for _, tmp := range leftovers {
		if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("resultcache: sweep %s: %w", tmp, err)
		}
	}
	return &Store{dir: dir, inj: opts.Faults, sleep: opts.Sleep}, nil
}

// Dir reports the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats snapshots the store's counters (zero value for a nil store).
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// stall services one injected slow-I/O decision. Called with the
// mutex held, so the draw order is the operation order.
func (s *Store) stall() {
	d := s.inj.SlowIO()
	if d <= 0 {
		return
	}
	s.stats.SlowIO++
	if s.sleep != nil {
		s.sleep(d)
	}
}

// path returns the entry file for a key.
func (s *Store) path(k Key) string { return filepath.Join(s.dir, k.String()) }

// Put durably stores e under k: encode, write to a temp file, fsync,
// rename over the final name, fsync the directory. A failure before
// the rename leaves no visible entry (the temp file is removed
// best-effort); a directory-sync failure after the rename can leave
// the entry visible — its bytes are complete and verified on read,
// only its durability across a crash is unpromised, which is why the
// error is still returned and counted so the caller degrades
// conservatively. The store itself never panics and never exposes a
// partially written key, except through the injected torn-write
// fault, whose whole purpose is to prove the read path refuses such a
// file.
func (s *Store) Put(k Key, e Entry) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	s.stall()
	if s.inj.WriteError() {
		s.stats.PutErrors++
		return faults.ErrInjectedWrite
	}
	data := encodeEntry(e)
	if torn, frac := s.inj.TornWrite(); torn {
		// Expose the crash shape: a prefix lands, the write "succeeds".
		n := int(frac * float64(len(data)))
		if n < 1 {
			n = 1
		}
		if n >= len(data) {
			n = len(data) - 1
		}
		data = data[:n]
	}
	tmp := s.path(k) + tmpSuffix
	err := s.writeDurable(tmp, data)
	if err == nil {
		err = os.Rename(tmp, s.path(k))
	}
	if err == nil {
		err = syncDir(s.dir)
	}
	if err != nil {
		if rmErr := os.Remove(tmp); rmErr != nil && !os.IsNotExist(rmErr) {
			err = fmt.Errorf("%w (and removing temp: %v)", err, rmErr)
		}
		s.stats.PutErrors++
		return err
	}
	return nil
}

// writeDurable writes data to path and fsyncs it, closing the file in
// every branch and reporting the first failure.
func (s *Store) writeDurable(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("resultcache: store write: %w", err)
	}
	_, err = f.Write(data)
	if err == nil {
		if s.inj.SyncError() {
			err = faults.ErrInjectedSync
		} else {
			err = f.Sync()
		}
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("resultcache: store write %s: %w", filepath.Base(path), err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("resultcache: sync dir: %w", err)
	}
	err = d.Sync()
	if closeErr := d.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("resultcache: sync dir: %w", err)
	}
	return nil
}

// Get returns the entry stored under k after re-hash verification.
// A verified entry returns (e, true, nil); an absent key returns
// (zero, false, nil); an entry that fails verification is quarantined
// and returns (zero, false, error wrapping ErrCorrupt) — callers treat
// every error as a miss and count it, so corrupt bytes are never
// served.
func (s *Store) Get(k Key) (Entry, bool, error) {
	if s == nil {
		return Entry{}, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stall()
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		if os.IsNotExist(err) {
			s.stats.Misses++
			return Entry{}, false, nil
		}
		s.stats.ReadErrors++
		return Entry{}, false, fmt.Errorf("resultcache: store read: %w", err)
	}
	if idx, rot := s.inj.BitRot(len(data)); rot {
		data[idx] ^= 1 << (idx % 8)
	}
	e, err := decodeEntry(data)
	if err != nil {
		s.stats.VerifyFailures++
		return Entry{}, false, s.quarantine(k, err)
	}
	s.stats.Hits++
	return e, true, nil
}

// quarantine renames a failed entry aside so the key reads as absent
// from now on, folding any rename failure into the returned error.
func (s *Store) quarantine(k Key, cause error) error {
	err := fmt.Errorf("resultcache: entry %s: %w: %w", k.String()[:12], ErrCorrupt, cause)
	if rnErr := os.Rename(s.path(k), s.path(k)+quarantineSuffix); rnErr != nil {
		return fmt.Errorf("%w (quarantine failed: %v)", err, rnErr)
	}
	s.stats.Quarantined++
	return err
}

// Keys scans the store directory and returns every well-named entry
// key (quarantined and temp files excluded). Used to rebuild the
// serving index after a restart; the entries themselves are verified
// lazily on first Get.
func (s *Store) Keys() ([]Key, error) {
	if s == nil {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("resultcache: store scan: %w", err)
	}
	var keys []Key
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || len(name) != 2*sha256.Size {
			continue
		}
		raw, err := hex.DecodeString(name)
		if err != nil {
			continue
		}
		var k Key
		copy(k[:], raw)
		keys = append(keys, k)
	}
	return keys, nil
}

// encodeEntry renders an entry to its on-disk form: fixed header
// (magic, version, cells, payload lengths, payload SHA-256) followed
// by the report and runs bytes verbatim.
func encodeEntry(e Entry) []byte {
	buf := make([]byte, 0, storeHeaderSize+len(e.Report)+len(e.Runs))
	buf = append(buf, storeMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, storeVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(e.Cells))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(e.Report)))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(e.Runs)))
	h := sha256.New()
	//riflint:allow droppederr -- hash.Hash.Write never returns an error by contract
	h.Write(e.Report)
	//riflint:allow droppederr -- hash.Hash.Write never returns an error by contract
	h.Write(e.Runs)
	buf = h.Sum(buf)
	buf = append(buf, e.Report...)
	buf = append(buf, e.Runs...)
	return buf
}

// decodeEntry parses and verifies one entry file's bytes, failing on
// any header mismatch, truncation, trailing garbage, or payload
// digest mismatch.
func decodeEntry(data []byte) (Entry, error) {
	if len(data) < storeHeaderSize {
		return Entry{}, fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != storeMagic {
		return Entry{}, errors.New("bad magic")
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != storeVersion {
		return Entry{}, fmt.Errorf("unsupported version %d", v)
	}
	cells := binary.BigEndian.Uint32(data[12:16])
	reportLen := binary.BigEndian.Uint64(data[16:24])
	runsLen := binary.BigEndian.Uint64(data[24:32])
	if reportLen > maxEntryPayload || runsLen > maxEntryPayload {
		return Entry{}, fmt.Errorf("implausible payload lengths %d/%d", reportLen, runsLen)
	}
	var digest [sha256.Size]byte
	copy(digest[:], data[32:32+sha256.Size])
	payload := data[storeHeaderSize:]
	if uint64(len(payload)) != reportLen+runsLen {
		return Entry{}, fmt.Errorf("payload is %d bytes, header claims %d", len(payload), reportLen+runsLen)
	}
	if sha256.Sum256(payload) != digest {
		return Entry{}, errors.New("payload digest mismatch")
	}
	return Entry{
		Report: payload[:reportLen:reportLen],
		Runs:   payload[reportLen:],
		Cells:  int(cells),
	}, nil
}
