package resultcache

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// goldenKeys pins the content address of (experiment,
// DefaultRunParams) for every valid experiment at SchemaVersion 1.
// These constants are the cross-restart half of the key invariant: a
// recompiled, restarted, or different-host process must mint the very
// same addresses, or a persisted store written by one server life
// would be unreachable (or worse, mis-addressed) in the next. If a
// deliberate change to the simulator's output or to the canonical
// encoding moves these values, bump SchemaVersion and regenerate the
// table — never hand-patch a single row.
var goldenKeys = map[string]string{
	"6":                  "d46814f715aa29a75807f2a4a9052388394710628715312677400d886df6048d",
	"7":                  "8da8d2bb11d3b5b7841095e95a1f0b506bd3cc490fb9c9c142b2036452c741c8",
	"8":                  "6f9b8b4c48e5d6e4fdbde95e6b7e34dc87ab25000d9c484d688f9e4f9de1f6fc",
	"17":                 "12ea44193bffc4920aec38c7f8805299e5c3fb7a5bf1075af0d577f4c66674ea",
	"18":                 "e45fb50a5a1e042558d7b57c260b89b635567869262d3d96645d926f61e854d7",
	"19":                 "de321f24385f8dd8a9c85681bdb54fb9c59e8d9892942b42bdef290e1b4a995a",
	"overhead":           "f556f88a063636ff6c829dc51e0dd2c8a3ccc379009c89dca07ccab838ee3f54",
	"ablate-chunk":       "e5c2e1c1790963f89f6f0cf822f01591abedec7b570f7ad79854cc07cdcd7037",
	"ablate-buffer":      "23db6a19a6a2c2592351aca26058229340f2f721ca3fe459cf45780bef261482",
	"ablate-accuracy":    "a81386a96fd1f2e9df2ccd1f4fd54dbae3495e667c8ba1b44410bd86af8239c7",
	"ablate-scheduling":  "2395e1e46c1e8198af066e62281f953cab841853c2ca92af63f49371df0c6073",
	"ablate-secondcheck": "0663331a490fa68175474bd9ad23be4fbb43d427bc83085727cca66bf17b2a23",
	"refresh":            "f766361d72d8685134f6ceeeb61f1a5a4778f1ea01d88666c5eb14c1440b0a7d",
	"tenants":            "d028e224809ffc405cd0438587e72df97c7a5704d85eafd6a5e95b20614fa896",
	"chaos":              "bb19fdcac7ba60b04e75e1a7a4717ae9327ff96bd7aa5e8f59b5763359d413d8",
	"tailsweep":          "5a784b11118735dc3aed5fbfd8444008fbc2855564c7718da99be15012633d5d",
}

// TestGoldenKeysCoverEveryExperiment keeps the table and the
// experiment registry in lockstep.
func TestGoldenKeysCoverEveryExperiment(t *testing.T) {
	exps := core.ValidExperiments()
	if len(goldenKeys) != len(exps) {
		t.Errorf("golden table has %d rows, registry has %d experiments", len(goldenKeys), len(exps))
	}
	for _, exp := range exps {
		if _, ok := goldenKeys[exp]; !ok {
			t.Errorf("experiment %q has no golden key", exp)
		}
	}
}

// TestKeyGoldenPerExperiment pins each default-params address to its
// golden value — the restart-invariance property made executable.
func TestKeyGoldenPerExperiment(t *testing.T) {
	k := NewKeyer()
	for _, exp := range core.ValidExperiments() {
		if got := k.Key(exp, core.DefaultRunParams()).String(); got != goldenKeys[exp] {
			t.Errorf("key(%s) = %s, golden %s — if the encoding or simulator output changed on purpose, bump SchemaVersion and regenerate",
				exp, got, goldenKeys[exp])
		}
	}
}

// TestKeyInvariantAcrossMapOrderAndKeyers is the property half: the
// address must not depend on evaluation order, on which Keyer instance
// computes it, or on the goroutine doing the computing. The experiment
// set is iterated through a Go map — whose order varies per run by
// construction — from several goroutines with private Keyers, and
// every computed key must equal the golden table.
func TestKeyInvariantAcrossMapOrderAndKeyers(t *testing.T) {
	// A map iteration reorders experiments differently on every run;
	// each goroutine sees its own order.
	set := map[string]bool{}
	for _, exp := range core.ValidExperiments() {
		set[exp] = true
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := NewKeyer() // Keyers are single-goroutine; one each
			for round := 0; round < 8; round++ {
				for exp := range set {
					if got := k.Key(exp, core.DefaultRunParams()).String(); got != goldenKeys[exp] {
						select {
						case errs <- exp + ": " + got:
						default:
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("order-dependent key: %s", e)
	}
}
