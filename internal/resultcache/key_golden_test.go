package resultcache

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// goldenKeys pins the content address of (experiment,
// DefaultRunParams) for every valid experiment at SchemaVersion 2.
// These constants are the cross-restart half of the key invariant: a
// recompiled, restarted, or different-host process must mint the very
// same addresses, or a persisted store written by one server life
// would be unreachable (or worse, mis-addressed) in the next. If a
// deliberate change to the simulator's output or to the canonical
// encoding moves these values, bump SchemaVersion and regenerate the
// table — never hand-patch a single row.
var goldenKeys = map[string]string{
	"6":                  "6e5d2d15bfcdd2bbd2bb53cee3b845ca7997e85e1308258805b4b32affb530a9",
	"7":                  "2462b5353bff8f34436c13e4f7018d272341fc25d2b26c86657cfc9bad104336",
	"8":                  "58c7c8df3beb6b79d123c330c5f242f8d761eb014bcf3c747a8345e6e6be9fcb",
	"17":                 "04457d6b67c532da419b4b5340c1f88c1bebe19efdcb6b029c07a362d71e8531",
	"18":                 "c968cc27916cc9529130cf8ea5196b0c0f8a27fa67a48e8a79c56328069005ca",
	"19":                 "4e04563cfd396aa482ce17e34d2c98546cedbd6bea3a3c128b62c71f32b9e539",
	"overhead":           "2fce1d3d6dc8f7f2300c351d69a5545464168f222e891ee13cd2d2397e543f5b",
	"ablate-chunk":       "9935a48c0be21ec02da9829e4cdf1d0d4c614370ee0464db979245b0298de610",
	"ablate-buffer":      "6796b14ab21f010e0b06083c82e8943c5afd01a29923d0e0900819321b1aee4f",
	"ablate-accuracy":    "71c5f62116430f223735e3ab938173dcfd2657bce0bf9a36bc4aa3d3769f2057",
	"ablate-scheduling":  "b59f58d678fb735a4c74ef162b7c586070be567078414f0940eefeedbd3b59a7",
	"ablate-secondcheck": "0d1cf3fce1b0a5f8a6ebd45c851c6b25a8b02916ca40ef132d5dfcf57a61f4dd",
	"refresh":            "cf8e33cf7f22c8807e34ef27c1c5d4d23f51be4ce96957d2c6ad7ddce5c3fd35",
	"tenants":            "7607e7142360abaf815bd0da789b830d70b56eafb98930a3cb26839236fa0b26",
	"chaos":              "9267acd827a62ad482f2d4f1556e835a5d6ace3ca8711a3b7b444db0611974d6",
	"tailsweep":          "72810d3c1e8441664b01cd0076a128c2ee5a426fd4ccec3975530c387d452556",
	"agesweep":           "a82ae609eff055fdf199f76c41ed04b228f26a6b3f2a86faf0f8a7cfd1c106b8",
}

// TestGoldenKeysCoverEveryExperiment keeps the table and the
// experiment registry in lockstep.
func TestGoldenKeysCoverEveryExperiment(t *testing.T) {
	exps := core.ValidExperiments()
	if len(goldenKeys) != len(exps) {
		t.Errorf("golden table has %d rows, registry has %d experiments", len(goldenKeys), len(exps))
	}
	for _, exp := range exps {
		if _, ok := goldenKeys[exp]; !ok {
			t.Errorf("experiment %q has no golden key", exp)
		}
	}
}

// TestKeyGoldenPerExperiment pins each default-params address to its
// golden value — the restart-invariance property made executable.
func TestKeyGoldenPerExperiment(t *testing.T) {
	k := NewKeyer()
	for _, exp := range core.ValidExperiments() {
		if got := k.Key(exp, core.DefaultRunParams()).String(); got != goldenKeys[exp] {
			t.Errorf("key(%s) = %s, golden %s — if the encoding or simulator output changed on purpose, bump SchemaVersion and regenerate",
				exp, got, goldenKeys[exp])
		}
	}
}

// TestKeyInvariantAcrossMapOrderAndKeyers is the property half: the
// address must not depend on evaluation order, on which Keyer instance
// computes it, or on the goroutine doing the computing. The experiment
// set is iterated through a Go map — whose order varies per run by
// construction — from several goroutines with private Keyers, and
// every computed key must equal the golden table.
func TestKeyInvariantAcrossMapOrderAndKeyers(t *testing.T) {
	// A map iteration reorders experiments differently on every run;
	// each goroutine sees its own order.
	set := map[string]bool{}
	for _, exp := range core.ValidExperiments() {
		set[exp] = true
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k := NewKeyer() // Keyers are single-goroutine; one each
			for round := 0; round < 8; round++ {
				for exp := range set {
					if got := k.Key(exp, core.DefaultRunParams()).String(); got != goldenKeys[exp] {
						select {
						case errs <- exp + ": " + got:
						default:
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("order-dependent key: %s", e)
	}
}
