package resultcache

import (
	"bytes"
	"fmt"
	"testing"
)

// keyOf fabricates a distinct content address for cache tests.
func keyOf(i int) Key {
	var k Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	return k
}

func entryOf(i, size int) Entry {
	return Entry{Report: bytes.Repeat([]byte{byte(i)}, size), Cells: i}
}

func TestCacheHitReturnsStoredBytes(t *testing.T) {
	c := New(1 << 20)
	e := Entry{Report: []byte("report"), Runs: []byte(`{"runs":[]}`), Cells: 3}
	c.Put(keyOf(1), e)
	got, ok := c.Get(keyOf(1))
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got.Report, e.Report) || !bytes.Equal(got.Runs, e.Runs) || got.Cells != 3 {
		t.Fatalf("got %+v, want %+v", got, e)
	}
	if _, ok := c.Get(keyOf(2)); ok {
		t.Fatal("hit on a never-stored key")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestCacheEvictsLRUByBytes fills the cache past its byte budget and
// checks the least-recently-used entries go first — including that a
// Get refreshes recency.
func TestCacheEvictsLRUByBytes(t *testing.T) {
	const sz = 1024
	// Budget for exactly 3 entries of sz payload + overhead.
	c := New(3 * (sz + entryOverhead))
	for i := 1; i <= 3; i++ {
		c.Put(keyOf(i), entryOf(i, sz))
	}
	// Touch 1 so 2 is now the LRU.
	if _, ok := c.Get(keyOf(1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	c.Put(keyOf(4), entryOf(4, sz))
	if _, ok := c.Get(keyOf(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, i := range []int{1, 3, 4} {
		if _, ok := c.Get(keyOf(i)); !ok {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.Bytes > s.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d", s.Bytes, s.MaxBytes)
	}
}

func TestCacheOversizedEntryNotStored(t *testing.T) {
	c := New(1024)
	c.Put(keyOf(1), entryOf(1, 4096))
	if _, ok := c.Get(keyOf(1)); ok {
		t.Fatal("entry larger than the whole budget was stored")
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("len = %d", got)
	}
}

func TestCacheReplaceAdjustsBytes(t *testing.T) {
	c := New(1 << 20)
	c.Put(keyOf(1), entryOf(1, 100))
	before := c.Stats().Bytes
	c.Put(keyOf(1), entryOf(1, 300))
	s := c.Stats()
	if s.Entries != 1 {
		t.Fatalf("entries = %d after replace", s.Entries)
	}
	if want := before + 200; s.Bytes != want {
		t.Fatalf("bytes = %d after replace, want %d", s.Bytes, want)
	}
}

func TestCacheDisabledStoresNothing(t *testing.T) {
	c := New(0)
	c.Put(keyOf(1), entryOf(1, 1))
	if _, ok := c.Get(keyOf(1)); ok {
		t.Fatal("disabled cache served a hit")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := New(64 << 10)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				k := keyOf(g*1000 + i%10)
				c.Put(k, entryOf(i, 128))
				c.Get(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	s := c.Stats()
	if s.Bytes > s.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d after concurrent churn", s.Bytes, s.MaxBytes)
	}
}

func TestKeyStringDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		s := keyOf(i).String()
		if seen[s] {
			t.Fatalf("duplicate key string %s", s)
		}
		seen[s] = true
	}
	if want := fmt.Sprintf("%064x", 0); len(keyOf(0).String()) != len(want) {
		t.Fatalf("key string length %d", len(keyOf(0).String()))
	}
}
