package resultcache

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/nand"
	"repro/internal/ssd"
)

// TestKeyStructFieldCountsPinned guards the canonical encoding against
// silent drift: appendConfig and Keyer.Key enumerate struct fields by
// hand, so any field added to (or removed from) the encoded types must
// fail here until the encoder is updated and SchemaVersion is bumped.
func TestKeyStructFieldCountsPinned(t *testing.T) {
	pins := []struct {
		name   string
		typ    reflect.Type
		fields int
	}{
		{"core.RunParams", reflect.TypeOf(core.RunParams{}), 13},
		{"ssd.Config", reflect.TypeOf(ssd.Config{}), 25},
		{"ssd.Timing", reflect.TypeOf(ssd.Timing{}), 6},
		{"nand.Geometry", reflect.TypeOf(nand.Geometry{}), 6},
		{"nand.ModelParams", reflect.TypeOf(nand.ModelParams{}), 12},
		{"faults.Config", reflect.TypeOf(faults.Config{}), 7},
	}
	for _, p := range pins {
		if got := p.typ.NumField(); got != p.fields {
			t.Errorf("%s has %d fields, encoder assumes %d: update the canonical encoding in key.go and bump SchemaVersion",
				p.name, got, p.fields)
		}
	}
}

func TestKeyDeterministicAcrossKeyers(t *testing.T) {
	p := core.DefaultRunParams()
	a := NewKeyer().Key("chaos", p)
	b := NewKeyer().Key("chaos", p)
	if a != b {
		t.Fatalf("same inputs, different keys: %s vs %s", a, b)
	}
	if len(a.String()) != 64 {
		t.Fatalf("key hex = %q", a.String())
	}
}

// TestKeySensitivity checks that every semantic input moves the
// address and every plumbing input does not.
func TestKeySensitivity(t *testing.T) {
	base := core.DefaultRunParams()
	k := NewKeyer()
	ref := k.Key("chaos", base)

	mutations := []struct {
		name string
		exp  string
		mut  func(p *core.RunParams)
	}{
		{"experiment", "tailsweep", func(p *core.RunParams) {}},
		{"requests", "chaos", func(p *core.RunParams) { p.Requests++ }},
		{"seed", "chaos", func(p *core.RunParams) { p.Seed++ }},
		{"footprint", "chaos", func(p *core.RunParams) { p.FootprintPages *= 2 }},
		{"shrink", "chaos", func(p *core.RunParams) { p.Shrink = !p.Shrink }},
		{"faults", "chaos", func(p *core.RunParams) { p.Faults.TransientSenseRate = 0.01 }},
	}
	for _, m := range mutations {
		p := base
		m.mut(&p)
		if got := k.Key(m.exp, p); got == ref {
			t.Errorf("%s: key unchanged by a semantic input", m.name)
		}
	}

	invariants := []struct {
		name string
		mut  func(p *core.RunParams)
	}{
		{"workers", func(p *core.RunParams) { p.Workers = 7 }},
		{"stop", func(p *core.RunParams) { p.Stop = func() bool { return false } }},
		{"tool", func(p *core.RunParams) { p.Tool = "other" }},
		{"experiment-label", func(p *core.RunParams) { p.Experiment = "other" }},
	}
	for _, m := range invariants {
		p := base
		m.mut(&p)
		if got := k.Key("chaos", p); got != ref {
			t.Errorf("%s: key moved by output-invariant plumbing", m.name)
		}
	}
}

// TestKeyZeroAllocSteadyState is the runtime half of the
// //riflint:hotpath annotation on Keyer.Key: after the first call
// warms the encoding buffer, computing a content address allocates
// nothing.
func TestKeyZeroAllocSteadyState(t *testing.T) {
	k := NewKeyer()
	p := core.DefaultRunParams()
	p.Faults.StuckBlockRate = 1e-4
	k.Key("tailsweep", p) // warm the buffer
	allocs := testing.AllocsPerRun(100, func() {
		_ = k.Key("tailsweep", p)
	})
	if allocs != 0 {
		t.Fatalf("Keyer.Key allocates %.1f times per call in steady state; want 0", allocs)
	}
}

func BenchmarkKeyerKey(b *testing.B) {
	k := NewKeyer()
	p := core.DefaultRunParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.Key("chaos", p)
	}
}
