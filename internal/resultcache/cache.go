package resultcache

import (
	"container/list"
	"sync"
)

// entryOverhead approximates the fixed per-entry bookkeeping cost
// (map slot, list element, key copy, slice headers) charged against
// the byte budget on top of the stored artifact bytes, so a cache
// full of tiny entries cannot balloon past its bound on overhead
// alone.
const entryOverhead = 256

// Entry is one completed job's cached artifacts: both are stored and
// replayed verbatim, which is what makes a hit byte-identical to the
// run that populated it (re-rendering would reorder the manifest's
// decoded config keys).
type Entry struct {
	// Report is the rendered text report.
	Report []byte
	// Runs is the manifest-collection JSON exactly as obs.WriteJSON
	// rendered it.
	Runs []byte
	// Cells is the number of runs the collection holds, so a hit can
	// report grid size without re-parsing Runs.
	Cells int
}

// size is the entry's charge against the cache's byte budget.
func (e Entry) size() int64 {
	return int64(len(e.Report)) + int64(len(e.Runs)) + entryOverhead
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes, MaxBytes         int64
}

// Cache is a bounded, concurrency-safe LRU keyed by content address.
// The bound is bytes, not entries: a handful of huge grid manifests
// and thousands of small ones are both held to the same budget,
// evicting least-recently-used entries as needed. An entry larger
// than the whole budget is simply not cached.
type Cache struct {
	mu        sync.Mutex
	max       int64
	bytes     int64
	ll        *list.List // front = most recently used
	items     map[Key]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// lruItem is what each list element stores.
type lruItem struct {
	key   Key
	entry Entry
}

// New returns a cache bounded to maxBytes of stored artifacts
// (plus fixed per-entry overhead). maxBytes <= 0 yields a cache that
// stores nothing — the disabled configuration — while still counting
// misses, so callers need no nil checks.
func New(maxBytes int64) *Cache {
	return &Cache{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
	}
}

// Get returns the entry stored under k, marking it most recently
// used. The returned slices are shared with the cache: callers must
// treat them as read-only (rifserve only ever writes them to
// responses).
func (c *Cache) Get(k Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// Put stores e under k, evicting least-recently-used entries until the
// byte budget holds. Storing under an existing key replaces the entry.
// Entries that cannot fit even an empty cache are dropped silently:
// the job still ran, it just will not be served from memory.
func (c *Cache) Put(k Key, e Entry) {
	sz := e.size()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sz > c.max {
		return
	}
	if el, ok := c.items[k]; ok {
		it := el.Value.(*lruItem)
		c.bytes += sz - it.entry.size()
		it.entry = e
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&lruItem{key: k, entry: e})
		c.bytes += sz
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		it := back.Value.(*lruItem)
		c.ll.Remove(back)
		delete(c.items, it.key)
		c.bytes -= it.entry.size()
		c.evictions++
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats snapshots the cache's counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.items),
		Bytes:     c.bytes,
		MaxBytes:  c.max,
	}
}
