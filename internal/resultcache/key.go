// Package resultcache gives rifserve its content-addressed memory:
// because every run in this repository is a pure function of
// (experiment, configuration, seed) — the worker-invariance pins prove
// it — a completed job's artifacts can be served verbatim to any later
// submission of the same configuration. The package supplies the two
// halves of that bargain: Keyer canonicalizes the *complete* effective
// run configuration (the experiment name, the semantic RunParams
// fields, and the fully derived ssd.Config with every default folded
// in) into a deterministic byte string and hashes it to a SHA-256
// content address, and Cache is the bounded LRU (by bytes) that maps
// those addresses to stored artifacts.
//
// Two deliberate exclusions keep the address honest:
//
//   - Worker count, scheduler pool and all host-side plumbing
//     (Stop/Obs/Trace/Collect hooks) are NOT encoded: they never
//     affect output bytes, so configs differing only there must
//     collide on purpose.
//   - SchemaVersion IS encoded: bumping it invalidates every address
//     at once, which is how a code change that alters simulation
//     output (or this encoding) ships without ever serving stale
//     bytes.
package resultcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ssd"
)

// SchemaVersion names the current (simulator output, canonical
// encoding) generation and is folded into every Key. Bump it whenever
// either changes meaning: when simulation output for a fixed config
// changes, or when a field is added to (or removed from) the encoded
// structs — the reflection guard in key_test.go fails on the latter
// until both the encoder and this constant move together.
const SchemaVersion = 2

// Key is a SHA-256 content address of one canonicalized run
// configuration.
type Key [sha256.Size]byte

// String renders the address as lowercase hex, the form logs and
// tests use.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Keyer computes content addresses. It owns a reusable encoding
// buffer, so a Keyer is single-goroutine (the serving layer guards its
// one Keyer with the submit lock); steady-state Key calls do not
// allocate — the pin in key_test.go measures exactly that.
type Keyer struct {
	buf []byte
}

// NewKeyer returns a Keyer with a warm buffer sized for the full
// canonical encoding.
func NewKeyer() *Keyer {
	return &Keyer{buf: make([]byte, 0, 512)}
}

// Key canonicalizes (experiment, params) and returns its content
// address. Every semantic input is encoded — including the complete
// derived ssd.Config, so a change to ssd.DefaultConfig's values moves
// every address — while worker counts and host-side hooks are
// deliberately left out (they cannot affect output bytes). One call
// per job submission: the cache-hit fast path.
//
//riflint:hotpath
func (k *Keyer) Key(experiment string, p core.RunParams) Key {
	b := k.buf[:0]
	b = appendU64(b, SchemaVersion)
	b = appendStr(b, experiment)

	// RunParams semantic fields (Workers, Stop, Pool, Obs, Trace,
	// Collect, Tool excluded: output-invariant plumbing). Experiment is
	// the argument above; p.Experiment is a manifest label the serving
	// layer derives from it.
	b = appendU64(b, uint64(int64(p.Requests)))
	b = appendU64(b, p.Seed)
	b = appendU64(b, uint64(p.FootprintPages))
	b = appendBool(b, p.Shrink)

	// The fully derived device config. The (scheme, pe) arguments are
	// placeholders — experiments sweep them per cell — but everything
	// else BuildConfig folds in (paper geometry, timings, NAND physics,
	// fault plan, controller knobs, shrink overrides) is a real input
	// to the output bytes.
	b = appendConfig(b, p.BuildConfig(ssd.Zero, 0))

	k.buf = b
	return sha256.Sum256(b)
}

// appendConfig encodes every semantic ssd.Config field in declaration
// order. Pointer-valued plumbing (LatencySketch, Obs, Trace) is
// skipped: those fields never alter simulation results. The reflection
// guard in key_test.go pins the struct's field count so a new field
// cannot be added without revisiting this function.
func appendConfig(b []byte, c ssd.Config) []byte {
	g := c.Geometry
	b = appendU64(b, uint64(int64(g.Channels)))
	b = appendU64(b, uint64(int64(g.DiesPerChan)))
	b = appendU64(b, uint64(int64(g.PlanesPerDie)))
	b = appendU64(b, uint64(int64(g.BlocksPerPlane)))
	b = appendU64(b, uint64(int64(g.PagesPerBlock)))
	b = appendU64(b, uint64(int64(g.PageBytes)))

	t := c.Timing
	b = appendU64(b, uint64(int64(t.TR)))
	b = appendU64(b, uint64(int64(t.TProg)))
	b = appendU64(b, uint64(int64(t.TErase)))
	b = appendU64(b, uint64(int64(t.TDMAPage)))
	b = appendU64(b, uint64(int64(t.TPred)))
	b = appendU64(b, uint64(int64(t.THostPage)))

	b = appendU64(b, uint64(int64(c.Scheme)))
	b = appendU64(b, uint64(int64(c.PECycles)))
	b = appendU64(b, c.Seed)
	b = appendU64(b, uint64(int64(c.QueueDepth)))
	b = appendU64(b, uint64(int64(c.ECCBufferSlots)))
	b = appendF64(b, c.SentinelExtraReadProb)
	b = appendU64(b, uint64(int64(c.MaxRetryRounds)))
	b = appendU64(b, uint64(int64(c.RetryBackoff)))
	b = appendU64(b, uint64(c.ReadReclaimThreshold))
	b = appendFaults(b, c.Faults)
	b = appendU64(b, uint64(int64(c.GCFreeBlockLow)))
	b = appendU64(b, uint64(int64(c.WriteCachePages)))
	b = appendF64(b, c.PredictionFloor)
	b = appendBool(b, c.RiFSecondCheck)
	b = appendBool(b, c.OpenLoop)
	b = appendU64(b, uint64(int64(c.MaxInFlight)))
	b = appendU64(b, uint64(int64(c.DiePolicy)))
	b = appendU64(b, uint64(int64(c.ResumePenalty)))
	b = appendBool(b, c.RecordSpans)

	n := c.NANDParams
	b = appendF64(b, n.StateGap)
	b = appendF64(b, n.SigmaFresh)
	b = appendF64(b, n.RetentionShift)
	b = appendF64(b, n.RetentionWiden)
	b = appendF64(b, n.PEWiden)
	b = appendF64(b, n.PEShiftBoost)
	b = appendF64(b, n.DisturbShift)
	b = appendF64(b, n.DisturbWiden)
	b = appendF64(b, n.DisturbExp)
	b = appendF64(b, n.BlockVarSigma)
	b = appendF64(b, n.ChunkVar4K)
	b = appendF64(b, n.TrackedResidual)
	return b
}

// appendFaults encodes a fault plan in declaration order.
func appendFaults(b []byte, f faults.Config) []byte {
	b = appendF64(b, f.TransientSenseRate)
	b = appendU64(b, uint64(int64(f.MaxSenseRetries)))
	b = appendF64(b, f.StuckBlockRate)
	b = appendF64(b, f.DieDropoutRate)
	b = appendF64(b, f.ChannelCorruptRate)
	b = appendF64(b, f.MispredictRate)
	b = appendF64(b, f.DecodeTimeoutRate)
	return b
}

// appendU64 appends a big-endian 8-byte integer.
func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v) //riflint:allow alloc -- append into steady-state buffer capacity; the AllocsPerRun pin proves 0
}

// appendF64 appends a float's IEEE-754 bits, so every distinct value
// (including signed zero and NaN payloads) encodes distinctly.
func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

// appendBool appends one byte.
func appendBool(b []byte, v bool) []byte {
	x := byte(0)
	if v {
		x = 1
	}
	return append(b, x) //riflint:allow alloc -- append into steady-state buffer capacity; the AllocsPerRun pin proves 0
}

// appendStr appends a length-prefixed string, keeping the overall
// encoding prefix-unambiguous.
func appendStr(b []byte, s string) []byte {
	b = appendU64(b, uint64(len(s)))
	return append(b, s...) //riflint:allow alloc -- append into steady-state buffer capacity; the AllocsPerRun pin proves 0
}
