// Package fit calibrates the NAND reliability model against
// characterization targets — the workflow the RiF authors followed
// with their 160-chip study, exposed as a tool: given the retention
// day at which pages cross the ECC capability for each P/E count
// (Fig. 4-style data), fit finds model parameters that reproduce it.
//
// The optimizer is a deterministic coordinate descent over the few
// physical knobs that matter (retention shift rate, P/E acceleration,
// P/E widening); the model is smooth and monotone in each, so the
// simple search converges reliably.
package fit

import (
	"fmt"
	"math"

	"repro/internal/nand"
)

// Target is one characterization point: at peCycles, the page
// population first crosses the ECC capability after CrossDays of
// retention (median block, CSB page).
type Target struct {
	PECycles  int
	CrossDays float64
}

// PaperTargets returns the Fig. 4 frontier the default model was
// calibrated to (interpreted as median-block crossings; the onsets
// the paper quotes are the fast tail of the block population).
func PaperTargets() []Target {
	return []Target{
		{PECycles: 0, CrossDays: 17},
		{PECycles: 200, CrossDays: 14},
		{PECycles: 500, CrossDays: 10},
		{PECycles: 1000, CrossDays: 8},
	}
}

// Result reports a calibration outcome.
type Result struct {
	Params nand.ModelParams
	// RMSLE is the root-mean-square log error of the crossing days.
	RMSLE float64
	// Evaluations counts model evaluations spent.
	Evaluations int
}

// Options bound the search.
type Options struct {
	// MaxIterations caps coordinate-descent sweeps (default 40).
	MaxIterations int
	// Seed selects the model's variation streams during fitting.
	Seed uint64
}

// Calibrate fits the retention-related parameters of base so the
// model's median-block CSB crossing days match the targets. Other
// parameters are left untouched.
func Calibrate(base nand.ModelParams, targets []Target, opts Options) (*Result, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("fit: no targets")
	}
	for _, t := range targets {
		if t.CrossDays <= 0 || t.PECycles < 0 {
			return nil, fmt.Errorf("fit: bad target %+v", t)
		}
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 40
	}

	evals := 0
	loss := func(p nand.ModelParams) float64 {
		evals++
		m := nand.NewModel(p, opts.Seed)
		sum := 0.0
		for _, t := range targets {
			d := m.RetentionUntilRetry(0, nand.CSB, t.PECycles, 365)
			if d <= 0 {
				d = 0.01
			}
			e := math.Log(d) - math.Log(t.CrossDays)
			sum += e * e
		}
		return sum / float64(len(targets))
	}

	// Coordinate descent over the three retention knobs with
	// shrinking multiplicative steps.
	type knob struct {
		get func(*nand.ModelParams) *float64
		lo  float64
		hi  float64
	}
	knobs := []knob{
		{func(p *nand.ModelParams) *float64 { return &p.RetentionShift }, 5, 400},
		{func(p *nand.ModelParams) *float64 { return &p.PEShiftBoost }, 0, 5},
		{func(p *nand.ModelParams) *float64 { return &p.PEWiden }, 0, 2},
	}
	cur := base
	curLoss := loss(cur)
	step := 0.25
	for iter := 0; iter < opts.MaxIterations; iter++ {
		improved := false
		for _, k := range knobs {
			for _, dir := range []float64{1 + step, 1 / (1 + step)} {
				cand := cur
				v := k.get(&cand)
				nv := *v * dir
				if *v == 0 {
					nv = step * dir // escape a zero knob
				}
				if nv < k.lo || nv > k.hi {
					continue
				}
				*v = nv
				if l := loss(cand); l < curLoss {
					cur, curLoss = cand, l
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
			if step < 0.005 {
				break
			}
		}
	}
	return &Result{Params: cur, RMSLE: math.Sqrt(curLoss), Evaluations: evals}, nil
}

// CrossingDays reports the fitted model's crossing day for each
// target's P/E count, for side-by-side comparison.
func CrossingDays(p nand.ModelParams, targets []Target, seed uint64) []float64 {
	m := nand.NewModel(p, seed)
	out := make([]float64, len(targets))
	for i, t := range targets {
		out[i] = m.RetentionUntilRetry(0, nand.CSB, t.PECycles, 365)
	}
	return out
}
