package fit

import (
	"math"
	"testing"

	"repro/internal/nand"
)

func TestCalibrateRecoversPerturbedModel(t *testing.T) {
	// Generate targets from a known model, start the search from a
	// perturbed one, and require the fit to recover the crossings.
	truth := nand.DefaultModelParams()
	targets := []Target{}
	m := nand.NewModel(truth, 1)
	for _, pe := range []int{0, 200, 500, 1000} {
		targets = append(targets, Target{
			PECycles:  pe,
			CrossDays: m.RetentionUntilRetry(0, nand.CSB, pe, 365),
		})
	}
	start := truth
	start.RetentionShift *= 2.1
	start.PEShiftBoost *= 0.3
	res, err := Calibrate(start, targets, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSLE > 0.05 {
		t.Fatalf("fit RMSLE = %v, want near-exact recovery", res.RMSLE)
	}
	got := CrossingDays(res.Params, targets, 1)
	for i, t0 := range targets {
		rel := math.Abs(got[i]-t0.CrossDays) / t0.CrossDays
		if rel > 0.1 {
			t.Fatalf("pe=%d: fitted crossing %.2f vs target %.2f", t0.PECycles, got[i], t0.CrossDays)
		}
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations counted")
	}
}

func TestCalibrateToPaperTargets(t *testing.T) {
	// Fitting the paper's Fig. 4 frontier must land within ~25% of
	// every target (the model family can express the shape).
	res, err := Calibrate(nand.DefaultModelParams(), PaperTargets(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := CrossingDays(res.Params, PaperTargets(), 1)
	for i, tgt := range PaperTargets() {
		rel := math.Abs(got[i]-tgt.CrossDays) / tgt.CrossDays
		if rel > 0.25 {
			t.Fatalf("pe=%d: %.1f days vs paper %.1f", tgt.PECycles, got[i], tgt.CrossDays)
		}
	}
	// The fitted model must remain physically sane: monotone
	// crossings in P/E.
	prev := math.Inf(1)
	for _, d := range got {
		if d > prev {
			t.Fatalf("fitted crossings not monotone: %v", got)
		}
		prev = d
	}
}

func TestCalibrateRejectsBadInput(t *testing.T) {
	if _, err := Calibrate(nand.DefaultModelParams(), nil, Options{}); err == nil {
		t.Fatal("empty targets accepted")
	}
	if _, err := Calibrate(nand.DefaultModelParams(), []Target{{PECycles: -1, CrossDays: 5}}, Options{}); err == nil {
		t.Fatal("negative P/E accepted")
	}
	if _, err := Calibrate(nand.DefaultModelParams(), []Target{{PECycles: 0, CrossDays: 0}}, Options{}); err == nil {
		t.Fatal("zero crossing accepted")
	}
}

func TestCalibrateDeterministic(t *testing.T) {
	a, err := Calibrate(nand.DefaultModelParams(), PaperTargets(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Calibrate(nand.DefaultModelParams(), PaperTargets(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.RMSLE != b.RMSLE || a.Params != b.Params {
		t.Fatal("calibration not deterministic")
	}
}
