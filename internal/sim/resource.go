package sim

// Resource models a capacity-limited station (a flash channel, a die,
// an ECC engine slot). Requests are granted FIFO. A grant callback runs
// synchronously when capacity becomes available; the holder must call
// Release exactly once per grant.
type Resource struct {
	eng      *Engine
	name     string
	capacity int
	inUse    int
	waiters  []Handler

	// Busy-time accounting: busySince is valid while inUse > 0.
	busy      Time
	busySince Time
}

// NewResource creates a resource with the given grant capacity.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, name: name, capacity: capacity}
}

// Name reports the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// InUse reports the number of currently held grants.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of waiting acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Idle reports whether nothing holds or waits for the resource.
func (r *Resource) Idle() bool { return r.inUse == 0 && len(r.waiters) == 0 }

// Acquire requests one unit of capacity. If available, fn runs
// immediately; otherwise it is queued FIFO.
func (r *Resource) Acquire(fn Handler) {
	if r.inUse < r.capacity {
		r.grant(fn)
		return
	}
	r.waiters = append(r.waiters, fn)
}

// TryAcquire requests one unit only if immediately available,
// reporting whether the grant happened.
func (r *Resource) TryAcquire(fn Handler) bool {
	if r.inUse < r.capacity {
		r.grant(fn)
		return true
	}
	return false
}

func (r *Resource) grant(fn Handler) {
	if r.inUse == 0 {
		r.busySince = r.eng.Now()
	}
	r.inUse++
	fn()
}

// Release returns one unit of capacity and hands it to the next waiter,
// if any. The waiter's callback runs synchronously.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	r.inUse--
	if r.inUse == 0 {
		r.busy += r.eng.Now() - r.busySince
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.grant(next)
	}
}

// BusyTime reports the cumulative time during which at least one grant
// was held, up to the current clock.
func (r *Resource) BusyTime() Time {
	b := r.busy
	if r.inUse > 0 {
		b += r.eng.Now() - r.busySince
	}
	return b
}

// Use acquires the resource, holds it for d, then releases it. done, if
// non-nil, runs at release time after the release (so a chained stage
// can immediately acquire downstream resources).
func (r *Resource) Use(d Time, done Handler) {
	r.Acquire(func() {
		r.eng.After(d, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}
