package sim

import (
	"math/rand/v2"
	"testing"
)

// The eager-cancel regression suite: Cancel must remove events from
// the heap immediately (so Pending is exact and long-deadline timeouts
// don't pin memory), recycled event structs must not let stale
// EventIDs cancel their successors, and the heap must stay ordered
// under arbitrary interleavings of schedule/cancel.

func TestCancelDropsPendingImmediately(t *testing.T) {
	e := NewEngine()
	var ids []EventID
	for i := Time(1); i <= 8; i++ {
		ids = append(ids, e.At(i*10, func() {}))
	}
	if e.Pending() != 8 {
		t.Fatalf("pending = %d, want 8", e.Pending())
	}
	// A long-deadline timeout canceled early must leave the heap at
	// once, not sit as a tombstone until its timestamp pops.
	e.Cancel(ids[7])
	if e.Pending() != 7 {
		t.Fatalf("pending after cancel = %d, want 7", e.Pending())
	}
	e.Cancel(ids[0]) // heap root
	e.Cancel(ids[3]) // interior node
	if e.Pending() != 5 {
		t.Fatalf("pending after three cancels = %d, want 5", e.Pending())
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("processed = %d, want 5", e.Processed())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d, want 0", e.Pending())
	}
}

func TestCancelFromHandlerDropsPending(t *testing.T) {
	e := NewEngine()
	victimRan := false
	victim := e.At(100, func() { victimRan = true })
	e.At(10, func() {
		e.Cancel(victim)
		if e.Pending() != 0 {
			t.Errorf("pending inside handler = %d, want 0", e.Pending())
		}
	})
	e.Run()
	if victimRan {
		t.Error("canceled event ran")
	}
}

// A stale EventID — its event already fired and the struct was reused
// for a newer event — must not cancel the newer event.
func TestStaleIDDoesNotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, func() {})
	e.Run() // fires; the event struct goes to the free list

	ran := false
	e.At(2, func() { ran = true }) // reuses the recycled struct
	e.Cancel(stale)                // must be a no-op
	if e.Pending() != 1 {
		t.Fatalf("stale cancel removed a live event: pending = %d", e.Pending())
	}
	e.Run()
	if !ran {
		t.Error("recycled event did not run after stale cancel")
	}
}

func TestCancelCanceledIDTwiceIsNoOp(t *testing.T) {
	e := NewEngine()
	id := e.At(5, func() {})
	keep := e.At(6, func() {})
	e.Cancel(id)
	e.Cancel(id) // second cancel of the same ID
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	_ = keep
}

func TestZeroEventIDCancelIsNoOp(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.Cancel(EventID{})
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

// Property: under random interleavings of schedules and cancels, the
// surviving events run exactly once, in (time, FIFO) order, and
// Pending tracks the live count exactly.
func TestCancelOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xc0ffee, 17))
	for trial := 0; trial < 200; trial++ {
		e := NewEngine()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		live := map[int]bool{}
		var ids []EventID
		n := 1 + rng.IntN(64)
		for i := 0; i < n; i++ {
			at := Time(rng.IntN(50))
			i := i
			ids = append(ids, e.At(at, func() { fired = append(fired, rec{at, i}) }))
			live[i] = true
			// Cancel a random earlier event some of the time.
			if rng.IntN(3) == 0 {
				victim := rng.IntN(len(ids))
				e.Cancel(ids[victim])
				delete(live, victim)
			}
			if e.Pending() != len(live) {
				t.Fatalf("trial %d: pending = %d, live = %d", trial, e.Pending(), len(live))
			}
		}
		e.Run()
		if len(fired) != len(live) {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(fired), len(live))
		}
		for _, f := range fired {
			if !live[f.seq] {
				t.Fatalf("trial %d: canceled event %d fired", trial, f.seq)
			}
		}
		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if b.at < a.at || (b.at == a.at && b.seq < a.seq) {
				t.Fatalf("trial %d: order violated: %+v before %+v", trial, a, b)
			}
		}
	}
}

// The steady-state schedule/fire cycle must not allocate: events come
// from the free list and EventIDs are values.
func TestEngineHotPathZeroAlloc(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.After(Time(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			e.After(Time(i), fn)
		}
		id := e.After(1000, fn)
		e.Cancel(id)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state At/After/Cancel/Run allocates %.1f/op, want 0", allocs)
	}
}
