package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final clock = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("events at equal time not FIFO: %v", order)
		}
	}
}

func TestEngineAfterUsesCurrentClock(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func() {
		e.After(50, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After fired at %v, want 150", fired)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.At(10, func() { ran = true })
	e.Cancel(id)
	e.Run()
	if ran {
		t.Error("canceled event ran")
	}
	if e.Processed() != 0 {
		t.Errorf("processed = %d, want 0", e.Processed())
	}
}

func TestEngineCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	id := e.At(10, func() {})
	e.Cancel(id)
	e.Cancel(id)
	e.Run()
	e.Cancel(id) // after firing window
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	var count int
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineRunUntilDeadline(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran = append(ran, at) })
	}
	end := e.RunUntil(25)
	if end != 25 {
		t.Fatalf("clock = %v, want 25", end)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %d events before deadline, want 2", len(ran))
	}
	e.Run()
	if len(ran) != 4 {
		t.Fatalf("ran %d events total, want 4", len(ran))
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++ })
	e.At(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue reported true")
	}
}

func TestEngineEventCascade(t *testing.T) {
	// An event chain scheduled from within handlers must preserve
	// causal ordering and advance the clock monotonically.
	e := NewEngine()
	var times []Time
	var chain func(depth int)
	chain = func(depth int) {
		times = append(times, e.Now())
		if depth < 100 {
			e.After(7, func() { chain(depth + 1) })
		}
	}
	e.At(0, func() { chain(0) })
	e.Run()
	if len(times) != 101 {
		t.Fatalf("chain length = %d, want 101", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] != times[i-1]+7 {
			t.Fatalf("non-monotonic chain at %d: %v -> %v", i, times[i-1], times[i])
		}
	}
}

func TestEngineOrderingProperty(t *testing.T) {
	// Property: for any set of event times, execution order is a
	// stable sort by time.
	f := func(raw []uint16) bool {
		e := NewEngine()
		type stamp struct {
			at  Time
			idx int
		}
		var got []stamp
		for i, r := range raw {
			at := Time(r)
			i := i
			e.At(at, func() { got = append(got, stamp{at, i}) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].idx < got[i-1].idx {
				return false // FIFO violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
