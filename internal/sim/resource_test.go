package sim

import "testing"

func TestResourceImmediateGrant(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch", 1)
	granted := false
	r.Acquire(func() { granted = true })
	if !granted {
		t.Fatal("grant was not immediate on idle resource")
	}
	if r.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", r.InUse())
	}
	r.Release()
	if !r.Idle() {
		t.Fatal("resource not idle after release")
	}
}

func TestResourceFIFOQueue(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch", 1)
	var order []int
	hold := func(id int, d Time) {
		r.Acquire(func() {
			order = append(order, id)
			e.After(d, r.Release)
		})
	}
	e.At(0, func() {
		hold(1, 10)
		hold(2, 10)
		hold(3, 10)
	})
	e.Run()
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("grant order = %v", order)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "die", 2)
	active := 0
	maxActive := 0
	for i := 0; i < 5; i++ {
		e.At(0, func() {
			r.Acquire(func() {
				active++
				if active > maxActive {
					maxActive = active
				}
				e.After(10, func() {
					active--
					r.Release()
				})
			})
		})
	}
	e.Run()
	if maxActive != 2 {
		t.Fatalf("max concurrent grants = %d, want 2", maxActive)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ecc", 1)
	if !r.TryAcquire(func() {}) {
		t.Fatal("TryAcquire failed on idle resource")
	}
	if r.TryAcquire(func() { t.Fatal("granted over capacity") }) {
		t.Fatal("TryAcquire succeeded on full resource")
	}
	r.Release()
	if !r.TryAcquire(func() {}) {
		t.Fatal("TryAcquire failed after release")
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	r.Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewResource(e, "x", 0)
}

func TestResourceBusyTime(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch", 1)
	e.At(100, func() { r.Use(50, nil) })
	e.At(400, func() { r.Use(25, nil) })
	e.Run()
	if got := r.BusyTime(); got != 75 {
		t.Fatalf("BusyTime = %v, want 75", got)
	}
}

func TestResourceUseChainsDone(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "ch", 1)
	var doneAt Time = -1
	e.At(0, func() {
		r.Use(30, func() { doneAt = e.Now() })
	})
	e.Run()
	if doneAt != 30 {
		t.Fatalf("done ran at %v, want 30", doneAt)
	}
	if !r.Idle() {
		t.Fatal("resource busy after Use completed")
	}
}

func TestResourceBackToBackUtilization(t *testing.T) {
	// Saturating a unit-capacity resource with N back-to-back holds of
	// length d must take exactly N*d with 100% utilization.
	e := NewEngine()
	r := NewResource(e, "ch", 1)
	const n, d = 20, 13
	e.At(0, func() {
		for i := 0; i < n; i++ {
			r.Use(d, nil)
		}
	})
	end := e.Run()
	if end != n*d {
		t.Fatalf("end = %v, want %v", end, Time(n*d))
	}
	if r.BusyTime() != n*d {
		t.Fatalf("busy = %v, want %v", r.BusyTime(), Time(n*d))
	}
}
