// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for the SSD simulator: it owns a virtual
// clock in nanoseconds, an event heap ordered by (time, sequence), and
// seeded random-number streams so that every run is reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point on the simulation clock, in nanoseconds.
type Time int64

// Common durations expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Microseconds reports t as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with microsecond precision for logs and tests.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

// Handler is the body of a scheduled event. It runs when the clock
// reaches the event's timestamp.
type Handler func()

// event is a single entry in the calendar queue.
type event struct {
	at       Time
	seq      uint64 // FIFO tiebreak for events at the same instant
	fn       Handler
	canceled bool
	index    int // heap index, maintained by eventHeap
}

// EventID identifies a scheduled event so it can be canceled.
type EventID struct{ ev *event }

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value
// is not usable; create one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	// processed counts events executed, for diagnostics and loop guards.
	processed uint64
	// maxPending is the event heap's depth high-water mark, for
	// observability (how bursty was the schedule?).
	maxPending int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are waiting (including canceled ones
// that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// MaxPending reports the deepest the event heap has ever been.
func (e *Engine) MaxPending() int { return e.maxPending }

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it is always a model bug.
func (e *Engine) At(at Time, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.maxPending {
		e.maxPending = len(e.queue)
	}
	return EventID{ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel marks a scheduled event so it will not run. Canceling an
// already-fired or already-canceled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.canceled = true
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
// It returns the final clock value.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= deadline. Events beyond
// the deadline stay queued; the clock is advanced to min(deadline,
// last event time). It returns the final clock value.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.queue)
		if next.canceled {
			continue
		}
		e.now = next.at
		e.processed++
		next.fn()
	}
	return e.now
}

// Step executes exactly one non-canceled event, if any, and reports
// whether an event ran. Useful for unit tests that single-step a model.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*event)
		if next.canceled {
			continue
		}
		e.now = next.at
		e.processed++
		next.fn()
		return true
	}
	return false
}
