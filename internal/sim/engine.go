// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate for the SSD simulator: it owns a virtual
// clock in nanoseconds, an event heap ordered by (time, sequence), and
// seeded random-number streams so that every run is reproducible.
package sim

import (
	"fmt"
	"math"
)

// Time is a point on the simulation clock, in nanoseconds.
type Time int64

// Common durations expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = math.MaxInt64

// Microseconds reports t as a floating-point microsecond count.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point millisecond count.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point second count.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with microsecond precision for logs and tests.
func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Microseconds()) }

// Handler is the body of a scheduled event. It runs when the clock
// reaches the event's timestamp.
type Handler func()

// event is a single entry in the calendar queue. Fired and canceled
// events return to the engine's free list and are reused by later
// At/After calls, so the steady-state hot path allocates nothing; the
// generation counter keeps recycled EventIDs from aliasing.
type event struct {
	at    Time
	seq   uint64 // FIFO tiebreak for events at the same instant
	fn    Handler
	gen   uint32 // bumped on recycle; stale EventIDs fail the match
	index int32  // heap position, -1 when not queued
}

// EventID identifies a scheduled event so it can be canceled. The
// zero value is valid and cancels nothing.
type EventID struct {
	ev  *event
	gen uint32
}

// Engine is a single-threaded discrete-event simulator. The zero value
// is not usable; create one with NewEngine.
//
// The calendar queue is a 4-ary min-heap over concrete *event values:
// flatter than a binary heap (half the levels, so fewer cache-missing
// compare/swap rounds on the sift-down path that dominates pops) and
// free of the interface boxing container/heap imposes.
type Engine struct {
	now     Time
	seq     uint64
	queue   []*event
	free    []*event
	stopped bool
	// processed counts events executed, for diagnostics and loop guards.
	processed uint64
	// maxPending is the event heap's depth high-water mark, for
	// observability (how bursty was the schedule?).
	maxPending int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending reports how many events are waiting. Canceled events leave
// the queue immediately, so this is an exact count.
func (e *Engine) Pending() int { return len(e.queue) }

// MaxPending reports the deepest the event heap has ever been.
func (e *Engine) MaxPending() int { return e.maxPending }

// At schedules fn to run at absolute time at. Scheduling in the past
// panics: it is always a model bug.
//
//riflint:hotpath
func (e *Engine) At(at Time, fn Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		//riflint:allow alloc -- free-list refill: one event per high-water slot, reused forever after
		ev = &event{}
	}
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(ev)
	if len(e.queue) > e.maxPending {
		e.maxPending = len(e.queue)
	}
	return EventID{ev: ev, gen: ev.gen}
}

// After schedules fn to run d nanoseconds from now.
//
//riflint:hotpath
func (e *Engine) After(d Time, fn Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event from the queue immediately, so it
// neither runs nor occupies heap space until its timestamp. Canceling
// an already-fired or already-canceled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	ev := id.ev
	if ev == nil || ev.gen != id.gen || ev.index < 0 {
		return
	}
	e.remove(int(ev.index))
	e.recycle(ev)
}

// recycle returns a dequeued event to the free list. The generation
// bump invalidates any EventID still pointing at it, and dropping the
// handler releases whatever the closure captured.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	//riflint:allow alloc -- free list reuses capacity vacated by At; it never exceeds the queue high-water mark
	e.free = append(e.free, ev)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called.
// It returns the final clock value.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= deadline. Events beyond
// the deadline stay queued; the clock is advanced to min(deadline,
// last event time). It returns the final clock value.
//
//riflint:hotpath
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		e.popRoot()
		e.now = next.at
		e.processed++
		fn := next.fn
		e.recycle(next)
		fn()
	}
	return e.now
}

// Step executes exactly one event, if any, and reports whether an
// event ran. Useful for unit tests that single-step a model.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := e.queue[0]
	e.popRoot()
	e.now = next.at
	e.processed++
	fn := next.fn
	e.recycle(next)
	fn()
	return true
}

// The 4-ary heap. Children of node i sit at 4i+1..4i+4, the parent at
// (i-1)/4. Order is (at, seq): earliest first, FIFO within an instant.

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and restores the heap invariant.
func (e *Engine) push(ev *event) {
	//riflint:allow alloc -- append into capacity vacated by popRoot; growth only while the heap sets a new high-water mark
	e.queue = append(e.queue, ev)
	ev.index = int32(len(e.queue) - 1)
	e.siftUp(len(e.queue) - 1)
}

// popRoot removes the minimum event (queue[0]), marking it dequeued.
func (e *Engine) popRoot() {
	q := e.queue
	n := len(q) - 1
	q[0].index = -1
	if n > 0 {
		q[0] = q[n]
		q[0].index = 0
	}
	q[n] = nil
	e.queue = q[:n]
	if n > 1 {
		e.siftDown(0)
	}
}

// remove deletes the event at heap position i.
func (e *Engine) remove(i int) {
	q := e.queue
	n := len(q) - 1
	q[i].index = -1
	if i == n {
		q[n] = nil
		e.queue = q[:n]
		return
	}
	moved := q[n]
	q[i] = moved
	q[n] = nil
	e.queue = q[:n]
	moved.index = int32(i)
	if !e.siftDown(i) {
		e.siftUp(i)
	}
}

// siftUp moves queue[i] toward the root until its parent is no later.
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = int32(i)
		i = parent
	}
	q[i] = ev
	ev.index = int32(i)
}

// siftDown moves queue[i] toward the leaves, swapping with its
// earliest child while that child is earlier. It reports whether the
// event moved.
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := len(q)
	ev := q[i]
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(q[c], q[best]) {
				best = c
			}
		}
		if !eventLess(q[best], ev) {
			break
		}
		q[i] = q[best]
		q[i].index = int32(i)
		i = best
	}
	q[i] = ev
	ev.index = int32(i)
	return i != start
}
