package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 1)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a := NewRNG(42, 1)
	b := NewRNG(42, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams matched %d/100 draws", same)
	}
}

func TestRNGSplitIsStable(t *testing.T) {
	parent1 := NewRNG(7, 0)
	parent2 := NewRNG(7, 0)
	parent2.Uint64() // advance one parent; children must still agree
	c1 := parent1.Split(99)
	c2 := parent2.Split(99)
	for i := 0; i < 50; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split depends on parent draw position")
		}
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := NewRNG(1, 1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(<0) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(>1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(1, 2)
	const n = 100000
	const p = 0.3
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) frequency = %v", p, got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(1, 3)
	const n = 200000
	const mean, sigma = 5.0, 2.0
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.Normal(mean, sigma)
		sum += x
		sumsq += x * x
	}
	m := sum / n
	v := sumsq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("sample mean = %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(v)-sigma) > 0.05 {
		t.Fatalf("sample sigma = %v, want ~%v", math.Sqrt(v), sigma)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(1, 4)
	const n = 200000
	const mean = 40.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(mean)
	}
	if got := sum / n; math.Abs(got-mean) > 1.0 {
		t.Fatalf("exponential sample mean = %v, want ~%v", got, mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(1, 5)
	for i := 0; i < 10000; i++ {
		if r.LogNormal(0, 0.5) <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
	}
}

func TestTimeFormatting(t *testing.T) {
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Fatalf("Microseconds = %v, want 1.5", got)
	}
	if got := (2500 * Microsecond).Milliseconds(); got != 2.5 {
		t.Fatalf("Milliseconds = %v, want 2.5", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
	if s := (40 * Microsecond).String(); s != "40.000us" {
		t.Fatalf("String = %q", s)
	}
}
