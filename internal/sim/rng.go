package sim

import (
	"math"
	"math/rand/v2"
)

// RNG is a seeded, stream-splittable random source. Every stochastic
// component of the simulator draws from its own named stream so that
// adding a component never perturbs the draws of another — runs stay
// reproducible under model evolution.
type RNG struct {
	*rand.Rand
}

// NewRNG returns a PCG-backed source seeded with (seed, stream).
func NewRNG(seed, stream uint64) *RNG {
	return &RNG{rand.New(rand.NewPCG(seed, stream))}
}

// Split derives an independent child stream. The child's sequence is a
// pure function of the parent seed and the label, not of how many draws
// the parent has made.
func (r *RNG) Split(label uint64) *RNG {
	// Derive deterministically via a fixed mixing function (splitmix64
	// finalizer) rather than by drawing from the parent.
	z := label + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &RNG{rand.New(rand.NewPCG(z, label))}
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal draws from N(mean, sigma^2).
func (r *RNG) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.NormFloat64()
}

// LogNormal draws from a log-normal distribution whose underlying
// normal has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential draws an exponentially distributed value with the given
// mean (not rate).
func (r *RNG) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}
