package sim

import "testing"

func TestEngineMaxPending(t *testing.T) {
	e := NewEngine()
	if e.MaxPending() != 0 {
		t.Fatalf("fresh engine high-water = %d", e.MaxPending())
	}
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	if e.MaxPending() != 5 {
		t.Fatalf("high-water = %d, want 5", e.MaxPending())
	}
	e.Run()
	// Draining does not lower the high-water mark.
	if e.Pending() != 0 || e.MaxPending() != 5 {
		t.Fatalf("after run: pending=%d highwater=%d, want 0 and 5", e.Pending(), e.MaxPending())
	}
	// Scheduling from inside handlers keeps tracking.
	e2 := NewEngine()
	e2.At(0, func() {
		for i := 0; i < 7; i++ {
			e2.After(Time(i+1), func() {})
		}
	})
	e2.Run()
	if e2.MaxPending() != 7 {
		t.Fatalf("nested high-water = %d, want 7", e2.MaxPending())
	}
}
