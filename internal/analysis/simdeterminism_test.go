package analysis

import "testing"

func TestSimDeterminismWallClock(t *testing.T) {
	runGolden(t, SimDeterminism, "riflint.test/simdeterminism/wallclock")
}

func TestSimDeterminismGlobalRand(t *testing.T) {
	runGolden(t, SimDeterminism, "riflint.test/simdeterminism/globalrand")
}

func TestSimDeterminismMapOrder(t *testing.T) {
	runGolden(t, SimDeterminism, "riflint.test/simdeterminism/maporder")
}

// A fleet-style worker pool (pre-indexed result slots, per-worker
// seeded RNG streams) must pass clean; a pool whose workers draw the
// process-global stream must be flagged.
func TestSimDeterminismFleetPool(t *testing.T) {
	runGolden(t, SimDeterminism, "riflint.test/simdeterminism/fleetpool")
}

// The deep-sim blast radius is derived from the import graph, not a
// hand list. Unit-check the derivation on a synthetic graph: roots are
// deep, transitive importers are deep, module deps of importers are
// deep (their output feeds sim-driven artifacts), unrelated leaves and
// the standard library are not.
func TestDeriveDeepSimSyntheticGraph(t *testing.T) {
	listed := []*listedPackage{
		{ImportPath: "repro/internal/sim"},
		{ImportPath: "repro/internal/util"},
		{ImportPath: "repro/internal/plot"},
		{ImportPath: "repro/internal/core", Deps: []string{"repro/internal/sim", "repro/internal/plot", "fmt"}},
		{ImportPath: "repro/internal/analysis"},
		{ImportPath: "fmt", Standard: true},
	}
	deep := deriveDeepSim(listed)
	for path, want := range map[string]bool{
		"repro/internal/sim":      true,  // root
		"repro/internal/core":     true,  // transitively imports a root
		"repro/internal/plot":     true,  // dep of an importer: feeds its output
		"repro/internal/util":     false, // unrelated leaf
		"repro/internal/analysis": false, // lint tooling is outside the radius
		"fmt":                     false, // stdlib never deep
	} {
		if deep[path] != want {
			t.Errorf("deep[%q] = %v, want %v", path, deep[path], want)
		}
	}
}

// The derived set must cover every package the old hand-maintained
// deepSimPackages list named — PRs 4–6 each had to remember to extend
// that list by hand; the derivation must not regress any of them.
func TestDerivedDeepSimCoversSimPackages(t *testing.T) {
	listed, err := goList("", []string{"repro/..."})
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	deep := deriveDeepSim(listed)
	for _, path := range []string{
		"repro/internal/sim", "repro/internal/ssd", "repro/internal/nand",
		"repro/internal/chip", "repro/internal/odear", "repro/internal/ecc",
		"repro/internal/ldpc", "repro/internal/nvme", "repro/internal/core",
		"repro/internal/faults", "repro/internal/replay", "repro/internal/serve",
	} {
		if !deep[path] {
			t.Errorf("expected %s to derive as deep-sim", path)
		}
	}
	for _, path := range []string{"repro/internal/analysis", "repro/cmd/riflint"} {
		if deep[path] {
			t.Errorf("%s derived as deep-sim; the lint tooling should sit outside the blast radius", path)
		}
	}
}
