package analysis

import "testing"

func TestSimDeterminismWallClock(t *testing.T) {
	runGolden(t, SimDeterminism, "riflint.test/wallclock")
}

func TestSimDeterminismGlobalRand(t *testing.T) {
	runGolden(t, SimDeterminism, "riflint.test/globalrand")
}

func TestSimDeterminismMapOrder(t *testing.T) {
	runGolden(t, SimDeterminism, "riflint.test/maporder")
}

// A fleet-style worker pool (pre-indexed result slots, per-worker
// seeded RNG streams) must pass clean; a pool whose workers draw the
// process-global stream must be flagged.
func TestSimDeterminismFleetPool(t *testing.T) {
	runGolden(t, SimDeterminism, "riflint.test/fleetpool")
}

// The map-order check is scoped to the deep-sim packages: the same
// fixture analyzed under a non-sim package path must stay silent.
func TestMapOrderScopedToDeepSimPackages(t *testing.T) {
	if inDeepSimPackage("repro/internal/plot") {
		t.Fatal("plot should not be a deep-sim package")
	}
	for _, path := range []string{
		"repro/internal/sim", "repro/internal/ssd", "repro/internal/ldpc",
		"repro/internal/core", "repro/internal/serve", "riflint.test/maporder",
	} {
		if !inDeepSimPackage(path) {
			t.Errorf("expected %s to be in the deep-sim package set", path)
		}
	}
}
