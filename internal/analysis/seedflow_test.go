package analysis

import "testing"

func TestSeedFlow(t *testing.T) {
	runGolden(t, SeedFlow, "riflint.test/seedflow/basic")
}
