package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// SimTime is a units checker for the simulation clock: any raw numeric
// literal that lands in a sim.Time slot (argument, field, assignment,
// comparison) must be spelled in terms of the typed unit constants
// (sim.Nanosecond, sim.Microsecond, ...). A bare 40000 meaning "40 us"
// and a bare 40000 meaning "40000 us" type-check identically — this is
// the classic ns-vs-us mixup that corrupts every latency in a run
// without failing a single test.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "require sim.Time values to be built from the typed unit constants " +
		"rather than raw integer literals or unit-free integer arithmetic",
	Run: runSimTime,
}

func runSimTime(pass *Pass) {
	// The sim package itself defines the unit system; its fixture twin
	// is exempt for the same reason.
	if pass.PkgPath == simPkgPath {
		return
	}
	seen := make(map[token.Pos]bool)
	for _, file := range pass.Syntax {
		if len(file.Decls) == 0 || pass.InTestFile(file.Pos()) {
			continue
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok {
				return true
			}
			switch {
			case tv.Value != nil && isSimTime(tv.Type):
				checkConstantTime(pass, expr, tv, stack, seen)
			case tv.Value == nil && isSimTime(tv.Type):
				checkTimeConversion(pass, expr)
			}
			return true
		})
	}
}

// checkConstantTime flags a maximal constant expression of type
// sim.Time whose spelling never touches a sim.Time-typed constant.
// `3 * sim.Microsecond` mentions one; a bare `40000` does not.
func checkConstantTime(pass *Pass, expr ast.Expr, tv types.TypeAndValue, stack []ast.Node, seen map[token.Pos]bool) {
	// Only consider the outermost constant expression so `40 * 1000`
	// reports once, at the whole expression.
	if parent := parentExpr(stack); parent != nil {
		if ptv, ok := pass.TypesInfo.Types[parent]; ok && ptv.Value != nil {
			return
		}
	}
	if seen[expr.Pos()] {
		return
	}
	seen[expr.Pos()] = true

	if v, ok := constant.Int64Val(tv.Value); ok && v == 0 {
		return // zero is zero in every unit
	}
	if mentionsSimTimeValue(pass.TypesInfo, expr) {
		return
	}
	if isScaleFactor(pass.TypesInfo, expr, stack) {
		return
	}
	pass.Report(expr.Pos(), "simtime",
		"raw constant %s used as sim.Time: spell durations with the unit constants "+
			"(e.g. 40*sim.Microsecond) so ns-vs-us mistakes cannot type-check",
		tv.Value.ExactString())
}

// checkTimeConversion flags sim.Time(expr) conversions whose operand
// mixes in raw integer literals without any sim.Time-typed operand —
// unit-free arithmetic laundered through a conversion.
func checkTimeConversion(pass *Pass, expr ast.Expr) {
	call, ok := expr.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	arg := call.Args[0]
	if mentionsSimTimeValue(pass.TypesInfo, arg) {
		return
	}
	if !containsNonZeroIntLiteral(pass.TypesInfo, arg) {
		return // pure data-driven conversion (config field, counter, ...)
	}
	pass.Report(call.Pos(), "simtime",
		"sim.Time conversion over unit-free integer arithmetic: multiply by a unit "+
			"constant (e.g. sim.Time(n)*sim.Microsecond) instead of baking the scale "+
			"into a raw literal")
}

// isScaleFactor reports whether the constant expr multiplies (or
// divides) something that already carries sim.Time units, e.g. the 2
// in `2 * cfg.Timing.TR`. Scalars scale durations; only raw addends
// and comparands (`t + 40000`, `t > 100`) denote durations themselves
// and must be spelled with unit constants.
func isScaleFactor(info *types.Info, expr ast.Expr, stack []ast.Node) bool {
	child := ast.Node(expr)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr, *ast.UnaryExpr:
			child = parent
			continue
		case *ast.BinaryExpr:
			if parent.Op != token.MUL && parent.Op != token.QUO && parent.Op != token.REM {
				return false
			}
			other := parent.X
			if other == child {
				other = parent.Y
			}
			if otv, ok := info.Types[other]; ok && otv.Value == nil && isSimTime(otv.Type) {
				return true // scaling a runtime sim.Time value
			}
			if mentionsSimTimeValue(info, other) {
				return true
			}
			child = parent
			continue
		}
		return false
	}
	return false
}

// containsNonZeroIntLiteral reports whether expr's subtree has an
// integer literal other than 0 or 1 (0 is unitless; 1 is a neutral
// scale factor, not a duration).
func containsNonZeroIntLiteral(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.INT {
			return !found
		}
		if lit.Value != "0" && lit.Value != "1" {
			found = true
		}
		return !found
	})
	return found
}

// parentExpr returns the nearest enclosing expression on the stack, or
// nil when the node hangs directly off a statement or declaration.
func parentExpr(stack []ast.Node) ast.Expr {
	if len(stack) == 0 {
		return nil
	}
	if e, ok := stack[len(stack)-1].(ast.Expr); ok {
		return e
	}
	return nil
}
