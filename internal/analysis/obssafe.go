package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// ObsSafe keeps the observability plane trustworthy: every instrument
// handle must come from an obs.Registry (or be the sanctioned nil
// no-op), and no two call sites may register different instruments
// under one name. A hand-rolled obs.Counter{} works — the zero value
// is usable by design — but it never appears in snapshots, manifests
// or the Prometheus export, so the metric silently reads zero; two
// registrations of the same name silently merge two subsystems'
// numbers.
var ObsSafe = &Analyzer{
	Name: "obssafe",
	Doc: "require obs instruments to be obtained from a Registry (or be nil) " +
		"and forbid registering two instruments under one name",
	Run: runObsSafe,
}

// registryMethods maps obs.Registry method names to the instrument
// kind they register.
var registryMethods = map[string]string{
	"Counter":       "counter",
	"Gauge":         "gauge",
	"Histogram":     "histogram",
	"HistogramWith": "histogram",
}

// instrumentUse is one registry lookup with a constant name.
type instrumentUse struct {
	kind string
	name string
	pos  token.Pos
}

func runObsSafe(pass *Pass) {
	if pass.PkgPath == obsPkgPath {
		return // the registry implementation constructs its own instruments
	}
	var uses []instrumentUse
	for _, file := range pass.Syntax {
		if len(file.Decls) == 0 || pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkRawInstrument(pass, n)
			case *ast.CallExpr:
				checkNewInstrument(pass, n)
				if u, ok := registryLookup(pass, n); ok {
					uses = append(uses, u)
				}
			case *ast.ValueSpec:
				checkValueInstrument(pass, n)
			case *ast.StructType:
				checkFieldInstruments(pass, n)
			}
			return true
		})
	}
	reportDuplicates(pass, uses)
}

// checkRawInstrument flags obs.Counter{} / &obs.Counter{} literals.
func checkRawInstrument(pass *Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok {
		return
	}
	if name := obsInstrumentName(tv.Type); name != "" {
		pass.Report(cl.Pos(), "rawinstrument",
			"obs.%s constructed directly: a hand-rolled instrument never reaches "+
				"snapshots or manifests — obtain it from an obs.Registry, or pass a "+
				"nil handle for the disabled path", name)
	}
}

// checkNewInstrument flags new(obs.Counter) and friends.
func checkNewInstrument(pass *Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "new" || len(call.Args) != 1 {
		return
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || !tv.IsType() {
		return
	}
	if name := obsInstrumentName(tv.Type); name != "" {
		pass.Report(call.Pos(), "rawinstrument",
			"new(obs.%s) constructs a detached instrument: obtain handles from an "+
				"obs.Registry, or pass a nil handle for the disabled path", name)
	}
}

// checkValueInstrument flags `var c obs.Counter` — a by-value
// instrument is a detached instrument (a nil *pointer* is the
// sanctioned no-op).
func checkValueInstrument(pass *Pass, vs *ast.ValueSpec) {
	if vs.Type == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[vs.Type]
	if !ok {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return
	}
	if name := obsInstrumentName(tv.Type); name != "" {
		pass.Report(vs.Pos(), "rawinstrument",
			"by-value obs.%s declaration creates a detached instrument: hold a "+
				"*obs.%s obtained from a Registry (nil disables it)", name, name)
	}
}

// checkFieldInstruments flags by-value instrument struct fields for
// the same reason as checkValueInstrument.
func checkFieldInstruments(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			continue
		}
		if name := obsInstrumentName(tv.Type); name != "" {
			pass.Report(field.Pos(), "rawinstrument",
				"by-value obs.%s field embeds a detached instrument: hold a *obs.%s "+
					"obtained from a Registry (nil disables it)", name, name)
		}
	}
}

// registryLookup recognizes reg.Counter("name")-style calls with a
// compile-time-constant name.
func registryLookup(pass *Pass, call *ast.CallExpr) (instrumentUse, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return instrumentUse{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return instrumentUse{}, false
	}
	kind, ok := registryMethods[fn.Name()]
	if !ok {
		return instrumentUse{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !namedFrom(sig.Recv().Type(), obsPkgPath, "Registry") {
		return instrumentUse{}, false
	}
	if len(call.Args) == 0 {
		return instrumentUse{}, false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return instrumentUse{}, false
	}
	return instrumentUse{kind: kind, name: constant.StringVal(tv.Value), pos: call.Pos()}, true
}

// reportDuplicates flags (a) one name registered as two different
// instrument kinds anywhere in the package, and (b) the same
// name+kind looked up at more than one call site — hot paths must
// hold the handle, not re-resolve it, and duplicate registrations in
// distinct subsystems silently merge their numbers.
func reportDuplicates(pass *Pass, uses []instrumentUse) {
	sort.Slice(uses, func(i, j int) bool { return uses[i].pos < uses[j].pos })

	kindsByName := make(map[string]map[string]bool)
	for _, u := range uses {
		if kindsByName[u.name] == nil {
			kindsByName[u.name] = make(map[string]bool)
		}
		kindsByName[u.name][u.kind] = true
	}

	firstByKey := make(map[string]token.Pos)
	for _, u := range uses {
		if kinds := kindsByName[u.name]; len(kinds) > 1 {
			pass.Report(u.pos, "dupinstrument",
				"instrument name %q is registered as %s: one name must map to one "+
					"instrument (rename one of them)", u.name, kindList(kinds))
			continue
		}
		key := u.kind + "\x00" + u.name
		if first, ok := firstByKey[key]; ok {
			pass.Report(u.pos, "dupinstrument",
				"%s %q already obtained at %s: hold the handle instead of re-registering "+
					"(or //riflint:allow dupinstrument -- <reason> for an intentional shared instrument)",
				u.kind, u.name, pass.Fset.Position(first))
			continue
		}
		firstByKey[key] = u.pos
	}
}

func kindList(kinds map[string]bool) string {
	var out []string
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return fmt.Sprintf("both %v", out)
}
