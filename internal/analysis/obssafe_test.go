package analysis

import "testing"

func TestObsSafe(t *testing.T) {
	runGolden(t, ObsSafe, "riflint.test/obssafe/basic")
}

// The obs package itself constructs instruments; analyzing the stub
// under the real import path must report nothing.
func TestObsSafeExemptsObsPackage(t *testing.T) {
	runGoldenClean(t, []*Analyzer{ObsSafe}, "repro/internal/obs")
}
