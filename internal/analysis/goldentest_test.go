package analysis

// An analysistest-style golden harness built on the same loader
// machinery as the real checker. Fixture packages live under
// testdata/src/<import-path>/ and annotate expected findings with
// trailing comments of the form
//
//	code() // want `regexp` `another regexp`
//
// Each regexp must match at least one diagnostic reported on that
// line, and every diagnostic must be claimed by some regexp. Stub
// packages under testdata/src/repro/... mirror the import paths the
// analyzers key on (sim.Time, obs.Registry, ...), so the matchers run
// exactly the code paths they run on the real tree.

import (
	"bufio"
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtureImporter resolves imports for fixture packages: paths that
// exist under testdata/src are type-checked from source (recursively),
// everything else comes from the toolchain's export data.
type fixtureImporter struct {
	fset  *token.FileSet
	root  string
	std   types.Importer
	cache map[string]*types.Package
}

var stdExports struct {
	once    sync.Once
	exports map[string]string
	err     error
}

// stdlibExports lists every non-fixture import reachable from
// testdata/src and resolves it (plus transitive deps) to export data
// with one `go list` invocation, cached per test process.
func stdlibExports(root string) (map[string]string, error) {
	stdExports.once.Do(func() {
		seen := make(map[string]bool)
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			f, err := parseImportsOnly(path)
			if err != nil {
				return err
			}
			for _, imp := range f {
				if _, statErr := os.Stat(filepath.Join(root, imp)); statErr != nil {
					seen[imp] = true
				}
			}
			return nil
		})
		if err != nil {
			stdExports.err = err
			return
		}
		var paths []string
		for p := range seen {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList("", paths)
		if err != nil {
			stdExports.err = err
			return
		}
		stdExports.exports = make(map[string]string)
		for _, p := range listed {
			if p.Export != "" {
				stdExports.exports[p.ImportPath] = p.Export
			}
		}
	})
	return stdExports.exports, stdExports.err
}

func parseImportsOnly(path string) ([]string, error) {
	f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, imp := range f.Imports {
		out = append(out, strings.Trim(imp.Path.Value, `"`))
	}
	return out, nil
}

func newFixtureImporter(t *testing.T, root string) *fixtureImporter {
	t.Helper()
	exports, err := stdlibExports(root)
	if err != nil {
		t.Fatalf("resolving stdlib export data: %v", err)
	}
	fset := token.NewFileSet()
	return &fixtureImporter{
		fset:  fset,
		root:  root,
		std:   importer.ForCompiler(fset, "gc", exportLookup(exports)),
		cache: make(map[string]*types.Package),
	}
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.std.Import(path)
}

// load parses and type-checks the fixture package at the given import
// path relative to the testdata root.
func (fi *fixtureImporter) load(path string) (*Package, error) {
	dir := filepath.Join(fi.root, path)
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	files, err := parseFiles(fi.fset, dir, names)
	if err != nil {
		return nil, err
	}
	pkg, err := checkPackage(fi.fset, path, files, fi, "")
	if err != nil {
		return nil, err
	}
	// Fixtures opt into the deep-sim blast radius so the maporder
	// scoping path runs under test exactly as on the real tree.
	pkg.DeepSim = strings.HasPrefix(path, "riflint.test/")
	fi.cache[path] = pkg.Types
	return pkg, nil
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	return names, nil
}

// runGolden checks one analyzer against one fixture package.
func runGolden(t *testing.T, a *Analyzer, pkgPath string) {
	t.Helper()
	runGoldenSuite(t, []*Analyzer{a}, pkgPath)
}

// runGoldenClean asserts the analyzers stay silent on a fixture that
// deliberately carries no `// want` expectations — the positive-space
// counterpart to a golden: idiomatic code must pass untouched.
func runGoldenClean(t *testing.T, as []*Analyzer, pkgPath string) {
	t.Helper()
	pkg, root := loadGoldenFixture(t, pkgPath)
	wants, err := parseWants(filepath.Join(root, pkgPath))
	if err != nil {
		t.Fatal(err)
	}
	if len(wants) > 0 {
		t.Fatalf("clean fixture %s carries `// want` expectations; move them to a flagged fixture", pkgPath)
	}
	for _, d := range Run([]*Package{pkg}, as) {
		t.Errorf("unexpected diagnostic on clean fixture at %s: %s", d.Pos, d.Message)
	}
}

func loadGoldenFixture(t *testing.T, pkgPath string) (*Package, string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fi := newFixtureImporter(t, root)
	pkg, err := fi.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	return pkg, root
}

// runGoldenSuite checks several analyzers together against one
// fixture package, for fixtures whose expectations span checkers
// (e.g. a fault injector that trips both seedflow and
// simdeterminism).
func runGoldenSuite(t *testing.T, as []*Analyzer, pkgPath string) {
	t.Helper()
	pkg, root := loadGoldenFixture(t, pkgPath)
	diags := Run([]*Package{pkg}, as)

	wants, err := parseWants(filepath.Join(root, pkgPath))
	if err != nil {
		t.Fatal(err)
	}
	// A golden with no expectations asserts nothing and passes
	// vacuously — a silent hole in the suite. Clean fixtures must opt
	// in explicitly via runGoldenClean.
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no `// want` expectations; use runGoldenClean for intentionally clean fixtures", pkgPath)
	}

	matched := make(map[*want]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		var hit *want
		for _, w := range wants[key] {
			if !matched[w] && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, d.Message)
			continue
		}
		matched[hit] = true
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !matched[w] {
				t.Errorf("%s: no diagnostic matched `%s`", key, w.re)
			}
		}
	}
}

type want struct {
	re *regexp.Regexp
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")
var wantArgRE = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)+)\"")

// parseWants scans every fixture file for `// want` expectations,
// keyed by "absfile:line".
func parseWants(dir string) (map[string][]*want, error) {
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	wants := make(map[string][]*want)
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				expr := arg[1]
				if expr == "" {
					expr = arg[2]
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", path, line, err)
				}
				key := fmt.Sprintf("%s:%d", path, line)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return wants, nil
}
