package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Canonical paths of the packages whose types the analyzers key on.
// Golden-test fixtures provide stub packages under the same paths so
// the matchers behave identically in tests.
const (
	simPkgPath = "repro/internal/sim"
	obsPkgPath = "repro/internal/obs"
)

// deepSimPackages are the packages where unordered map iteration can
// perturb event order or run output — the blast radius of the
// maporder check. Fixture packages (riflint.test/...) opt in so the
// golden tests exercise the same code path.
var deepSimPackages = map[string]bool{
	"repro/internal/sim":    true,
	"repro/internal/ssd":    true,
	"repro/internal/nand":   true,
	"repro/internal/chip":   true,
	"repro/internal/odear":  true,
	"repro/internal/ecc":    true,
	"repro/internal/ldpc":   true,
	"repro/internal/nvme":   true,
	"repro/internal/core":   true,
	"repro/internal/faults": true,
	// The open-loop arrival engine schedules every host event of a
	// replay; unordered iteration or wall-clock coupling there would
	// destroy the worker-count-invariance the tail sweeps pin.
	"repro/internal/replay": true,
	// The serving layer feeds job specs into the sim and streams its
	// output: unordered map iteration there would scramble event and
	// exposition order just as surely as in the device model. Wall
	// clock stays allowed only at the HTTP boundary via
	// //riflint:allow annotations.
	"repro/internal/serve": true,
}

func inDeepSimPackage(path string) bool {
	return deepSimPackages[path] || strings.HasPrefix(path, "riflint.test/")
}

// namedFrom reports whether t (after stripping pointers) is the named
// type pkgPath.name, returning the stripped named type.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isSimTime reports whether t is repro/internal/sim.Time.
func isSimTime(t types.Type) bool {
	return t != nil && namedFrom(t, simPkgPath, "Time")
}

// obsInstruments are the handle types the obs registry hands out.
var obsInstruments = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Tracer":    true,
}

// obsInstrumentName returns the instrument type name if t (after
// stripping pointers) is one of the obs handle types, else "".
func obsInstrumentName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath {
		return ""
	}
	if obsInstruments[obj.Name()] {
		return obj.Name()
	}
	return ""
}

// funcFrom returns the *types.Func for the expression being called if
// it resolves to a function declared in package pkgPath, else nil.
// It sees through selector expressions (pkg.Fn, recv.Method).
func funcFrom(info *types.Info, fun ast.Expr, pkgPath string) *types.Func {
	fun = ast.Unparen(fun)
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	return fn
}

// mentionsSimTimeValue reports whether expr's subtree references any
// constant, variable or function result of type sim.Time — i.e. the
// expression derives from the typed unit system rather than a raw
// number.
func mentionsSimTimeValue(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		switch obj.(type) {
		case *types.Const, *types.Var, *types.Func:
		default:
			return true
		}
		switch o := obj.(type) {
		case *types.Func:
			if sig, ok := o.Type().(*types.Signature); ok && sig.Results().Len() == 1 && isSimTime(sig.Results().At(0).Type()) {
				found = true
			}
		default:
			if isSimTime(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}
