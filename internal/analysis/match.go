package analysis

import (
	"go/ast"
	"go/types"
)

// Canonical paths of the packages whose types the analyzers key on.
// Golden-test fixtures provide stub packages under the same paths so
// the matchers behave identically in tests.
const (
	simPkgPath = "repro/internal/sim"
	ssdPkgPath = "repro/internal/ssd"
	obsPkgPath = "repro/internal/obs"
)

// deepSimRoots seed the maporder blast radius: the event engine and
// the device model it drives. The full deep set is derived from the
// import graph at load time (see deriveDeepSim in load.go) — any
// module package that transitively imports a root, or that such an
// importer depends on, is deep. PRs 4–6 each had to remember to
// extend the old hand-maintained package list; the derivation can't
// be forgotten.
var deepSimRoots = []string{simPkgPath, ssdPkgPath}

// IsDeepSimRoot reports whether path seeds the deep-sim blast radius.
// Exported for the vettool driver, which derives package depth from
// facts propagated along the import graph rather than a whole-module
// go list.
func IsDeepSimRoot(path string) bool {
	for _, r := range deepSimRoots {
		if r == path {
			return true
		}
	}
	return false
}

// namedFrom reports whether t (after stripping pointers) is the named
// type pkgPath.name, returning the stripped named type.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isSimTime reports whether t is repro/internal/sim.Time.
func isSimTime(t types.Type) bool {
	return t != nil && namedFrom(t, simPkgPath, "Time")
}

// obsInstruments are the handle types the obs registry hands out.
var obsInstruments = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Tracer":    true,
}

// obsInstrumentName returns the instrument type name if t (after
// stripping pointers) is one of the obs handle types, else "".
func obsInstrumentName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != obsPkgPath {
		return ""
	}
	if obsInstruments[obj.Name()] {
		return obj.Name()
	}
	return ""
}

// funcFrom returns the *types.Func for the expression being called if
// it resolves to a function declared in package pkgPath, else nil.
// It sees through selector expressions (pkg.Fn, recv.Method).
func funcFrom(info *types.Info, fun ast.Expr, pkgPath string) *types.Func {
	fun = ast.Unparen(fun)
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	return fn
}

// mentionsSimTimeValue reports whether expr's subtree references any
// constant, variable or function result of type sim.Time — i.e. the
// expression derives from the typed unit system rather than a raw
// number.
func mentionsSimTimeValue(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		switch obj.(type) {
		case *types.Const, *types.Var, *types.Func:
		default:
			return true
		}
		switch o := obj.(type) {
		case *types.Func:
			if sig, ok := o.Type().(*types.Signature); ok && sig.Results().Len() == 1 && isSimTime(sig.Results().At(0).Type()) {
				found = true
			}
		default:
			if isSimTime(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}
