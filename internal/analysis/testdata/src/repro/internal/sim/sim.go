// Package sim is a minimal stub of repro/internal/sim for analyzer
// golden tests: same import path, same type names, none of the
// implementation.
package sim

type Time int64

const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

type Engine struct{ now Time }

func NewEngine() *Engine { return &Engine{} }

func (e *Engine) Now() Time { return e.now }

func (e *Engine) At(t Time, fn func()) {}

func (e *Engine) After(d Time, fn func()) {}
