// Package obs is a minimal stub of repro/internal/obs for analyzer
// golden tests: same import path, same type and method names.
package obs

type Counter struct{ v int64 }

func (c *Counter) Add(n int64) {}

func (c *Counter) Inc() {}

type Gauge struct{ v int64 }

func (g *Gauge) Set(v int64) {}

type Histogram struct{ v int64 }

func (h *Histogram) Observe(x float64) {}

type Tracer struct{ v int64 }

type Registry struct{ v int64 }

func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) Counter(name string) *Counter { return nil }

func (r *Registry) Gauge(name string) *Gauge { return nil }

func (r *Registry) Histogram(name string) *Histogram { return nil }

func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram { return nil }
