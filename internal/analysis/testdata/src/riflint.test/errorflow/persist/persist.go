// Package persist exercises the errorflow lint on the persistence
// tier's durability pattern: fsync and Close failures on a write path
// are the canonical silent-data-loss bugs — the kernel told us the
// bytes are not durable and the program shrugged. Dropped and masked
// sync/close errors are flagged; the atomic-write idiom that folds
// both into one returned error stays silent.
package persist

import "os"

func droppedSync(f *os.File) {
	f.Sync() // want `error result of call discarded`
}

func droppedClose(f *os.File) {
	f.Close() // want `error result of call discarded`
}

func blankSync(f *os.File) {
	_ = f.Sync() // want `error result assigned to _`
}

func closeMasksSync(f *os.File) error {
	err := f.Sync()
	err = f.Close() // want `err overwritten before the previous error was read`
	return err
}

func waivedClose(f *os.File) {
	//riflint:allow droppederr -- fixture: read-only handle, close cannot lose data
	f.Close()
}

// durableWrite is the idiom the store and journal use: write, sync,
// close, with every failure folded into one returned error — nothing
// to flag.
func durableWrite(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}

// deferredClose stays silent: defers are exempt by design (the read
// path's deferred close has no durability to lose), and the sync error
// is returned.
func deferredClose(f *os.File) error {
	defer f.Close()
	return f.Sync()
}
