// Package basic exercises the errorflow lint: errors produced on the
// read/fault path must be returned, stored, counted, or explicitly
// waived — blank discards, bare-statement drops, never-consumed
// variables and dead overwrites are all flagged.
package basic

import (
	"errors"

	"repro/internal/obs"
)

func produce() error         { return errors.New("media error") }
func produce2() (int, error) { return 0, errors.New("media error") }
func wrap(err error) error   { return err }

func dropBlank() {
	_ = produce() // want `error result assigned to _`
}

func dropBare() {
	produce() // want `error result of call discarded`
}

func dropTuple() {
	v, _ := produce2() // want `error result assigned to _`
	_ = v
}

func neverConsumed() {
	err := produce() // want `err is assigned but never returned, stored, or counted`
	if err != nil {
		return // checking alone does not consume the error
	}
}

func overwritten() error {
	err := produce()
	err = produce() // want `err overwritten before the previous error was read`
	return err
}

func waived() {
	//riflint:allow droppederr -- fixture: this probe is best-effort by design
	_ = produce()
}

func counted(c *obs.Counter) {
	if err := produce(); err != nil {
		c.Inc() // counting on an instrument consumes the failure
	}
}

func returned() error {
	return produce()
}

func passedOn() error {
	err := produce()
	return wrap(err)
}
