// Package clean is the positive space of the errorflow lint: the
// degradation-ladder idioms the read path actually uses — wrap and
// return, store into a result struct, send to a collector, bump a
// degradation counter — all pass untouched.
package clean

import (
	"errors"
	"fmt"
)

func produce() error         { return errors.New("media error") }
func produce2() (int, error) { return 0, errors.New("media error") }

type ladder struct {
	dropped int
	lastErr error
	errs    chan error
}

func wrapped() error {
	err := produce()
	if err != nil {
		return fmt.Errorf("read ladder: %w", err)
	}
	return nil
}

func (l *ladder) countedField() {
	err := produce()
	if err != nil {
		l.dropped++ // degradation counted, not swallowed
	}
}

func (l *ladder) storedField() {
	l.lastErr = produce()
}

func (l *ladder) forwarded() {
	err := produce()
	l.errs <- err
}

func namedResult() (err error) {
	err = produce()
	return
}

func tupleConsumed() (int, error) {
	v, err := produce2()
	if err != nil {
		return 0, err
	}
	return v, nil
}
