// Golden fixture for simdeterminism's map-iteration-order check.
// The package path (riflint.test/...) opts into the deep-sim package
// set where the check is active.
package maporder

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appending to "keys" inside a map range`
		keys = append(keys, k)
	}
	return keys
}

func okSortedAfter(m map[string]int) []string {
	var keys []string
	for k := range m { // collect-then-sort is deterministic
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badPrint(m map[string]int) {
	for k, v := range m { // want `calling fmt\.Println inside a map range`
		fmt.Println(k, v)
	}
}

func badBuilder(m map[string]int) string {
	var out []byte
	for k := range m { // want `appending to "out" inside a map range`
		out = append(out, k...)
	}
	return string(out)
}

func badSchedule(e *sim.Engine, m map[int]func()) {
	for t, fn := range m { // want `calling sim\.Engine\.At inside a map range`
		e.At(sim.Time(t)*sim.Microsecond, fn)
	}
}

func badSend(m map[int]int, ch chan int) {
	for _, v := range m { // want `sending on a channel from inside a map range`
		ch <- v
	}
}

func okAccumulate(m map[string]int) int {
	total := 0
	for _, v := range m { // commutative fold: order-insensitive
		total += v
	}
	return total
}

func okLocalAppend(m map[string][]int) {
	for _, vs := range m { // slice dies inside the iteration
		var local []int
		local = append(local, vs...)
		_ = local
	}
}

func okSliceRange(xs []int, out *[]int) {
	for _, v := range xs { // not a map: slices iterate in order
		*out = append(*out, v)
	}
}

func allowed(m map[string]int) []string {
	var keys []string
	//riflint:allow maporder -- golden test: caller shuffles anyway
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
