// Golden fixture for simdeterminism's wall-clock check.
package wallclock

import "time"

func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badSince(t0 time.Time) float64 {
	time.Sleep(time.Second)         // want `time\.Sleep reads the wall clock`
	return time.Since(t0).Seconds() // want `time\.Since reads the wall clock`
}

func badTimer() {
	_ = time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

func allowedAbove() time.Time {
	//riflint:allow wallclock -- golden test: directive on the line above
	return time.Now()
}

func allowedInline() time.Time {
	return time.Now() //riflint:allow wallclock -- golden test: inline directive
}

// Constructing durations and formatting timestamps is fine — only
// observing the host clock is not.
func okDuration(t time.Time) (time.Duration, string) {
	return 3 * time.Second, t.Format(time.RFC3339)
}
