package wallclock

import "time"

// Test files may use the wall clock freely (timeouts, benchmarks):
// the analyzer must stay silent on this entire file.
func wallClockInTest() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
