// Golden fixture for simdeterminism's global-rand check.
package globalrand

import (
	randv1 "math/rand"
	"math/rand/v2"
)

func bad() int {
	return rand.IntN(6) // want `math/rand/v2\.IntN draws from the process-global random stream`
}

func badValueUse() func() float64 {
	return rand.Float64 // want `math/rand/v2\.Float64 draws from the process-global random stream`
}

func badV1() float64 {
	return randv1.Float64() // want `math/rand\.Float64 draws from the process-global random stream`
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand/v2\.Shuffle draws from the process-global`
}

func okSeeded(seed uint64) float64 {
	rng := rand.New(rand.NewPCG(seed, 1))
	return rng.Float64()
}

func okSeededV1(seed int64) float64 {
	return randv1.New(randv1.NewSource(seed)).Float64()
}

func allowed() int {
	return rand.IntN(6) //riflint:allow globalrand -- golden test
}
