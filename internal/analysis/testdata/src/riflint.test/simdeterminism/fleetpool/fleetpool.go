// Golden fixture for simdeterminism against worker-pool code: the
// fleet-style pool (pre-indexed result slots, per-worker seeded RNG
// streams) must stay silent, while a pool whose workers draw from the
// process-global random stream must be flagged.
package fleetpool

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
)

// cleanPool mirrors internal/fleet.Run: an atomic work counter hands
// out indices, each result lands in its pre-assigned slot, and any
// randomness comes from a stream seeded by the cell index. Nothing
// here is nondeterministic in the outputs, and riflint agrees.
func cleanPool(n, workers int, seed uint64) []float64 {
	out := make([]float64, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				rng := rand.New(rand.NewPCG(seed, uint64(i)))
				out[i] = rng.Float64()
			}
		}()
	}
	wg.Wait()
	return out
}

// sharedRNGPool is the determinism bug the fleet design exists to
// prevent: workers sample the process-global stream, so the values
// each cell sees depend on goroutine scheduling.
func sharedRNGPool(n, workers int) []int {
	out := make([]int, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = rand.IntN(1000) // want `math/rand/v2\.IntN draws from the process-global random stream`
			}
		}()
	}
	wg.Wait()
	return out
}
