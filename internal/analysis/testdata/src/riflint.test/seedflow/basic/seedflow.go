// Golden fixture for the seedflow seed-provenance checker.
package seedflow

import (
	randv1 "math/rand"
	"math/rand/v2"
)

type config struct{ Seed uint64 }

func bad() *rand.Rand {
	return rand.New(rand.NewPCG(42, 0)) // want `hard-coded seed 42 in rand\.NewPCG`
}

const defaultSeed = 7

func badNamedConst() *rand.Rand {
	return rand.New(rand.NewPCG(defaultSeed, 0)) // want `hard-coded seed 7 in rand\.NewPCG`
}

func badV1() *randv1.Rand {
	return randv1.New(randv1.NewSource(99)) // want `hard-coded seed 99 in rand\.NewSource`
}

func okFromConfig(cfg config) *rand.Rand {
	return rand.New(rand.NewPCG(cfg.Seed, 0x1dbc)) // stream labels may be literals
}

func okDerived(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed^0x9e3779b97f4a7c15, 1))
}

func allowed() *rand.Rand {
	//riflint:allow seedflow -- golden test: fixture universe
	return rand.New(rand.NewPCG(1, 2))
}
