// Golden fixture for the obssafe instrument-hygiene checker.
package obssafe

import "repro/internal/obs"

type widget struct {
	reads *obs.Counter
	bad   obs.Counter // want `by-value obs\.Counter field embeds a detached instrument`
}

var detached = obs.Counter{} // want `obs\.Counter constructed directly`

var alsoDetached = &obs.Gauge{} // want `obs\.Gauge constructed directly`

var viaNew = new(obs.Histogram) // want `new\(obs\.Histogram\) constructs a detached instrument`

var byValue obs.Tracer // want `by-value obs\.Tracer declaration creates a detached instrument`

// A nil pointer handle is the sanctioned disabled path.
var okNil *obs.Counter

func wire(reg *obs.Registry) *widget {
	return &widget{reads: reg.Counter("reads_total")}
}

func dupKinds(reg *obs.Registry) {
	_ = reg.Gauge("queue_depth")     // want `instrument name "queue_depth" is registered as both`
	_ = reg.Histogram("queue_depth") // want `instrument name "queue_depth" is registered as both`
}

func dupLookup(reg *obs.Registry) {
	a := reg.Counter("requests_total")
	b := reg.Counter("requests_total") // want `counter "requests_total" already obtained at`
	_, _ = a, b
}

func okDistinct(reg *obs.Registry) {
	_ = reg.Counter("alpha_total")
	_ = reg.Counter("beta_total")
	_ = reg.HistogramWith("latency_us", []float64{1, 2, 4})
}

func okDynamic(reg *obs.Registry, names []string) {
	for _, n := range names {
		_ = reg.Counter(n) // non-constant names are the caller's problem
	}
}

func allowedShared(reg *obs.Registry) *obs.Counter {
	//riflint:allow dupinstrument -- golden test: intentional shared instrument
	return reg.Counter("requests_total")
}
