// Package basic exercises the ctxflow lint: a goroutine with no
// reachable stop signal and a channel send under a held mutex — with
// or without a deferred unlock — are flagged.
package basic

import "sync"

type pool struct {
	mu  sync.Mutex
	out chan int
}

func (p *pool) leak() {
	go func() { // want `goroutine spawned without a stop/cancel signal`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

func (p *pool) lockedSend(v int) {
	p.mu.Lock()
	p.out <- v // want `channel send while holding p\.mu`
	p.mu.Unlock()
}

func (p *pool) deferredLockedSend(v int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// The deferred unlock runs at return: the lock is still held here.
	p.out <- v // want `channel send while holding p\.mu`
}

func (p *pool) branchLockedSend(v int, cond bool) {
	if cond {
		p.mu.Lock()
	}
	// Held on the cond path: a may-hold join still flags the send.
	p.out <- v // want `channel send while holding p\.mu`
	if cond {
		p.mu.Unlock()
	}
}

func (p *pool) waived() {
	//riflint:allow unstoppable -- fixture: process-lifetime janitor by design
	go func() {
		for {
			_ = 0
		}
	}()
}
