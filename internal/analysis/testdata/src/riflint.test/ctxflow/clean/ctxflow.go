// Package clean is the positive space of the ctxflow lint: goroutines
// that observe a stop channel, a context, or the fleet func() bool
// stop hook — including through a bound closure — and sends that
// happen outside the lock or through a non-blocking select.
package clean

import (
	"context"
	"sync"
)

type pool struct {
	mu   sync.Mutex
	out  chan int
	stop chan struct{}
}

func (p *pool) run() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			case p.out <- 1:
			}
		}
	}()
}

// workers reaches its stop hook only through the bound cell closure —
// the fleet pool idiom the call graph resolves.
func (p *pool) workers(stop func() bool, n int) {
	var wg sync.WaitGroup
	cell := func(i int) bool { return stop() }
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for !cell(i) {
			}
		}(i)
	}
	wg.Wait()
}

func watch(ctx context.Context, tick chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

func (p *pool) sendUnlocked(v int) {
	p.mu.Lock()
	p.mu.Unlock()
	p.out <- v
}

func (p *pool) nonBlockingUnderLock(v int) {
	p.mu.Lock()
	select {
	case p.out <- v:
	default:
	}
	p.mu.Unlock()
}
