// Golden fixture for the simtime units checker.
package simtime

import "repro/internal/sim"

const pollInterval sim.Time = 40000 // want `raw constant 40000 used as sim\.Time`

const okInterval = 40 * sim.Microsecond

func schedule(e *sim.Engine) {
	e.At(40000, func() {}) // want `raw constant 40000 used as sim\.Time`
	e.At(40*sim.Microsecond, func() {})
	e.At(0, func() {})                   // zero is zero in every unit
	e.After(sim.Time(3*1000), func() {}) // want `raw constant 3000 used as sim\.Time`
}

type timing struct {
	ReadLatency sim.Time
	XferLatency sim.Time
}

func badDefaults() timing {
	return timing{
		ReadLatency: 5212, // want `raw constant 5212 used as sim\.Time`
		XferLatency: 3 * sim.Microsecond,
	}
}

func okDefaults() timing {
	return timing{
		ReadLatency: 52*sim.Microsecond + 120*sim.Nanosecond,
		XferLatency: 3 * sim.Microsecond,
	}
}

// Scalars that multiply or divide an existing sim.Time value are
// factors, not durations.
func okScale(t sim.Time) sim.Time {
	half := t / 2
	return 2*t + half
}

func badOffset(t sim.Time) sim.Time {
	return t + 500 // want `raw constant 500 used as sim\.Time`
}

func badCompare(t sim.Time) bool {
	return t > 100 // want `raw constant 100 used as sim\.Time`
}

func badConversion(n int64) sim.Time {
	return sim.Time(n * 1000) // want `unit-free integer arithmetic`
}

func okConversion(rawNS int64) sim.Time {
	return sim.Time(rawNS) // data-driven value already in clock units
}

func okConversionScaled(ticks int64) sim.Time {
	return sim.Time(ticks) * 100 * sim.Nanosecond
}

func allowedRaw() sim.Time {
	//riflint:allow simtime -- golden test: calibration constant from the paper
	return 1234
}
