// Package clean is the positive space of the hotpath lint: an
// annotated function written in the repository's scratch-reuse idiom —
// preallocated buffers, index loops, pointer receivers, failure-only
// panics — passes with no diagnostics at all.
package clean

import "fmt"

type decoder struct {
	work  []float64
	total float64
	n     int
}

//riflint:hotpath
func (d *decoder) decode(in []float64) bool {
	if len(in) != len(d.work) {
		panic(fmt.Sprintf("clean: length mismatch %d != %d", len(in), len(d.work)))
	}
	d.total = 0
	for i := range in {
		d.work[i] = in[i] * 0.75
		d.total += d.work[i]
	}
	d.n++
	return d.converged()
}

// converged is hot via decode; its body reuses state and allocates
// nothing.
func (d *decoder) converged() bool {
	return d.total < float64(d.n)
}
