// Package basic exercises the hotpath allocation lint: every
// allocating construct inside an annotated function is flagged, the
// static call graph drags callees into the hot set, the panic subtree
// and //riflint:allow escapes stay silent, and unannotated code is
// never touched.
package basic

import (
	"fmt"
	"strings"
)

type dev struct {
	scratch []int
	out     []int
	hooks   []func()
}

//riflint:hotpath
func (d *dev) step(n int) int {
	m := map[int]int{}            // want `map literal allocated in hot path dev.step`
	s := []int{1, 2, 3}           // want `slice literal allocated in hot path dev.step`
	d.out = append(d.out, n)      // want `append may grow its backing array in hot path dev.step`
	buf := make([]byte, n)        // want `make in hot path dev.step`
	p := new(int)                 // want `new in hot path dev.step`
	fn := func() int { return n } // want `closure allocated in hot path dev.step`
	fmt.Println()                 // want `fmt.Println allocates in hot path dev.step`
	var b strings.Builder
	b.WriteString("x") // want `strings.Builder use in hot path dev.step`
	var sink interface{}
	sink = n      // want `interface boxing of int in hot path dev.step`
	ptr := &dev{} // want `heap composite literal .* in hot path dev.step`
	if n < 0 {
		// The failure path may allocate: the panic argument subtree is
		// exempt even though Sprintf allocates.
		panic(fmt.Sprintf("hotpath: negative step %d", n))
	}
	//riflint:allow alloc -- fixture: measured warm append pinned by a benchmark
	d.hooks = append(d.hooks, nil)
	_, _, _, _, _, _, _ = m, s, buf, p, fn, sink, ptr
	return d.helper(n)
}

// helper carries no annotation but is called from step, so the hot set
// pulls it in transitively.
func (d *dev) helper(n int) int {
	d.scratch = append(d.scratch, n) // want `append may grow its backing array in hot path dev.helper \(hot via dev.step\)`
	return len(d.scratch)
}

// cold is neither annotated nor reachable from hot code: it may
// allocate freely.
func cold() []int {
	out := make([]int, 0, 8)
	return append(out, 1, 2, 3)
}
