// The same injector written the way internal/faults does it: every
// stream derives from the run seed, static faults come from a pure
// hash, and class iteration is order-free. No diagnostics expected.
package faultinject

import "math/rand/v2"

const senseStream = 0x201

type cleanInjector struct {
	seed  uint64
	sense *rand.Rand
}

func newClean(seed uint64) *cleanInjector {
	return &cleanInjector{
		seed:  seed,
		sense: rand.New(rand.NewPCG(seed, senseStream)),
	}
}

// mix is a splitmix64-style hash: static topology faults are a pure
// function of (seed, id), independent of query order.
func (inj *cleanInjector) mix(id uint64) uint64 {
	z := inj.seed + id*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (inj *cleanInjector) blockStuck(id int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(inj.mix(uint64(id)))/(1<<64) < rate
}

func (inj *cleanInjector) senseFault(rate float64) bool {
	if rate <= 0 {
		return false // rate zero must not draw: runs stay byte-identical
	}
	return inj.sense.Float64() < rate
}
