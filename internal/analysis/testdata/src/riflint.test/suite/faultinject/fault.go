// Golden fixture: a fault injector written the wrong way. Every
// mistake here is one the real internal/faults package must never
// make — unseeded RNG streams, wall-clock seeding, global rand draws
// and order-sensitive map iteration all break the "same seed + same
// fault config = byte-identical run" contract.
package faultinject

import (
	"fmt"
	"math/rand/v2"
	"time"
)

type injector struct {
	rng   *rand.Rand
	rates map[string]float64
}

func badHardcodedSeed() *injector {
	return &injector{rng: rand.New(rand.NewPCG(1234, 0))} // want `hard-coded seed 1234 in rand\.NewPCG`
}

func badWallClockSeed() *injector {
	seed := uint64(time.Now().UnixNano()) // want `time\.Now reads the wall clock`
	return &injector{rng: rand.New(rand.NewPCG(seed, 0))}
}

func (inj *injector) badGlobalDraw(rate float64) bool {
	return rand.Float64() < rate // want `math/rand/v2\.Float64 draws from the process-global random stream`
}

func (inj *injector) badClassOrder() []string {
	var fired []string
	for class, rate := range inj.rates { // want `appending to "fired" inside a map range`
		if inj.rng.Float64() < rate {
			fired = append(fired, class)
		}
	}
	return fired
}

func (inj *injector) badReport() {
	for class, rate := range inj.rates { // want `calling fmt\.Printf inside a map range`
		fmt.Printf("%s=%g\n", class, rate)
	}
}
