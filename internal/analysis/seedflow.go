package analysis

import (
	"go/ast"
	"go/types"
)

// SeedFlow keeps every random stream answerable to the run seed: the
// seed argument of rand.NewPCG / rand.NewSource in non-test code must
// be derived from a parameter, field or config value, never a
// hard-coded literal. A literal seed silently pins per-block process
// variation (and any other stochastic input) to one universe, so
// "vary the seed" sweeps stop varying anything.
//
// Stream/sequence selectors (the second NewPCG argument) may be
// literals — they are labels that keep streams independent, not seeds.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: "require rand.NewPCG/NewSource seeds in non-test code to flow from " +
		"run configuration rather than hard-coded literals",
	Run: runSeedFlow,
}

func runSeedFlow(pass *Pass) {
	for _, file := range pass.Syntax {
		if len(file.Decls) == 0 || pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFrom(pass.TypesInfo, call.Fun, "math/rand/v2")
			if fn == nil {
				fn = funcFrom(pass.TypesInfo, call.Fun, "math/rand")
			}
			if fn == nil || (fn.Name() != "NewPCG" && fn.Name() != "NewSource") {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			seed := call.Args[0]
			tv, ok := pass.TypesInfo.Types[seed]
			if !ok || tv.Value == nil {
				return true // seed is computed from something — fine
			}
			pass.Report(seed.Pos(), "seedflow",
				"hard-coded seed %s in rand.%s: thread the run seed (config/parameter) "+
					"through so per-run variation stays controlled by one knob",
				tv.Value.ExactString(), fn.Name())
			return true
		})
	}
}
