package analysis

// Error-value taint tracking for the errorflow analyzer. The engine
// answers two questions about a function body:
//
//  1. Does this statement list "consume" a given error variable —
//     return it (or a replacement error), pass it to a function, store
//     it somewhere that outlives the function, panic, or count the
//     event on an instrument? A checked-but-unconsumed error is a
//     silently swallowed failure.
//
//  2. Is an error variable's definition dead — overwritten by a later
//     assignment in the same statement list with no read in between?
//
// Both are deliberately flow-light: consumption looks for syntactic
// evidence anywhere in the region, and dead definitions are only
// flagged between *sibling* statements of one block (where execution
// order is linear and the result is exact), never across branches or
// loop back-edges.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

// errorResultIndexes returns the positions of error-typed results in a
// call's result tuple (or a single-value call's sole result).
func errorResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				out = append(out, i)
			}
		}
		return out
	default:
		if isErrorType(t) {
			return []int{0}
		}
	}
	return nil
}

// consumesError reports whether the region rooted at node consumes the
// error object err: uses it as a call/panic argument, mentions it in a
// return, assigns it to a non-blank destination, sends it on a
// channel, or — the counting idiom — updates an obs instrument or
// bumps a counter-shaped field (IncDec / += on a named location).
func consumesError(info *types.Info, node ast.Node, err types.Object) bool {
	consumed := false
	ast.Inspect(node, func(n ast.Node) bool {
		if consumed {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if mentionsObject(info, arg, err) {
					consumed = true
					return false
				}
			}
			if isInstrumentCall(info, n) {
				consumed = true
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsObject(info, res, err) || producesError(info, res) {
					consumed = true
					return false
				}
			}
		case *ast.AssignStmt:
			// err handed to a non-blank destination (a field, another
			// variable) survives the guard; compound assignments that
			// bump a counter-shaped location count the event.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.OR_ASSIGN {
				consumed = true
				return false
			}
			for _, rhs := range n.Rhs {
				if mentionsObject(info, rhs, err) {
					consumed = true
					return false
				}
			}
		case *ast.IncDecStmt:
			consumed = true
			return false
		case *ast.SendStmt:
			if mentionsObject(info, n.Value, err) {
				consumed = true
				return false
			}
		case *ast.BranchStmt:
			// goto/break/continue alone do not consume; keep walking.
		}
		return true
	})
	return consumed
}

// producesError reports whether expr's static type is error — a
// replacement error (fmt.Errorf wrap, sentinel, status conversion)
// being handed back in place of the checked one.
func producesError(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && isErrorType(tv.Type)
}

// mentionsObject reports whether the subtree references obj.
func mentionsObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isInstrumentCall reports whether call is a method call on an obs
// instrument handle (Counter.Add, Histogram.Observe, ...): the
// sanctioned way to count a degraded-but-not-fatal event.
func isInstrumentCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return obsInstrumentName(sig.Recv().Type()) != ""
}

// deadErrorWrite is one overwritten-unread error definition.
type deadErrorWrite struct {
	obj  types.Object
	prev token.Pos // the overwritten definition
	pos  token.Pos // the overwriting assignment
}

// deadErrorWrites scans one statement list (sibling statements only,
// so execution order is linear) for error variables assigned twice
// with no intervening read. A nested compound statement or closure
// that mentions the variable at all is treated as both a read and a
// write — conservative in exactly the direction that avoids false
// positives.
func deadErrorWrites(info *types.Info, stmts []ast.Stmt) []deadErrorWrite {
	lastWrite := make(map[types.Object]token.Pos)
	var out []deadErrorWrite

	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// Reads first: anything on the RHS (or an LHS index
			// expression) consumes pending writes.
			for _, rhs := range s.Rhs {
				clearMentioned(info, rhs, lastWrite)
			}
			for _, lhs := range s.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); !ok {
					clearMentioned(info, lhs, lastWrite)
				}
			}
			for _, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
					continue
				}
				if prev, ok := lastWrite[obj]; ok {
					out = append(out, deadErrorWrite{obj: obj, prev: prev, pos: id.Pos()})
				}
				lastWrite[obj] = id.Pos()
			}
		default:
			// Any other statement mentioning a tracked variable reads
			// it (or jumps somewhere that might); clear it.
			clearMentionedStmt(info, stmt, lastWrite)
		}
	}
	return out
}

func clearMentioned(info *types.Info, node ast.Node, lastWrite map[types.Object]token.Pos) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				delete(lastWrite, obj)
			}
		}
		return true
	})
}

func clearMentionedStmt(info *types.Info, stmt ast.Stmt, lastWrite map[types.Object]token.Pos) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				delete(lastWrite, obj)
			}
			if obj := info.Defs[id]; obj != nil {
				delete(lastWrite, obj)
			}
		}
		return true
	})
}
