package analysis

import "testing"

func TestHotPath(t *testing.T) {
	runGolden(t, HotPath, "riflint.test/hotpath/basic")
}

// An annotated function written in the scratch-reuse idiom — and its
// transitive callees — must produce no diagnostics.
func TestHotPathClean(t *testing.T) {
	runGoldenClean(t, []*Analyzer{HotPath}, "riflint.test/hotpath/clean")
}
