package analysis

// A lightweight intra-function control-flow walker. Go's structured
// statements give an AST whose block structure already encodes the
// interesting control flow for the lock-state analysis ctxflow runs:
// the walker linearizes statement lists, forks abstract state at
// branches, joins it conservatively afterwards, and treats loop bodies
// as executing under their entry state. That is deliberately weaker
// than a fixpoint over a basic-block graph — a fact established at the
// *end* of a loop body is not re-fed to its top — but it is sound for
// the "may hold a lock" analysis (joins are unions) and costs one
// linear pass. Gotos and labeled continues are not modeled; none occur
// in the analyzed packages.

import "go/ast"

// flowState is the abstract state threaded through a flowWalk: a
// may-hold set of mutex keys (the rendered receiver expression, e.g.
// "s.mu"). A key held on any path into a statement is held at it.
type flowState struct {
	held map[string]bool
}

func newFlowState() *flowState {
	return &flowState{held: make(map[string]bool)}
}

func (s *flowState) clone() *flowState {
	c := newFlowState()
	for k := range s.held {
		c.held[k] = true
	}
	return c
}

// join folds other into s (union: "may be held").
func (s *flowState) join(other *flowState) {
	for k := range other.held {
		s.held[k] = true
	}
}

func (s *flowState) acquire(key string) { s.held[key] = true }
func (s *flowState) release(key string) { delete(s.held, key) }

func (s *flowState) anyHeld() bool { return len(s.held) > 0 }

func (s *flowState) heldKeys() []string {
	var out []string
	for k := range s.held {
		out = append(out, k)
	}
	// Deterministic diagnostic order without importing sort for two
	// elements: simple insertion.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// flowVisitor receives each statement in control-flow order with the
// abstract state holding on entry to it. It may mutate the state
// (acquire/release) to model the statement's effect.
type flowVisitor func(stmt ast.Stmt, state *flowState)

// flowWalk traverses stmts in control-flow order, forking state at
// branches and joining afterwards. Nested function literals are NOT
// entered: they execute at an unknown later time under unknown state.
func flowWalk(stmts []ast.Stmt, state *flowState, visit flowVisitor) {
	for _, stmt := range stmts {
		walkStmt(stmt, state, visit)
	}
}

func walkStmt(stmt ast.Stmt, state *flowState, visit flowVisitor) {
	if stmt == nil {
		return
	}
	visit(stmt, state)
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		flowWalk(s.List, state, visit)
	case *ast.IfStmt:
		walkStmt(s.Init, state, visit)
		then := state.clone()
		flowWalk(s.Body.List, then, visit)
		if s.Else != nil {
			els := state.clone()
			walkStmt(s.Else, els, visit)
			then.join(els)
		} else {
			then.join(state)
		}
		*state = *then
	case *ast.ForStmt:
		walkStmt(s.Init, state, visit)
		body := state.clone()
		walkStmt(s.Post, body, visit)
		flowWalk(s.Body.List, body, visit)
		state.join(body)
	case *ast.RangeStmt:
		body := state.clone()
		flowWalk(s.Body.List, body, visit)
		state.join(body)
	case *ast.SwitchStmt:
		walkStmt(s.Init, state, visit)
		walkCases(s.Body, state, visit)
	case *ast.TypeSwitchStmt:
		walkStmt(s.Init, state, visit)
		walkCases(s.Body, state, visit)
	case *ast.SelectStmt:
		walkCases(s.Body, state, visit)
	case *ast.LabeledStmt:
		walkStmt(s.Stmt, state, visit)
	}
}

// walkCases forks the state per case clause and joins the results:
// exactly one clause runs, so the after-state is the union of the
// per-clause exits (plus the entry state for switches that may match
// nothing).
func walkCases(body *ast.BlockStmt, state *flowState, visit flowVisitor) {
	merged := state.clone()
	for _, clause := range body.List {
		cs := state.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			flowWalk(c.Body, cs, visit)
		case *ast.CommClause:
			walkStmt(c.Comm, cs, visit)
			flowWalk(c.Body, cs, visit)
		}
		merged.join(cs)
	}
	*state = *merged
}
