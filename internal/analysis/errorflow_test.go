package analysis

import "testing"

func TestErrorFlow(t *testing.T) {
	runGolden(t, ErrorFlow, "riflint.test/errorflow/basic")
}

// The persistence tier's durability pattern: dropped or masked
// fsync/Close errors on a write path are flagged; the atomic-write
// idiom folding them into one returned error stays silent.
func TestErrorFlowPersist(t *testing.T) {
	runGolden(t, ErrorFlow, "riflint.test/errorflow/persist")
}

// The degradation-ladder idioms (wrap-and-return, store, forward,
// count) must pass untouched.
func TestErrorFlowClean(t *testing.T) {
	runGoldenClean(t, []*Analyzer{ErrorFlow}, "riflint.test/errorflow/clean")
}
