package analysis

import "testing"

func TestErrorFlow(t *testing.T) {
	runGolden(t, ErrorFlow, "riflint.test/errorflow/basic")
}

// The degradation-ladder idioms (wrap-and-return, store, forward,
// count) must pass untouched.
func TestErrorFlowClean(t *testing.T) {
	runGoldenClean(t, []*Analyzer{ErrorFlow}, "riflint.test/errorflow/clean")
}
