package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Deps       []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` on the patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Deps,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup adapts a map of import path -> export-data file to the
// lookup signature the gc importer expects.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// parseFiles parses the named files (joined to dir when relative) with
// comments retained.
func parseFiles(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	var out []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// newTypesInfo allocates the type-checker fact maps the analyzers use.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// checkPackage type-checks one parsed package against an importer.
func checkPackage(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	info := newTypesInfo()
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg := &Package{
		PkgPath:   path,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	pkg.buildAllows()
	return pkg, nil
}

// ParseFiles parses the named Go files (joined to dir when relative)
// with comments retained. Exported for the vettool driver, which gets
// its file list from the go command rather than `go list`.
func ParseFiles(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	return parseFiles(fset, dir, files)
}

// Check type-checks one parsed package against an importer and wraps
// it for analysis. Exported for the vettool driver.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	return checkPackage(fset, path, files, imp, goVersion)
}

// Load resolves the package patterns (relative to dir; "" means the
// current directory) and returns the matched packages parsed and
// type-checked from source. Dependencies — including other packages in
// this module — are imported from the toolchain's export data, so a
// load costs one `go list` plus parsing only the packages under
// analysis.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	deep := deriveDeepSim(listed)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, err := checkPackage(fset, t.ImportPath, files, imp, "")
		if err != nil {
			return nil, err
		}
		pkg.DeepSim = deep[t.ImportPath]
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// deriveDeepSim computes the maporder blast radius from the import
// graph instead of a hand-maintained list: a module package is deep
// when it transitively imports one of the deepSimRoots (it can perturb
// event order), or when a package that does depends on it (its output
// feeds a sim-driven artifact, so unordered iteration there scrambles
// reports just as surely). go list's Deps field is already transitive,
// so each direction is a single pass.
func deriveDeepSim(listed []*listedPackage) map[string]bool {
	roots := make(map[string]bool, len(deepSimRoots))
	for _, r := range deepSimRoots {
		roots[r] = true
	}
	module := make(map[string]*listedPackage)
	for _, p := range listed {
		if !p.Standard {
			module[p.ImportPath] = p
		}
	}
	deep := make(map[string]bool)
	for path, p := range module {
		if roots[path] {
			deep[path] = true
			continue
		}
		for _, d := range p.Deps {
			if roots[d] {
				deep[path] = true
				break
			}
		}
	}
	var importers []string
	for path := range deep {
		importers = append(importers, path)
	}
	for _, path := range importers {
		for _, d := range module[path].Deps {
			if _, ok := module[d]; ok {
				deep[d] = true
			}
		}
	}
	return deep
}
