package analysis

import "testing"

func TestCtxFlow(t *testing.T) {
	runGolden(t, CtxFlow, "riflint.test/ctxflow/basic")
}

// Stop-threaded goroutines (channel, context, bound func() bool hook)
// and unlocked or non-blocking sends must pass untouched.
func TestCtxFlowClean(t *testing.T) {
	runGoldenClean(t, []*Analyzer{CtxFlow}, "riflint.test/ctxflow/clean")
}
