// Package analysis is a self-contained static-analysis framework plus
// the riflint analyzer suite that enforces the simulator's
// determinism, sim-time and observability invariants.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is built only on the standard
// library so the repository carries no external dependencies: packages
// are loaded with `go list -deps -export -json` and type-checked from
// source against the toolchain's export data (see load.go).
//
// Suppression: a finding can be waived with a directive comment on the
// flagged line or the line directly above it:
//
//	//riflint:allow <category> -- <justification>
//
// where <category> is the Diagnostic.Category of the finding (e.g.
// wallclock, globalrand, maporder, simtime, dupinstrument, rawinstrument,
// seedflow). The justification after "--" is mandatory by convention:
// an allow without a reason should not survive review.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports violations on one package via pass.Report.
	Run func(pass *Pass)
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// DeepSim marks packages inside the maporder blast radius: the
	// package transitively imports the sim engine or device model, or
	// feeds output into a package that does. Load derives it from the
	// import graph; the vettool driver from propagated facts; the
	// golden harness opts fixtures in.
	DeepSim bool

	allows map[string]map[int][]string // file -> line -> allowed categories
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Category string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package and collects its
// diagnostics.
type Pass struct {
	*Package
	Analyzer *Analyzer
	// Prog is the whole-load interprocedural view (call graph, hot
	// set). It spans every package of the Run, not just this one.
	Prog *Program

	diags []Diagnostic
}

// Report records a violation at pos unless an //riflint:allow directive
// for the category covers that line.
func (p *Pass) Report(pos token.Pos, category, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allowed(position, category) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. The suite
// checks shipping code; tests routinely use wall clocks, literal tick
// counts and ad-hoc seeds on purpose.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// allowed reports whether the line at position (or the line above it)
// carries an //riflint:allow directive naming category.
func (p *Pass) allowed(position token.Position, category string) bool {
	lines := p.allows[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, cat := range lines[line] {
			if cat == category {
				return true
			}
		}
	}
	return false
}

// buildAllows indexes every //riflint:allow directive in the package.
func (pkg *Package) buildAllows() {
	pkg.allows = make(map[string]map[int][]string)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//riflint:allow")
				if !ok {
					continue
				}
				// Strip the optional "-- reason" tail, then accept a
				// comma- or space-separated category list.
				if i := strings.Index(text, "--"); i >= 0 {
					text = text[:i]
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := pkg.allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					pkg.allows[pos.Filename] = byLine
				}
				for _, cat := range strings.FieldsFunc(text, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					byLine[pos.Line] = append(byLine[pos.Line], cat)
				}
			}
		}
	}
}

// Run applies every analyzer to every package and returns the combined
// diagnostics in (file, line, column, analyzer) order. The
// interprocedural Program is built once over the whole load so
// analyzers see cross-package call edges.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Package: pkg, Analyzer: a, Prog: prog}
			a.Run(pass)
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns the full riflint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		SimTime,
		ObsSafe,
		SeedFlow,
		HotPath,
		ErrorFlow,
		CtxFlow,
	}
}

// ByName resolves a comma-separated analyzer list ("" selects all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the analyzers in the suite.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// walkStack traverses the AST calling fn with each node and the stack
// of its ancestors (outermost first, not including n itself). If fn
// returns false the node's children are skipped.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack, or nil.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
