package analysis

// The errorflow analyzer enforces the degradation contract on the
// read/fault path, the result-serving layer, and the persistence
// tier: an error produced in internal/ssd, internal/faults,
// internal/nvme, internal/replay, internal/resultcache,
// internal/serve or cmd/rifload must go somewhere — returned to the
// caller (possibly wrapped), handed to another function, stored, sent
// on a channel, or counted on an obs instrument. On the durability
// path this is load-bearing in the most literal way: a dropped fsync
// or Close error is the canonical silent-data-loss bug. Three shapes
// are flagged:
//
//   - a call's error result assigned to the blank identifier, or a
//     call whose sole error result is discarded as a bare statement
//     (category droppederr)
//   - an error variable that is assigned but never consumed anywhere
//     in the function (category droppederr)
//   - an error variable overwritten by a sibling statement before any
//     read — the first failure silently vanishes (category deaderr)
//
// A deliberate drop is waived in place with
//
//	//riflint:allow droppederr -- <why this failure is ignorable>
//
// which keeps every swallowed error greppable and reviewed.

import (
	"go/ast"
	"go/types"
	"strings"
)

// errorFlowPackages is the read/fault path plus the result-serving
// layer: the packages whose errors encode media failures, degradation
// outcomes, or wrong-bytes hazards (a swallowed cache or load-harness
// error can silently serve stale or mismatched artifacts).
var errorFlowPackages = map[string]bool{
	"repro/internal/ssd":         true,
	"repro/internal/faults":      true,
	"repro/internal/nvme":        true,
	"repro/internal/replay":      true,
	"repro/internal/resultcache": true,
	"repro/internal/serve":       true,
	"repro/cmd/rifload":          true,
}

func inErrorFlowPackage(path string) bool {
	return errorFlowPackages[path] || strings.HasPrefix(path, "riflint.test/errorflow")
}

// ErrorFlow rejects silently dropped or overwritten errors on the
// read/fault path.
var ErrorFlow = &Analyzer{
	Name: "errorflow",
	Doc:  "errors on the read/fault path must be returned, stored, or counted — never silently dropped",
	Run:  runErrorFlow,
}

func runErrorFlow(pass *Pass) {
	if !inErrorFlowPackage(pass.PkgPath) {
		return
	}
	info := pass.TypesInfo
	for _, file := range pass.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			checkErrorFlow(pass, info, fd.Body)
		}
	}
}

func checkErrorFlow(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Unconsumed definitions: every error variable assigned from a call
	// must be consumed somewhere in the body.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkErrorAssign(pass, info, body, n)
		case *ast.ExprStmt:
			// A call with an error result used as a bare statement
			// throws the error away entirely.
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if idx := errorResultIndexes(info, call); len(idx) > 0 && !neverFails(info, call) {
				pass.Report(call.Pos(), "droppederr", "error result of call discarded; handle it, count it, or annotate the drop")
			}
		case *ast.BlockStmt:
			for _, dw := range deadErrorWrites(info, n.List) {
				pass.Report(dw.pos, "deaderr", "%s overwritten before the previous error was read", dw.obj.Name())
			}
		}
		return true
	})
}

// checkErrorAssign handles one assignment with error-typed results on
// the RHS: blank discards are flagged immediately; named error
// variables must be consumed later in the body.
func checkErrorAssign(pass *Pass, info *types.Info, body *ast.BlockStmt, as *ast.AssignStmt) {
	// Only call-result assignments produce errors worth tracking here;
	// `err := errors.New(...)` constructions are producers whose
	// consumption the enclosing return path covers.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for _, i := range errorResultIndexes(info, call) {
			if i >= len(as.Lhs) {
				continue
			}
			checkErrorDest(pass, info, body, as.Lhs[i], call)
		}
		return
	}
	if len(as.Rhs) == len(as.Lhs) {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if idx := errorResultIndexes(info, call); len(idx) == 1 && idx[0] == 0 {
				checkErrorDest(pass, info, body, as.Lhs[i], call)
			}
		}
	}
}

func checkErrorDest(pass *Pass, info *types.Info, body *ast.BlockStmt, lhs ast.Expr, call *ast.CallExpr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // stored into a field or slot: that IS consumption
	}
	if id.Name == "_" {
		pass.Report(id.Pos(), "droppederr", "error result assigned to _; handle it, count it, or annotate the drop")
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || !isErrorType(obj.Type()) {
		return
	}
	// Results and package-level variables escape the function by
	// construction.
	if v, ok := obj.(*types.Var); ok && (v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope()) {
		return
	}
	if isNamedResult(info, body, obj) {
		return
	}
	if !consumesError(info, body, obj) {
		pass.Report(id.Pos(), "droppederr", "%s is assigned but never returned, stored, or counted in this function", id.Name)
	}
}

// neverFails recognizes calls whose error result is nil by documented
// contract: fmt.Fprint* writing to a *strings.Builder or
// *bytes.Buffer. Dropping those is idiomatic, not a swallowed failure.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Fprint", "Fprintf", "Fprintln":
	default:
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	return namedFrom(tv.Type, "strings", "Builder") || namedFrom(tv.Type, "bytes", "Buffer")
}

// isNamedResult reports whether obj is a named result parameter of the
// function whose body this is: assigning one sets the return value, so
// it is consumed by definition.
func isNamedResult(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// A named result is declared at the function's position, before the
	// body, in the function scope enclosing the body's statements.
	return v.Pos() < body.Pos() && !v.IsField()
}
