package analysis

import (
	"bufio"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestHotPathAnnotationsArePinned cross-checks the static and runtime
// halves of the hot-path guard: every package carrying a
// //riflint:hotpath annotation must also carry an AllocsPerRun pin in
// its tests (so the lint can't drift from what the runtime actually
// measures), and every package with an AllocsPerRun pin must carry an
// annotation (so the benchmark guard can't protect code the lint
// ignores). The two sets are maintained independently; this test is
// the only thing that keeps them from silently diverging.
func TestHotPathAnnotationsArePinned(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	annotated := map[string]bool{} // package dir, relative to module root
	pinned := map[string]bool{}
	// Built by concatenation so this file's own source never matches
	// its own needle.
	pinCall := "testing.Allocs" + "PerRun("
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		isTest := strings.HasSuffix(name, "_test.go")
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			// Exact-line match: the directive is a whole comment line,
			// which also keeps the analyzer's own sources (which quote
			// the directive in strings and prose) out of the set.
			if !isTest && line == HotPathDirective {
				annotated[rel] = true
			}
			if isTest && strings.Contains(line, pinCall) {
				pinned[rel] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(annotated) == 0 {
		t.Fatal("no //riflint:hotpath annotations found outside testdata; the scan is broken")
	}
	for _, dir := range sortedKeys(annotated) {
		if !pinned[dir] {
			t.Errorf("package %s carries //riflint:hotpath annotations but no testing.AllocsPerRun pin; add a zero-alloc test so the static guard stays backed by a runtime measurement", dir)
		}
	}
	for _, dir := range sortedKeys(pinned) {
		if !annotated[dir] {
			t.Errorf("package %s pins allocations with testing.AllocsPerRun but carries no //riflint:hotpath annotation; annotate the measured function so riflint enforces it statically", dir)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
