package analysis

// The hotpath analyzer statically protects the allocation-free wins of
// the sim engine rewrite and the LDPC scratch reuse: a function whose
// doc comment carries //riflint:hotpath — and everything it
// transitively calls through the static call graph — must not contain
// an allocation site. Flagged constructs:
//
//   - map, slice and &composite literals (heap values)
//   - make and new
//   - append (may grow its backing array)
//   - function literals (closures capture by heap allocation)
//   - calls into fmt, and strings.Builder use
//   - boxing a non-pointer-shaped value into an interface
//
// Failure paths are exempt: everything inside the argument list of a
// panic call may allocate (a panic ends the experiment anyway; the
// fault ladders convert recoverable failures into counted statuses
// long before this).
//
// Intentional, measured allocations — the event free-list refill, a
// warm append into preallocated capacity — are waived per line with
//
//	//riflint:allow alloc -- <why this does not allocate in steady state>
//
// and every waiver stays pinned by the AllocsPerRun benchmarks the
// cross-check test ties to this annotation set.

import (
	"go/ast"
	"go/types"
)

// HotPath rejects allocation sites in //riflint:hotpath functions and
// their static callees.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "annotated hot paths and their static callees must be allocation-free",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) {
	for _, fi := range pass.Prog.HotFuncs(pass.Package) {
		if pass.InTestFile(fi.Body().Pos()) {
			continue
		}
		checkHotFunc(pass, fi)
	}
}

// hotContext renders "f" for annotated roots and "f (hot via root)"
// for functions pulled in transitively, so a diagnostic names the
// annotation that put the function on the hot path.
func hotContext(fi *FuncInfo) string {
	if root := fi.Root(); root != fi {
		return fi.Name() + " (hot via " + root.Name() + ")"
	}
	return fi.Name()
}

func checkHotFunc(pass *Pass, fi *FuncInfo) {
	info := pass.TypesInfo
	where := hotContext(fi)
	walkStack(fi.Body(), func(n ast.Node, stack []ast.Node) bool {
		if inPanicArgs(stack) {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != fi.Lit {
				pass.Report(n.Pos(), "alloc", "closure allocated in hot path %s", where)
				return false // its body is checked via the call graph if it runs hot
			}
		case *ast.CompositeLit:
			tv := info.Types[n]
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Report(n.Pos(), "alloc", "map literal allocated in hot path %s", where)
			case *types.Slice:
				pass.Report(n.Pos(), "alloc", "slice literal allocated in hot path %s", where)
			default:
				// A plain struct/array literal lives on the stack unless
				// its address is taken.
				if len(stack) > 0 {
					if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op.String() == "&" {
						pass.Report(u.Pos(), "alloc", "heap composite literal (&%s{...}) in hot path %s", typeString(tv.Type), where)
					}
				}
			}
		case *ast.CallExpr:
			if isPanicCall(n) {
				return true // the failure path may allocate; its subtree is exempt
			}
			checkHotCall(pass, n, where)
		}
		checkHotBoxing(pass, info, n, where)
		return true
	})
}

// checkHotCall flags builtin allocators and known-allocating stdlib on
// the hot path.
func checkHotCall(pass *Pass, call *ast.CallExpr, where string) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Report(call.Pos(), "alloc", "make in hot path %s", where)
			case "new":
				pass.Report(call.Pos(), "alloc", "new in hot path %s", where)
			case "append":
				pass.Report(call.Pos(), "alloc", "append may grow its backing array in hot path %s", where)
			}
			return
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if fn.Pkg().Path() == "fmt" {
				pass.Report(call.Pos(), "alloc", "fmt.%s allocates in hot path %s", fn.Name(), where)
				return
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
				namedFrom(sig.Recv().Type(), "strings", "Builder") {
				pass.Report(call.Pos(), "alloc", "strings.Builder use in hot path %s", where)
			}
		}
	}
}

// checkHotBoxing flags implicit conversions of non-pointer-shaped
// concrete values into interface slots — assignments and call
// arguments where the static context type is an interface but the
// value is not. Boxing a value type heap-allocates the copy.
func checkHotBoxing(pass *Pass, info *types.Info, n ast.Node, where string) {
	report := func(expr ast.Expr, dst types.Type) {
		if expr == nil || dst == nil {
			return
		}
		if _, ok := dst.Underlying().(*types.Interface); !ok {
			return
		}
		tv, ok := info.Types[expr]
		if !ok || tv.Type == nil || tv.IsNil() {
			return
		}
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			return
		}
		if pointerShaped(tv.Type) {
			return
		}
		// Constants of basic type stored in interfaces use shared
		// read-only boxes for small values, but not in general; flag
		// only non-constant operands to keep the signal high.
		if tv.Value != nil {
			return
		}
		pass.Report(expr.Pos(), "alloc", "interface boxing of %s in hot path %s", typeString(tv.Type), where)
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		sig := callSignature(info, n)
		if sig == nil {
			return
		}
		for i, arg := range n.Args {
			if i >= sig.Params().Len() {
				if sig.Variadic() {
					if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
						report(arg, s.Elem())
					}
				}
				continue
			}
			pt := sig.Params().At(i).Type()
			if sig.Variadic() && i == sig.Params().Len()-1 && !hasEllipsis(n) {
				if s, ok := pt.(*types.Slice); ok {
					pt = s.Elem()
				}
			}
			report(arg, pt)
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			lt, ok := info.Types[n.Lhs[i]]
			if !ok {
				if id, isID := ast.Unparen(n.Lhs[i]).(*ast.Ident); isID {
					if obj := info.Defs[id]; obj != nil {
						report(n.Rhs[i], obj.Type())
					}
				}
				continue
			}
			report(n.Rhs[i], lt.Type)
		}
	}
}

// callSignature returns the signature of the called function, nil for
// builtins and type conversions.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func hasEllipsis(call *ast.CallExpr) bool { return call.Ellipsis.IsValid() }

// pointerShaped reports whether values of t are stored directly in an
// interface word (no boxing copy): pointers, channels, maps, funcs and
// unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// inPanicArgs reports whether the node's ancestor stack passes through
// the argument list of a call to the panic builtin.
func inPanicArgs(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if call, ok := stack[i].(*ast.CallExpr); ok && isPanicCall(call) {
			return true
		}
	}
	return false
}
