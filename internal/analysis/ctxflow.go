package analysis

// The ctxflow analyzer guards the concurrency layer's shutdown
// contract. Two checks, both scoped to the goroutine-spawning packages
// (internal/fleet, internal/serve, internal/replay,
// internal/resultcache, cmd/rifload):
//
//   - unstoppable: every `go` statement must thread a stop/cancel
//     signal into the goroutine it spawns. A signal is a value of a
//     stop-like type — chan struct{} (any direction), context.Context,
//     or func() bool (the fleet.StopAny idiom) — referenced anywhere
//     in the spawned call, including through a function literal bound
//     once to a local (`cell := func(...) {...}; go func() { cell(i) }()`).
//     A goroutine with no reachable stop signal runs until process
//     exit and breaks graceful drain.
//
//   - lockedsend: a mutex acquired on some path must not be held
//     across a blocking channel send. The receiver may need the same
//     lock to drain the channel — the classic shutdown deadlock. Sends
//     inside a select that has a default clause are non-blocking and
//     exempt.
//
// Waive a deliberate exception in place with
//
//	//riflint:allow unstoppable -- <why this goroutine may outlive stop>
//	//riflint:allow lockedsend -- <why the receiver cannot need this lock>

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxFlowPackages is the goroutine-spawning layer under the shutdown
// contract.
var ctxFlowPackages = map[string]bool{
	"repro/internal/fleet":       true,
	"repro/internal/serve":       true,
	"repro/internal/replay":      true,
	"repro/internal/resultcache": true,
	"repro/cmd/rifload":          true,
}

func inCtxFlowPackage(path string) bool {
	return ctxFlowPackages[path] || strings.HasPrefix(path, "riflint.test/ctxflow")
}

// CtxFlow enforces stop-signal threading into goroutines and rejects
// channel sends under a held mutex.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "goroutines must receive a stop/cancel signal; mutexes must not be held across channel sends",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if !inCtxFlowPackage(pass.PkgPath) {
		return
	}
	for _, file := range pass.Syntax {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, g)
			}
			return true
		})
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockedSends(pass, fd.Body)
			}
		}
	}
}

// checkGoStmt verifies the spawned call can observe a stop signal.
func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	if mentionsStopSignal(pass, g.Call, make(map[*ast.FuncLit]bool)) {
		return
	}
	pass.Report(g.Pos(), "unstoppable", "goroutine spawned without a stop/cancel signal (chan struct{}, context.Context, or func() bool); thread one in so shutdown can drain it")
}

// mentionsStopSignal walks the spawned call — function expression,
// arguments, and any function-literal bodies in the subtree — looking
// for a reference to a stop-like value. Calls to closures bound once
// to a local variable are followed one level (the fleet cell idiom
// reaches its stop hook only through the bound closure).
func mentionsStopSignal(pass *Pass, node ast.Node, seen map[*ast.FuncLit]bool) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if isStopLike(obj.Type()) {
			found = true
			return false
		}
		// Follow a single-assignment closure binding one level: the
		// stop hook may live in the bound literal's body.
		if lit, ok := pass.Prog.bindings[obj]; ok && !seen[lit] {
			seen[lit] = true
			if mentionsStopSignal(pass, lit.Body, seen) {
				found = true
				return false
			}
		}
		// A called declared function that takes or captures a stop-like
		// parameter counts when a stop-like value is passed at the call
		// site — already covered by scanning the arguments above.
		return true
	})
	return found
}

// isStopLike reports whether t can carry a stop/cancel signal: a
// struct{}-element channel in any direction, a context.Context, or a
// func() bool polling hook.
func isStopLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Chan:
		if s, ok := u.Elem().Underlying().(*types.Struct); ok && s.NumFields() == 0 {
			return true
		}
	case *types.Signature:
		return u.Recv() == nil && u.Params().Len() == 0 &&
			u.Results().Len() == 1 && isBoolType(u.Results().At(0).Type())
	case *types.Interface:
		return namedFrom(t, "context", "Context")
	}
	return false
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// checkLockedSends runs the flow walker over one function body and
// flags blocking channel sends while any mutex may be held.
func checkLockedSends(pass *Pass, body *ast.BlockStmt) {
	nonBlocking := nonBlockingSends(body)
	visit := func(stmt ast.Stmt, state *flowState) {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			applyLockCall(pass, s.X, state)
		case *ast.SendStmt:
			if nonBlocking[s] || !state.anyHeld() {
				return
			}
			pass.Report(s.Arrow, "lockedsend", "channel send while holding %s; release the lock first or make the send non-blocking", strings.Join(state.heldKeys(), ", "))
		}
	}
	flowWalk(body.List, newFlowState(), visit)
}

// applyLockCall updates the lock state for x.mu.Lock()-shaped calls.
func applyLockCall(pass *Pass, expr ast.Expr, state *flowState) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	key := exprKey(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		state.acquire(key)
	case "Unlock", "RUnlock":
		state.release(key)
	}
}

// exprKey renders a stable textual key for the mutex receiver
// expression ("s.mu", "pool.workers.mu").
func exprKey(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[...]"
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	default:
		return "mutex"
	}
}

// nonBlockingSends collects the send statements that appear as the
// comm clause of a select with a default clause: those never block.
func nonBlockingSends(body *ast.BlockStmt) map[*ast.SendStmt]bool {
	out := make(map[*ast.SendStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, clause := range sel.Body.List {
			if c, ok := clause.(*ast.CommClause); ok && c.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, clause := range sel.Body.List {
			if c, ok := clause.(*ast.CommClause); ok {
				if send, ok := c.Comm.(*ast.SendStmt); ok {
					out[send] = true
				}
			}
		}
		return true
	})
	return out
}
