package analysis

// The interprocedural layer: a per-load view of every analyzed
// function, the static call graph between them, and the transitive
// hot set seeded by //riflint:hotpath annotations. All three new
// analyzers (hotpath, errorflow, ctxflow) consult it; the four
// original per-package analyzers ignore it.
//
// The graph is static by construction: an edge exists only where the
// callee is a declared function or method of a package under analysis,
// or a function literal bound exactly once to a local variable
// (`cell := func(...) {...}; ...; cell(i)` — the fleet pool idiom).
// Calls through interfaces, struct fields and reassigned function
// values stay unresolved; the analyzers treat them conservatively
// (hotpath does not follow them, ctxflow counts them as unverified).
// These limits are documented in DESIGN.md §7.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathDirective is the annotation that marks a function as a
// steady-state hot path: it and everything it transitively calls
// within the analyzed packages must be allocation-free.
const HotPathDirective = "//riflint:hotpath"

// FuncInfo is one analyzed function: a declared function/method or a
// function literal bound to a single local variable.
type FuncInfo struct {
	// Obj is the declared function object; nil for bound literals.
	Obj *types.Func
	// Decl is the declaration; nil for bound literals.
	Decl *ast.FuncDecl
	// Lit is the literal for bound-literal entries; nil for
	// declarations.
	Lit *ast.FuncLit
	// Pkg is the package the function was analyzed in.
	Pkg *Package

	// Annotated is true when the declaration itself carries a
	// //riflint:hotpath directive.
	Annotated bool
	// HotVia is the call chain that made this function hot: nil for
	// annotated roots, otherwise the hot caller whose call site pulled
	// this function into the hot set.
	HotVia *FuncInfo

	calls []*FuncInfo
}

// Name renders a human-readable identifier for diagnostics.
func (fi *FuncInfo) Name() string {
	if fi.Obj != nil {
		if recv := fi.Obj.Type().(*types.Signature).Recv(); recv != nil {
			return typeString(recv.Type()) + "." + fi.Obj.Name()
		}
		return fi.Obj.Name()
	}
	return "func literal"
}

// Body returns the function body (nil for bodyless declarations).
func (fi *FuncInfo) Body() *ast.BlockStmt {
	if fi.Decl != nil {
		return fi.Decl.Body
	}
	return fi.Lit.Body
}

// Hot reports whether the function is in the transitive hot set.
func (fi *FuncInfo) Hot() bool { return fi.Annotated || fi.HotVia != nil }

// Root walks HotVia back to the annotated root of a hot function.
func (fi *FuncInfo) Root() *FuncInfo {
	for fi.HotVia != nil {
		fi = fi.HotVia
	}
	return fi
}

// Program is the whole-load view shared by every pass of one Run.
type Program struct {
	Pkgs []*Package

	// funcs indexes declared functions; lits indexes bound literals.
	funcs map[*types.Func]*FuncInfo
	lits  map[*ast.FuncLit]*FuncInfo
	// bindings maps a local variable to the single function literal
	// assigned to it, when that assignment is unique.
	bindings map[types.Object]*ast.FuncLit
}

// NewProgram indexes the packages and builds the call graph and the
// transitive hot set.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:     pkgs,
		funcs:    make(map[*types.Func]*FuncInfo),
		lits:     make(map[*ast.FuncLit]*FuncInfo),
		bindings: make(map[types.Object]*ast.FuncLit),
	}
	for _, pkg := range pkgs {
		p.indexPackage(pkg)
	}
	for _, pkg := range pkgs {
		p.resolveCalls(pkg)
	}
	p.propagateHot()
	return p
}

// indexPackage records every function declaration and every
// single-assignment function-literal binding in pkg.
func (p *Program) indexPackage(pkg *Package) {
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.funcs[obj] = &FuncInfo{
				Obj:       obj,
				Decl:      fd,
				Pkg:       pkg,
				Annotated: hasHotPathDirective(fd),
			}
		}
		p.indexBindings(pkg, file)
	}
}

// indexBindings finds local variables bound to exactly one function
// literal (`x := func(...){...}` or `var x = func...` or a later
// single `x = func...`). A variable assigned function values twice, or
// from anything other than a literal, never resolves.
func (p *Program) indexBindings(pkg *Package, file *ast.File) {
	assigned := make(map[types.Object]int)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pkg.TypesInfo.Defs[id]
		if obj == nil {
			obj = pkg.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		assigned[obj]++
		if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			p.bindings[obj] = lit
			if p.lits[lit] == nil {
				p.lits[lit] = &FuncInfo{Lit: lit, Pkg: pkg}
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	// Drop bindings whose variable was assigned more than once: the
	// literal on record may not be what actually runs.
	for obj := range p.bindings {
		if assigned[obj] > 1 {
			delete(p.bindings, obj)
		}
	}
}

// resolveCalls fills in each function's static callee list.
func (p *Program) resolveCalls(pkg *Package) {
	for _, file := range pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.Callee(pkg, call)
			if callee == nil {
				return true
			}
			if caller := p.enclosing(pkg, call.Pos()); caller != nil && caller != callee {
				caller.calls = append(caller.calls, callee)
			}
			return true
		})
	}
}

// Callee resolves a call expression to an analyzed function: a
// declared function/method of any loaded package, an immediately
// invoked literal, or a single-assignment bound literal. Nil means the
// call is dynamic or leaves the analyzed set.
func (p *Program) Callee(pkg *Package, call *ast.CallExpr) *FuncInfo {
	fun := ast.Unparen(call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		if fi := p.lits[lit]; fi != nil {
			return fi
		}
		fi := &FuncInfo{Lit: lit, Pkg: pkg}
		p.lits[lit] = fi
		return fi
	}
	var obj types.Object
	switch e := fun.(type) {
	case *ast.Ident:
		obj = pkg.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		// Method values and interface methods resolve to *types.Func
		// too; only those declared in a loaded package (and therefore
		// indexed with a body) produce an edge, which excludes
		// interface methods automatically.
		obj = pkg.TypesInfo.Uses[e.Sel]
	default:
		return nil
	}
	if fn, ok := obj.(*types.Func); ok {
		return p.funcs[fn]
	}
	if lit, ok := p.bindings[obj]; ok {
		return p.lits[lit]
	}
	return nil
}

// enclosing finds the FuncInfo whose body contains pos (innermost
// bound literal first, then the declaration).
func (p *Program) enclosing(pkg *Package, pos token.Pos) *FuncInfo {
	var best *FuncInfo
	var bestSize token.Pos
	consider := func(fi *FuncInfo) {
		body := fi.Body()
		if body == nil || pos < body.Pos() || pos > body.End() {
			return
		}
		if size := body.End() - body.Pos(); best == nil || size < bestSize {
			best, bestSize = fi, size
		}
	}
	for _, fi := range p.funcs {
		if fi.Pkg == pkg {
			consider(fi)
		}
	}
	for _, fi := range p.lits {
		if fi.Pkg == pkg {
			consider(fi)
		}
	}
	return best
}

// FuncOf returns the info for a declared function object, if indexed.
func (p *Program) FuncOf(obj *types.Func) *FuncInfo { return p.funcs[obj] }

// propagateHot walks the call graph from every annotated root and
// marks each statically reachable function hot, recording the caller
// that reached it first so diagnostics can name the chain.
func (p *Program) propagateHot() {
	var queue []*FuncInfo
	for _, fi := range p.funcs {
		if fi.Annotated {
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, callee := range fi.calls {
			if callee.Hot() {
				continue
			}
			callee.HotVia = fi
			queue = append(queue, callee)
		}
	}
}

// HotFuncs returns every hot function declared in pkg, in source
// order, so diagnostics come out deterministically.
func (p *Program) HotFuncs(pkg *Package) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range p.funcs {
		if fi.Pkg == pkg && fi.Hot() {
			out = append(out, fi)
		}
	}
	for _, fi := range p.lits {
		if fi.Pkg == pkg && fi.Hot() {
			out = append(out, fi)
		}
	}
	sortFuncInfos(out)
	return out
}

func sortFuncInfos(fis []*FuncInfo) {
	for i := 1; i < len(fis); i++ {
		for j := i; j > 0 && fis[j].Body().Pos() < fis[j-1].Body().Pos(); j-- {
			fis[j], fis[j-1] = fis[j-1], fis[j]
		}
	}
}

// hasHotPathDirective reports whether the declaration's doc comment
// (or a comment in its header) carries //riflint:hotpath.
func hasHotPathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == HotPathDirective || strings.HasPrefix(text, HotPathDirective+" ") {
			return true
		}
	}
	return false
}
