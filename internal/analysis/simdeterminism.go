package analysis

import (
	"go/ast"
	"go/types"
)

// SimDeterminism enforces bit-reproducibility of simulation runs: no
// wall-clock reads, no process-global random streams, and no unordered
// map iteration feeding output or simulator state in the deep-sim
// packages. These are exactly the failure modes that silently break
// the seed->figures contract the paper's regression tests rely on.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock reads (time.Now & friends), process-global " +
		"math/rand state, and order-sensitive map iteration in simulator packages",
	Run: runSimDeterminism,
}

// wallClockFuncs are the time package functions that observe or depend
// on the host's wall clock or monotonic clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// seededRandConstructors are the math/rand(/v2) functions that return
// an explicitly seeded source; everything else at package level draws
// from the shared, non-reproducible global stream.
var seededRandConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true,
	"NewSource": true, "NewZipf": true,
}

func runSimDeterminism(pass *Pass) {
	for _, file := range pass.Syntax {
		if len(file.Decls) == 0 {
			continue
		}
		if pass.InTestFile(file.Pos()) {
			continue
		}
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkWallClock(pass, n)
				checkGlobalRand(pass, n)
			case *ast.RangeStmt:
				checkMapOrder(pass, n, stack)
			}
			return true
		})
	}
}

func checkWallClock(pass *Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	if !wallClockFuncs[fn.Name()] {
		return
	}
	pass.Report(sel.Pos(), "wallclock",
		"time.%s reads the wall clock: simulation behavior must depend only on sim.Time "+
			"(annotate with //riflint:allow wallclock -- <reason> if this is host-side measurement)",
		fn.Name())
}

func checkGlobalRand(pass *Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	// Method calls on an explicit *rand.Rand are fine; only
	// package-level functions share global state.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	if seededRandConstructors[fn.Name()] {
		return
	}
	pass.Report(sel.Pos(), "globalrand",
		"%s.%s draws from the process-global random stream; use a seeded sim.RNG "+
			"(or rand.New(rand.NewPCG(seed, stream))) so runs replay bit-exactly",
		path, fn.Name())
}

// checkMapOrder flags `for ... range m` over a map when the loop body
// does something order-sensitive: appends to a slice that outlives the
// loop (unless it is sorted afterwards in the same function), writes
// formatted output, sends on a channel, or schedules simulator events.
func checkMapOrder(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	if !pass.DeepSim {
		return
	}
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	fn := enclosingFunc(stack)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Report(rs.For, "maporder",
				"map iteration order is random: sending on a channel from inside a map range "+
					"makes receive order nondeterministic (iterate sorted keys instead)")
			return false
		case *ast.AssignStmt:
			if obj := appendTarget(pass.TypesInfo, n); obj != nil && declaredOutside(obj, rs) && !sortedLater(pass, fn, obj) {
				pass.Report(rs.For, "maporder",
					"map iteration order is random: appending to %q inside a map range yields a "+
						"nondeterministic slice (sort it afterwards or iterate sorted keys)", obj.Name())
				return false
			}
		case *ast.CallExpr:
			if name, bad := orderSensitiveCall(pass.TypesInfo, n); bad {
				pass.Report(rs.For, "maporder",
					"map iteration order is random: calling %s inside a map range makes output or "+
						"event order nondeterministic (iterate sorted keys instead)", name)
				return false
			}
		}
		return true
	})
}

// appendTarget returns the object a statement `x = append(x, ...)`
// assigns to, or nil.
func appendTarget(info *types.Info, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[lhs]
	if obj == nil {
		obj = info.Defs[lhs]
	}
	return obj
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement, i.e. the appended slice outlives the loop.
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedLater reports whether fn's body contains a sort.* / slices.*
// call mentioning obj — the collect-then-sort idiom, which is
// deterministic.
func sortedLater(pass *Pass, fn ast.Node, obj types.Object) bool {
	if fn == nil {
		return false
	}
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcFrom(pass.TypesInfo, call.Fun, "sort")
		if f == nil {
			f = funcFrom(pass.TypesInfo, call.Fun, "slices")
		}
		if f == nil {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// orderSensitiveCall reports calls that serialize state or schedule
// events: fmt printing, io/string-builder writes, and sim.Engine
// scheduling.
func orderSensitiveCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if f := funcFrom(info, call.Fun, "fmt"); f != nil {
		return "fmt." + f.Name(), true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "WriteTo":
		if namedFrom(recv, "strings", "Builder") || namedFrom(recv, "bytes", "Buffer") {
			return typeString(recv) + "." + fn.Name(), true
		}
	case "At", "After":
		if namedFrom(recv, simPkgPath, "Engine") {
			return "sim.Engine." + fn.Name(), true
		}
	}
	return "", false
}

func typeString(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
