package analysis

import "testing"

func TestSimTime(t *testing.T) {
	runGolden(t, SimTime, "riflint.test/simtime")
}

// The sim package defines the unit system and is exempt: analyzing
// the stub itself (same import path) must report nothing.
func TestSimTimeExemptsUnitDefinitions(t *testing.T) {
	runGolden(t, SimTime, "repro/internal/sim")
}
