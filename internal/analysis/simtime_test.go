package analysis

import "testing"

func TestSimTime(t *testing.T) {
	runGolden(t, SimTime, "riflint.test/simtime/basic")
}

// The sim package defines the unit system and is exempt: analyzing
// the stub itself (same import path) must report nothing.
func TestSimTimeExemptsUnitDefinitions(t *testing.T) {
	runGoldenClean(t, []*Analyzer{SimTime}, "repro/internal/sim")
}
