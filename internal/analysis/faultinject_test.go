package analysis

import "testing"

// TestFaultInjectorFixture runs seedflow and simdeterminism together
// over the fault-injector fixture: the buggy injector (unseeded
// streams, wall-clock seeding, global rand, map-order effects) is
// fully flagged, while the clean one — written in the internal/faults
// idiom — produces no diagnostics.
func TestFaultInjectorFixture(t *testing.T) {
	runGoldenSuite(t, []*Analyzer{SeedFlow, SimDeterminism}, "riflint.test/suite/faultinject")
}
