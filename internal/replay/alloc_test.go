package replay

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// allocStubSource serves an endless stream of zero requests so the
// advance pin below measures only advance's own body.
type allocStubSource struct{ n int64 }

func (s *allocStubSource) Next() (trace.Request, error) {
	s.n++
	return trace.Request{LPN: s.n}, nil
}

// TestArrivalsZeroAlloc is the runtime half of the //riflint:hotpath
// guards on the arrival processes: Next runs once per admitted
// request, so a single allocation there scales with trace length.
func TestArrivalsZeroAlloc(t *testing.T) {
	p, err := NewPoisson(1e5, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFixed(1e5)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTraceScale(2)
	if err != nil {
		t.Fatal(err)
	}
	var clock sim.Time
	if allocs := testing.AllocsPerRun(1000, func() {
		clock = p.Next(clock)
		clock = f.Next(clock)
		clock = ts.Next(clock)
	}); allocs != 0 {
		t.Fatalf("arrival Next allocates %.1f times per draw triple; the admission hot path must be allocation-free", allocs)
	}
}

// TestAdvanceZeroAlloc pins sourceWorkload.advance, the per-request
// lookahead pull, at zero allocations (with an allocation-free source
// and arrival process plugged in).
func TestAdvanceZeroAlloc(t *testing.T) {
	arr, err := NewFixed(1e5)
	if err != nil {
		t.Fatal(err)
	}
	w := &sourceWorkload{src: &allocStubSource{}, arr: arr, limit: -1}
	if allocs := testing.AllocsPerRun(1000, func() { w.advance() }); allocs != 0 {
		t.Fatalf("advance allocates %.1f times per call; the replay hot path must be allocation-free", allocs)
	}
}
