package replay

import (
	"io"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
)

func smallConfig(scheme ssd.Scheme, pe int) ssd.Config {
	cfg := ssd.DefaultConfig(scheme, pe)
	cfg.Geometry.BlocksPerPlane = 256
	cfg.Geometry.PagesPerBlock = 128
	return cfg
}

func smallGenerator(t *testing.T, name string, seed uint64) *trace.Generator {
	t.Helper()
	spec, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.FootprintPages = 1 << 17
	g, err := trace.NewGenerator(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestArrivalProcesses(t *testing.T) {
	if _, err := NewPoisson(0, 1); err == nil {
		t.Fatal("zero Poisson rate accepted")
	}
	if _, err := NewFixed(-5); err == nil {
		t.Fatal("negative fixed rate accepted")
	}
	if _, err := NewTraceScale(0); err == nil {
		t.Fatal("zero trace speedup accepted")
	}

	fx, err := NewFixed(1e6) // 1 µs interarrival
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if got := fx.Next(0); got != sim.Time(i)*sim.Microsecond {
			t.Fatalf("fixed arrival %d at %v", i, got)
		}
	}

	ts, err := NewTraceScale(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Next(10 * sim.Millisecond); got != 5*sim.Millisecond {
		t.Fatalf("2x speedup gave %v", got)
	}

	po, err := NewPoisson(100000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		at := po.Next(0)
		if at <= last {
			t.Fatalf("non-increasing Poisson arrival %v after %v", at, last)
		}
		sum += float64(at - last)
		last = at
	}
	mean := sum / n // ns; true mean 10 µs
	if mean < 9e3 || mean > 11e3 {
		t.Fatalf("Poisson mean interarrival %vns, want ~10000", mean)
	}
}

func TestFromWorkloadBoundsStream(t *testing.T) {
	src := FromWorkload(smallGenerator(t, "Sys0", 3), 17)
	var n int
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 17 {
		t.Fatalf("workload source served %d requests", n)
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() *Result {
		arr, err := NewPoisson(20000, 11)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(FromWorkload(smallGenerator(t, "Ali124", 5), 800), Options{
			Config:   smallConfig(ssd.RiF, 2000),
			Arrivals: arr,
			AgeDays:  30,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Requests != b.Requests || a.Metrics.Makespan != b.Metrics.Makespan {
		t.Fatal("replay runs diverged")
	}
	for _, q := range []float64{0.5, 0.99, 0.9999} {
		if a.Latency.Quantile(q) != b.Latency.Quantile(q) {
			t.Fatalf("q=%v diverged", q)
		}
	}
}

func TestRunRespectsRingBound(t *testing.T) {
	// An arrival rate far past the device's service rate must park
	// arrivals instead of growing the in-flight set.
	arr, err := NewFixed(5e6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(ssd.Zero, 0)
	cfg.MaxInFlight = 32
	res, err := Run(FromWorkload(smallGenerator(t, "Sys0", 2), 500), Options{
		Config:   cfg,
		Arrivals: arr,
		AgeDays:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.PeakInFlight > 32 {
		t.Fatalf("peak in-flight %d exceeds the ring", res.Metrics.PeakInFlight)
	}
	if res.Metrics.HeldArrivals == 0 {
		t.Fatal("saturating rate held no arrivals")
	}
	if res.Requests != 500 {
		t.Fatalf("replayed %d of 500", res.Requests)
	}
}

func TestRunFromCSVStream(t *testing.T) {
	var sb strings.Builder
	reqs := make([]trace.Request, 120)
	for i := range reqs {
		reqs[i] = trace.Request{
			At: sim.Time(i) * 50 * sim.Microsecond, Op: trace.Read,
			LPN: int64(i * 1000), Pages: 2,
		}
	}
	if err := trace.WriteCSV(&sb, reqs); err != nil {
		t.Fatal(err)
	}
	st, err := trace.NewStream(strings.NewReader(sb.String()), 16384, -1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(st, Options{
		Config:         smallConfig(ssd.Zero, 0),
		AgeDays:        5,
		FootprintPages: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 120 {
		t.Fatalf("replayed %d of 120", res.Requests)
	}
	if res.Latency.N() != 120 {
		t.Fatalf("sketch saw %d reads", res.Latency.N())
	}
	if res.Metrics.ReadLatencies.N() != 0 {
		t.Fatal("replay retained an exact latency sample")
	}
}

func TestRunMaxRequestsTruncates(t *testing.T) {
	res, err := Run(FromWorkload(smallGenerator(t, "Sys0", 4), 1000), Options{
		Config:      smallConfig(ssd.Zero, 0),
		MaxRequests: 64,
		AgeDays:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 64 {
		t.Fatalf("replayed %d, want the 64-request cap", res.Requests)
	}
}

func TestRunSurfacesParseError(t *testing.T) {
	bad := "# arrival_us,op,lpn,pages\n0.000,R,1,1\n10.000,X,2,1\n"
	res, err := Run(trace.NewCSVStream(strings.NewReader(bad)), Options{
		Config:  smallConfig(ssd.Zero, 0),
		AgeDays: 5,
	})
	if err == nil {
		t.Fatalf("bad trace line replayed cleanly: %+v", res)
	}
	if !strings.Contains(err.Error(), "bad op") {
		t.Fatalf("parse error lost: %v", err)
	}
}

func TestRunRejectsEmptyTrace(t *testing.T) {
	if _, err := Run(trace.NewCSVStream(strings.NewReader("")), Options{
		Config: smallConfig(ssd.Zero, 0),
	}); err == nil {
		t.Fatal("empty trace replayed")
	}
}
