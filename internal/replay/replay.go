// Package replay is the open-loop arrival engine: it streams requests
// from an incremental trace source through one simulated SSD at a
// configurable arrival intensity, bounding both the in-flight ring and
// the memory footprint, so production-scale (multi-million-request)
// replays run in minutes with a flat heap. It is the load generator
// the paper's evaluation uses (§VI-A): real block traces replayed
// open-loop, with tail latency read off per-scheme intensity sweeps.
//
// The three arrival processes cover the standard sweep shapes:
//
//   - NewPoisson(rate, seed): memoryless arrivals at a mean intensity,
//     the M/G/k shape intensity ladders are built from.
//   - NewFixed(rate): evenly spaced arrivals, the deterministic
//     debugging twin of Poisson.
//   - NewTraceScale(speed): the trace's own timestamps compressed
//     (speed > 1) or stretched (speed < 1), preserving its burst
//     structure.
//
// Per-request latencies are folded into a stats.Sketch, never a
// per-request slice, and the source is pulled one request ahead of
// admission: total memory is O(sketch) + O(device), independent of
// replay length.
package replay

import (
	"fmt"
	"io"
	"math"

	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DefaultMaxInFlight bounds the open-loop ring when the caller does
// not: deep enough that sub-saturation sweeps never hold an arrival,
// shallow enough that a super-saturated replay cannot accumulate
// unbounded in-flight state.
const DefaultMaxInFlight = 1024

// Source is the incremental request stream a replay consumes: Next
// returns requests in trace order and io.EOF at the end.
// trace.CSVStream, trace.MSRStream and FromWorkload implement it.
type Source interface {
	Next() (trace.Request, error)
}

// Arrivals rewrites a request's arrival timestamp, turning a recorded
// trace into an open-loop load of chosen intensity. Implementations
// are stateful (they carry the arrival clock) and single-use.
type Arrivals interface {
	Next(orig sim.Time) sim.Time
}

// poisson issues arrivals with exponential interarrival times.
type poisson struct {
	rng  *sim.RNG
	mean float64 // mean interarrival, ns
	t    sim.Time
}

// NewPoisson returns a Poisson arrival process at rateIOPS requests
// per second, deterministic in seed.
func NewPoisson(rateIOPS float64, seed uint64) (Arrivals, error) {
	if rateIOPS <= 0 || math.IsNaN(rateIOPS) || math.IsInf(rateIOPS, 0) {
		return nil, fmt.Errorf("replay: arrival rate %v IOPS; want > 0", rateIOPS)
	}
	return &poisson{rng: sim.NewRNG(seed, 0xa881), mean: 1e9 / rateIOPS}, nil
}

// Next draws the next exponential interarrival gap. One call per
// admitted request: the replay admission hot path.
//
//riflint:hotpath
func (p *poisson) Next(sim.Time) sim.Time {
	d := sim.Time(p.rng.Exponential(p.mean))
	if d < sim.Nanosecond {
		// Sub-nanosecond draws truncate to zero ticks; keep arrivals
		// strictly monotone.
		d = sim.Nanosecond
	}
	p.t += d
	return p.t
}

// fixed issues evenly spaced arrivals. The clock is derived from the
// arrival index (not accumulated) so rounding never drifts the rate.
type fixed struct {
	mean float64 // interarrival, ns
	n    int64
}

// NewFixed returns a fixed-rate arrival process at rateIOPS requests
// per second.
func NewFixed(rateIOPS float64) (Arrivals, error) {
	if rateIOPS <= 0 || math.IsNaN(rateIOPS) || math.IsInf(rateIOPS, 0) {
		return nil, fmt.Errorf("replay: arrival rate %v IOPS; want > 0", rateIOPS)
	}
	return &fixed{mean: 1e9 / rateIOPS}, nil
}

// Next derives the next evenly spaced arrival instant.
//
//riflint:hotpath
func (f *fixed) Next(sim.Time) sim.Time {
	f.n++
	return sim.Time(float64(f.n) * f.mean)
}

// traceScale replays the trace's own timestamps at speed× real time.
type traceScale struct {
	speed float64
}

// NewTraceScale returns an arrival process that keeps the trace's
// burst structure, compressed by speed (2 = twice as fast). Use
// speed 1 to honour the recorded timestamps exactly.
func NewTraceScale(speed float64) (Arrivals, error) {
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return nil, fmt.Errorf("replay: trace speedup %v; want > 0", speed)
	}
	return &traceScale{speed: speed}, nil
}

// Next compresses the recorded timestamp by the replay speedup.
//
//riflint:hotpath
func (t *traceScale) Next(orig sim.Time) sim.Time {
	return sim.Time(float64(orig) / t.speed)
}

// AgeModel is the optional per-LPN retention-age interface a Source
// may implement (trace.Generator does, via FromWorkload): when
// present it overrides Options.AgeDays, keeping the reliability
// physics of a synthetic workload identical between closed-loop runs
// and replays.
type AgeModel interface {
	InitialAgeDays(lpn int64) float64
}

// workloadSource adapts an infinite request generator (ssd.Workload,
// e.g. trace.Generator) into a Source of n requests.
type workloadSource struct {
	w interface{ Next() trace.Request }
	n int64
}

// FromWorkload returns a Source serving the first n requests of an
// infinite generator. If w also carries an age model (as
// trace.Generator does), the source exposes it to the replay.
func FromWorkload(w interface{ Next() trace.Request }, n int64) Source {
	if am, ok := w.(AgeModel); ok {
		return &agedWorkloadSource{workloadSource{w: w, n: n}, am}
	}
	return &workloadSource{w: w, n: n}
}

func (ws *workloadSource) Next() (trace.Request, error) {
	if ws.n <= 0 {
		return trace.Request{}, io.EOF
	}
	ws.n--
	return ws.w.Next(), nil
}

// agedWorkloadSource is a workloadSource whose generator carries its
// own retention-age model.
type agedWorkloadSource struct {
	workloadSource
	am AgeModel
}

func (as *agedWorkloadSource) InitialAgeDays(lpn int64) float64 {
	return as.am.InitialAgeDays(lpn)
}

// Options configures one replay run.
type Options struct {
	// Config is the device and host configuration. OpenLoop is forced
	// on; MaxInFlight zero is defaulted to DefaultMaxInFlight;
	// LatencySketch is owned by the replay (any caller value is
	// replaced).
	Config ssd.Config

	// Arrivals rewrites arrival timestamps; nil keeps the trace's own
	// (equivalent to NewTraceScale(1) without the float round trip).
	Arrivals Arrivals

	// MaxRequests bounds the replay; 0 replays the whole stream.
	MaxRequests int64

	// AgeDays is the uniform initial retention age of cold data
	// (replayed traces carry no retention metadata).
	AgeDays float64

	// FootprintPages, when positive, streams the trace's logical
	// addresses through a trace.Compactor into a dense space of this
	// size, the way experiments size the simulated footprint.
	FootprintPages int64

	// SketchAlpha is the latency sketch's relative accuracy (0 selects
	// stats.SketchAlpha).
	SketchAlpha float64

	// Progress, when non-nil, is called after every ProgressEvery
	// completed source requests (default 1<<20) — the hook the
	// flat-heap smoke test samples the heap from.
	Progress      func(served int64)
	ProgressEvery int64
}

// Result is one replay's outcome.
type Result struct {
	// Metrics is the device-level accounting. ReadLatencies is empty:
	// latencies live in Latency.
	Metrics *ssd.Metrics
	// Latency is the fixed-memory read-latency sketch (µs).
	Latency *stats.Sketch
	// Requests is the number of requests actually replayed (the whole
	// stream may be shorter than MaxRequests).
	Requests int64
}

// sourceWorkload feeds the open-loop host from a Source with a
// one-request lookahead, so exhaustion and parse errors surface
// before the host commits to another arrival.
type sourceWorkload struct {
	src   Source
	comp  *trace.Compactor
	arr   Arrivals
	age   float64
	next  trace.Request
	done  bool
	err   error
	limit int64

	served   int64
	progress func(int64)
	every    int64
}

// advance pulls the next request into the one-element lookahead. Runs
// once per admitted request; the source and arrival interfaces it
// calls through are outside the static graph, but its own body must
// stay allocation-free.
//
//riflint:hotpath
func (w *sourceWorkload) advance() {
	if w.limit == 0 {
		w.done = true
		return
	}
	req, err := w.src.Next()
	if err != nil {
		w.done = true
		if err != io.EOF {
			w.err = err
		}
		return
	}
	if w.limit > 0 {
		w.limit--
	}
	if w.comp != nil {
		req = w.comp.Apply(req)
	}
	if w.arr != nil {
		req.At = w.arr.Next(req.At)
	}
	w.next = req
}

func (w *sourceWorkload) Exhausted() bool { return w.done }

func (w *sourceWorkload) Next() trace.Request {
	req := w.next
	w.served++
	if w.progress != nil && w.served%w.every == 0 {
		w.progress(w.served)
	}
	w.advance()
	return req
}

func (w *sourceWorkload) InitialAgeDays(lpn int64) float64 {
	if am, ok := w.src.(AgeModel); ok {
		return am.InitialAgeDays(lpn)
	}
	return w.age
}

// Run replays src through one simulated SSD and returns the sketch
// and device metrics. The run is deterministic in (Options, source
// content).
func Run(src Source, opt Options) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("replay: nil source")
	}
	if opt.MaxRequests < 0 {
		return nil, fmt.Errorf("replay: max requests %d", opt.MaxRequests)
	}
	cfg := opt.Config
	cfg.OpenLoop = true
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	sketch := stats.NewSketch(opt.SketchAlpha)
	cfg.LatencySketch = sketch

	every := opt.ProgressEvery
	if every <= 0 {
		every = 1 << 20
	}
	w := &sourceWorkload{
		src:      src,
		arr:      opt.Arrivals,
		age:      opt.AgeDays,
		limit:    -1,
		progress: opt.Progress,
		every:    every,
	}
	if opt.MaxRequests > 0 {
		w.limit = opt.MaxRequests
	}
	if opt.FootprintPages > 0 {
		w.comp = trace.NewCompactor(opt.FootprintPages)
	}
	w.advance() // prime the lookahead
	if w.err != nil {
		return nil, w.err
	}
	if w.done {
		return nil, fmt.Errorf("replay: empty trace")
	}

	dev, err := ssd.New(cfg, w)
	if err != nil {
		return nil, err
	}
	// The host stops at source exhaustion; the cap only has to be
	// unreachable.
	n := math.MaxInt
	if opt.MaxRequests > 0 && opt.MaxRequests < int64(n) {
		n = int(opt.MaxRequests)
	}
	m, err := dev.Run(n)
	if err != nil {
		return nil, err
	}
	if w.err != nil {
		return nil, fmt.Errorf("replay: after %d requests: %w", m.RequestsCompleted, w.err)
	}
	return &Result{Metrics: m, Latency: sketch, Requests: int64(m.RequestsCompleted)}, nil
}
