package replay

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/ssd"
	"repro/internal/trace"
)

// TestReplaySmokeHeapFlat is the flat-memory pin: a long streamed
// replay must not retain per-request state, so the live heap after
// warm-up stays within a fixed budget no matter how many requests
// flow through. `make replay-smoke` runs it at 1M requests under
// -race as a blocking CI step; the default size keeps tier-1 fast.
func TestReplaySmokeHeapFlat(t *testing.T) {
	n := int64(50000)
	if env := os.Getenv("REPLAY_SMOKE_REQUESTS"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil || v <= 0 {
			t.Fatalf("REPLAY_SMOKE_REQUESTS=%q", env)
		}
		n = v
	}

	// liveHeap forces a collection and reports the retained heap.
	liveHeap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	arr, err := NewPoisson(200000, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Replay memory is O(working set), not O(requests): the FTL's page
	// map grows with every distinct LPN written and then stops. Size
	// the footprint (as every experiment does) so the written set
	// saturates during warm-up — with the raw Table II footprint
	// (1<<20 pages) the map would keep absorbing new LPNs for the
	// whole run and mask a genuine per-request leak.
	spec, err := trace.ByName("Ali124")
	if err != nil {
		t.Fatal(err)
	}
	spec.FootprintPages = 1 << 13
	g, err := trace.NewGenerator(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	var baseline uint64
	var checks int
	// The budget is far below what per-request retention would cost
	// (retaining n float64 latencies alone is 8n bytes ≈ 8 MB at the
	// CI size) but above GC noise and residual working-set growth.
	const budget = 4 << 20
	res, err := Run(FromWorkload(g, n), Options{
		Config:        smallConfig(ssd.RiF, 1000),
		Arrivals:      arr,
		AgeDays:       10,
		ProgressEvery: n / 10,
		Progress: func(served int64) {
			h := liveHeap()
			if baseline == 0 && served >= n/5 {
				// Warm-up complete: device state, sketch buckets and GC
				// machinery have materialized.
				baseline = h
				return
			}
			if baseline == 0 {
				return
			}
			checks++
			if h > baseline+budget {
				t.Errorf("live heap %0.1f MiB at %d/%d requests, baseline %0.1f MiB: replay is retaining per-request state",
					float64(h)/(1<<20), served, n, float64(baseline)/(1<<20))
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != n {
		t.Fatalf("replayed %d of %d", res.Requests, n)
	}
	if baseline == 0 || checks == 0 {
		t.Fatalf("heap high-water never sampled (baseline=%d checks=%d)", baseline, checks)
	}
	if res.Latency.N() == 0 {
		t.Fatal("no latencies sketched")
	}
	t.Logf("replayed %d requests, %d heap checks, baseline %0.1f MiB, p99.99=%0.0fus held=%d",
		n, checks, float64(baseline)/(1<<20), res.Latency.Percentile(99.99), res.Metrics.HeldArrivals)
}
