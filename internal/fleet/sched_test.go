package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSchedulerCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		s := NewScheduler(workers)
		const n = 100
		counts := make([]atomic.Int32, n)
		err := s.RunStop(n, nil, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		s.Stop()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestSchedulerResultsWorkerInvariant pins the core determinism claim:
// MapOn's output is identical for any worker count and any steal
// interleaving, because results are keyed by index.
func TestSchedulerResultsWorkerInvariant(t *testing.T) {
	const n = 64
	var want []string
	for _, workers := range []int{1, 2, 3, 8, 32} {
		s := NewScheduler(workers)
		got, err := MapOn(s, n, nil, func(i int) (string, error) {
			return fmt.Sprintf("cell-%03d", i*i), nil
		})
		s.Stop()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSchedulerStealsUnderImbalance forces the shape work-stealing
// exists for: one worker stuck on a slow cell while its deque still
// holds work. The idle worker must steal (steal counter > 0) and the
// output must still be complete.
//
// With two workers the round-robin deal puts even indices on deque 0
// and odd on deque 1. Even cells spin until a steal has happened, odd
// cells return immediately — so whichever worker pops an even cell
// first is pinned there, the other drains the odd cells, empties its
// own deque, and has no way forward but to steal. A cell obtained by
// stealing never spins (the counter is already positive), so the grid
// always completes.
func TestSchedulerStealsUnderImbalance(t *testing.T) {
	s := NewScheduler(2)
	defer s.Stop()

	const n = 40
	var ran atomic.Int32
	err := s.RunStop(n, nil, func(i int) error {
		if i%2 == 0 {
			for s.Steals() == 0 {
				runtime.Gosched()
			}
		}
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d of %d cells", got, n)
	}
	if s.Steals() == 0 {
		t.Fatal("no steals under a forced imbalance; work-stealing is not engaging")
	}
}

// TestSchedulerSharedAcrossGrids runs several concurrent grids through
// one scheduler — the serving-layer shape — and checks each grid's
// results stay isolated and complete.
func TestSchedulerSharedAcrossGrids(t *testing.T) {
	s := NewScheduler(4)
	defer s.Stop()

	const grids, n = 8, 40
	var wg sync.WaitGroup
	results := make([][]int, grids)
	errs := make([]error, grids)
	for g := 0; g < grids; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = MapOn(s, n, nil, func(i int) (int, error) {
				return g*1000 + i, nil
			})
		}(g)
	}
	wg.Wait()
	for g := 0; g < grids; g++ {
		if errs[g] != nil {
			t.Fatalf("grid %d: %v", g, errs[g])
		}
		for i, v := range results[g] {
			if v != g*1000+i {
				t.Fatalf("grid %d slot %d = %d", g, i, v)
			}
		}
	}
}

func TestSchedulerLowestIndexErrorWins(t *testing.T) {
	errA := errors.New("cell 3")
	errB := errors.New("cell 7")
	s := NewScheduler(4)
	defer s.Stop()
	err := s.RunStop(10, nil, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("err = %v, want lowest-index %v", err, errA)
	}
}

func TestSchedulerStopHookSkipsRemainingCells(t *testing.T) {
	s := NewScheduler(2)
	defer s.Stop()
	var ran atomic.Int32
	var stop atomic.Bool
	err := s.RunStop(100, stop.Load, func(i int) error {
		if ran.Add(1) == 3 {
			stop.Store(true)
		}
		return nil
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n := ran.Load(); n >= 100 {
		t.Fatalf("all %d cells ran despite stop", n)
	}
}

func TestSchedulerPanicIsolation(t *testing.T) {
	s := NewScheduler(4)
	defer s.Stop()
	err := s.RunStop(20, nil, func(i int) error {
		if i == 5 {
			panic("boom")
		}
		return nil
	})
	var pe *CellPanicError
	if !errors.As(err, &pe) || pe.Cell != 5 {
		t.Fatalf("err = %v, want CellPanicError for cell 5", err)
	}
}

// TestSchedulerStopDrainsQueuedWork pins the drain contract: Stop
// skips queued-but-unstarted cells (their grid returns ErrStopped, the
// submitter does not hang) and later submissions fail fast.
func TestSchedulerStopDrainsQueuedWork(t *testing.T) {
	s := NewScheduler(1)
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		done <- s.RunStop(10, nil, func(i int) error {
			once.Do(func() { close(entered) })
			<-gate
			return nil
		})
	}()
	<-entered
	stopDone := make(chan struct{})
	go func() { s.Stop(); close(stopDone) }()
	// Release the running cell only after Stop's critical section has
	// drained the deques, so the worker cannot race ahead and run the
	// queued cells first.
	for {
		s.mu.Lock()
		stopped := s.stopped
		s.mu.Unlock()
		if stopped {
			break
		}
		runtime.Gosched()
	}
	close(gate)
	<-stopDone
	if err := <-done; !errors.Is(err, ErrStopped) {
		t.Fatalf("drained grid err = %v, want ErrStopped", err)
	}
	if err := s.RunStop(1, nil, func(int) error { return nil }); !errors.Is(err, ErrStopped) {
		t.Fatalf("post-Stop submit err = %v, want ErrStopped", err)
	}
}

func TestSchedulerZeroCellsIsNoop(t *testing.T) {
	s := NewScheduler(2)
	defer s.Stop()
	if err := s.RunStop(0, nil, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
