// Package fleet runs independent simulation cells across a bounded
// worker pool with deterministic, index-ordered results.
//
// Every device-level study in this repository is a grid of independent
// (scheme, workload, P/E, config) cells: each cell owns its own
// sim.Engine, seeded RNG streams and obs registry, so cells may run
// concurrently without sharing state. The pool hands out cell indices
// and the caller writes each result into a pre-indexed slot, so the
// assembled output — and therefore every report, manifest and golden —
// is byte-identical to a sequential run regardless of how the
// scheduler interleaves workers.
//
// Determinism contract: fn must not share mutable state between
// indices (no common *rand.Rand, no common engine). The riflint
// simdeterminism analyzer enforces the RNG half of this.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
)

// ErrStopped is returned by RunStop/MapStop when the stop hook fired
// before every cell ran: the grid was cancelled, not failed.
var ErrStopped = errors.New("fleet: run stopped")

// CellPanicError reports a cell whose fn panicked. The pool recovers
// it so one bad cell cannot crash the whole grid; the cell index says
// which one died.
type CellPanicError struct {
	// Cell is the index whose fn panicked.
	Cell int
	// Value is the recovered panic value.
	Value any
}

// Error formats the panic with its cell index.
func (e *CellPanicError) Error() string {
	return fmt.Sprintf("fleet: cell %d panicked: %v", e.Cell, e.Value)
}

// safeCall runs fn(i), converting a panic into a *CellPanicError.
func safeCall(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellPanicError{Cell: i, Value: r}
		}
	}()
	return fn(i)
}

// Workers resolves a worker-count setting: n > 0 means exactly n
// workers, anything else means one worker per available CPU
// (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// StopAny combines stop predicates: the returned hook reports true as
// soon as any non-nil input does. Callers with several independent
// cancellation sources (a server-wide drain, a per-job cancel, a
// wall-clock timeout) compose them into the single Stop hook
// RunStop/MapStop poll. Nil inputs are skipped; with no usable inputs
// the result is nil, which RunStop treats as "never stop".
func StopAny(stops ...func() bool) func() bool {
	live := stops[:0:0]
	for _, s := range stops {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func() bool {
		for _, s := range live {
			if s() {
				return true
			}
		}
		return false
	}
}

// Run invokes fn(i) for every i in [0, n) using at most workers
// concurrent goroutines (Workers resolves the count). With one worker
// the calls run inline on the calling goroutine, in index order —
// exactly the historical sequential loops. With more, workers pull
// indices from a shared counter; which worker runs which cell is
// scheduler-dependent, but since results are keyed by index that
// never shows in the output.
//
// Every index runs even when some fail; the returned error is the
// lowest-index one, so the error surfaced is the same no matter how
// the cells interleave. A panicking cell is recovered and reported as
// a *CellPanicError instead of crashing the whole grid.
func Run(n, workers int, fn func(i int) error) error {
	return RunStop(n, workers, nil, fn)
}

// RunStop is Run with a cancellation hook: stop (which may be nil) is
// polled before each cell is started, and once it reports true no new
// cells begin — cells already running finish normally. When any cell
// was skipped and no cell failed, RunStop returns ErrStopped so the
// caller knows the grid is incomplete.
//
// With one worker the cells run inline on the calling goroutine in
// index order; with more they run on an ephemeral work-stealing
// Scheduler (long-lived callers with many grids share one via
// NewScheduler + Scheduler.RunStop instead).
func RunStop(n, workers int, stop func() bool, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		errs := make([]error, n)
		var skipped bool
		for i := 0; i < n; i++ {
			if stop != nil && stop() {
				skipped = true
				break
			}
			errs[i] = safeCall(i, fn)
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if skipped {
			return ErrStopped
		}
		return nil
	}
	s := NewScheduler(workers)
	defer s.Stop()
	return s.RunStop(n, stop, fn)
}

// Map runs fn over [0, n) through Run and returns the results in
// index order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapStop(n, workers, nil, fn)
}

// MapStop is Map with RunStop's cancellation hook. On ErrStopped it
// returns the partial results alongside the error: completed slots
// hold their values, skipped slots hold T's zero value.
func MapStop[T any](n, workers int, stop func() bool, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunStop(n, workers, stop, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if errors.Is(err, ErrStopped) {
		return out, err
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
