// Package fleet runs independent simulation cells across a bounded
// worker pool with deterministic, index-ordered results.
//
// Every device-level study in this repository is a grid of independent
// (scheme, workload, P/E, config) cells: each cell owns its own
// sim.Engine, seeded RNG streams and obs registry, so cells may run
// concurrently without sharing state. The pool hands out cell indices
// and the caller writes each result into a pre-indexed slot, so the
// assembled output — and therefore every report, manifest and golden —
// is byte-identical to a sequential run regardless of how the
// scheduler interleaves workers.
//
// Determinism contract: fn must not share mutable state between
// indices (no common *rand.Rand, no common engine). The riflint
// simdeterminism analyzer enforces the RNG half of this.
package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: n > 0 means exactly n
// workers, anything else means one worker per available CPU
// (runtime.GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run invokes fn(i) for every i in [0, n) using at most workers
// concurrent goroutines (Workers resolves the count). With one worker
// the calls run inline on the calling goroutine, in index order —
// exactly the historical sequential loops. With more, workers pull
// indices from a shared counter; which worker runs which cell is
// scheduler-dependent, but since results are keyed by index that
// never shows in the output.
//
// Every index runs even when some fail; the returned error is the
// lowest-index one, so the error surfaced is the same no matter how
// the cells interleave.
func Run(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) through Run and returns the results in
// index order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
