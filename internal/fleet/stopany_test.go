package fleet

import "testing"

// TestStopAny pins the stop-hook composition the serving layer uses
// to merge server-wide draining with per-job cancellation.
func TestStopAny(t *testing.T) {
	if StopAny() != nil {
		t.Fatal("StopAny() must be nil (no hook) for zero predicates")
	}
	if StopAny(nil, nil) != nil {
		t.Fatal("StopAny(nil, nil) must collapse to nil")
	}

	tru := func() bool { return true }
	fals := func() bool { return false }

	if got := StopAny(nil, fals, nil); got == nil || got() {
		t.Fatal("single non-nil false predicate must report false")
	}
	if got := StopAny(fals, tru); got == nil || !got() {
		t.Fatal("any true predicate must make the composition true")
	}
	if got := StopAny(fals, fals); got() {
		t.Fatal("all-false composition must report false")
	}

	// Short-circuit: once an earlier predicate fires, later ones are
	// not consulted.
	called := false
	probe := func() bool { called = true; return false }
	if got := StopAny(tru, probe); !got() {
		t.Fatal("composition with leading true must fire")
	}
	if called {
		t.Fatal("composition must short-circuit after the first true predicate")
	}
}

// TestRunStopComposedHooks: a composed hook drives RunStop exactly
// like a plain one.
func TestRunStopComposedHooks(t *testing.T) {
	fired := false
	stop := StopAny(func() bool { return fired }, nil)
	ran := 0
	err := RunStop(8, 1, stop, func(i int) error {
		ran++
		if i == 2 {
			fired = true
		}
		return nil
	})
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d cells, want 3 (stop fires after index 2)", ran)
	}
}
