package fleet

// Scheduler is the work-stealing successor of the shared-counter pool:
// a long-lived executor whose workers each own a deque of grid cells.
// A submitted grid's cell indices are dealt round-robin across the
// worker deques; a worker drains its own deque from the tail and, when
// empty, steals the front half of the fullest sibling deque. Because
// every result is written into a pre-indexed slot, the assembled output
// is byte-identical for any worker count and any steal order — the
// same contract RunStop has always promised, now kept under a
// scheduler that lets several grids share one bounded worker set.
//
// Sharing is the point: the serving layer runs many jobs' grids
// through one Scheduler, so a large grid no longer occupies a worker
// pool wall-to-wall while a two-cell job waits behind it — its cells
// interleave with everyone else's, and idle workers steal from
// whichever deque still has work.
//
// The determinism contract of the package doc applies unchanged: cell
// fns must not share mutable state between indices.

import (
	"errors"
	"sync"
	"sync/atomic"
)

// task is one grid cell queued on a worker deque.
type task struct {
	g *gridRun
	i int
}

// gridRun is one submitted grid: its cell fn, stop hook, pre-indexed
// error slots, and completion accounting.
type gridRun struct {
	fn      func(i int) error
	stop    func() bool
	errs    []error
	skipped atomic.Bool
	left    atomic.Int64
	done    chan struct{}
}

// finish retires one cell (run or skipped) and closes done when the
// grid is fully accounted for.
func (g *gridRun) finish() {
	if g.left.Add(-1) == 0 {
		close(g.done)
	}
}

// runCell executes cell i unless the grid's stop hook has fired; a
// skipped cell is still accounted so the submitter never hangs.
func (g *gridRun) runCell(i int) {
	if g.skipped.Load() || (g.stop != nil && g.stop()) {
		g.skipped.Store(true)
	} else {
		g.errs[i] = safeCall(i, g.fn)
	}
	g.finish()
}

// Scheduler executes grid cells across a fixed worker set with
// per-worker deques and steal-half balancing. Construct with
// NewScheduler, submit grids with RunStop/MapOn, release the workers
// with Stop.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]task
	nextRR  int
	stopped bool

	quit   chan struct{}
	wg     sync.WaitGroup
	steals atomic.Int64
}

// NewScheduler starts a scheduler with the given worker count
// (Workers resolves 0 and negatives to one per CPU).
func NewScheduler(workers int) *Scheduler {
	workers = Workers(workers)
	s := &Scheduler{
		deques: make([][]task, workers),
		quit:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.loop(w, s.quit)
	}
	return s
}

// NumWorkers reports the size of the worker set.
func (s *Scheduler) NumWorkers() int { return len(s.deques) }

// Steals reports how many times a worker has stolen work from a
// sibling deque since the scheduler started — the load-imbalance
// signal the serving layer exports as a metric.
func (s *Scheduler) Steals() int64 { return s.steals.Load() }

// Stop drains the scheduler: queued-but-unstarted cells are skipped
// (their grids return ErrStopped), cells already running finish
// normally, and every worker goroutine exits before Stop returns.
// Safe to call more than once; submissions after Stop return
// ErrStopped immediately.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.quit)
		for w, d := range s.deques {
			for _, t := range d {
				t.g.skipped.Store(true)
				t.g.finish()
			}
			s.deques[w] = nil
		}
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// loop is one worker: pull the next cell (own deque first, then steal
// half from the fullest sibling), run it, repeat until quit.
func (s *Scheduler) loop(w int, quit <-chan struct{}) {
	defer s.wg.Done()
	for {
		select {
		case <-quit:
			return
		default:
		}
		t, ok := s.next(w)
		if !ok {
			return
		}
		t.g.runCell(t.i)
	}
}

// next blocks until worker w has a cell to run or the scheduler
// stops. Own work is popped from the deque tail; an empty deque steals
// the front half of the sibling holding the most work, so a straggler
// grid's remaining cells spread across every idle worker.
func (s *Scheduler) next(w int) (task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return task{}, false
		}
		if d := s.deques[w]; len(d) > 0 {
			t := d[len(d)-1]
			s.deques[w] = d[:len(d)-1]
			return t, true
		}
		if victim := s.fullestDeque(w); victim >= 0 {
			s.stealHalf(w, victim)
			d := s.deques[w]
			t := d[len(d)-1]
			s.deques[w] = d[:len(d)-1]
			return t, true
		}
		s.cond.Wait()
	}
}

// fullestDeque picks the sibling with the most queued cells (−1 when
// every other deque is empty). Ties resolve to the lowest index so the
// choice is stable given identical states. Caller holds s.mu.
func (s *Scheduler) fullestDeque(w int) int {
	victim, most := -1, 0
	for i, d := range s.deques {
		if i != w && len(d) > most {
			victim, most = i, len(d)
		}
	}
	return victim
}

// stealHalf moves the front (oldest) half of victim's deque — rounded
// up, so a one-cell deque is stolen whole — onto w's deque. Caller
// holds s.mu and guarantees the victim is non-empty.
func (s *Scheduler) stealHalf(w, victim int) {
	d := s.deques[victim]
	half := (len(d) + 1) / 2
	s.deques[w] = append(s.deques[w], d[:half]...)
	rest := make([]task, len(d)-half)
	copy(rest, d[half:])
	s.deques[victim] = rest
	s.steals.Add(1)
}

// RunStop submits an n-cell grid and blocks until every cell has run
// or been skipped. Semantics match the package-level RunStop: stop is
// polled before each cell starts, every started cell finishes, the
// lowest-index error wins, and a grid with skipped cells (stop fired,
// or the scheduler itself was stopped) returns ErrStopped.
//
// Grids submitted concurrently interleave cell-by-cell across the
// shared worker set. A cell fn must not submit to the same scheduler:
// with every worker blocked on inner grids the outer ones could never
// finish.
func (s *Scheduler) RunStop(n int, stop func() bool, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	g := &gridRun{
		fn:   fn,
		stop: stop,
		errs: make([]error, n),
		done: make(chan struct{}),
	}
	g.left.Store(int64(n))

	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	for i := 0; i < n; i++ {
		w := s.nextRR % len(s.deques)
		s.nextRR++
		s.deques[w] = append(s.deques[w], task{g, i})
	}
	s.mu.Unlock()
	s.cond.Broadcast()

	<-g.done
	for _, err := range g.errs {
		if err != nil {
			return err
		}
	}
	if g.skipped.Load() {
		return ErrStopped
	}
	return nil
}

// MapOn runs fn over [0, n) through sched's shared worker set and
// returns the results in index order — MapStop's contract on a
// work-stealing scheduler several grids may share. On ErrStopped the
// partial results are returned alongside the error: completed slots
// hold their values, skipped slots hold T's zero value.
func MapOn[T any](sched *Scheduler, n int, stop func() bool, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := sched.RunStop(n, stop, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err == nil || errors.Is(err, ErrStopped) {
		return out, err
	}
	return nil, err
}
