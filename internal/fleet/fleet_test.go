package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		counts := make([]atomic.Int32, n)
		err := Run(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunSingleWorkerIsInOrder(t *testing.T) {
	var order []int
	if err := Run(10, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v", order)
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("cell 3")
	errB := errors.New("cell 7")
	for _, workers := range []int{1, 4} {
		err := Run(10, workers, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	for _, n := range []int{0, -5} {
		called := false
		if err := Run(n, 4, func(int) error { called = true; return nil }); err != nil {
			t.Fatal(err)
		}
		if called {
			t.Errorf("n=%d: fn called", n)
		}
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := Map(50, workers, func(i int) (string, error) {
			return fmt.Sprintf("cell-%02d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if want := fmt.Sprintf("cell-%02d", i); v != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, v, want)
			}
		}
	}
}

func TestMapParallelEqualsSequential(t *testing.T) {
	fn := func(i int) (int, error) { return i*i + 1, nil }
	seq, err := Map(200, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(200, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}

func TestMapErrorDropsResults(t *testing.T) {
	out, err := Map(5, 2, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil slice and error", out, err)
	}
}

func TestRunRecoversPanickingCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		counts := make([]atomic.Int32, 10)
		err := Run(10, workers, func(i int) error {
			counts[i].Add(1)
			if i == 4 {
				panic("cell exploded")
			}
			return nil
		})
		var pe *CellPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *CellPanicError", workers, err)
		}
		if pe.Cell != 4 || pe.Value != "cell exploded" {
			t.Fatalf("workers=%d: panic error = %+v", workers, pe)
		}
		// The other cells must still have run: one bad cell does not
		// take down the grid.
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, counts[i].Load())
			}
		}
	}
}

func TestRunReportsLowestIndexPanic(t *testing.T) {
	err := Run(10, 4, func(i int) error {
		if i == 3 || i == 8 {
			panic(i)
		}
		return nil
	})
	var pe *CellPanicError
	if !errors.As(err, &pe) || pe.Cell != 3 {
		t.Fatalf("err = %v, want cell 3 panic", err)
	}
}

func TestRunStopSkipsRemainingCells(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		stop := func() bool { return ran.Load() >= 5 }
		err := RunStop(20, workers, stop, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("workers=%d: err = %v, want ErrStopped", workers, err)
		}
		// With w workers, at most w cells can already be past the stop
		// poll when the predicate flips.
		if n := ran.Load(); n < 5 || n >= 20 {
			t.Fatalf("workers=%d: %d cells ran", workers, n)
		}
	}
}

func TestRunStopNilAndNeverFiringAreComplete(t *testing.T) {
	if err := RunStop(10, 2, nil, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := RunStop(10, 2, func() bool { return false }, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapStopReturnsPartialResults(t *testing.T) {
	var ran atomic.Int32
	stop := func() bool { return ran.Load() >= 3 }
	out, err := MapStop(10, 1, stop, func(i int) (int, error) {
		ran.Add(1)
		return i + 100, nil
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if len(out) != 10 || out[0] != 100 || out[9] != 0 {
		t.Fatalf("partial results wrong: %v", out)
	}
}

func TestCellErrorBeatsStop(t *testing.T) {
	// A real cell failure must surface even if the stop hook also
	// fired: the error is the more important signal.
	boom := errors.New("boom")
	err := RunStop(5, 1, func() bool { return false }, func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
