package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, n := range []int{0, -1} {
		if got := Workers(n); got != want {
			t.Errorf("Workers(%d) = %d, want GOMAXPROCS %d", n, got, want)
		}
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		counts := make([]atomic.Int32, n)
		err := Run(n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunSingleWorkerIsInOrder(t *testing.T) {
	var order []int
	if err := Run(10, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker order = %v", order)
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("cell 3")
	errB := errors.New("cell 7")
	for _, workers := range []int{1, 4} {
		err := Run(10, workers, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
	}
}

func TestRunZeroAndNegativeN(t *testing.T) {
	for _, n := range []int{0, -5} {
		called := false
		if err := Run(n, 4, func(int) error { called = true; return nil }); err != nil {
			t.Fatal(err)
		}
		if called {
			t.Errorf("n=%d: fn called", n)
		}
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		out, err := Map(50, workers, func(i int) (string, error) {
			return fmt.Sprintf("cell-%02d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if want := fmt.Sprintf("cell-%02d", i); v != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, v, want)
			}
		}
	}
}

func TestMapParallelEqualsSequential(t *testing.T) {
	fn := func(i int) (int, error) { return i*i + 1, nil }
	seq, err := Map(200, 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(200, 8, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}

func TestMapErrorDropsResults(t *testing.T) {
	out, err := Map(5, 2, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v, want nil slice and error", out, err)
	}
}
