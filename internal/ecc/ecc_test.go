package ecc

import (
	"testing"

	"repro/internal/sim"
)

func TestTableILatencyRange(t *testing.T) {
	e := NewEngine()
	if e.MinLatency() != sim.Microsecond {
		t.Fatalf("min latency = %v, want 1us", e.MinLatency())
	}
	if e.MaxLatency() != 20*sim.Microsecond {
		t.Fatalf("max latency = %v, want 20us", e.MaxLatency())
	}
}

func TestDecodeCleanPage(t *testing.T) {
	e := NewEngine()
	out := e.Decode(0.0001)
	if !out.OK {
		t.Fatal("near-clean page failed to decode")
	}
	if out.Latency != sim.Microsecond || out.Iterations != 1 {
		t.Fatalf("clean decode latency=%v iters=%d", out.Latency, out.Iterations)
	}
}

func TestDecodeFailureBurnsMaxIterations(t *testing.T) {
	// §III-B3: "When an uncorrectable page is decoded by an ECC
	// engine, its tECC is much longer than that of an ECC-decodable
	// page" — the full 20 iterations.
	e := NewEngine()
	out := e.Decode(0.012)
	if out.OK {
		t.Fatal("page above capability decoded")
	}
	if out.Latency != e.MaxLatency() || out.Iterations != e.MaxIterations {
		t.Fatalf("failed decode latency=%v iters=%d", out.Latency, out.Iterations)
	}
}

func TestDecodeBoundaryExactlyAtCapability(t *testing.T) {
	e := NewEngine()
	if !e.Decode(e.Capability).OK {
		t.Fatal("page at exactly the capability must decode")
	}
	if e.Decode(e.Capability * 1.0001).OK {
		t.Fatal("page just above the capability must fail")
	}
}

func TestIterationsMonotonic(t *testing.T) {
	e := NewEngine()
	prev := 0
	for r := 0.0; r <= 0.0085; r += 0.0005 {
		it := e.Iterations(r)
		if it < prev {
			t.Fatalf("iterations decreased at rber=%v", r)
		}
		if it < 1 || it > e.MaxIterations {
			t.Fatalf("iterations out of range at rber=%v: %d", r, it)
		}
		prev = it
	}
}

func TestIterationCurveShape(t *testing.T) {
	// Fig. 3(b): iterations stay low at half the capability and reach
	// the cap at the capability.
	e := NewEngine()
	if it := e.Iterations(e.Capability / 2); it > 5 {
		t.Fatalf("iterations at cap/2 = %d, want small", it)
	}
	if it := e.Iterations(e.Capability); it != e.MaxIterations {
		t.Fatalf("iterations at capability = %d, want %d", it, e.MaxIterations)
	}
	if it := e.Iterations(0); it != 1 {
		t.Fatalf("iterations at 0 = %d", it)
	}
}

func TestLatencyProportionalToIterations(t *testing.T) {
	e := NewEngine()
	for _, r := range []float64{0.001, 0.004, 0.007, 0.0085, 0.02} {
		out := e.Decode(r)
		if out.Latency != sim.Time(out.Iterations)*e.IterationTime {
			t.Fatalf("rber=%v: latency %v != %d iterations", r, out.Latency, out.Iterations)
		}
	}
}
