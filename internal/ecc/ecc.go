// Package ecc models the channel-level LDPC engine of a modern SSD at
// the fidelity the simulator needs: whether a page at a given RBER
// decodes, and how long the decode takes. The latency curve is
// calibrated to the paper's Table I (tECC varies from 1 to 20 µs with
// the page's RBER) and to the iteration behaviour of the real min-sum
// decoder in internal/ldpc (Fig. 3(b)).
package ecc

import (
	"math"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Engine is the analytic channel-ECC model.
type Engine struct {
	// Capability is the RBER above which decoding fails (Fig. 3(a)).
	Capability float64
	// MaxIterations is the decode iteration cap; a failing decode
	// always burns all of them (20 in the paper).
	MaxIterations int
	// IterationTime is the latency of one decoding iteration, chosen
	// so tECC spans [MinLatency, MaxIterations*IterationTime].
	IterationTime sim.Time
	// Hist, when non-nil, receives every decode attempt's latency in
	// microseconds (the tECC distribution of the run).
	Hist *obs.Histogram
}

// NewEngine returns the Table I engine: capability 0.0085, 20
// iterations, tECC in [1 µs, 20 µs].
func NewEngine() *Engine {
	return &Engine{
		Capability:    0.0085,
		MaxIterations: 20,
		IterationTime: sim.Microsecond,
	}
}

// Iterations estimates the decoder iteration count for a page with
// the given RBER: near 1 for clean pages, rising steeply toward the
// cap as the RBER approaches the capability (matching Fig. 3(b) and
// the measured behaviour of the min-sum decoder).
func (e *Engine) Iterations(rber float64) int {
	if rber <= 0 {
		return 1
	}
	if rber > e.Capability {
		return e.MaxIterations
	}
	it := 1 + int(float64(e.MaxIterations-1)*math.Pow(rber/e.Capability, 3)+0.5)
	if it > e.MaxIterations {
		it = e.MaxIterations
	}
	return it
}

// Outcome describes one decode attempt.
type Outcome struct {
	// OK reports whether the page decoded.
	OK bool
	// Latency is the engine occupancy for this attempt (tECC).
	Latency sim.Time
	// Iterations is the estimated iteration count.
	Iterations int
}

// Decode evaluates a decode attempt for a page with the given RBER.
func (e *Engine) Decode(rber float64) Outcome {
	it := e.Iterations(rber)
	out := Outcome{
		OK:         rber <= e.Capability,
		Latency:    sim.Time(it) * e.IterationTime,
		Iterations: it,
	}
	e.Hist.Observe(out.Latency.Microseconds())
	return out
}

// MinLatency is the fastest possible decode (one iteration).
func (e *Engine) MinLatency() sim.Time { return e.IterationTime }

// MaxLatency is the latency of a failing decode (all iterations).
func (e *Engine) MaxLatency() sim.Time {
	return sim.Time(e.MaxIterations) * e.IterationTime
}
