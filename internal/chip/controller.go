package chip

import (
	"fmt"

	"repro/internal/ldpc"
)

// Controller is the off-chip side of the data path: the channel-level
// LDPC decoder plus the layout restore and descrambling steps. It
// pairs with a Chip to form the complete read/write pipeline.
type Controller struct {
	code    *ldpc.Code
	decoder *ldpc.MinSumDecoder
}

// NewController builds the controller half for a chip's code.
func NewController(code *ldpc.Code) *Controller {
	return &Controller{
		code:    code,
		decoder: ldpc.NewMinSumDecoder(code, 0),
	}
}

// DecodeOutcome reports a page decode attempt.
type DecodeOutcome struct {
	// OK is true when every codeword decoded.
	OK bool
	// Data is the recovered user data (valid when OK).
	Data []byte
	// Iterations is the summed LDPC iteration count across codewords
	// (the paper's tECC driver).
	Iterations int
	// FailedCodewords counts codewords the decoder could not fix.
	FailedCodewords int
}

// Decode restores the codeword layout (§V-B: the controller rotates
// segments back before LDPC decoding), decodes every codeword and
// descrambles the recovered data.
func (c *Controller) Decode(chipRef *Chip, a PageAddr, res *ReadResult) (*DecodeOutcome, error) {
	if len(res.Codewords) == 0 {
		return nil, fmt.Errorf("chip: empty read result")
	}
	out := &DecodeOutcome{OK: true}
	kBytes := c.code.K() / 8
	buf := make([]byte, 0, len(res.Codewords)*kBytes)
	for _, sensed := range res.Codewords {
		restored := c.code.Restore(sensed)
		dec := c.decoder.Decode(restored)
		out.Iterations += dec.Iterations
		if !dec.OK {
			out.OK = false
			out.FailedCodewords++
			buf = append(buf, make([]byte, kBytes)...)
			continue
		}
		buf = append(buf, bitsToBytes(c.code.ExtractData(dec.Word))...)
	}
	if !out.OK {
		return out, nil
	}
	chipRef.randomizer.Scramble(buf, chipRef.ppn(a)) // descramble (involution)
	out.Data = buf
	return out, nil
}

// ReadPage drives the full paper read flow end to end: sense (with
// the on-die ODEAR engine if enabled), decode off-chip, and on
// failure fall back to conventional retries up to maxRetries times.
// It reports the recovered data plus the cost counters a performance
// model would consume.
func (c *Controller) ReadPage(chipRef *Chip, a PageAddr, cond Condition, maxRetries int) (*PageReadStats, error) {
	res, err := chipRef.Read(a, cond)
	if err != nil {
		return nil, err
	}
	stats := &PageReadStats{
		Senses:       res.Senses,
		Transfers:    1,
		InDieRetried: res.Retried,
	}
	out, err := c.Decode(chipRef, a, res)
	if err != nil {
		return nil, err
	}
	stats.Iterations += out.Iterations
	for !out.OK && stats.OffChipRetries < maxRetries {
		stats.OffChipRetries++
		res, err = chipRef.ReadConventionalRetry(a, cond)
		if err != nil {
			return nil, err
		}
		stats.Senses += res.Senses
		stats.Transfers++
		out, err = c.Decode(chipRef, a, res)
		if err != nil {
			return nil, err
		}
		stats.Iterations += out.Iterations
	}
	stats.OK = out.OK
	stats.Data = out.Data
	return stats, nil
}

// PageReadStats summarizes one end-to-end page read.
type PageReadStats struct {
	OK             bool
	Data           []byte
	Senses         int  // array sense operations (tR units)
	Transfers      int  // channel crossings (tDMA units)
	InDieRetried   bool // the ODEAR engine re-read the page
	OffChipRetries int  // conventional retry loops needed
	Iterations     int  // total LDPC iterations (tECC driver)
}
