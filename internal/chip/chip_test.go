package chip

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/ldpc"
)

func newTestChip(t *testing.T, odear bool) (*Chip, *Controller) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ODEAR = odear
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, NewController(cfg.Code)
}

func randomPage(t *testing.T, c *Chip, seed uint64) []byte {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0))
	data := make([]byte, c.cfg.PageBytes)
	for i := range data {
		data[i] = byte(rng.UintN(256))
	}
	return data
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Planes = 0 },
		func(c *Config) { c.Code = nil },
		func(c *Config) { c.Model = nil },
		func(c *Config) { c.PageBytes = 1000 }, // not a codeword multiple
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCleanRoundTrip(t *testing.T) {
	c, ctrl := newTestChip(t, true)
	addr := PageAddr{Plane: 1, Block: 2, Page: 3}
	data := randomPage(t, c, 1)
	if err := c.Program(addr, data); err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.ReadPage(c, addr, Condition{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.OK {
		t.Fatal("fresh page failed to decode")
	}
	if !bytes.Equal(stats.Data, data) {
		t.Fatal("recovered data differs from programmed data")
	}
	if stats.Senses != 1 || stats.Transfers != 1 || stats.InDieRetried {
		t.Fatalf("fresh read cost wrong: %+v", stats)
	}
}

func TestStressedPageRecoveredByODEAR(t *testing.T) {
	// A retention-stressed page on a RiF chip: the ODEAR engine must
	// detect it on-die, re-read internally, and the single transfer
	// must decode byte-exactly — the whole point of the design.
	c, ctrl := newTestChip(t, true)
	addr := PageAddr{Plane: 0, Block: 0, Page: 2} // MSB page
	data := randomPage(t, c, 2)
	if err := c.Program(addr, data); err != nil {
		t.Fatal(err)
	}
	cond := Condition{PECycles: 2000, RetentionDays: 20}
	stats, err := ctrl.ReadPage(c, addr, cond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.OK || !bytes.Equal(stats.Data, data) {
		t.Fatal("stressed page not recovered")
	}
	if !stats.InDieRetried {
		t.Fatal("ODEAR engine did not catch a stressed page")
	}
	if stats.OffChipRetries != 0 {
		t.Fatalf("RiF read needed %d off-chip retries", stats.OffChipRetries)
	}
	if stats.Transfers != 1 {
		t.Fatalf("RiF read used %d transfers, want 1", stats.Transfers)
	}
	if stats.Senses != 2 {
		t.Fatalf("RiF read used %d senses, want 2", stats.Senses)
	}
}

func TestStressedPageOnConventionalChip(t *testing.T) {
	// The same stress on a conventional chip: the first transfer
	// fails off-chip and a retry loop is needed — still byte-exact in
	// the end, but with the extra channel crossing RiF avoids.
	c, ctrl := newTestChip(t, false)
	addr := PageAddr{Plane: 0, Block: 0, Page: 2}
	data := randomPage(t, c, 3)
	if err := c.Program(addr, data); err != nil {
		t.Fatal(err)
	}
	cond := Condition{PECycles: 2000, RetentionDays: 20}
	stats, err := ctrl.ReadPage(c, addr, cond, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.OK || !bytes.Equal(stats.Data, data) {
		t.Fatal("conventional retry failed to recover the page")
	}
	if stats.OffChipRetries == 0 {
		t.Fatal("conventional chip skipped the off-chip retry")
	}
	if stats.Transfers < 2 {
		t.Fatalf("conventional read used %d transfers, want >= 2", stats.Transfers)
	}
}

func TestStatusRegister(t *testing.T) {
	c, _ := newTestChip(t, true)
	addr := PageAddr{Plane: 0, Block: 1, Page: 2}
	if err := c.Program(addr, randomPage(t, c, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(addr, Condition{}); err != nil {
		t.Fatal(err)
	}
	if p, r := c.LastStatus(); p || r {
		t.Fatal("status set after clean read")
	}
	if _, err := c.Read(addr, Condition{PECycles: 2000, RetentionDays: 20}); err != nil {
		t.Fatal(err)
	}
	if p, r := c.LastStatus(); !p || !r {
		t.Fatal("status not set after stressed read")
	}
}

func TestODEARDisabledNeverRetriesInDie(t *testing.T) {
	c, _ := newTestChip(t, false)
	addr := PageAddr{Plane: 0, Block: 0, Page: 1}
	if err := c.Program(addr, randomPage(t, c, 5)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Read(addr, Condition{PECycles: 2000, RetentionDays: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried || res.Predicted || res.Senses != 1 {
		t.Fatalf("conventional chip ran ODEAR: %+v", res)
	}
}

func TestReadUnwrittenPageFails(t *testing.T) {
	c, _ := newTestChip(t, true)
	if _, err := c.Read(PageAddr{}, Condition{}); err == nil {
		t.Fatal("read of unwritten page succeeded")
	}
}

func TestBadAddressRejected(t *testing.T) {
	c, _ := newTestChip(t, true)
	data := randomPage(t, c, 6)
	for _, a := range []PageAddr{
		{Plane: -1}, {Plane: 99}, {Block: 99}, {Page: 99},
	} {
		if err := c.Program(a, data); err == nil {
			t.Errorf("program at %+v accepted", a)
		}
	}
	if err := c.Program(PageAddr{}, data[:10]); err == nil {
		t.Fatal("short program accepted")
	}
}

func TestOverwriteReplacesData(t *testing.T) {
	c, ctrl := newTestChip(t, true)
	addr := PageAddr{Plane: 2, Block: 3, Page: 4}
	first := randomPage(t, c, 7)
	second := randomPage(t, c, 8)
	if err := c.Program(addr, first); err != nil {
		t.Fatal(err)
	}
	if err := c.Program(addr, second); err != nil {
		t.Fatal(err)
	}
	stats, err := ctrl.ReadPage(c, addr, Condition{}, 1)
	if err != nil || !stats.OK {
		t.Fatal("re-read failed")
	}
	if !bytes.Equal(stats.Data, second) {
		t.Fatal("overwrite did not take effect")
	}
}

func TestIterationsGrowWithStress(t *testing.T) {
	c, ctrl := newTestChip(t, true)
	addr := PageAddr{Plane: 0, Block: 2, Page: 0}
	if err := c.Program(addr, randomPage(t, c, 9)); err != nil {
		t.Fatal(err)
	}
	fresh, err := ctrl.ReadPage(c, addr, Condition{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	aged, err := ctrl.ReadPage(c, addr, Condition{PECycles: 1000, RetentionDays: 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if aged.Iterations <= fresh.Iterations {
		t.Fatalf("iterations did not grow with stress: %d vs %d", aged.Iterations, fresh.Iterations)
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(bitsToBytes(bytesToBits(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundTripManyPages(t *testing.T) {
	// Any data, any address: program-then-read under benign conditions
	// is the identity.
	cfg := DefaultConfig()
	cfg.Code = ldpc.NewCode(4, 12, 64, 3) // tiny code for speed
	cfg.PageBytes = 2 * cfg.Code.K() / 8
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(cfg.Code)
	f := func(seed uint64, plRaw, blkRaw, pgRaw uint8) bool {
		addr := PageAddr{
			Plane: int(plRaw) % cfg.Planes,
			Block: int(blkRaw) % cfg.BlocksPerPlane,
			Page:  int(pgRaw) % cfg.PagesPerBlock,
		}
		rng := rand.New(rand.NewPCG(seed, 1))
		data := make([]byte, cfg.PageBytes)
		for i := range data {
			data[i] = byte(rng.UintN(256))
		}
		if err := c.Program(addr, data); err != nil {
			return false
		}
		stats, err := ctrl.ReadPage(c, addr, Condition{}, 1)
		return err == nil && stats.OK && bytes.Equal(stats.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
