// Package chip is a functional model of a RiF-enabled NAND flash
// chip — the counterpart of the paper's prototype chip. Unlike the
// timing simulator in internal/ssd, this model stores and returns
// real bits: programming a page scrambles the data, LDPC-encodes it,
// applies the §V-B codeword rearrangement and stores the result;
// reading a page injects raw bit errors according to the calibrated
// NAND reliability model, runs the on-die ODEAR engine (RP chunk
// check, RVS re-read) and hands the sensed codewords to the
// controller side, which restores the layout, decodes and
// descrambles. Every path of Figs. 8, 9, 15 and 16 is exercised on
// actual data.
package chip

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/ldpc"
	"repro/internal/nand"
	"repro/internal/odear"
)

// Config assembles a functional chip.
type Config struct {
	// Planes, BlocksPerPlane, PagesPerBlock fix the address space.
	Planes, BlocksPerPlane, PagesPerBlock int
	// PageBytes is the user data per page; it must be a multiple of
	// the code's data size (K/8 bytes), one codeword per chunk.
	PageBytes int
	// Code is the QC-LDPC code shared by the chip's RP and the
	// controller's decoder.
	Code *ldpc.Code
	// Model supplies the reliability physics for error injection.
	Model *nand.Model
	// ODEAR enables the on-die engine (a RiF-enabled chip); when
	// false the chip behaves conventionally.
	ODEAR bool
	// Seed drives error injection.
	Seed uint64
}

// DefaultConfig returns a small RiF-enabled chip whose code keeps the
// paper's 4x36 block shape (use ldpc.PaperCirculant for full-size
// 4-KiB codewords).
func DefaultConfig() Config {
	code := ldpc.NewCode(4, 36, 256, 7)
	return Config{
		Planes:         4,
		BlocksPerPlane: 8,
		PagesPerBlock:  16,
		PageBytes:      4 * code.K() / 8, // 4 codewords per page
		Code:           code,
		Model:          nand.NewDefaultModel(1),
		ODEAR:          true,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Planes <= 0 || c.BlocksPerPlane <= 0 || c.PagesPerBlock <= 0:
		return fmt.Errorf("chip: bad geometry %d/%d/%d", c.Planes, c.BlocksPerPlane, c.PagesPerBlock)
	case c.Code == nil:
		return fmt.Errorf("chip: nil code")
	case c.Model == nil:
		return fmt.Errorf("chip: nil reliability model")
	case c.PageBytes <= 0 || c.Code.K()%8 != 0 || c.PageBytes%(c.Code.K()/8) != 0:
		return fmt.Errorf("chip: page bytes %d not a multiple of codeword data %d", c.PageBytes, c.Code.K()/8)
	}
	return nil
}

// PageAddr locates one page on the chip.
type PageAddr struct {
	Plane, Block, Page int
}

// Chip is a functional RiF-enabled flash die. Not safe for concurrent
// use.
type Chip struct {
	cfg        Config
	randomizer *nand.Randomizer
	rp         *odear.RP
	rng        *rand.Rand
	// pages stores the programmed (rearranged) codewords, sparse.
	pages map[PageAddr]*storedPage
	// Status register: set by the last read (Fig. 9's ready flag and
	// the retry indication).
	lastRetried   bool
	lastPredicted bool
}

type storedPage struct {
	codewords []ldpc.Bits // rearranged layout, as the die stores them
}

// New builds a chip.
func New(cfg Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Chip{
		cfg:        cfg,
		randomizer: nand.NewRandomizer(cfg.Seed ^ 0x5ca1ab1e),
		rp:         odear.NewRP(cfg.Code, nand.ECCCapabilityRBER, true),
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0xd1e)),
		pages:      make(map[PageAddr]*storedPage),
	}, nil
}

// CodewordsPerPage reports how many LDPC codewords one page holds.
func (c *Chip) CodewordsPerPage() int {
	return c.cfg.PageBytes / (c.cfg.Code.K() / 8)
}

// ppn flattens an address for the randomizer seed.
func (c *Chip) ppn(a PageAddr) int64 {
	return int64((a.Plane*c.cfg.BlocksPerPlane+a.Block)*c.cfg.PagesPerBlock + a.Page)
}

func (c *Chip) checkAddr(a PageAddr) error {
	if a.Plane < 0 || a.Plane >= c.cfg.Planes ||
		a.Block < 0 || a.Block >= c.cfg.BlocksPerPlane ||
		a.Page < 0 || a.Page >= c.cfg.PagesPerBlock {
		return fmt.Errorf("chip: address %+v out of range", a)
	}
	return nil
}

// Program writes user data to a page: scramble → LDPC encode per
// codeword → rearrange (§V-B) → store. This is the controller+die
// write path of the paper.
func (c *Chip) Program(a PageAddr, data []byte) error {
	if err := c.checkAddr(a); err != nil {
		return err
	}
	if len(data) != c.cfg.PageBytes {
		return fmt.Errorf("chip: program %d bytes, want %d", len(data), c.cfg.PageBytes)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	c.randomizer.Scramble(buf, c.ppn(a))

	kBytes := c.cfg.Code.K() / 8
	sp := &storedPage{}
	for off := 0; off < len(buf); off += kBytes {
		dataBits := bytesToBits(buf[off : off+kBytes])
		cw := c.cfg.Code.Encode(dataBits)
		sp.codewords = append(sp.codewords, c.cfg.Code.Rearrange(cw))
	}
	c.pages[a] = sp
	return nil
}

// Condition is the operating state under which a read happens.
type Condition struct {
	PECycles      int
	RetentionDays float64
	Reads         int
}

// ReadResult is what crosses the channel to the controller.
type ReadResult struct {
	// Codewords are the sensed (noisy, rearranged) codewords.
	Codewords []ldpc.Bits
	// Retried reports whether the ODEAR engine re-read the page
	// internally before transfer.
	Retried bool
	// Predicted reports RP's verdict on the first sense (true =
	// predicted uncorrectable).
	Predicted bool
	// Senses counts array sense operations (1, or 2 after an
	// internal retry) — the tR cost of the read.
	Senses int
}

// Read senses a page under the condition. On a RiF-enabled chip the
// ODEAR engine checks the first 4-KiB chunk's pruned syndrome weight
// (the chunk-based prediction of §V-A1); if the page is predicted
// uncorrectable, RVS re-reads it at near-optimal voltages and only
// the re-read data is returned (Fig. 9's flow).
func (c *Chip) Read(a PageAddr, cond Condition) (*ReadResult, error) {
	if err := c.checkAddr(a); err != nil {
		return nil, err
	}
	sp, ok := c.pages[a]
	if !ok {
		return nil, fmt.Errorf("chip: read of unwritten page %+v", a)
	}
	pt := nand.PageTypeOf(a.Page)
	blockID := a.Plane*c.cfg.BlocksPerPlane + a.Block

	sense := func(mode nand.VrefMode) []ldpc.Bits {
		pageRBER := c.cfg.Model.PageRBER(blockID, pt, cond.PECycles, cond.RetentionDays, int64(cond.Reads), mode)
		out := make([]ldpc.Bits, len(sp.codewords))
		for i, cw := range sp.codewords {
			r := c.cfg.Model.ChunkRBER(pageRBER, uint64(c.ppn(a)), i, len(sp.codewords))
			out[i] = ldpc.FlipRandom(cw, r, c.rng)
		}
		return out
	}

	res := &ReadResult{Codewords: sense(nand.DefaultVref), Senses: 1}
	if c.cfg.ODEAR {
		// RP checks only the first chunk of the page buffer.
		res.Predicted = c.rp.PredictRearranged(res.Codewords[0])
		if res.Predicted {
			// RVS: internal Swift-Read re-read at near-optimal VREF.
			res.Codewords = sense(nand.OptimalVref)
			res.Retried = true
			res.Senses++
		}
	}
	c.lastRetried = res.Retried
	c.lastPredicted = res.Predicted
	return res, nil
}

// ReadConventionalRetry models the off-chip retry a conventional
// controller issues after a decode failure: a fresh sense at the
// near-optimal voltages.
func (c *Chip) ReadConventionalRetry(a PageAddr, cond Condition) (*ReadResult, error) {
	if err := c.checkAddr(a); err != nil {
		return nil, err
	}
	sp, ok := c.pages[a]
	if !ok {
		return nil, fmt.Errorf("chip: retry of unwritten page %+v", a)
	}
	pt := nand.PageTypeOf(a.Page)
	blockID := a.Plane*c.cfg.BlocksPerPlane + a.Block
	pageRBER := c.cfg.Model.PageRBER(blockID, pt, cond.PECycles, cond.RetentionDays, int64(cond.Reads), nand.OptimalVref)
	out := make([]ldpc.Bits, len(sp.codewords))
	for i, cw := range sp.codewords {
		r := c.cfg.Model.ChunkRBER(pageRBER, uint64(c.ppn(a)), i, len(sp.codewords))
		out[i] = ldpc.FlipRandom(cw, r, c.rng)
	}
	return &ReadResult{Codewords: out, Senses: 1}, nil
}

// LastStatus reports the chip's status register after the most
// recent read: whether RP flagged the page and whether RVS re-read it.
func (c *Chip) LastStatus() (predicted, retried bool) {
	return c.lastPredicted, c.lastRetried
}

// bytesToBits packs bytes LSB-first into a Bits vector.
func bytesToBits(b []byte) ldpc.Bits {
	out := ldpc.NewBits(len(b) * 8)
	for i, by := range b {
		for j := 0; j < 8; j++ {
			if by&(1<<j) != 0 {
				out.Set(i*8+j, true)
			}
		}
	}
	return out
}

// bitsToBytes is the inverse of bytesToBits.
func bitsToBytes(bits ldpc.Bits) []byte {
	out := make([]byte, bits.Len()/8)
	for i := range out {
		var by byte
		for j := 0; j < 8; j++ {
			if bits.Get(i*8 + j) {
				by |= 1 << j
			}
		}
		out[i] = by
	}
	return out
}
