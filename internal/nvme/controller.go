package nvme

import (
	"fmt"

	"repro/internal/obs"
)

// Backend executes NVM commands against storage. The ssd simulator
// (via an adapter) or any in-memory fake can serve as one. Execute
// must eventually call done exactly once.
type Backend interface {
	Execute(sqid uint16, cmd Command, done func(Status))
}

// Arbitration selects how the controller picks among non-empty
// submission queues.
type Arbitration int

// Arbitration policies (NVMe spec §4.13).
const (
	RoundRobin Arbitration = iota
	WeightedRoundRobin
)

// queuePair couples one SQ with its CQ and WRR weight.
type queuePair struct {
	sq     *Queue[Command]
	cq     *Queue[Completion]
	weight int
	// inFlight tracks CIDs submitted to the backend and not yet
	// completed, to detect CID reuse.
	inFlight map[uint16]bool
	// Depth high-water gauges (nil when observability is off).
	sqHigh *obs.Gauge
	cqHigh *obs.Gauge
}

// Controller owns the queue pairs and the arbitration state. It is
// deliberately synchronous: Doorbell hands commands to the backend;
// completions land in the CQ when the backend finishes.
type Controller struct {
	backend Backend
	arb     Arbitration
	pairs   []*queuePair
	// Burst is the arbitration burst: how many commands one queue may
	// submit per arbitration turn.
	Burst int
	// Obs, when non-nil, receives per-queue SQ/CQ depth high-water
	// gauges (nvme_sq<i>_depth_highwater, nvme_cq<i>_depth_highwater).
	// Set it before creating queue pairs.
	Obs *obs.Registry
}

// NewController builds a controller over a backend.
func NewController(backend Backend, arb Arbitration) *Controller {
	return &Controller{backend: backend, arb: arb, Burst: 1}
}

// CreateQueuePair registers a new SQ/CQ pair with the given depth and
// WRR weight (ignored under plain round robin), returning its SQID.
func (c *Controller) CreateQueuePair(depth, weight int) uint16 {
	if weight < 1 {
		weight = 1
	}
	sqid := len(c.pairs)
	c.pairs = append(c.pairs, &queuePair{
		sq:       NewQueue[Command](depth),
		cq:       NewQueue[Completion](depth),
		weight:   weight,
		inFlight: make(map[uint16]bool),
		sqHigh:   c.Obs.Gauge(fmt.Sprintf("nvme_sq%d_depth_highwater", sqid)),
		cqHigh:   c.Obs.Gauge(fmt.Sprintf("nvme_cq%d_depth_highwater", sqid)),
	})
	return uint16(sqid)
}

// pair validates an SQID.
func (c *Controller) pair(sqid uint16) (*queuePair, error) {
	if int(sqid) >= len(c.pairs) {
		return nil, fmt.Errorf("nvme: unknown sqid %d", sqid)
	}
	return c.pairs[sqid], nil
}

// Submit places a command on a submission queue (the host writing an
// SQE). It fails when the ring is full or the CID is already in use.
func (c *Controller) Submit(sqid uint16, cmd Command) error {
	p, err := c.pair(sqid)
	if err != nil {
		return err
	}
	if p.inFlight[cmd.CID] {
		return fmt.Errorf("nvme: sqid %d cid %d reused while in flight", sqid, cmd.CID)
	}
	if !p.sq.Push(cmd) {
		return fmt.Errorf("nvme: sqid %d full", sqid)
	}
	p.sqHigh.SetMax(int64(p.sq.Len()))
	return nil
}

// Doorbell rings the submission doorbells: the controller arbitrates
// across the non-empty SQs and hands commands to the backend until
// every SQ drains. Completions appear on the matching CQs as the
// backend finishes.
func (c *Controller) Doorbell() {
	for {
		progressed := false
		for sqid := range c.pairs {
			p := c.pairs[sqid]
			burst := c.Burst
			if c.arb == WeightedRoundRobin {
				burst = p.weight * c.Burst
			}
			for n := 0; n < burst; n++ {
				cmd, ok := p.sq.Pop()
				if !ok {
					break
				}
				progressed = true
				c.dispatch(uint16(sqid), cmd)
			}
		}
		if !progressed {
			return
		}
	}
}

// dispatch validates and executes one command.
func (c *Controller) dispatch(sqid uint16, cmd Command) {
	p := c.pairs[sqid]
	switch cmd.Opcode {
	case OpRead, OpWrite, OpFlush:
	default:
		p.complete(sqid, cmd.CID, StatusInvalidOp)
		return
	}
	if cmd.Opcode != OpFlush && cmd.SLBA < 0 {
		p.complete(sqid, cmd.CID, StatusInvalidField)
		return
	}
	p.inFlight[cmd.CID] = true
	c.backend.Execute(sqid, cmd, func(st Status) {
		delete(p.inFlight, cmd.CID)
		p.complete(sqid, cmd.CID, st)
	})
}

// complete posts a CQE.
func (p *queuePair) complete(sqid uint16, cid uint16, st Status) {
	p.cq.Push(Completion{CID: cid, SQID: sqid, Status: st, SQHead: p.sq.Head()})
	p.cqHigh.SetMax(int64(p.cq.Len()))
}

// Reap drains up to max completions from a CQ (the host consuming
// CQEs and ringing the CQ doorbell).
func (c *Controller) Reap(sqid uint16, max int) ([]Completion, error) {
	p, err := c.pair(sqid)
	if err != nil {
		return nil, err
	}
	var out []Completion
	for len(out) < max {
		cqe, ok := p.cq.Pop()
		if !ok {
			break
		}
		out = append(out, cqe)
	}
	return out, nil
}

// Pending reports queued-but-unsubmitted commands across all SQs.
func (c *Controller) Pending() int {
	n := 0
	for _, p := range c.pairs {
		n += p.sq.Len()
	}
	return n
}
