// Package nvme models the NVMe queue-pair mechanics a modern
// multi-queue SSD exposes to its host: submission/completion rings
// with doorbells, command and completion entries, and the
// round-robin / weighted-round-robin arbitration the controller uses
// to pick the next command. It is the front end MQSim-style
// simulators put before the flash back end.
package nvme

import "fmt"

// Opcode is an NVM command set opcode.
type Opcode uint8

// The NVM I/O commands the simulator serves.
const (
	OpFlush Opcode = 0x00
	OpWrite Opcode = 0x01
	OpRead  Opcode = 0x02
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpFlush:
		return "Flush"
	case OpWrite:
		return "Write"
	case OpRead:
		return "Read"
	}
	return fmt.Sprintf("Opcode(%#x)", uint8(o))
}

// Command is a submission queue entry (the fields the simulator
// consumes; a real SQE is 64 bytes).
type Command struct {
	Opcode Opcode
	CID    uint16 // command identifier, unique per queue while in flight
	NSID   uint32
	SLBA   int64  // starting logical block address
	NLB    uint32 // number of logical blocks, zero-based per spec
}

// Completion is a completion queue entry.
type Completion struct {
	CID    uint16
	SQID   uint16
	Status Status
	SQHead uint16 // submission queue head at completion time
}

// Status is an NVMe status code (0 = success).
type Status uint16

// Status codes used by the model. The value packs SCT and SC as the
// spec's CQE status field does (bits 8:1 in DW3 hold SCT<<8|SC here).
const (
	StatusSuccess      Status = 0x0
	StatusInvalidOp    Status = 0x1
	StatusInvalidField Status = 0x2
	StatusInternal     Status = 0x6
	// StatusMediaError is SCT 2h (media and data integrity errors),
	// SC 81h (unrecovered read error): the status a real controller
	// returns when a read exhausts its retry ladder.
	StatusMediaError Status = 0x281
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "Success"
	case StatusInvalidOp:
		return "InvalidOpcode"
	case StatusInvalidField:
		return "InvalidField"
	case StatusInternal:
		return "InternalError"
	case StatusMediaError:
		return "UnrecoveredReadError"
	}
	return fmt.Sprintf("Status(%#x)", uint16(s))
}

// Queue is a power-of-two ring with head/tail indices, the structure
// both SQs and CQs share. One slot is kept open to distinguish full
// from empty, as in the spec.
type Queue[T any] struct {
	entries []T
	head    uint16 // consumer index
	tail    uint16 // producer index
}

// NewQueue allocates a ring with the given number of slots (min 2).
func NewQueue[T any](slots int) *Queue[T] {
	if slots < 2 {
		slots = 2
	}
	return &Queue[T]{entries: make([]T, slots)}
}

// Size reports the ring's slot count.
func (q *Queue[T]) Size() int { return len(q.entries) }

// Len reports the number of queued entries.
func (q *Queue[T]) Len() int {
	n := int(q.tail) - int(q.head)
	if n < 0 {
		n += len(q.entries)
	}
	return n
}

// Full reports whether the ring cannot accept another entry.
func (q *Queue[T]) Full() bool { return q.Len() == len(q.entries)-1 }

// Empty reports whether the ring has no entries.
func (q *Queue[T]) Empty() bool { return q.head == q.tail }

// Push appends an entry, reporting false when full.
func (q *Queue[T]) Push(e T) bool {
	if q.Full() {
		return false
	}
	q.entries[q.tail] = e
	q.tail = uint16((int(q.tail) + 1) % len(q.entries))
	return true
}

// Pop removes the head entry, reporting false when empty.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if q.Empty() {
		return zero, false
	}
	e := q.entries[q.head]
	q.head = uint16((int(q.head) + 1) % len(q.entries))
	return e, true
}

// Head reports the consumer index (for CQE SQHead fields).
func (q *Queue[T]) Head() uint16 { return q.head }
