package nvme

import (
	"testing"
	"testing/quick"
)

func TestQueueRingBasics(t *testing.T) {
	q := NewQueue[int](4) // 3 usable slots
	if !q.Empty() || q.Full() {
		t.Fatal("fresh ring state wrong")
	}
	for i := 1; i <= 3; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !q.Full() {
		t.Fatal("ring not full after 3 pushes")
	}
	if q.Push(4) {
		t.Fatal("push into full ring succeeded")
	}
	for i := 1; i <= 3; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d: %v %v", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestQueueWrapAround(t *testing.T) {
	q := NewQueue[int](4)
	for round := 0; round < 10; round++ {
		if !q.Push(round) {
			t.Fatalf("round %d push failed", round)
		}
		v, ok := q.Pop()
		if !ok || v != round {
			t.Fatalf("round %d pop %v %v", round, v, ok)
		}
	}
}

func TestQueueLenProperty(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewQueue[int](8)
		n := 0
		for _, push := range ops {
			if push {
				if q.Push(1) {
					n++
				}
			} else {
				if _, ok := q.Pop(); ok {
					n--
				}
			}
			if q.Len() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// fakeBackend completes immediately (or holds commands when async).
type fakeBackend struct {
	executed []Command
	holds    []func(Status)
	async    bool
}

func (f *fakeBackend) Execute(sqid uint16, cmd Command, done func(Status)) {
	f.executed = append(f.executed, cmd)
	if f.async {
		f.holds = append(f.holds, done)
		return
	}
	done(StatusSuccess)
}

func TestControllerSubmitReap(t *testing.T) {
	b := &fakeBackend{}
	c := NewController(b, RoundRobin)
	sq := c.CreateQueuePair(8, 1)
	for cid := uint16(0); cid < 3; cid++ {
		if err := c.Submit(sq, Command{Opcode: OpRead, CID: cid, SLBA: int64(cid) * 8, NLB: 7}); err != nil {
			t.Fatal(err)
		}
	}
	c.Doorbell()
	if len(b.executed) != 3 {
		t.Fatalf("backend saw %d commands", len(b.executed))
	}
	cqes, err := c.Reap(sq, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cqes) != 3 {
		t.Fatalf("reaped %d completions", len(cqes))
	}
	for i, cqe := range cqes {
		if cqe.Status != StatusSuccess || cqe.CID != uint16(i) || cqe.SQID != sq {
			t.Fatalf("cqe %d: %+v", i, cqe)
		}
	}
}

func TestControllerRejectsBadCommands(t *testing.T) {
	b := &fakeBackend{}
	c := NewController(b, RoundRobin)
	sq := c.CreateQueuePair(8, 1)
	if err := c.Submit(sq, Command{Opcode: 0x7f, CID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(sq, Command{Opcode: OpRead, CID: 2, SLBA: -1}); err != nil {
		t.Fatal(err)
	}
	c.Doorbell()
	if len(b.executed) != 0 {
		t.Fatal("invalid commands reached the backend")
	}
	cqes, _ := c.Reap(sq, 10)
	if len(cqes) != 2 {
		t.Fatalf("%d completions", len(cqes))
	}
	if cqes[0].Status != StatusInvalidOp || cqes[1].Status != StatusInvalidField {
		t.Fatalf("statuses: %+v", cqes)
	}
}

func TestControllerCIDReuseDetected(t *testing.T) {
	b := &fakeBackend{async: true}
	c := NewController(b, RoundRobin)
	sq := c.CreateQueuePair(8, 1)
	if err := c.Submit(sq, Command{Opcode: OpRead, CID: 7}); err != nil {
		t.Fatal(err)
	}
	c.Doorbell()
	// CID 7 is now in flight at the backend.
	if err := c.Submit(sq, Command{Opcode: OpRead, CID: 7}); err == nil {
		t.Fatal("in-flight CID reuse accepted")
	}
	b.holds[0](StatusSuccess)
	if err := c.Submit(sq, Command{Opcode: OpRead, CID: 7}); err != nil {
		t.Fatalf("CID rejected after completion: %v", err)
	}
}

func TestControllerSQFull(t *testing.T) {
	c := NewController(&fakeBackend{}, RoundRobin)
	sq := c.CreateQueuePair(4, 1) // 3 usable
	for cid := uint16(0); cid < 3; cid++ {
		if err := c.Submit(sq, Command{Opcode: OpRead, CID: cid}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Submit(sq, Command{Opcode: OpRead, CID: 9}); err == nil {
		t.Fatal("full SQ accepted a command")
	}
}

func TestRoundRobinInterleavesQueues(t *testing.T) {
	b := &fakeBackend{}
	c := NewController(b, RoundRobin)
	q0 := c.CreateQueuePair(8, 1)
	q1 := c.CreateQueuePair(8, 1)
	for cid := uint16(0); cid < 3; cid++ {
		_ = c.Submit(q0, Command{Opcode: OpRead, CID: cid, SLBA: 0})
		_ = c.Submit(q1, Command{Opcode: OpRead, CID: cid, SLBA: 1000})
	}
	c.Doorbell()
	// Burst 1 round robin: q0, q1, q0, q1, ...
	for i, cmd := range b.executed {
		wantSLBA := int64(0)
		if i%2 == 1 {
			wantSLBA = 1000
		}
		if cmd.SLBA != wantSLBA {
			t.Fatalf("arbitration order wrong at %d: %+v", i, b.executed)
		}
	}
}

func TestWeightedRoundRobinFavorsHeavyQueue(t *testing.T) {
	b := &fakeBackend{}
	c := NewController(b, WeightedRoundRobin)
	heavy := c.CreateQueuePair(16, 3)
	light := c.CreateQueuePair(16, 1)
	for cid := uint16(0); cid < 6; cid++ {
		_ = c.Submit(heavy, Command{Opcode: OpRead, CID: cid, SLBA: 0})
		_ = c.Submit(light, Command{Opcode: OpRead, CID: cid, SLBA: 1000})
	}
	c.Doorbell()
	// First arbitration turn: 3 from heavy, then 1 from light.
	if b.executed[0].SLBA != 0 || b.executed[1].SLBA != 0 || b.executed[2].SLBA != 0 {
		t.Fatalf("heavy queue not served first: %+v", b.executed[:4])
	}
	if b.executed[3].SLBA != 1000 {
		t.Fatalf("light queue starved in turn: %+v", b.executed[:4])
	}
}

func TestOpcodeNames(t *testing.T) {
	if OpRead.String() != "Read" || OpWrite.String() != "Write" || OpFlush.String() != "Flush" {
		t.Fatal("opcode names wrong")
	}
}

func TestUnknownSQID(t *testing.T) {
	c := NewController(&fakeBackend{}, RoundRobin)
	if err := c.Submit(9, Command{}); err == nil {
		t.Fatal("unknown sqid accepted")
	}
	if _, err := c.Reap(9, 1); err == nil {
		t.Fatal("unknown sqid reaped")
	}
}
