package nvme

import (
	"testing"

	"repro/internal/obs"
)

// TestQueueDepthGauges checks the SQ/CQ high-water gauges track ring
// occupancy when a registry is attached, and that a controller with
// no registry works unchanged.
func TestQueueDepthGauges(t *testing.T) {
	reg := obs.NewRegistry()
	// A backend that completes only when released, so commands pile up.
	var pending []func(Status)
	be := backendFunc(func(sqid uint16, cmd Command, done func(Status)) {
		pending = append(pending, done)
	})
	c := NewController(be, RoundRobin)
	c.Obs = reg
	sqid := c.CreateQueuePair(8, 1)

	for i := 0; i < 3; i++ {
		if err := c.Submit(sqid, Command{Opcode: OpRead, CID: uint16(i), NLB: 1}); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	if got := s.Gauges["nvme_sq0_depth_highwater"]; got != 3 {
		t.Fatalf("SQ high-water = %d, want 3", got)
	}

	c.Doorbell()
	for _, done := range pending {
		done(StatusSuccess)
	}
	s = reg.Snapshot()
	if got := s.Gauges["nvme_cq0_depth_highwater"]; got != 3 {
		t.Fatalf("CQ high-water = %d, want 3", got)
	}
	if _, err := c.Reap(sqid, 10); err != nil {
		t.Fatal(err)
	}

	// Nil registry: same flow, no instruments, no panics.
	c2 := NewController(be, RoundRobin)
	sq2 := c2.CreateQueuePair(4, 1)
	if err := c2.Submit(sq2, Command{Opcode: OpRead, CID: 1, NLB: 1}); err != nil {
		t.Fatal(err)
	}
	c2.Doorbell()
}

// backendFunc adapts a function to the Backend interface.
type backendFunc func(sqid uint16, cmd Command, done func(Status))

func (f backendFunc) Execute(sqid uint16, cmd Command, done func(Status)) { f(sqid, cmd, done) }
