// Package serve is the long-running front-end of the experiment
// suite: an HTTP service that accepts experiment jobs, runs them on
// the deterministic fleet pool behind a bounded queue with
// backpressure, streams per-job progress as NDJSON, and exposes the
// observability subsystem's Prometheus exposition and run manifests.
//
// The serving layer is strictly host-side control flow: it decides
// when simulations start and stop but never feeds a value into one,
// so a job's results are byte-for-byte replayable from its spec (see
// JobSpec). Wall-clock time is confined to the HTTP boundary in
// cmd/rifserve; this package needs none at all.
package serve

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/resultcache"
)

// Config sizes the service.
type Config struct {
	// QueueDepth bounds the jobs waiting to run (beyond the ones
	// running). A full queue rejects submissions with 429 and a
	// Retry-After header instead of buffering without bound. 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// JobWorkers is the number of jobs run concurrently (each job's
	// grid additionally shards across its own fleet pool). 0 means 1.
	JobWorkers int
	// SpoolDir, when non-empty, receives one <job-id>.json manifest
	// collection per finished job — cancelled jobs flush what
	// completed, marked partial. Empty disables spooling.
	SpoolDir string
	// Labels are added to every /metrics sample (values are escaped
	// for the exposition format, so hostile strings stay well-formed).
	Labels map[string]string
	// CacheBytes bounds the content-addressed result cache. A repeat
	// submission of an identical effective configuration is answered
	// from the cache with byte-identical artifacts, and concurrent
	// identical submissions single-flight onto one computation.
	// <= 0 disables caching and deduplication entirely (the library
	// default; cmd/rifserve passes DefaultCacheBytes).
	CacheBytes int64
	// CellWorkers sizes the work-stealing scheduler every job's grid
	// cells share, decoupling job admission (JobWorkers) from
	// simulation parallelism: a large job's cells interleave with a
	// small job's instead of monopolizing a private pool. 0 means one
	// worker per CPU.
	CellWorkers int
	// StoreDir, when non-empty, enables the disk tier of the result
	// cache: completed artifacts are written as content-addressed
	// files (atomic temp-file + rename + fsync, verified by re-hashing
	// on read) and survive restarts. Requires nothing else: the memory
	// cache may be disabled and the store still serves repeats.
	StoreDir string
	// JournalPath, when non-empty, enables the write-ahead job
	// journal: accepted specs are appended (and fsynced) before
	// admission and completion records after caching, and on restart
	// the server replays it — completed jobs rematerialize from the
	// store, incomplete jobs re-enqueue and recompute. Empty defaults
	// to <StoreDir>/journal.ndjson when StoreDir is set.
	JournalPath string
	// StorageFaults injects seeded host-side storage failures (ENOSPC,
	// torn writes, fsync errors, slow I/O, bit rot) into the store and
	// journal, driven by StorageFaultSeed. The zero value injects
	// nothing. Persistence degrades under faults — the server sheds to
	// memory-only operation with a counter and a warning — but job
	// results and client-visible bytes are never affected.
	StorageFaults faults.StorageConfig
	// StorageFaultSeed seeds the storage-fault injector (0 means 1).
	StorageFaultSeed uint64
	// StoreSleep services injected slow-I/O stalls; nil drops them.
	// cmd/rifserve passes time.Sleep — this package itself stays
	// wall-clock-free.
	StoreSleep func(time.Duration)
	// Logf receives operational warnings (persistence degradation,
	// replay anomalies). Nil discards them.
	Logf func(format string, args ...any)
}

// DefaultQueueDepth bounds the pending-job queue when Config leaves
// QueueDepth zero.
const DefaultQueueDepth = 8

// DefaultCacheBytes is the result-cache budget cmd/rifserve uses
// unless -cache-size overrides it.
const DefaultCacheBytes = 256 << 20

// Server is the rifserve HTTP service: a bounded job queue, the
// worker loop draining it, and the REST/streaming views over jobs.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int
	// cache/keyer/inflight implement content addressing: cache maps an
	// address to stored artifacts, keyer canonicalizes specs (its
	// buffer is reused, so it is guarded by mu), and inflight holds the
	// leader job computing each address so identical concurrent
	// submissions attach to it instead of recomputing. keyer/inflight
	// exist whenever addressing is needed (memory cache OR disk
	// store); cache is nil when CacheBytes <= 0.
	cache    *resultcache.Cache
	keyer    *resultcache.Keyer
	inflight map[resultcache.Key]*Job

	// store/journal are the durability tier (nil when disabled):
	// content-addressed artifacts on disk and the write-ahead job
	// journal. recovered holds journal-replayed incomplete jobs that
	// Start re-enqueues. shed marks a graceful Drain in progress:
	// in-flight grids run to completion and queued jobs end "shed"
	// instead of "cancelled".
	store     *resultcache.Store
	journal   *journal
	recovered []*Job
	shed      atomic.Bool

	// sched is the work-stealing scheduler all jobs' grid cells share;
	// created in Start, drained in Stop.
	sched *fleet.Scheduler

	// cellHook, when non-nil, runs synchronously after each cell event
	// on the job's grid worker goroutine. Tests use it to cancel
	// deterministically mid-job (the next cell's stop poll is ordered
	// after the hook returns); it must not block on the server's own
	// shutdown.
	cellHook func(j *Job, m obs.Manifest)

	submitted  *obs.Counter
	rejected   *obs.Counter
	completed  *obs.Counter
	failed     *obs.Counter
	cancelled  *obs.Counter
	queueDepth *obs.Gauge
	running    *obs.Gauge
	jobRuns    *obs.Histogram

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheDedup     *obs.Counter
	cacheBytes     *obs.Gauge
	cacheEntries   *obs.Gauge
	cacheEvictions *obs.Gauge
	cellSteals     *obs.Gauge

	storeHits        *obs.Counter
	storeErrors      *obs.Counter
	journalErrors    *obs.Counter
	recoveredJobs    *obs.Counter
	shedJobs         *obs.Counter
	persistDegraded  *obs.Gauge
	storeQuarantined *obs.Gauge
	storeVerifyFails *obs.Gauge
	storeSlowIO      *obs.Gauge
}

// logf forwards an operational warning to the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// degradePersist records one persistence failure and warns: the
// failure ladder's bottom rung is memory-only serving, never a panic
// and never corrupt bytes.
func (s *Server) degradePersist(what string, err error) {
	s.persistDegraded.Set(1)
	s.logf("rifserve: %s failed, shedding to memory-only operation: %v", what, err)
}

// New builds a stopped server; call Start to begin draining the
// queue.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		queue:      make(chan *Job, cfg.QueueDepth),
		quit:       make(chan struct{}),
		jobs:       map[string]*Job{},
		submitted:  reg.Counter("rifserve_jobs_submitted_total"),
		rejected:   reg.Counter("rifserve_jobs_rejected_total"),
		completed:  reg.Counter("rifserve_jobs_completed_total"),
		failed:     reg.Counter("rifserve_jobs_failed_total"),
		cancelled:  reg.Counter("rifserve_jobs_cancelled_total"),
		queueDepth: reg.Gauge("rifserve_queue_depth"),
		running:    reg.Gauge("rifserve_jobs_running"),
		jobRuns:    reg.HistogramWith("rifserve_job_manifests", obs.ExponentialBuckets(1, 2, 10)),

		cacheHits:      reg.Counter("rifserve_cache_hits_total"),
		cacheMisses:    reg.Counter("rifserve_cache_misses_total"),
		cacheDedup:     reg.Counter("rifserve_cache_inflight_dedup_total"),
		cacheBytes:     reg.Gauge("rifserve_cache_bytes"),
		cacheEntries:   reg.Gauge("rifserve_cache_entries"),
		cacheEvictions: reg.Gauge("rifserve_cache_evictions"),
		cellSteals:     reg.Gauge("rifserve_cell_steals"),

		storeHits:        reg.Counter("rifserve_store_hits_total"),
		storeErrors:      reg.Counter("rifserve_store_errors_total"),
		journalErrors:    reg.Counter("rifserve_journal_errors_total"),
		recoveredJobs:    reg.Counter("rifserve_jobs_recovered_total"),
		shedJobs:         reg.Counter("rifserve_jobs_shed_total"),
		persistDegraded:  reg.Gauge("rifserve_persist_degraded"),
		storeQuarantined: reg.Gauge("rifserve_store_quarantined"),
		storeVerifyFails: reg.Gauge("rifserve_store_verify_failures"),
		storeSlowIO:      reg.Gauge("rifserve_store_slow_io"),
	}
	persist := cfg.StoreDir != "" || cfg.JournalPath != ""
	if cfg.CacheBytes > 0 || persist {
		if cfg.CacheBytes > 0 {
			s.cache = resultcache.New(cfg.CacheBytes)
		}
		s.keyer = resultcache.NewKeyer()
		s.inflight = map[resultcache.Key]*Job{}
	}
	if persist {
		s.openPersistence()
	}
	return s
}

// openPersistence wires the disk store and write-ahead journal and
// replays the journal into registered jobs. Every failure degrades to
// memory-only operation with a warning — a server that cannot reach
// its store still boots and serves, it just starts cold.
func (s *Server) openPersistence() {
	seed := s.cfg.StorageFaultSeed
	if seed == 0 {
		seed = 1
	}
	inj := faults.NewStorage(s.cfg.StorageFaults, seed)
	if s.cfg.StoreDir != "" {
		store, err := resultcache.OpenStore(s.cfg.StoreDir, resultcache.StoreOptions{
			Faults: inj,
			Sleep:  s.cfg.StoreSleep,
		})
		if err != nil {
			s.storeErrors.Inc()
			s.degradePersist("opening result store", err)
		} else {
			s.store = store
		}
	}
	path := s.cfg.JournalPath
	if path == "" {
		path = filepath.Join(s.cfg.StoreDir, "journal.ndjson")
	}
	jr, records, err := openJournal(path, inj)
	if err != nil {
		s.journalErrors.Inc()
		s.degradePersist("opening job journal", fmt.Errorf("%w: %w", errJournalReplay, err))
		return
	}
	s.journal = jr
	s.replay(records)
}

// replay folds the journal into the server's job table: done jobs
// rematerialize from the store under their original IDs (warming the
// memory cache), incomplete jobs re-register and queue for
// recomputation, terminal jobs are skipped, and the ID counter
// advances past everything journaled. Runs in New, before any worker
// or handler exists, so no locking is needed.
func (s *Server) replay(records []journalRecord) {
	st := foldJournal(records)
	s.nextID = st.maxID
	for _, id := range st.order {
		spec := *st.accepted[id]
		if st.terminal[id] {
			s.replayDone(id, spec, st.done[id])
			continue
		}
		j := newJob(id, spec)
		j.journaled = true
		p, err := spec.Params()
		if err != nil {
			// The spec validated when accepted; a journal that replays
			// an invalid one was tampered with or crosses an
			// incompatible upgrade. Skip it rather than crash-loop.
			s.logf("rifserve: journal replay: job %s spec no longer valid, skipping: %v", id, err)
			continue
		}
		if s.keyer != nil {
			j.key = s.keyer.Key(spec.Experiment, p)
			j.hasKey = true
			if _, ok := s.inflight[j.key]; !ok {
				s.inflight[j.key] = j
			}
		}
		s.jobs[id] = j
		s.order = append(s.order, id)
		s.recovered = append(s.recovered, j)
		s.recoveredJobs.Inc()
	}
}

// replayDone rematerializes one journaled-complete job from the disk
// store so its /report and /runs endpoints survive the restart. A
// missing or corrupt entry only costs the warm start: the client
// already received its artifacts in the previous life, and a future
// identical submission recomputes.
func (s *Server) replayDone(id string, spec JobSpec, rec journalRecord) {
	if s.store == nil || rec.Op != opDone {
		return
	}
	raw, err := hex.DecodeString(rec.Key)
	if err != nil || len(raw) != len(resultcache.Key{}) {
		s.logf("rifserve: journal replay: job %s has malformed store key %q", id, rec.Key)
		return
	}
	var key resultcache.Key
	copy(key[:], raw)
	e, ok, err := s.store.Get(key)
	if err != nil {
		s.storeErrors.Inc()
		s.logf("rifserve: journal replay: job %s entry unreadable (serving cold): %v", id, err)
		return
	}
	if !ok {
		return
	}
	if s.cache != nil {
		s.cache.Put(key, e)
	}
	j := newCachedJob(id, spec, e)
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.recoveredJobs.Inc()
}

// appendJournal writes one WAL record, folding any failure into the
// degradation ladder (counter + warning, journal disables itself).
func (s *Server) appendJournal(rec journalRecord) {
	if err := s.journal.append(rec); err != nil {
		s.journalErrors.Inc()
		s.degradePersist("journal append", err)
	}
}

// Start launches the shared cell scheduler and the job workers, and
// re-enqueues any journal-replayed incomplete jobs. Safe to call once.
func (s *Server) Start() {
	s.sched = fleet.NewScheduler(s.cfg.CellWorkers)
	for w := 0; w < s.cfg.JobWorkers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.quit:
					return
				case j := <-s.queue:
					s.queueDepth.Set(int64(len(s.queue)))
					s.runJob(j)
				}
			}
		}()
	}
	if len(s.recovered) == 0 {
		return
	}
	recovered := s.recovered
	s.recovered = nil
	s.wg.Add(1)
	// Replayed jobs feed from their own goroutine: they may outnumber
	// the queue depth, and blocking Start on a full queue would wedge
	// startup. A shutdown mid-feed resolves the unfed remainder like any
	// other queued job.
	go func() {
		defer s.wg.Done()
		for i, j := range recovered {
			select {
			case s.queue <- j:
				s.submitted.Inc()
				s.queueDepth.Set(int64(len(s.queue)))
			case <-s.quit:
				for _, rest := range recovered[i:] {
					s.finishCancelled(rest)
				}
				return
			}
		}
	}()
}

// Stop drains the service for shutdown: no new jobs start, in-flight
// jobs are cancelled through the fleet stop hook (already-running
// grid cells finish, so their manifests stay valid), their partial
// collections are flushed exactly once, and still-queued jobs are
// marked cancelled. Blocks until every worker has returned; safe to
// call more than once.
func (s *Server) Stop() {
	s.once.Do(func() { close(s.quit) })
	s.mu.Lock()
	for _, id := range s.order {
		s.jobs[id].Cancel()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.drainQueue()
	if s.sched != nil {
		// All job workers have returned, so no grid can still be
		// submitting; release the cell workers.
		s.sched.Stop()
	}
	s.closePersist()
}

// Drain performs graceful shutdown (the SIGTERM path): no new
// submissions are accepted, in-flight jobs run to completion and are
// journaled and cached like any other, still-queued jobs end with a
// terminal "shed" event, and the journal is fsynced closed before
// return. Blocks until every worker has returned; safe alongside or
// after Stop (jobs already cancelled keep Stop's semantics).
func (s *Server) Drain() {
	s.shed.Store(true)
	s.once.Do(func() { close(s.quit) })
	s.wg.Wait()
	s.drainQueue()
	if s.sched != nil {
		s.sched.Stop()
	}
	s.closePersist()
}

// drainQueue resolves every still-queued job with its terminal state
// (shed during a graceful Drain, cancelled otherwise). Called by both
// shutdown paths after the workers return, and by a submission that
// lands its queue send after shutdown already drained.
func (s *Server) drainQueue() {
	for {
		select {
		case j := <-s.queue:
			s.finishCancelled(j)
		default:
			s.queueDepth.Set(int64(len(s.queue)))
			return
		}
	}
}

// closePersist fsyncs and closes the journal; idempotent and nil-safe,
// so both shutdown paths call it unconditionally.
func (s *Server) closePersist() {
	if err := s.journal.close(); err != nil {
		s.journalErrors.Inc()
		s.logf("rifserve: journal close: %v", err)
	}
}

// draining reports whether shutdown (Stop or Drain) has been
// requested; submissions are refused once it is set.
func (s *Server) draining() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// stopping is the server-wide half of every grid's stop hook: true
// once a hard Stop is under way, but false during a graceful Drain —
// draining lets in-flight grids run to completion while the closed
// quit channel keeps queued work from starting.
func (s *Server) stopping() bool {
	return s.draining() && !s.shed.Load()
}

// submit resolves a validated spec to a job: a cache hit materializes
// a Done job from stored bytes, an identical in-flight submission
// attaches to its leader, and everything else registers and enqueues a
// new job (or reports queue saturation). p must be the params spec
// validated to — submit canonicalizes them into the content address.
func (s *Server) submit(spec JobSpec, p core.RunParams) (*Job, bool) {
	s.mu.Lock()
	var key resultcache.Key
	if s.keyer != nil {
		key = s.keyer.Key(spec.Experiment, p)
		if j, ok := s.memoryTierLocked(spec, key); ok {
			s.mu.Unlock()
			return j, true
		}
	}
	s.mu.Unlock()

	if s.keyer != nil && s.store != nil {
		// The disk-tier read runs outside s.mu: store I/O (and injected
		// slow-I/O stalls) must never block every other handler on the
		// job table.
		e, ok, err := s.store.Get(key)
		if err != nil {
			// Verification failed (the entry is already quarantined)
			// or the read itself erred; the key now reads as absent
			// and the job recomputes — corrupt bytes are never served.
			s.storeErrors.Inc()
			s.logf("rifserve: store read: %v", err)
		}
		if ok {
			s.mu.Lock()
			if s.cache != nil {
				s.cache.Put(key, e)
			}
			j := s.registerCached(spec, e)
			s.mu.Unlock()
			s.storeHits.Inc()
			return j, true
		}
	}

	s.mu.Lock()
	if s.keyer != nil {
		// Re-check the memory tiers: an identical submission may have
		// completed or become leader while the disk read ran unlocked —
		// without this, two concurrent identical misses would both
		// become single-flight leaders.
		if j, ok := s.memoryTierLocked(spec, key); ok {
			s.mu.Unlock()
			return j, true
		}
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := newJob(id, spec)
	if s.keyer != nil {
		j.key = key
		j.hasKey = true
		s.inflight[key] = j
		s.cacheMisses.Inc()
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()

	// WAL discipline: the accept record is durable before the job can be
	// admitted, so a crash never leaves accepted work the journal has
	// never heard of. A rejection appends a terminal record immediately,
	// so replay will not resurrect a job its client saw refused.
	if s.journal != nil {
		j.journaled = true
		s.appendJournal(journalRecord{Op: opAccept, ID: id, Spec: &j.Spec})
	}
	select {
	case s.queue <- j:
		s.submitted.Inc()
		s.queueDepth.Set(int64(len(s.queue)))
		if s.draining() {
			// Shutdown may have drained the queue and returned before
			// this send landed (handleSubmit's draining() check races
			// close(quit)). Re-drain so the job gets its terminal event
			// and journal record instead of sitting Queued forever with
			// a hung NDJSON stream.
			s.drainQueue()
		}
		return j, true
	default:
		s.rejected.Inc()
		// Un-register by ID: a rejected job was never accepted. (The
		// ID itself is not reused — concurrent submissions may already
		// hold later ones.)
		s.mu.Lock()
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		s.clearInflight(j)
		if j.journaled {
			s.appendJournal(journalRecord{Op: opRejected, ID: id})
		}
		return nil, false
	}
}

// memoryTierLocked resolves a content address against the memory
// tiers: a cache hit registers and returns a Done job, an identical
// in-flight submission returns its single-flight leader — N identical
// concurrent submissions run one simulation; the other N-1 callers
// stream the leader's progress (and share its job ID). Caller holds
// s.mu.
func (s *Server) memoryTierLocked(spec JobSpec, key resultcache.Key) (*Job, bool) {
	if s.cache != nil {
		if e, ok := s.cache.Get(key); ok {
			j := s.registerCached(spec, e)
			s.cacheHits.Inc()
			return j, true
		}
	}
	if leader, ok := s.inflight[key]; ok {
		s.cacheDedup.Inc()
		return leader, true
	}
	return nil, false
}

// registerCached registers a job satisfied without running — a memory-
// or disk-tier hit. Never journaled: it was never admitted, and its
// artifacts already live under their content address. Caller holds
// s.mu.
func (s *Server) registerCached(spec JobSpec, e resultcache.Entry) *Job {
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := newCachedJob(id, spec, e)
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j
}

// retryAfterHint derives the Retry-After a 429 advertises from the
// current backlog: one second per queued job, floored at one — a crude
// but monotone signal that a deeper queue warrants a longer back-off.
// Clients (rifload) prefer it over their own schedule.
func (s *Server) retryAfterHint() string {
	n := len(s.queue)
	if n < 1 {
		n = 1
	}
	return strconv.Itoa(n)
}

// clearInflight releases a leader job's single-flight slot (no-op for
// jobs without a key, or when a newer leader already replaced it).
func (s *Server) clearInflight(j *Job) {
	if !j.hasKey {
		return
	}
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	s.mu.Unlock()
}

// job looks up a registered job by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// runJob executes one job through the shared experiment dispatcher.
func (s *Server) runJob(j *Job) {
	if s.draining() || j.cancelled.Load() {
		s.finishCancelled(j)
		return
	}
	p, err := j.Spec.Params()
	if err != nil {
		// Specs are validated at submission; re-deriving cannot fail
		// unless the job was mutated, which would be a server bug.
		j.setState(Failed, Event{Error: err.Error()})
		s.failed.Inc()
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	j.collect.SetOnAdd(func(m obs.Manifest) {
		j.publish(Event{
			Event:     "cell",
			Completed: j.collect.Len(),
			Scheme:    m.Scheme,
			Workload:  m.Workload,
			PE:        m.PECycles,
		})
		if s.cellHook != nil {
			s.cellHook(j, m)
		}
	})
	p.Collect = j.collect
	p.Stop = fleet.StopAny(s.stopping, j.cancelled.Load)
	p.Pool = s.sched
	j.setState(Running, Event{})

	var report bytes.Buffer
	runErr := core.RunExperiment(&report, j.Spec.Experiment, p)

	j.mu.Lock()
	j.report = report.Bytes()
	j.mu.Unlock()

	switch {
	case errors.Is(runErr, fleet.ErrStopped):
		j.collect.SetPartial(true)
		s.flush(j)
		s.clearInflight(j)
		if j.journaled {
			s.appendJournal(journalRecord{Op: opCancel, ID: j.ID})
		}
		s.cancelled.Inc()
		j.setState(Cancelled, Event{Completed: j.collect.Len(), Partial: true})
	case runErr != nil:
		s.flush(j)
		s.clearInflight(j)
		if j.journaled {
			s.appendJournal(journalRecord{Op: opFailed, ID: j.ID, Error: runErr.Error()})
		}
		s.failed.Inc()
		j.setState(Failed, Event{Error: runErr.Error(), Completed: j.collect.Len()})
	default:
		s.flush(j)
		s.storeResult(j)
		s.completed.Inc()
		s.jobRuns.Observe(float64(j.collect.Len()))
		j.setState(Done, Event{Completed: j.collect.Len()})
	}
}

// storeResult renders a completed job's manifest collection once,
// pins those bytes as the job's /runs response, and populates the
// result cache (memory and disk tiers) under the job's content
// address before releasing its single-flight slot. Only complete
// results ever reach either tier: cancelled (partial) and failed jobs
// release the slot without storing, so a later identical submission
// recomputes. The done journal record lands last — after caching —
// so replay never trusts a completion whose artifacts were not at
// least attempted on disk.
func (s *Server) storeResult(j *Job) {
	var runs bytes.Buffer
	if err := obs.WriteJSON(&runs, j.collect); err != nil {
		// Rendering a collection to a buffer cannot fail short of a
		// marshalling bug; degrade to uncached rather than taking the
		// job down with an artifact-plumbing error.
		s.clearInflight(j)
		return
	}
	j.mu.Lock()
	j.runsJSON = runs.Bytes()
	j.mu.Unlock()
	if j.hasKey {
		e := resultcache.Entry{
			Report: j.Report(),
			Runs:   runs.Bytes(),
			Cells:  j.collect.Len(),
		}
		if s.cache != nil {
			s.cache.Put(j.key, e)
		}
		if err := s.store.Put(j.key, e); err != nil {
			// The artifacts still serve from memory; only durability
			// across a restart is lost.
			s.storeErrors.Inc()
			s.degradePersist("store write", err)
		}
	}
	if j.journaled {
		s.appendJournal(journalRecord{
			Op:    opDone,
			ID:    j.ID,
			Key:   hex.EncodeToString(j.key[:]),
			Cells: j.collect.Len(),
		})
	}
	s.clearInflight(j)
}

// finishCancelled resolves a job that never ran (drained from the
// queue or cancelled before start) and flushes its (empty or partial)
// collection exactly once. During a graceful Drain a queued job that
// was not individually cancelled ends "shed" — the accepted-but-
// unstarted terminal that tells the client to resubmit — instead of
// "cancelled".
func (s *Server) finishCancelled(j *Job) {
	j.collect.SetPartial(true)
	s.flush(j)
	s.clearInflight(j)
	if s.shed.Load() && !j.cancelled.Load() {
		if j.journaled {
			s.appendJournal(journalRecord{Op: opShed, ID: j.ID})
		}
		s.shedJobs.Inc()
		j.setState(Shed, Event{Completed: j.collect.Len(), Partial: true})
		return
	}
	if j.journaled {
		s.appendJournal(journalRecord{Op: opCancel, ID: j.ID})
	}
	s.cancelled.Inc()
	j.setState(Cancelled, Event{Completed: j.collect.Len(), Partial: true})
}

// flush writes the job's manifest collection to the spool directory.
// flushOnce guarantees a job racing cancellation and completion still
// produces exactly one file; the partial flag is set (or not) before
// the single write, so a spool file says "partial": true at most
// once.
func (s *Server) flush(j *Job) {
	if s.cfg.SpoolDir == "" {
		return
	}
	j.flushOnce.Do(func() {
		path := filepath.Join(s.cfg.SpoolDir, j.ID+".json")
		if err := j.collect.WriteFile(path); err != nil {
			j.mu.Lock()
			j.errMsg = "spool: " + err.Error()
			j.mu.Unlock()
		}
	})
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /runs/{id}", s.handleRuns)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// handleSubmit accepts a job spec. The response is an NDJSON progress
// stream that follows the job to its terminal event; with ?stream=0
// it is an immediate 202 with the job's status instead. A full queue
// answers 429 with a Retry-After hint — the backpressure contract
// that keeps a burst of submissions from buffering without bound.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "serve: bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	p, err := spec.Params()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.draining() {
		http.Error(w, "serve: shutting down", http.StatusServiceUnavailable)
		return
	}
	j, ok := s.submit(spec, p)
	if !ok {
		w.Header().Set("Retry-After", s.retryAfterHint())
		http.Error(w, "serve: job queue full", http.StatusTooManyRequests)
		return
	}
	if r.URL.Query().Get("stream") == "0" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		//riflint:allow droppederr -- response write: the client went away, nothing to recover
		obs.WriteJSON(w, j.status())
		return
	}
	s.streamEvents(w, r, j)
}

// handleList returns every known job's status in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	statuses := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		statuses = append(statuses, j.status())
	}
	w.Header().Set("Content-Type", "application/json")
	//riflint:allow droppederr -- response write: the client went away, nothing to recover
	obs.WriteJSON(w, statuses)
}

// handleStatus returns one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	//riflint:allow droppederr -- response write: the client went away, nothing to recover
	obs.WriteJSON(w, j.status())
}

// handleCancel requests cancellation of a queued or running job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	j.Cancel()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	//riflint:allow droppederr -- response write: the client went away, nothing to recover
	obs.WriteJSON(w, j.status())
}

// handleEvents streams a job's progress as NDJSON from its first
// event; it replays history for late subscribers and follows the job
// to its terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.streamEvents(w, r, j)
}

// handleReport serves the finished job's text report — the exact
// bytes `rifsim -fig <experiment>` prints for the same spec.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	state, _ := j.State()
	if !state.Terminal() {
		http.Error(w, "serve: job not finished", http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	//riflint:allow droppederr -- response write: the client went away, nothing to recover
	w.Write(j.Report())
}

// handleRuns serves the job's manifest collection (the same JSON
// `rifsim -metrics` writes): complete after Done, the finished cells
// (marked partial) after cancellation, and whatever has been
// collected so far while running. Finished jobs serve the bytes
// rendered (or cached) at completion verbatim, so a cache hit is
// byte-identical to the run that populated it.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if pinned := j.runsBytes(); pinned != nil {
		//riflint:allow droppederr -- response write: the client went away, nothing to recover
		w.Write(pinned)
		return
	}
	//riflint:allow droppederr -- response write: the client went away, nothing to recover
	obs.WriteJSON(w, j.collect)
}

// handleMetrics serves the server registry in the Prometheus text
// exposition format with the configured shared labels. Cache
// occupancy and scheduler steal counts are sampled into their gauges
// at scrape time — they live in their own subsystems, not on the
// request path.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.cache != nil {
		st := s.cache.Stats()
		s.cacheBytes.Set(st.Bytes)
		s.cacheEntries.Set(int64(st.Entries))
		s.cacheEvictions.Set(st.Evictions)
	}
	if sched := s.sched; sched != nil {
		s.cellSteals.Set(sched.Steals())
	}
	if s.store != nil {
		st := s.store.Stats()
		s.storeQuarantined.Set(st.Quarantined)
		s.storeVerifyFails.Set(st.VerifyFailures)
		s.storeSlowIO.Set(st.SlowIO)
	}
	if s.journal.isDegraded() {
		s.persistDegraded.Set(1)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	//riflint:allow droppederr -- response write: the client went away, nothing to recover
	s.reg.Snapshot().WritePrometheus(w, s.cfg.Labels)
}

// handleExperiments lists the experiments a job spec may name.
func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	//riflint:allow droppederr -- response write: the client went away, nothing to recover
	obs.WriteJSON(w, core.ValidExperiments())
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	//riflint:allow droppederr -- response write: the client went away, nothing to recover
	fmt.Fprintln(w, "ok")
}

// streamEvents writes a job's events as NDJSON, flushing after each
// batch, until the job reaches a terminal state or the client goes
// away. Purely event-driven: it blocks on the job's notify channel,
// not on a poll timer, so the serving layer needs no wall clock.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		events, more := j.eventsSince(next)
		for _, e := range events {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		next += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if len(events) > 0 && State(events[len(events)-1].Event).Terminal() {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}
