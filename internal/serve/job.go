package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resultcache"
	"repro/internal/ssd"
)

// JobSpec is the POSTed description of one experiment job. It is the
// complete input of the run: the same spec executed here, by a later
// rifserve, or by a local `rifsim -fig <experiment> -requests ...
// -seed ...` invocation produces a byte-identical report, because the
// spec carries every value the deterministic simulator consumes and
// the serving layer adds nothing (worker count and host clocks never
// reach a simulation).
type JobSpec struct {
	// Experiment names the figure/study to run (core.ValidExperiments).
	Experiment string `json:"experiment"`
	// Requests is the host-request count per simulation (0 means the
	// rifsim default of 3000; negative is rejected).
	Requests int `json:"requests,omitempty"`
	// Seed drives every random stream (0 means the default seed 1 —
	// pass the explicit seed when replaying a manifest).
	Seed uint64 `json:"seed,omitempty"`
	// Workers is accepted for spec compatibility with rifsim but does
	// not size this server's parallelism: grid cells shard across the
	// server-wide work-stealing scheduler (Config.CellWorkers), so one
	// job's width cannot be provisioned against another's. Negative is
	// rejected; results are byte-identical for every value, which is
	// also why the value is excluded from the cache key.
	Workers int `json:"workers,omitempty"`
	// Full simulates the full 2-TiB array instead of the shrunken one.
	Full bool `json:"full,omitempty"`
	// Faults configures deterministic fault injection (rates validated
	// to [0,1]); the zero value injects nothing.
	Faults faults.Config `json:"faults,omitempty"`
}

// Params derives the RunParams the dispatcher consumes, after
// validating the spec. Defaults mirror the rifsim flags so omitted
// fields mean the same thing in both front-ends.
func (s JobSpec) Params() (core.RunParams, error) {
	if s.Experiment == "" {
		return core.RunParams{}, fmt.Errorf("serve: job spec missing experiment")
	}
	if !core.ValidExperiment(s.Experiment) {
		return core.RunParams{}, fmt.Errorf("serve: unknown experiment %q (valid: %v)",
			s.Experiment, core.ValidExperiments())
	}
	p := core.DefaultRunParams()
	p.Tool = "rifserve"
	p.Experiment = s.Experiment
	if s.Requests != 0 {
		p.Requests = s.Requests
	}
	if s.Seed != 0 {
		p.Seed = s.Seed
	}
	if s.Workers != 0 {
		p.Workers = s.Workers
	}
	p.Shrink = !s.Full
	p.Faults = s.Faults
	if err := p.Validate(); err != nil {
		return core.RunParams{}, err
	}
	// Validate the fully derived device config too, before the job can
	// occupy a queue slot or mint a cache key: RunParams.Validate
	// covers the host-side fields, but a spec is only well-formed if
	// the ssd.Config every cell will run under also validates. The
	// (scheme, pe) arguments are placeholders — experiments sweep them
	// per cell over values that never affect validity of the rest.
	if err := p.BuildConfig(ssd.Zero, 0).Validate(); err != nil {
		return core.RunParams{}, err
	}
	return p, nil
}

// State is a job's lifecycle position.
type State string

// Job lifecycle: Queued -> Running -> one of Done, Failed, Cancelled,
// Shed.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
	// Shed is the graceful-drain terminal: the job was accepted but the
	// server began draining before it started. The client should
	// resubmit against the next server life — resubmission is idempotent
	// by content address, so it hits the cache or joins the leader if
	// the work happened after all.
	Shed State = "shed"
)

// Terminal reports whether the state is final. Exported for clients
// (rifload) that must distinguish a finished stream from a dropped
// one.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled || s == Shed
}

// Event is one NDJSON line of a job's progress stream.
type Event struct {
	// Event is the transition: queued, running, cell (one grid cell's
	// manifest collected), done, failed or cancelled.
	Event string `json:"event"`
	Job   string `json:"job"`
	// Experiment echoes the spec on queued/terminal events.
	Experiment string `json:"experiment,omitempty"`
	// Completed counts manifests collected so far (cell + terminal
	// events). Completion order across a parallel grid is
	// scheduler-dependent; the count is monotonic.
	Completed int `json:"completed,omitempty"`
	// Scheme/Workload/PE identify the cell a cell event reports.
	Scheme   string `json:"scheme,omitempty"`
	Workload string `json:"workload,omitempty"`
	PE       int    `json:"pe,omitempty"`
	// Partial marks a cancelled job's flushed manifests as incomplete.
	Partial bool `json:"partial,omitempty"`
	// Cached marks a done event served from the result cache: the
	// job's artifacts are the stored bytes of an earlier identical
	// run, no simulation was performed.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure on failed events.
	Error string `json:"error,omitempty"`
}

// Job is one submitted experiment: its spec, its progress events, and
// (once finished) its report and manifests.
type Job struct {
	// ID is the server-assigned identity ("job-1", "job-2", ...).
	ID string
	// Spec is the submitted job description.
	Spec JobSpec

	mu     sync.Mutex
	state  State
	errMsg string
	report []byte
	// runsJSON, when non-nil, is the manifest-collection JSON served
	// verbatim by /runs/{id}: the stored bytes for cache-hit jobs, and
	// the bytes rendered once at completion for computed jobs. Serving
	// stored bytes (rather than re-rendering) is what keeps a cache
	// hit byte-identical to the run that populated it — Manifest.Config
	// decodes to a map, and re-encoding a map reorders its keys.
	runsJSON []byte
	events   []Event
	notify   chan struct{}

	// fromCache marks a job satisfied from the result cache without
	// running; cachedCells is the stored collection's run count (the
	// live collection stays empty).
	fromCache   bool
	cachedCells int
	// key is the job's content address; hasKey guards it (the zero Key
	// is a valid address). Leader jobs carry it so completion can
	// populate the cache and clear the single-flight slot.
	key    resultcache.Key
	hasKey bool

	// collect gathers the job's per-run manifests; reads are safe at
	// any time (Collection is internally locked).
	collect *obs.Collection
	// cancelled is the per-job half of the grid's stop hook.
	cancelled atomic.Bool
	// flushOnce guards the spool flush so cancellation racing normal
	// completion still writes exactly one manifest file.
	flushOnce sync.Once
	// journaled marks a job with a durable accept record in the job
	// journal; its terminal transition appends the matching record so
	// restart replay can resolve it. Set before the job reaches the
	// queue (or during single-threaded replay), read by the worker that
	// receives it — ordered by the channel transfer.
	journaled bool
}

func newJob(id string, spec JobSpec) *Job {
	j := &Job{
		ID:      id,
		Spec:    spec,
		state:   Queued,
		notify:  make(chan struct{}),
		collect: obs.NewCollection(),
	}
	j.publish(Event{Event: string(Queued), Experiment: spec.Experiment})
	return j
}

// newCachedJob materializes a job already satisfied by the result
// cache: born Done, carrying the stored report and manifest bytes of
// the identical earlier run, with no simulation behind it. Its event
// stream is queued -> done(cached), so clients that always stream see
// a coherent (if brief) lifecycle.
func newCachedJob(id string, spec JobSpec, e resultcache.Entry) *Job {
	j := newJob(id, spec)
	j.report = e.Report
	j.runsJSON = e.Runs
	j.fromCache = true
	j.cachedCells = e.Cells
	j.setState(Done, Event{Completed: e.Cells, Cached: true})
	return j
}

// publish appends one event and wakes every stream reader. The job ID
// is stamped here so callers never repeat it.
func (j *Job) publish(e Event) {
	e.Job = j.ID
	j.mu.Lock()
	j.events = append(j.events, e)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// setState transitions the job and publishes the matching event.
func (j *Job) setState(s State, e Event) {
	j.mu.Lock()
	j.state = s
	if e.Error != "" {
		j.errMsg = e.Error
	}
	j.mu.Unlock()
	e.Event = string(s)
	e.Experiment = j.Spec.Experiment
	j.publish(e)
}

// Cancel requests cancellation: the job's grid stops launching new
// cells at the next stop-hook poll. Already-running cells finish and
// their manifests are kept (flushed marked partial).
func (j *Job) Cancel() { j.cancelled.Store(true) }

// State reports the current lifecycle position and error message.
func (j *Job) State() (State, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// Report returns the finished job's text report (nil until terminal).
// The bytes are exactly what `rifsim -fig <experiment>` prints for
// the same spec.
func (j *Job) Report() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// runsBytes returns the job's pinned manifest-collection JSON (nil
// while a computed job is still running — /runs then renders the live
// collection instead).
func (j *Job) runsBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.runsJSON
}

// eventsSince returns events[from:] plus a channel that closes when
// more arrive; stream readers loop on it.
func (j *Job) eventsSince(from int) ([]Event, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events[from:], j.notify
}

// Status is the JSON shape of GET /jobs and GET /jobs/{id}.
type Status struct {
	ID         string  `json:"id"`
	State      State   `json:"state"`
	Experiment string  `json:"experiment"`
	Seed       uint64  `json:"seed"`
	Requests   int     `json:"requests"`
	Completed  int     `json:"completed"`
	Partial    bool    `json:"partial,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	Error      string  `json:"error,omitempty"`
	Links      JobRefs `json:"links"`
}

// JobRefs are the per-job endpoints a client follows from a Status.
type JobRefs struct {
	Events string `json:"events"`
	Report string `json:"report"`
	Runs   string `json:"runs"`
}

// status snapshots the job for the REST views.
func (j *Job) status() Status {
	state, errMsg := j.State()
	completed := j.collect.Len()
	if j.fromCache {
		completed = j.cachedCells
	}
	return Status{
		ID:         j.ID,
		State:      state,
		Experiment: j.Spec.Experiment,
		Seed:       j.seed(),
		Requests:   j.requests(),
		Completed:  completed,
		Partial:    j.collect.Partial(),
		Cached:     j.fromCache,
		Error:      errMsg,
		Links: JobRefs{
			Events: "/jobs/" + j.ID + "/events",
			Report: "/jobs/" + j.ID + "/report",
			Runs:   "/runs/" + j.ID,
		},
	}
}

// seed reports the effective seed (spec default applied).
func (j *Job) seed() uint64 {
	if j.Spec.Seed != 0 {
		return j.Spec.Seed
	}
	return core.DefaultRunParams().Seed
}

// requests reports the effective request count (spec default applied).
func (j *Job) requests() int {
	if j.Spec.Requests != 0 {
		return j.Spec.Requests
	}
	return core.DefaultRunParams().Requests
}
