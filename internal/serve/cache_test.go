package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// wallTime matches the one manifest field that is host noise rather
// than simulation output. Masking it (on BOTH sides of a comparison)
// pins every other byte of a manifest collection.
var wallTime = regexp.MustCompile(`"wall_time_s": [0-9eE.+-]+`)

func maskWallTime(s string) string {
	return wallTime.ReplaceAllString(s, `"wall_time_s": 0`)
}

// newCachedServer builds a started server with the cache enabled and
// a cell counter wired through the cell hook (so tests can assert how
// many simulations actually ran); extra, when non-nil, runs after the
// counter on the same hook. The hook is installed before Start.
func newCachedServer(t *testing.T, cfg Config, extra func(*Job, obs.Manifest)) (*Server, *httptest.Server, *atomic.Int64) {
	t.Helper()
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 8
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	srv := New(cfg)
	var cells atomic.Int64
	srv.cellHook = func(j *Job, m obs.Manifest) {
		cells.Add(1)
		if extra != nil {
			extra(j, m)
		}
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, &cells
}

// submitAndWait posts a spec, follows the stream to the terminal
// event, and returns the events.
func submitAndWait(t *testing.T, ts *httptest.Server, spec string) []Event {
	t.Helper()
	resp := postJob(t, ts, spec, "")
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	events := readEvents(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	return events
}

// TestCacheHitByteIdentityAllExperiments is the cache-correctness pin:
// for EVERY experiment a spec may name, a repeat submission must be
// served from the cache (no simulation runs) with a report
// byte-identical to the first run's, and a manifest collection
// byte-identical to both the first run's and a fresh dispatcher
// recomputation at a different worker count (modulo the wall_time_s
// host-noise field). This is the serving-layer heir of the
// worker-invariance pins: content addressing is only sound because
// output is a pure function of the addressed inputs.
func TestCacheHitByteIdentityAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	_, ts, cells := newCachedServer(t, Config{JobWorkers: 1}, nil)

	for _, exp := range core.ValidExperiments() {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			spec := `{"experiment":"` + exp + `","requests":30,"seed":11}`
			first := submitAndWait(t, ts, spec)
			last := first[len(first)-1]
			if last.Event != string(Done) {
				t.Fatalf("first run ended %q (%s)", last.Event, last.Error)
			}
			if last.Cached {
				t.Fatal("first run claims cached")
			}
			_, report1 := getBody(t, ts.URL+"/jobs/"+last.Job+"/report")
			_, runs1 := getBody(t, ts.URL+"/runs/"+last.Job)

			ranBefore := cells.Load()
			second := submitAndWait(t, ts, spec)
			slast := second[len(second)-1]
			if slast.Event != string(Done) || !slast.Cached {
				t.Fatalf("repeat submission not served from cache: %+v", slast)
			}
			if slast.Job == last.Job {
				t.Fatal("repeat submission reused the first job ID")
			}
			if ran := cells.Load() - ranBefore; ran != 0 {
				t.Fatalf("cache hit ran %d cells", ran)
			}
			_, report2 := getBody(t, ts.URL+"/jobs/"+slast.Job+"/report")
			_, runs2 := getBody(t, ts.URL+"/runs/"+slast.Job)
			if report1 != report2 {
				t.Error("cached report differs from the run that populated it")
			}
			if runs1 != runs2 {
				t.Error("cached manifest collection differs from the run that populated it")
			}

			// Fresh recomputation through the dispatcher at a different
			// worker count: the cached bytes must match it too.
			p, err := JobSpec{Experiment: exp, Requests: 30, Seed: 11}.Params()
			if err != nil {
				t.Fatal(err)
			}
			p.Workers = 2
			p.Collect = obs.NewCollection()
			var report bytes.Buffer
			if err := core.RunExperiment(&report, exp, p); err != nil {
				t.Fatal(err)
			}
			if report.String() != report1 {
				t.Error("cached report differs from a fresh dispatcher recomputation")
			}
			var fresh bytes.Buffer
			if err := obs.WriteJSON(&fresh, p.Collect); err != nil {
				t.Fatal(err)
			}
			if maskWallTime(fresh.String()) != maskWallTime(runs1) {
				t.Error("cached manifests differ from a fresh recomputation (wall_time_s masked)")
			}
		})
	}
}

// TestCacheKeyDefaultsCollide pins a deliberate canonicalization
// property: a spec relying on defaults and one spelling the same
// values explicitly (including a different worker count, which never
// affects output) address the same cache entry.
func TestCacheKeyDefaultsCollide(t *testing.T) {
	_, ts, _ := newCachedServer(t, Config{JobWorkers: 1}, nil)

	first := submitAndWait(t, ts, `{"experiment":"ablate-secondcheck","requests":40}`)
	if last := first[len(first)-1]; last.Event != string(Done) || last.Cached {
		t.Fatalf("first run: %+v", last)
	}
	def := core.DefaultRunParams()
	explicit, err := json.Marshal(JobSpec{
		Experiment: "ablate-secondcheck",
		Requests:   40,
		Seed:       def.Seed,
		Workers:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	second := submitAndWait(t, ts, string(explicit))
	if last := second[len(second)-1]; !last.Cached {
		t.Fatalf("explicit-defaults spec missed the cache: %+v", last)
	}
}

// TestCancelledJobNeverCached pins the partial-manifest rule: a job
// cancelled mid-grid flushes partial artifacts, and a repeat
// submission of the same spec recomputes instead of serving them.
func TestCancelledJobNeverCached(t *testing.T) {
	// While armed, the hook cancels the job after its first cell.
	var arm atomic.Bool
	arm.Store(true)
	var once sync.Once
	_, ts, cells := newCachedServer(t, Config{JobWorkers: 1}, func(j *Job, _ obs.Manifest) {
		if arm.Load() {
			once.Do(func() { j.Cancel() })
		}
	})

	spec := `{"experiment":"chaos","requests":40,"seed":3}`
	events := submitAndWait(t, ts, spec)
	last := events[len(events)-1]
	if last.Event != string(Cancelled) || !last.Partial {
		t.Fatalf("expected a partial cancellation, got %+v", last)
	}

	// Identical respec: must run fresh (no hit on partial artifacts).
	arm.Store(false)
	ranBefore := cells.Load()
	second := submitAndWait(t, ts, spec)
	slast := second[len(second)-1]
	if slast.Event != string(Done) {
		t.Fatalf("second run ended %q", slast.Event)
	}
	if slast.Cached {
		t.Fatal("partial result was served from cache")
	}
	if cells.Load() == ranBefore {
		t.Fatal("second run did not simulate")
	}
}

// TestCacheEvictionRecomputes sizes a second server's cache to hold
// exactly one job's artifacts, submits two distinct specs, and checks
// the evicted one recomputes on resubmission — the serving-layer view
// of the LRU byte budget.
func TestCacheEvictionRecomputes(t *testing.T) {
	specA := `{"experiment":"ablate-secondcheck","requests":40,"seed":5}`
	specB := `{"experiment":"ablate-secondcheck","requests":40,"seed":6}`

	// Measure one entry's artifact size on a throwaway server.
	_, ts0, _ := newCachedServer(t, Config{JobWorkers: 1}, nil)
	ev := submitAndWait(t, ts0, specA)
	job := ev[len(ev)-1].Job
	_, report := getBody(t, ts0.URL+"/jobs/"+job+"/report")
	_, runs := getBody(t, ts0.URL+"/runs/"+job)

	// Budget = one entry's payload + 512B slack: entry A fits (its
	// accounting overhead is below the slack), A plus B does not (B's
	// payload far exceeds it), so storing B must evict A.
	budget := int64(len(report) + len(runs) + 512)
	srv, ts, _ := newCachedServer(t, Config{JobWorkers: 1, CacheBytes: budget}, nil)
	if ev := submitAndWait(t, ts, specA); ev[len(ev)-1].Event != string(Done) {
		t.Fatalf("specA: %+v", ev[len(ev)-1])
	}
	if hit := submitAndWait(t, ts, specA); !hit[len(hit)-1].Cached {
		t.Fatal("specA did not fit the sized cache")
	}
	submitAndWait(t, ts, specB) // evicts A
	events := submitAndWait(t, ts, specA)
	if last := events[len(events)-1]; last.Cached {
		t.Fatalf("evicted entry served from cache: %+v", last)
	}
	st := srv.cache.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache exceeds its budget: %+v", st)
	}
}

// TestInflightDedupSingleFlight submits identical specs while the
// leader is deterministically parked mid-grid: every follower must
// attach to the leader's job (same ID, one simulation), and the dedup
// counter must account for all of them.
func TestInflightDedupSingleFlight(t *testing.T) {
	gate := make(chan struct{})
	closeGate := sync.OnceFunc(func() { close(gate) })
	defer closeGate() // never leave the scheduler parked if the test bails

	var parked atomic.Bool
	srv, ts, cells := newCachedServer(t, Config{JobWorkers: 1}, func(_ *Job, _ obs.Manifest) {
		if parked.CompareAndSwap(false, true) {
			<-gate
		}
	})

	// chaos collects one manifest per cell, so the park hook engages on
	// the first cell (ablations collect none and would never park).
	spec := `{"experiment":"chaos","requests":40,"seed":9}`
	leaderCh := make(chan Event, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			errCh <- err
			return
		}
		defer resp.Body.Close()
		var last Event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				errCh <- err
				return
			}
		}
		if err := sc.Err(); err != nil {
			errCh <- err
			return
		}
		leaderCh <- last
	}()

	// Wait until the leader holds the single-flight slot, then pile on.
	for {
		srv.mu.Lock()
		n := len(srv.inflight)
		srv.mu.Unlock()
		if n == 1 {
			break
		}
		runtime.Gosched()
	}
	const followers = 4
	ids := make(chan string, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs?stream=0", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Error(err)
				ids <- ""
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 202 {
				t.Errorf("follower status %d", resp.StatusCode)
				ids <- ""
				return
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				ids <- ""
				return
			}
			var st Status
			if err := json.Unmarshal(body, &st); err != nil {
				t.Error(err)
				ids <- ""
				return
			}
			ids <- st.ID
		}()
	}
	wg.Wait()
	closeGate()
	var last Event
	select {
	case err := <-errCh:
		t.Fatal(err)
	case last = <-leaderCh:
	}
	if last.Event != string(Done) {
		t.Fatalf("leader ended %q", last.Event)
	}
	for i := 0; i < followers; i++ {
		if id := <-ids; id != last.Job {
			t.Fatalf("follower got job %q, leader is %q", id, last.Job)
		}
	}
	// The chaos grid is 4 rates x 3 schemes: exactly one grid ran.
	if got := cells.Load(); got != 12 {
		t.Fatalf("%d cells ran for %d identical submissions; want the leader's 12", got, followers+1)
	}
	if v := srv.cacheDedup.Value(); v != followers {
		t.Fatalf("dedup counter = %d, want %d", v, followers)
	}

	// And now the entry is cached: one more submission is a pure hit.
	events := submitAndWait(t, ts, spec)
	if flast := events[len(events)-1]; !flast.Cached {
		t.Fatalf("post-completion submission missed: %+v", flast)
	}
}

// TestCellWorkersInvariance runs one spec on servers with different
// shared-scheduler widths and pins byte-identical artifacts — the
// work-stealing half of the determinism contract, end to end.
func TestCellWorkersInvariance(t *testing.T) {
	var report, runs string
	for _, workers := range []int{1, 2, 4} {
		_, ts, _ := newCachedServer(t, Config{JobWorkers: 1, CellWorkers: workers}, nil)
		events := submitAndWait(t, ts, `{"experiment":"chaos","requests":40,"seed":3}`)
		last := events[len(events)-1]
		if last.Event != string(Done) {
			t.Fatalf("cellWorkers=%d: ended %q", workers, last.Event)
		}
		_, gotReport := getBody(t, ts.URL+"/jobs/"+last.Job+"/report")
		_, gotRuns := getBody(t, ts.URL+"/runs/"+last.Job)
		gotRuns = maskWallTime(gotRuns)
		if report == "" {
			report, runs = gotReport, gotRuns
			continue
		}
		if gotReport != report {
			t.Errorf("cellWorkers=%d: report differs", workers)
		}
		if gotRuns != runs {
			t.Errorf("cellWorkers=%d: manifests differ", workers)
		}
	}
}

// TestCacheDisabledByDefault pins library back-compat: a zero-value
// Config serves every submission as a fresh computation.
func TestCacheDisabledByDefault(t *testing.T) {
	srv := New(Config{QueueDepth: 4, JobWorkers: 1})
	var cells atomic.Int64
	srv.cellHook = func(*Job, obs.Manifest) { cells.Add(1) }
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{"experiment":"chaos","requests":40}`
	submitAndWait(t, ts, spec)
	after := cells.Load()
	events := submitAndWait(t, ts, spec)
	if last := events[len(events)-1]; last.Cached {
		t.Fatalf("cache hit with caching disabled: %+v", last)
	}
	if cells.Load() == after {
		t.Fatal("repeat submission did not recompute with caching disabled")
	}
}

// TestInvalidSpecNeverMintsKey pins the validate-before-enqueue fix at
// the HTTP level: a spec whose fault config is invalid is rejected
// with 400 and never occupies a queue slot or a single-flight slot.
func TestInvalidSpecNeverMintsKey(t *testing.T) {
	srv, ts, _ := newCachedServer(t, Config{JobWorkers: 1}, nil)

	resp := postJob(t, ts, `{"experiment":"chaos","faults":{"max_sense_retries":-1}}`, "")
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("invalid spec got %d, want 400", resp.StatusCode)
	}
	if v := srv.submitted.Value(); v != 0 {
		t.Fatalf("invalid spec was enqueued (submitted=%d)", v)
	}
	srv.mu.Lock()
	inflight := len(srv.inflight)
	srv.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("invalid spec minted a cache key (inflight=%d)", inflight)
	}
}
