package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faults"
)

// The write-ahead job journal: an append-only NDJSON file recording
// every accepted job spec before it is admitted to the queue and a
// terminal record after its artifacts are cached. On restart the
// server replays the journal — completed jobs rematerialize from the
// disk store under their original IDs, incomplete jobs re-enqueue and
// recompute (determinism makes the rerun byte-identical), terminal
// jobs are skipped. Every append is fsynced, so the journal's tail is
// at most one torn record behind the crash; replay tolerates exactly
// that torn tail.

// Journal record operations. opAccept carries the spec; the rest are
// terminal markers keyed by job ID.
const (
	opAccept   = "accept"
	opDone     = "done"
	opFailed   = "failed"
	opCancel   = "cancelled"
	opShed     = "shed"
	opRejected = "rejected"
)

// journalRecord is one NDJSON line of the job journal.
type journalRecord struct {
	// Op is the lifecycle transition this record logs.
	Op string `json:"op"`
	// ID is the server-assigned job identity the record belongs to.
	ID string `json:"id"`
	// Spec is the full submitted job description (accept records only):
	// everything replay needs to re-run the job from scratch.
	Spec *JobSpec `json:"spec,omitempty"`
	// Key is the job's content address in lowercase hex (done records
	// only): the name of its entry in the disk store.
	Key string `json:"key,omitempty"`
	// Cells is the completed manifest count (done records only).
	Cells int `json:"cells,omitempty"`
	// Error carries the failure message (failed records only).
	Error string `json:"error,omitempty"`
}

// journal is the append half: one file handle, one mutex, fsync per
// record. A nil *journal is valid and drops every append, so the
// serving layer can call it unconditionally.
type journal struct {
	inj *faults.StorageInjector

	mu       sync.Mutex
	f        *os.File
	buf      []byte
	appends  int64
	degraded bool
	closed   bool
}

// openJournal reads every intact record from path (tolerating a torn
// final line — the shape a mid-append crash leaves), truncates any
// torn tail so it cannot contaminate the next append, and opens the
// file for appending. A missing file is an empty journal.
func openJournal(path string, inj *faults.StorageInjector) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	records, keep, size, err := scanJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if keep < size {
		// A forgiven torn tail ends the file mid-record. O_APPEND would
		// concatenate the next append onto that partial line, turning a
		// recoverable tail into mid-file corruption that fails the NEXT
		// restart; cut the file back to the last intact record so every
		// append starts on a fresh line.
		if err := os.Truncate(path, keep); err != nil {
			return nil, nil, fmt.Errorf("serve: truncate torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open journal: %w", err)
	}
	return &journal{f: f, inj: inj}, records, nil
}

// readJournal parses the journal's NDJSON records; see scanJournal for
// the torn-tail contract.
func readJournal(path string) ([]journalRecord, error) {
	records, _, _, err := scanJournal(path)
	return records, err
}

// scanJournal parses the journal's NDJSON records, also reporting the
// byte offset just past the last intact record (keep) and the file
// size, so openJournal can truncate a forgiven tail before appending.
// Only a torn FINAL line is forgiven (fsync-per-record means the crash
// can tear at most the last append); garbage earlier in the file is
// corruption and fails the open, because silently skipping records
// would un-journal accepted work.
func scanJournal(path string) (records []journalRecord, keep, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, fmt.Errorf("serve: read journal: %w", err)
	}
	size = int64(len(data))
	var torn bool
	for off := 0; off < len(data); {
		lineEnd := len(data)
		if nl := bytes.IndexByte(data[off:], '\n'); nl >= 0 {
			lineEnd = off + nl + 1
		}
		line := bytes.TrimSpace(data[off:lineEnd])
		off = lineEnd
		if len(line) == 0 {
			continue
		}
		if torn {
			return nil, 0, 0, fmt.Errorf("serve: journal %s: corrupt record before end of file", path)
		}
		var rec journalRecord
		if jsonErr := json.Unmarshal(line, &rec); jsonErr != nil || rec.Op == "" || rec.ID == "" {
			torn = true // forgiven only if nothing follows
			continue
		}
		records = append(records, rec)
		keep = int64(lineEnd)
	}
	return records, keep, size, nil
}

// append writes one record and fsyncs it. The first failure degrades
// the journal permanently for this process — a WAL that might be
// missing records is worse than none, so the server sheds to
// memory-only operation (callers count and warn) rather than limping
// on a half-truthful log.
func (j *journal) append(rec journalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.degraded || j.closed {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		// A record is plain data; marshalling cannot fail short of a
		// programming error — degrade rather than panic regardless.
		j.degraded = true
		return fmt.Errorf("serve: journal append: %w", err)
	}
	j.buf = append(j.buf[:0], line...)
	j.buf = append(j.buf, '\n')
	_, err = j.f.Write(j.buf)
	if err == nil {
		if j.inj.SyncError() {
			err = faults.ErrInjectedSync
		} else {
			err = j.f.Sync()
		}
	}
	if err != nil {
		j.degraded = true
		return fmt.Errorf("serve: journal append: %w", err)
	}
	j.appends++
	return nil
}

// close fsyncs and closes the journal; safe to call more than once.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var err error
	if !j.degraded {
		err = j.f.Sync()
	}
	if closeErr := j.f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return fmt.Errorf("serve: journal close: %w", err)
	}
	return nil
}

// isDegraded reports whether a previous append failed and the journal
// stopped recording.
func (j *journal) isDegraded() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// jobNum parses the numeric suffix of a "job-N" ID (0 when malformed),
// used by replay to advance the ID counter past every journaled job.
func jobNum(id string) int {
	//riflint:allow droppederr -- malformed IDs intentionally parse as zero
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// replayState folds a journal's records into per-job outcomes in
// append order.
type replayState struct {
	// accepted maps job ID -> spec, in first-seen order (order slice).
	accepted map[string]*JobSpec
	order    []string
	// terminal marks jobs with a terminal record; done holds the
	// subset completed with their store key and cell count.
	terminal map[string]bool
	done     map[string]journalRecord
	maxID    int
}

// foldJournal replays records into a replayState.
func foldJournal(records []journalRecord) replayState {
	st := replayState{
		accepted: map[string]*JobSpec{},
		terminal: map[string]bool{},
		done:     map[string]journalRecord{},
	}
	for _, rec := range records {
		if n := jobNum(rec.ID); n > st.maxID {
			st.maxID = n
		}
		switch rec.Op {
		case opAccept:
			if rec.Spec == nil || st.accepted[rec.ID] != nil {
				continue
			}
			st.accepted[rec.ID] = rec.Spec
			st.order = append(st.order, rec.ID)
		case opDone:
			st.terminal[rec.ID] = true
			st.done[rec.ID] = rec
		case opFailed, opCancel, opShed, opRejected:
			st.terminal[rec.ID] = true
		}
	}
	return st
}

// errJournalReplay wraps journal/store failures surfaced during
// recovery; the server degrades to a cold start rather than refusing
// to boot.
var errJournalReplay = errors.New("serve: journal replay")
