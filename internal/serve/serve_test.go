package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
)

// postJob submits a spec and returns the streaming response.
func postJob(t *testing.T, ts *httptest.Server, spec string, query string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs"+query, "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readEvents decodes NDJSON lines until the stream ends, returning
// every event in order.
func readEvents(t *testing.T, r io.Reader) []Event {
	t.Helper()
	var events []Event
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestJobSpecParams(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"missing experiment", JobSpec{}, false},
		{"unknown experiment", JobSpec{Experiment: "99"}, false},
		{"negative requests", JobSpec{Experiment: "chaos", Requests: -1}, false},
		{"negative workers", JobSpec{Experiment: "chaos", Workers: -2}, false},
		{"fault rate above 1", JobSpec{Experiment: "chaos",
			Faults: faults.Config{TransientSenseRate: 1.5}}, false},
		{"valid minimal", JobSpec{Experiment: "chaos"}, true},
		{"valid full", JobSpec{Experiment: "tenants", Requests: 200, Seed: 9, Workers: 2, Full: true}, true},
	} {
		_, err := tc.spec.Params()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}

	// Omitted fields take the rifsim defaults, so a spec means the
	// same thing POSTed or passed as flags.
	p, err := JobSpec{Experiment: "chaos"}.Params()
	if err != nil {
		t.Fatal(err)
	}
	def := core.DefaultRunParams()
	if p.Requests != def.Requests || p.Seed != def.Seed || !p.Shrink {
		t.Fatalf("defaults not applied: requests=%d seed=%d shrink=%v", p.Requests, p.Seed, p.Shrink)
	}
	if p.Tool != "rifserve" || p.Experiment != "chaos" {
		t.Fatalf("provenance labels: tool=%q experiment=%q", p.Tool, p.Experiment)
	}
}

// TestServeEndToEnd drives the whole happy path: submit a chaos job,
// follow its NDJSON progress stream to completion, and check the
// report is byte-identical to a direct dispatcher run, the manifests
// are complete, and /metrics stays well-formed under hostile labels.
func TestServeEndToEnd(t *testing.T) {
	spool := t.TempDir()
	srv := New(Config{
		QueueDepth: 4,
		JobWorkers: 1,
		SpoolDir:   spool,
		Labels:     map[string]string{"instance": "ci\"runner\\1\nblue"},
	})
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := getBody(t, ts.URL+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if _, body := getBody(t, ts.URL+"/experiments"); !strings.Contains(body, `"chaos"`) {
		t.Fatalf("experiments listing missing chaos: %s", body)
	}

	resp := postJob(t, ts, `{"experiment":"chaos","requests":60,"seed":7,"workers":1}`, "")
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	events := readEvents(t, resp.Body)
	if len(events) < 3 {
		t.Fatalf("too few events: %+v", events)
	}
	if events[0].Event != "queued" || events[1].Event != "running" {
		t.Fatalf("stream must open queued, running; got %s, %s", events[0].Event, events[1].Event)
	}
	cells := 0
	for _, e := range events {
		if e.Event == "cell" {
			cells++
			if e.Scheme == "" || e.Workload == "" {
				t.Fatalf("cell event missing identity: %+v", e)
			}
		}
	}
	last := events[len(events)-1]
	// The chaos grid is 4 rates x 3 schemes.
	if last.Event != "done" || last.Completed != 12 || cells != 12 {
		t.Fatalf("terminal event %+v with %d cell events, want done/12/12", last, cells)
	}
	if last.Job != "job-1" || last.Experiment != "chaos" {
		t.Fatalf("terminal identity: %+v", last)
	}

	// The report must be the exact bytes the dispatcher (and hence
	// `rifsim -fig chaos -requests 60 -seed 7`) produces — run the
	// reference with a different worker count to also pin
	// worker-independence of the bytes.
	ref := core.DefaultRunParams()
	ref.Requests = 60
	ref.Seed = 7
	ref.Workers = 2
	var want bytes.Buffer
	if err := core.RunExperiment(&want, "chaos", ref); err != nil {
		t.Fatal(err)
	}
	code, got := getBody(t, ts.URL+"/jobs/job-1/report")
	if code != 200 {
		t.Fatalf("report: %d", code)
	}
	if got != want.String() {
		t.Fatalf("served report differs from direct dispatcher run:\n--- served ---\n%s\n--- direct ---\n%s", got, want.String())
	}

	// The manifest collection is complete and not partial.
	code, runsJSON := getBody(t, ts.URL+"/runs/job-1")
	if code != 200 {
		t.Fatalf("runs: %d", code)
	}
	var coll obs.Collection
	if err := json.Unmarshal([]byte(runsJSON), &coll); err != nil {
		t.Fatalf("runs payload: %v", err)
	}
	if coll.Len() != 12 || coll.Partial() {
		t.Fatalf("collection len=%d partial=%v, want 12/false", coll.Len(), coll.Partial())
	}

	// A finished job spooled exactly one manifest file, not partial.
	names, err := filepath.Glob(filepath.Join(spool, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || filepath.Base(names[0]) != "job-1.json" {
		t.Fatalf("spool contents: %v", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"partial"`) {
		t.Fatal("completed job's spool file marked partial")
	}

	// Status and listing views.
	if code, body := getBody(t, ts.URL+"/jobs/job-1"); code != 200 ||
		!strings.Contains(body, `"state": "done"`) ||
		!strings.Contains(body, `"seed": 7`) ||
		!strings.Contains(body, `"requests": 60`) ||
		!strings.Contains(body, `"events": "/jobs/job-1/events"`) {
		t.Fatalf("status view: %d %s", code, body)
	}
	if code, body := getBody(t, ts.URL+"/jobs"); code != 200 || strings.Count(body, `"id"`) != 1 {
		t.Fatalf("list view: %d %s", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/jobs/nope"); code != 404 {
		t.Fatalf("missing job: %d", code)
	}
	if code, _ := getBody(t, ts.URL+"/runs/nope"); code != 404 {
		t.Fatalf("missing runs: %d", code)
	}

	// A late subscriber replays the full history and terminates.
	lateResp, err := http.Get(ts.URL + "/jobs/job-1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer lateResp.Body.Close()
	replay := readEvents(t, lateResp.Body)
	if len(replay) != len(events) || replay[len(replay)-1].Event != "done" {
		t.Fatalf("replayed %d events ending %q, want %d ending done",
			len(replay), replay[len(replay)-1].Event, len(events))
	}

	// /metrics: service counters present and hostile labels escaped.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	mb, _ := io.ReadAll(resp2.Body)
	metrics := string(mb)
	for _, want := range []string{
		`rifserve_jobs_submitted_total{instance="ci\"runner\\1\nblue"} 1`,
		`rifserve_jobs_completed_total{instance="ci\"runner\\1\nblue"} 1`,
		"# TYPE rifserve_job_manifests histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics)
		}
	}
	// An unescaped newline would have split a sample across lines:
	// every non-comment line must end in a numeric value field.
	for _, line := range strings.Split(strings.TrimSpace(metrics), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 || line[:i] == "" {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestServeBackpressure pins the bounded-queue contract without any
// timing dependence: with no workers started, the queue fills at its
// configured depth and the next submission is rejected with 429 +
// Retry-After; Stop then drains the queued job to a cancelled state
// with an empty partial manifest.
func TestServeBackpressure(t *testing.T) {
	spool := t.TempDir()
	srv := New(Config{QueueDepth: 1, JobWorkers: 1, SpoolDir: spool})
	// Deliberately not started: queued jobs stay queued.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJob(t, ts, `{"experiment":"tenants","requests":40}`, "?stream=0")
	defer resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("first submit: %d, want 202", resp.StatusCode)
	}

	resp2 := postJob(t, ts, `{"experiment":"tenants","requests":40}`, "?stream=0")
	defer resp2.Body.Close()
	if resp2.StatusCode != 429 {
		t.Fatalf("second submit: %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// The rejected job must not appear in the listing.
	if _, body := getBody(t, ts.URL+"/jobs"); strings.Count(body, `"id"`) != 1 {
		t.Fatalf("rejected job leaked into listing: %s", body)
	}
	if _, metrics := getBody(t, ts.URL+"/metrics"); !strings.Contains(metrics, "rifserve_jobs_rejected_total 1") {
		t.Fatalf("rejection not counted:\n%s", metrics)
	}

	// Bad specs are rejected before touching the queue.
	for _, bad := range []string{
		`{"experiment":"nope"}`,
		`{"experiment":"chaos","requests":-5}`,
		`{"experiment":"chaos","bogus":1}`,
		`{broken`,
	} {
		r := postJob(t, ts, bad, "?stream=0")
		r.Body.Close()
		if r.StatusCode != 400 {
			t.Fatalf("spec %s: %d, want 400", bad, r.StatusCode)
		}
	}

	// Stop drains the queued job: cancelled, flushed as an empty
	// partial manifest.
	srv.Stop()
	if code, body := getBody(t, ts.URL+"/jobs/job-1"); code != 200 ||
		!strings.Contains(body, `"state": "cancelled"`) ||
		!strings.Contains(body, `"partial": true`) {
		t.Fatalf("drained job: %d %s", code, body)
	}
	data, err := os.ReadFile(filepath.Join(spool, "job-1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), `"partial"`) != 1 || !strings.Contains(string(data), `"partial": true`) {
		t.Fatalf("drained spool file must say partial exactly once:\n%s", data)
	}

	// After Stop the service refuses new work.
	resp3 := postJob(t, ts, `{"experiment":"tenants"}`, "?stream=0")
	resp3.Body.Close()
	if resp3.StatusCode != 503 {
		t.Fatalf("submit after stop: %d, want 503", resp3.StatusCode)
	}
}

// TestServeGracefulShutdownPartialManifest is the SIGTERM contract
// minus the signal (cmd/rifserve wires SIGTERM to exactly this Stop
// call, and tests the signal half itself): cancelling mid-job keeps
// the completed cells, flushes one manifest collection marked
// "partial": true exactly once, and ends the progress stream with a
// cancelled event.
func TestServeGracefulShutdownPartialManifest(t *testing.T) {
	spool := t.TempDir()
	srv := New(Config{QueueDepth: 2, JobWorkers: 1, SpoolDir: spool})
	// Cancel deterministically after the first grid cell: the hook
	// runs on the grid worker goroutine before the next cell's stop
	// poll, so the job always ends cancelled mid-job — then drain the
	// whole server, which is exactly what the SIGTERM handler does.
	stopped := make(chan struct{})
	var once sync.Once
	srv.cellHook = func(j *Job, _ obs.Manifest) {
		once.Do(func() {
			j.Cancel()
			go func() { srv.Stop(); close(stopped) }()
		})
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJob(t, ts, `{"experiment":"chaos","requests":120,"seed":3,"workers":1}`, "")
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	events := readEvents(t, resp.Body)
	<-stopped

	last := events[len(events)-1]
	if last.Event != "cancelled" || !last.Partial {
		t.Fatalf("terminal event %+v, want cancelled with partial=true", last)
	}
	if last.Completed < 1 || last.Completed >= 12 {
		t.Fatalf("cancelled with %d cells, want mid-job (1..11)", last.Completed)
	}

	// Exactly one spool file, saying "partial": true exactly once, and
	// its runs match the cells the job completed.
	names, err := filepath.Glob(filepath.Join(spool, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("spool files: %v, want exactly one", names)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), `"partial"`); got != 1 {
		t.Fatalf(`spool file contains "partial" %d times, want exactly 1:`+"\n%s", got, data)
	}
	if !strings.Contains(string(data), `"partial": true`) {
		t.Fatalf("spool file not marked partial:\n%s", data)
	}
	var coll obs.Collection
	if err := json.Unmarshal(data, &coll); err != nil {
		t.Fatal(err)
	}
	if !coll.Partial() || coll.Len() != last.Completed {
		t.Fatalf("flushed collection len=%d partial=%v, want %d/true",
			coll.Len(), coll.Partial(), last.Completed)
	}

	// And the drained server refuses new submissions.
	resp2 := postJob(t, ts, `{"experiment":"chaos"}`, "?stream=0")
	resp2.Body.Close()
	if resp2.StatusCode != 503 {
		t.Fatalf("submit after shutdown: %d, want 503", resp2.StatusCode)
	}
}

// TestServeCancelEndpoint cancels one job via DELETE while the server
// keeps running: only that job is affected. The DELETE is issued
// synchronously from the cell hook (grid worker goroutine), so it is
// ordered before the next cell's stop poll — deterministically
// mid-job.
func TestServeCancelEndpoint(t *testing.T) {
	srv := New(Config{QueueDepth: 2, JobWorkers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var once sync.Once
	srv.cellHook = func(j *Job, _ obs.Manifest) {
		if j.ID != "job-1" {
			return
		}
		once.Do(func() {
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+j.ID, nil)
			if err != nil {
				t.Error(err)
				return
			}
			dr, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			dr.Body.Close()
			if dr.StatusCode != 202 {
				t.Errorf("cancel: %d, want 202", dr.StatusCode)
			}
		})
	}
	srv.Start()
	defer srv.Stop()

	resp := postJob(t, ts, `{"experiment":"chaos","requests":120,"workers":1}`, "")
	defer resp.Body.Close()
	events := readEvents(t, resp.Body)
	last := events[len(events)-1]
	if last.Event != "cancelled" || !last.Partial || last.Completed < 1 || last.Completed >= 12 {
		t.Fatalf("terminal event %+v, want mid-job cancelled", last)
	}

	// The server still accepts and completes new jobs.
	resp2 := postJob(t, ts, `{"experiment":"chaos","requests":40}`, "")
	defer resp2.Body.Close()
	events2 := readEvents(t, resp2.Body)
	if events2[len(events2)-1].Event != "done" {
		t.Fatalf("post-cancel job ended %+v, want done", events2[len(events2)-1])
	}

	// A report for an unfinished (never-submitted) state answers 409.
	code, _ := getBody(t, ts.URL+"/jobs/job-1/report")
	if code != 200 {
		// job-1 terminated (cancelled) so its (possibly empty) report
		// is servable; only non-terminal jobs answer 409 — covered by
		// construction above, nothing more to assert here.
		t.Fatalf("terminal job report: %d", code)
	}
}

// TestSubmitAfterShutdownResolvesJob pins the submit/shutdown race: a
// submission that slips past the handler's draining() check and lands
// its queue send after Stop has already drained the queue must still
// reach a terminal state (and re-drain the queue behind itself) — not
// sit Queued forever with a hung event stream and an unterminated
// journal accept record.
func TestSubmitAfterShutdownResolvesJob(t *testing.T) {
	srv := New(Config{QueueDepth: 2, JobWorkers: 1})
	srv.Start()
	srv.Stop() // workers gone, queue drained, quit closed

	spec := JobSpec{Experiment: "chaos", Requests: 40, Seed: 2}
	p, err := spec.Params()
	if err != nil {
		t.Fatal(err)
	}
	j, ok := srv.submit(spec, p)
	if !ok {
		t.Fatal("post-shutdown submission rejected as queue-full, want accepted-then-resolved")
	}
	if state, _ := j.State(); state != Cancelled {
		t.Fatalf("post-shutdown submission ended %q, want cancelled", state)
	}
	if n := len(srv.queue); n != 0 {
		t.Fatalf("%d jobs left in the queue after the late submit resolved", n)
	}
}
