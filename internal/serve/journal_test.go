package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
)

// journalLine marshals one record as the NDJSON line the journal
// writes, so tests can author journals byte-compatibly.
func journalLine(t *testing.T, rec journalRecord) []byte {
	t.Helper()
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestJournalAppendReopenRoundTrip pins the WAL's basic durability
// shape: records appended by one journal life are read back intact by
// the next, and close is idempotent.
func TestJournalAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j, records, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(records))
	}
	want := []journalRecord{
		{Op: opAccept, ID: "job-1", Spec: &JobSpec{Experiment: "chaos", Requests: 40, Seed: 3}},
		{Op: opDone, ID: "job-1", Key: strings.Repeat("ab", 32), Cells: 12},
		{Op: opFailed, ID: "job-2", Error: "boom"},
	}
	for _, rec := range want {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	j2, got, err := openJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if len(got) != len(want) {
		t.Fatalf("reopen replayed %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Op != want[i].Op || rec.ID != want[i].ID || rec.Key != want[i].Key ||
			rec.Cells != want[i].Cells || rec.Error != want[i].Error {
			t.Errorf("record %d = %+v, want %+v", i, rec, want[i])
		}
	}
	if spec := got[0].Spec; spec == nil || *spec != *want[0].Spec {
		t.Errorf("accept spec did not round-trip: %+v", got[0].Spec)
	}
}

// TestJournalTornTailForgiven pins the exact crash-tolerance contract:
// a torn FINAL line (the one shape fsync-per-record can leave) is
// forgiven, while garbage earlier in the file is corruption and fails
// the open — silently skipping records would un-journal accepted work.
func TestJournalTornTailForgiven(t *testing.T) {
	dir := t.TempDir()
	valid := journalLine(t, journalRecord{Op: opAccept, ID: "job-1", Spec: &JobSpec{Experiment: "chaos"}})
	done := journalLine(t, journalRecord{Op: opDone, ID: "job-1"})

	torn := filepath.Join(dir, "torn.ndjson")
	data := append(append([]byte{}, valid...), done...)
	data = append(data, []byte(`{"op":"accept","id":"job-2","spe`)...) // cut mid-append
	if err := os.WriteFile(torn, data, 0o644); err != nil {
		t.Fatal(err)
	}
	records, err := readJournal(torn)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(records) != 2 {
		t.Fatalf("torn journal replayed %d records, want the 2 intact ones", len(records))
	}

	midGarbage := filepath.Join(dir, "corrupt.ndjson")
	data = append(append([]byte{}, valid...), []byte("not json at all\n")...)
	data = append(data, done...)
	if err := os.WriteFile(midGarbage, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readJournal(midGarbage); err == nil {
		t.Fatal("mid-file garbage accepted; records after it would be silently dropped")
	}
}

// TestJournalTornTailTruncatedOnReopen pins the repair half of the
// torn-tail contract: opening a journal whose final line is torn cuts
// the file back to the last intact record, so the next append starts
// on a fresh line — without the truncate, the append would concatenate
// onto the partial record and the NEXT restart would read mid-file
// garbage and refuse the whole journal.
func TestJournalTornTailTruncatedOnReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	valid := journalLine(t, journalRecord{Op: opAccept, ID: "job-1", Spec: &JobSpec{Experiment: "chaos"}})
	data := append(append([]byte{}, valid...), []byte(`{"op":"accept","id":"job-2","spe`)...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j, records, err := openJournal(path, nil)
	if err != nil {
		t.Fatalf("torn tail rejected on open: %v", err)
	}
	if len(records) != 1 {
		t.Fatalf("torn journal replayed %d records, want 1", len(records))
	}
	if err := j.append(journalRecord{Op: opCancel, ID: "job-1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	got, err := readJournal(path)
	if err != nil {
		t.Fatalf("journal unreadable after append-over-torn-tail: %v", err)
	}
	if len(got) != 2 || got[1].Op != opCancel || got[1].ID != "job-1" {
		t.Fatalf("post-repair journal = %+v, want the intact record plus the new append", got)
	}
}

// TestFoldJournal pins replay folding: duplicate accepts ignored,
// terminal records mark jobs resolved, done records carry their store
// key, and the ID counter advances past every journaled job.
func TestFoldJournal(t *testing.T) {
	specA := &JobSpec{Experiment: "chaos"}
	specB := &JobSpec{Experiment: "refresh"}
	st := foldJournal([]journalRecord{
		{Op: opAccept, ID: "job-1", Spec: specA},
		{Op: opAccept, ID: "job-1", Spec: specB}, // duplicate: first wins
		{Op: opAccept, ID: "job-2", Spec: specB},
		{Op: opDone, ID: "job-1", Key: "aa", Cells: 12},
		{Op: opShed, ID: "job-4"},
		{Op: opAccept, ID: "job-9", Spec: specA},
		{Op: opAccept, ID: "job-bogus", Spec: specA},
	})
	if st.maxID != 9 {
		t.Errorf("maxID = %d, want 9", st.maxID)
	}
	wantOrder := []string{"job-1", "job-2", "job-9", "job-bogus"}
	if len(st.order) != len(wantOrder) {
		t.Fatalf("order = %v, want %v", st.order, wantOrder)
	}
	for i, id := range wantOrder {
		if st.order[i] != id {
			t.Fatalf("order = %v, want %v", st.order, wantOrder)
		}
	}
	if st.accepted["job-1"].Experiment != "chaos" {
		t.Error("duplicate accept overwrote the original spec")
	}
	if !st.terminal["job-1"] || !st.terminal["job-4"] {
		t.Error("terminal records not folded")
	}
	if st.terminal["job-2"] || st.terminal["job-9"] {
		t.Error("incomplete jobs marked terminal")
	}
	if rec := st.done["job-1"]; rec.Key != "aa" || rec.Cells != 12 {
		t.Errorf("done record not kept: %+v", rec)
	}
}

// TestReplayRerunsIncompleteJob is the crash-recovery core: a journal
// holding an accepted-but-unresolved spec (the shape a crash mid-run
// leaves) makes the restarted server re-enqueue and recompute the job
// under its original ID, with /report and /runs byte-identical to an
// uninterrupted run of the same spec.
func TestReplayRerunsIncompleteJob(t *testing.T) {
	// Uninterrupted baseline on a plain server.
	_, base, _ := newCachedServer(t, Config{JobWorkers: 1}, nil)
	ev := submitAndWait(t, base, `{"experiment":"chaos","requests":40,"seed":3}`)
	last := ev[len(ev)-1]
	if last.Event != string(Done) {
		t.Fatalf("baseline ended %q", last.Event)
	}
	_, wantReport := getBody(t, base.URL+"/jobs/"+last.Job+"/report")
	_, wantRuns := getBody(t, base.URL+"/runs/"+last.Job)

	// A journal that accepted job-7 and then "crashed".
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.ndjson")
	line := journalLine(t, journalRecord{
		Op: opAccept, ID: "job-7",
		Spec: &JobSpec{Experiment: "chaos", Requests: 40, Seed: 3},
	})
	if err := os.WriteFile(journalPath, line, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := New(Config{
		QueueDepth:  4,
		JobWorkers:  1,
		StoreDir:    filepath.Join(dir, "store"),
		JournalPath: journalPath,
		Logf:        t.Logf,
	})
	var cells atomic.Int64
	srv.cellHook = func(*Job, obs.Manifest) { cells.Add(1) }
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if v := srv.recoveredJobs.Value(); v != 1 {
		t.Fatalf("recovered counter = %d, want 1", v)
	}
	resp, err := http.Get(ts.URL + "/jobs/job-7/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readEvents(t, resp.Body)
	resp.Body.Close()
	rlast := events[len(events)-1]
	if rlast.Event != string(Done) || rlast.Job != "job-7" {
		t.Fatalf("replayed job ended %+v, want done under its original ID", rlast)
	}
	if cells.Load() == 0 {
		t.Fatal("replayed job did not recompute")
	}
	_, report := getBody(t, ts.URL+"/jobs/job-7/report")
	_, runs := getBody(t, ts.URL+"/runs/job-7")
	if report != wantReport {
		t.Error("replayed report differs from the uninterrupted run")
	}
	if maskWallTime(runs) != maskWallTime(wantRuns) {
		t.Error("replayed manifests differ from the uninterrupted run (wall_time_s masked)")
	}

	// The recovered job advanced the ID counter: a fresh submission must
	// not collide with the journaled identity.
	fresh := submitAndWait(t, ts, `{"experiment":"refresh","requests":40,"seed":5}`)
	if id := fresh[len(fresh)-1].Job; id != "job-8" {
		t.Errorf("post-replay submission got %s, want job-8", id)
	}
}

// TestReplayDoneRematerializesFromStore pins the warm-restart half: a
// job completed and stored by one server life serves byte-identical
// /report and /runs from the next life under its original ID, and the
// rematerialized entry warms the memory cache — an identical
// resubmission is a pure hit, zero simulations.
func TestReplayDoneRematerializesFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		QueueDepth: 4,
		JobWorkers: 1,
		CacheBytes: DefaultCacheBytes,
		StoreDir:   dir, // journal defaults to <dir>/journal.ndjson
		Logf:       t.Logf,
	}
	spec := `{"experiment":"chaos","requests":40,"seed":9}`

	srv1 := New(cfg)
	srv1.Start()
	ts1 := httptest.NewServer(srv1.Handler())
	ev := submitAndWait(t, ts1, spec)
	last := ev[len(ev)-1]
	if last.Event != string(Done) || last.Cached {
		t.Fatalf("first life ended %+v", last)
	}
	_, wantReport := getBody(t, ts1.URL+"/jobs/"+last.Job+"/report")
	_, wantRuns := getBody(t, ts1.URL+"/runs/"+last.Job)
	ts1.Close()
	srv1.Stop()

	srv2 := New(cfg)
	var cells atomic.Int64
	srv2.cellHook = func(*Job, obs.Manifest) { cells.Add(1) }
	srv2.Start()
	defer srv2.Stop()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if v := srv2.recoveredJobs.Value(); v != 1 {
		t.Fatalf("recovered counter = %d, want 1", v)
	}
	// Stored bytes serve verbatim, so no wall-time masking: the restart
	// is byte-identical, not merely equivalent.
	_, report := getBody(t, ts2.URL+"/jobs/"+last.Job+"/report")
	_, runs := getBody(t, ts2.URL+"/runs/"+last.Job)
	if report != wantReport {
		t.Error("restarted report differs from the life that computed it")
	}
	if runs != wantRuns {
		t.Error("restarted manifests differ from the life that computed them")
	}

	hit := submitAndWait(t, ts2, spec)
	hlast := hit[len(hit)-1]
	if hlast.Event != string(Done) || !hlast.Cached {
		t.Fatalf("post-restart resubmission not cached: %+v", hlast)
	}
	if n := cells.Load(); n != 0 {
		t.Fatalf("restarted server ran %d cells; the store should have served everything", n)
	}
	// The hit came from the rematerialization-warmed memory tier, not a
	// second disk read.
	if v := srv2.cacheHits.Value(); v != 1 {
		t.Fatalf("cache hits = %d, want the warmed-tier hit", v)
	}
}

// TestDrainGraceful pins the SIGTERM contract: during Drain the
// in-flight job runs to completion (journaled and cached like any
// other), still-queued jobs end with the terminal "shed" event, new
// submissions are refused with 503, and the journal records both
// outcomes before Drain returns.
func TestDrainGraceful(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{
		QueueDepth: 4,
		JobWorkers: 1,
		StoreDir:   dir,
		Logf:       t.Logf,
	})
	parked := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	srv.cellHook = func(*Job, obs.Manifest) {
		if once.CompareAndSwap(false, true) {
			close(parked)
			<-release
		}
	}
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Job 1 starts and parks on its first cell.
	type streamResult struct {
		events []Event
		err    error
	}
	stream := make(chan streamResult, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(`{"experiment":"chaos","requests":40,"seed":5}`))
		if err != nil {
			stream <- streamResult{err: err}
			return
		}
		defer resp.Body.Close()
		var events []Event
		sc := json.NewDecoder(resp.Body)
		for {
			var e Event
			if err := sc.Decode(&e); err != nil {
				break
			}
			events = append(events, e)
		}
		stream <- streamResult{events: events}
	}()
	<-parked

	// Job 2 queues behind it (different seed: an identical spec would
	// single-flight onto job 1 instead of queueing).
	resp := postJob(t, ts, `{"experiment":"chaos","requests":40,"seed":6}`, "?stream=0")
	if resp.StatusCode != 202 {
		t.Fatalf("job 2 status %d", resp.StatusCode)
	}
	var queued Status
	if err := json.NewDecoder(resp.Body).Decode(&queued); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	for !srv.draining() {
		runtime.Gosched()
	}

	// Draining refuses new work immediately.
	lateResp := postJob(t, ts, `{"experiment":"refresh","requests":40}`, "?stream=0")
	lateResp.Body.Close()
	if lateResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain got %d, want 503", lateResp.StatusCode)
	}

	close(release)
	<-drained

	res := <-stream
	if res.err != nil {
		t.Fatal(res.err)
	}
	last := res.events[len(res.events)-1]
	// The chaos grid is 4 rates x 3 schemes = 12 cells; a drained
	// in-flight job finishes all of them.
	if last.Event != string(Done) || last.Partial || last.Completed != 12 {
		t.Fatalf("in-flight job ended %+v, want a complete done", last)
	}

	j, ok := srv.job(queued.ID)
	if !ok {
		t.Fatalf("queued job %s vanished", queued.ID)
	}
	if state, _ := j.State(); state != Shed {
		t.Fatalf("queued job ended %q, want shed", state)
	}
	if v := srv.shedJobs.Value(); v != 1 {
		t.Fatalf("shed counter = %d, want 1", v)
	}

	// The journal resolved both jobs before Drain returned.
	records, err := readJournal(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]string{}
	for _, rec := range records {
		if rec.Op != opAccept {
			ops[rec.ID] = rec.Op
		}
	}
	if ops[last.Job] != opDone {
		t.Errorf("in-flight job journaled %q, want done", ops[last.Job])
	}
	if ops[queued.ID] != opShed {
		t.Errorf("queued job journaled %q, want shed", ops[queued.ID])
	}
}

// TestPersistenceDegradesUnderCertainFaults is the never-panic pin:
// with every storage-fault class firing on every operation, jobs still
// complete with correct client-visible bytes, the server sheds to
// memory-only operation, and the degradation gauge says so.
func TestPersistenceDegradesUnderCertainFaults(t *testing.T) {
	srv := New(Config{
		QueueDepth: 4,
		JobWorkers: 1,
		StoreDir:   t.TempDir(),
		StorageFaults: faults.StorageConfig{
			WriteErrorRate: 1,
			TornWriteRate:  1,
			SyncErrorRate:  1,
			BitRotRate:     1,
			SlowIORate:     1,
		},
		StorageFaultSeed: 3,
		Logf:             t.Logf,
	})
	srv.Start()
	defer srv.Stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ev := submitAndWait(t, ts, `{"experiment":"chaos","requests":40,"seed":4}`)
	last := ev[len(ev)-1]
	if last.Event != string(Done) {
		t.Fatalf("job under certain storage faults ended %+v", last)
	}
	if code, report := getBody(t, ts.URL+"/jobs/"+last.Job+"/report"); code != 200 || report == "" {
		t.Fatalf("report under faults: %d, %d bytes", code, len(report))
	}
	if v := srv.persistDegraded.Value(); v != 1 {
		t.Fatalf("persist_degraded = %d, want 1", v)
	}
	if srv.journalErrors.Value() == 0 && srv.storeErrors.Value() == 0 {
		t.Fatal("no persistence errors counted under certain faults")
	}

	// The broken tiers never serve: a resubmission recomputes.
	again := submitAndWait(t, ts, `{"experiment":"chaos","requests":40,"seed":4}`)
	if alast := again[len(again)-1]; alast.Event != string(Done) || alast.Cached {
		t.Fatalf("resubmission under faults: %+v", alast)
	}
}
