package faults

import "testing"

func TestNilInjectorNeverInjects(t *testing.T) {
	var inj *Injector
	if inj.SenseRetries() != 0 || inj.BlockStuck(0) || inj.DieDown(0) ||
		inj.TransferCorrupted() || inj.ForceMispredict() || inj.DecodeTimeout() {
		t.Fatal("nil injector injected a fault")
	}
}

func TestZeroConfigDisables(t *testing.T) {
	if New(Config{}, 1) != nil {
		t.Fatal("zero config produced a live injector")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
}

func TestValidateRejectsBadRates(t *testing.T) {
	for _, cfg := range []Config{
		{TransientSenseRate: -0.1},
		{StuckBlockRate: 1.5},
		{DieDropoutRate: 2},
		{ChannelCorruptRate: -1},
		{MispredictRate: 1.01},
		{DecodeTimeoutRate: -0.5},
		{TransientSenseRate: 0.1, MaxSenseRetries: -1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
	if err := (Config{TransientSenseRate: 0.5, StuckBlockRate: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestStaticFaultsAreQueryOrderIndependent pins the property the
// parallel fleet relies on: stuck-block and dead-die decisions depend
// only on (seed, id), not on how many queries preceded them.
func TestStaticFaultsAreQueryOrderIndependent(t *testing.T) {
	cfg := Config{StuckBlockRate: 0.3, DieDropoutRate: 0.3, ChannelCorruptRate: 0.5}
	a := New(cfg, 42)
	b := New(cfg, 42)
	// Perturb b's dynamic streams and query order before comparing.
	for i := 0; i < 100; i++ {
		b.TransferCorrupted()
	}
	for id := 511; id >= 0; id-- {
		if a.BlockStuck(id) != b.BlockStuck(id) {
			t.Fatalf("block %d stuck decision depends on query order", id)
		}
		if a.DieDown(id%32) != b.DieDown(id%32) {
			t.Fatalf("die %d dropout decision depends on query order", id)
		}
	}
}

// TestStaticFaultRatesRealize checks the hash thresholds actually hit
// near the configured rates over a large population.
func TestStaticFaultRatesRealize(t *testing.T) {
	inj := New(Config{StuckBlockRate: 0.1}, 7)
	n, hits := 100000, 0
	for id := 0; id < n; id++ {
		if inj.BlockStuck(id) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.08 || got > 0.12 {
		t.Fatalf("stuck rate realized %.4f, want ~0.10", got)
	}
}

func TestSeedChangesStaticFaults(t *testing.T) {
	cfg := Config{StuckBlockRate: 0.2}
	a, b := New(cfg, 1), New(cfg, 2)
	same := true
	for id := 0; id < 256; id++ {
		if a.BlockStuck(id) != b.BlockStuck(id) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("stuck-block set identical across seeds")
	}
}

func TestSenseRetriesBounded(t *testing.T) {
	inj := New(Config{TransientSenseRate: 1, MaxSenseRetries: 2}, 1)
	for i := 0; i < 10; i++ {
		if n := inj.SenseRetries(); n != 2 {
			t.Fatalf("rate-1 sense retries = %d, want the bound 2", n)
		}
	}
	inj = New(Config{TransientSenseRate: 1}, 1)
	if n := inj.SenseRetries(); n != DefaultMaxSenseRetries {
		t.Fatalf("default bound = %d, want %d", n, DefaultMaxSenseRetries)
	}
}

// TestDynamicDrawsAreReproducible pins the dynamic streams: two
// injectors with the same seed see identical fault sequences.
func TestDynamicDrawsAreReproducible(t *testing.T) {
	cfg := Config{
		TransientSenseRate: 0.3,
		ChannelCorruptRate: 0.3,
		MispredictRate:     0.3,
		DecodeTimeoutRate:  0.3,
	}
	a, b := New(cfg, 9), New(cfg, 9)
	for i := 0; i < 1000; i++ {
		if a.SenseRetries() != b.SenseRetries() ||
			a.TransferCorrupted() != b.TransferCorrupted() ||
			a.ForceMispredict() != b.ForceMispredict() ||
			a.DecodeTimeout() != b.DecodeTimeout() {
			t.Fatalf("draw %d diverged between same-seed injectors", i)
		}
	}
}
