package faults

import (
	"fmt"
	"syscall"
	"time"

	"repro/internal/sim"
)

// DefaultSlowIODelayMS is the stall length applied to a slow-I/O
// injection when StorageConfig.SlowIODelayMS is zero.
const DefaultSlowIODelayMS = 5

// StorageConfig sets the per-class rates for host-side storage faults
// injected into the persistence layer (the disk result store and the
// job journal). These are the failure modes a production checkpoint
// path actually meets: a full disk, a torn write exposed by a crash,
// an fsync the kernel refuses, a device that stalls, and bytes that
// rot at rest. The zero value disables injection entirely.
//
// Unlike Config, storage faults never reach a simulation: they decide
// whether artifacts persist, not what bytes they hold, so they are
// deliberately excluded from the result-cache content address.
type StorageConfig struct {
	// WriteErrorRate is the per-write probability that storing an
	// entry fails outright with ENOSPC before any bytes land.
	WriteErrorRate float64 `json:"write_error_rate,omitempty"`
	// TornWriteRate is the per-write probability that only a prefix of
	// the entry reaches the disk while the write still reports
	// success — the on-disk shape a power cut leaves behind. The read
	// path must catch it by verification, never serve it.
	TornWriteRate float64 `json:"torn_write_rate,omitempty"`
	// SyncErrorRate is the per-sync probability that fsync fails; the
	// write is then treated as never durable and must be abandoned.
	SyncErrorRate float64 `json:"sync_error_rate,omitempty"`
	// BitRotRate is the per-read probability that one stored byte
	// flips before verification — media rot at rest. A verified read
	// path quarantines the entry instead of serving it.
	BitRotRate float64 `json:"bit_rot_rate,omitempty"`
	// SlowIORate is the per-operation probability that the device
	// stalls for SlowIODelayMS before responding.
	SlowIORate float64 `json:"slow_io_rate,omitempty"`
	// SlowIODelayMS is the stall length in milliseconds (0 means
	// DefaultSlowIODelayMS).
	SlowIODelayMS int `json:"slow_io_delay_ms,omitempty"`
}

// Enabled reports whether any storage-fault class can fire.
func (c StorageConfig) Enabled() bool {
	return c.WriteErrorRate > 0 || c.TornWriteRate > 0 || c.SyncErrorRate > 0 ||
		c.BitRotRate > 0 || c.SlowIORate > 0
}

// Validate reports configuration errors.
func (c StorageConfig) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"write error", c.WriteErrorRate},
		{"torn write", c.TornWriteRate},
		{"sync error", c.SyncErrorRate},
		{"bit rot", c.BitRotRate},
		{"slow io", c.SlowIORate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: storage %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if c.SlowIODelayMS < 0 {
		return fmt.Errorf("faults: storage slow io delay %dms", c.SlowIODelayMS)
	}
	return nil
}

// Storage-fault stream labels: above the simulator's (101, 102) and
// the device fault classes (201-204), so adding the persistence layer
// never perturbs another component's draws.
const (
	streamStoreWrite = 211
	streamStoreTorn  = 212
	streamStoreSync  = 213
	streamStoreRot   = 214
	streamStoreSlow  = 215
)

// StorageInjector answers the persistence layer's fault queries. Every
// decision is a pure function of (seed, fault config, query order): the
// store and journal query under their own locks, so one process's
// operation order fixes the draw sequence. A nil StorageInjector is
// valid and never injects.
type StorageInjector struct {
	cfg   StorageConfig
	write *sim.RNG
	torn  *sim.RNG
	sync  *sim.RNG
	rot   *sim.RNG
	slow  *sim.RNG
}

// NewStorage builds a storage injector whose every stream derives from
// the seed. It returns nil when cfg injects nothing, so callers can
// hang it off a struct field and query unconditionally.
func NewStorage(cfg StorageConfig, seed uint64) *StorageInjector {
	if !cfg.Enabled() {
		return nil
	}
	return &StorageInjector{
		cfg:   cfg,
		write: sim.NewRNG(seed, streamStoreWrite),
		torn:  sim.NewRNG(seed, streamStoreTorn),
		sync:  sim.NewRNG(seed, streamStoreSync),
		rot:   sim.NewRNG(seed, streamStoreRot),
		slow:  sim.NewRNG(seed, streamStoreSlow),
	}
}

// ErrInjectedWrite is the synthetic out-of-space failure WriteError
// reports; it wraps syscall.ENOSPC so callers matching on errno treat
// injected and organic exhaustion identically.
var ErrInjectedWrite = fmt.Errorf("faults: injected store write failure: %w", syscall.ENOSPC)

// ErrInjectedSync is the synthetic fsync failure SyncError reports;
// it wraps syscall.EIO like a real device would surface one.
var ErrInjectedSync = fmt.Errorf("faults: injected fsync failure: %w", syscall.EIO)

// WriteError draws whether one entry write fails with ENOSPC.
func (i *StorageInjector) WriteError() bool {
	if i == nil || i.cfg.WriteErrorRate <= 0 {
		return false
	}
	return i.write.Bernoulli(i.cfg.WriteErrorRate)
}

// TornWrite draws whether one entry write is torn, and if so, the
// fraction of its bytes (in (0,1)) that actually reach the disk.
func (i *StorageInjector) TornWrite() (bool, float64) {
	if i == nil || i.cfg.TornWriteRate <= 0 {
		return false, 0
	}
	if !i.torn.Bernoulli(i.cfg.TornWriteRate) {
		return false, 0
	}
	// Keep at least one byte and lose at least one, so a torn write is
	// always distinguishable both from an empty file and a whole one.
	return true, 0.05 + 0.9*i.torn.Float64()
}

// SyncError draws whether one fsync fails.
func (i *StorageInjector) SyncError() bool {
	if i == nil || i.cfg.SyncErrorRate <= 0 {
		return false
	}
	return i.sync.Bernoulli(i.cfg.SyncErrorRate)
}

// BitRot draws whether one read of n stored bytes observes rot, and if
// so, which byte index flipped. n <= 0 never rots.
func (i *StorageInjector) BitRot(n int) (int, bool) {
	if i == nil || i.cfg.BitRotRate <= 0 || n <= 0 {
		return 0, false
	}
	if !i.rot.Bernoulli(i.cfg.BitRotRate) {
		return 0, false
	}
	return i.rot.IntN(n), true
}

// SlowIO draws the stall to apply before one storage operation
// (0 when the class is off or the device responds promptly).
func (i *StorageInjector) SlowIO() time.Duration {
	if i == nil || i.cfg.SlowIORate <= 0 {
		return 0
	}
	if !i.slow.Bernoulli(i.cfg.SlowIORate) {
		return 0
	}
	ms := i.cfg.SlowIODelayMS
	if ms <= 0 {
		ms = DefaultSlowIODelayMS
	}
	return time.Duration(ms) * time.Millisecond
}
