// Package faults is the simulator's deterministic fault-injection
// subsystem. It models the failure regimes a tail-life SSD actually
// lives in — transient sense failures, grown-bad (stuck) blocks, die
// dropout, channel transfer corruption, read-retry-predictor
// misprediction and LDPC decode timeouts — as seeded stochastic
// processes the device model consults on its hot paths.
//
// Determinism contract: every decision an Injector makes is a pure
// function of (run seed, fault config, query order). Static topology
// faults (stuck blocks, dead dies) are decided by a splitmix64 hash of
// (seed, id), so they are independent of query order and identical
// across any worker count; dynamic per-event faults draw from
// dedicated sim.RNG streams derived from the run seed, and the
// single-threaded simulation engine fixes their draw order. A
// zero-rate class never draws at all, so enabling the subsystem with
// all rates at zero is byte-identical to not having it — the property
// the figure regression tests pin.
package faults

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultMaxSenseRetries bounds re-senses per transiently failing
// array read when Config.MaxSenseRetries is zero.
const DefaultMaxSenseRetries = 3

// Config sets the per-class fault rates. The zero value disables
// injection entirely.
type Config struct {
	// TransientSenseRate is the per-sense probability that an array
	// read glitches and must be re-issued (each re-sense pays the full
	// sense latency again, bounded by MaxSenseRetries).
	TransientSenseRate float64 `json:"transient_sense_rate,omitempty"`
	// MaxSenseRetries bounds consecutive re-senses of one operation
	// (0 means DefaultMaxSenseRetries).
	MaxSenseRetries int `json:"max_sense_retries,omitempty"`
	// StuckBlockRate is the fraction of physical blocks grown bad at
	// run start: every page in a stuck block reads uncorrectable at
	// any VREF, so its reads exhaust the retry ladder and surface as
	// NVMe media errors while the FTL retires the block.
	StuckBlockRate float64 `json:"stuck_block_rate,omitempty"`
	// DieDropoutRate is the fraction of dies dead at run start. Reads
	// of data homed on a dead die fail after a probe sense; writes
	// fail over to the next live die.
	DieDropoutRate float64 `json:"die_dropout_rate,omitempty"`
	// ChannelCorruptRate is the per-transfer probability that a read
	// transfer is corrupted in flight and must be re-issued from the
	// die's page buffer.
	ChannelCorruptRate float64 `json:"channel_corrupt_rate,omitempty"`
	// MispredictRate is the per-prediction probability that the RP
	// engine's output is forcibly inverted, independent of its
	// calibrated accuracy model.
	MispredictRate float64 `json:"mispredict_rate,omitempty"`
	// DecodeTimeoutRate is the per-page probability that an LDPC
	// decode times out: the page burns a full failing decode this
	// round and enters the scheme's retry ladder.
	DecodeTimeoutRate float64 `json:"decode_timeout_rate,omitempty"`
}

// Enabled reports whether any fault class can fire.
func (c Config) Enabled() bool {
	return c.TransientSenseRate > 0 || c.StuckBlockRate > 0 || c.DieDropoutRate > 0 ||
		c.ChannelCorruptRate > 0 || c.MispredictRate > 0 || c.DecodeTimeoutRate > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transient sense", c.TransientSenseRate},
		{"stuck block", c.StuckBlockRate},
		{"die dropout", c.DieDropoutRate},
		{"channel corrupt", c.ChannelCorruptRate},
		{"mispredict", c.MispredictRate},
		{"decode timeout", c.DecodeTimeoutRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if c.MaxSenseRetries < 0 {
		return fmt.Errorf("faults: max sense retries %d", c.MaxSenseRetries)
	}
	return nil
}

// Stream labels for the dynamic fault classes. They live above the
// simulator's own streams (101, 102) so adding a class never perturbs
// another component's draws.
const (
	streamSense     = 201
	streamCorrupt   = 202
	streamPredict   = 203
	streamTimeout   = 204
	classStuckBlock = 0x5b
	classDeadDie    = 0xdd
)

// Injector answers the device model's fault queries. A nil Injector
// is valid and never injects — the device wires one up only when the
// config enables at least one class.
type Injector struct {
	cfg  Config
	seed uint64

	sense   *sim.RNG
	corrupt *sim.RNG
	predict *sim.RNG
	timeout *sim.RNG
}

// New builds an injector whose every stream derives from the run
// seed. It returns nil when cfg injects nothing, so callers can hang
// it off a struct field and query unconditionally.
func New(cfg Config, seed uint64) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{
		cfg:     cfg,
		seed:    seed,
		sense:   sim.NewRNG(seed, streamSense),
		corrupt: sim.NewRNG(seed, streamCorrupt),
		predict: sim.NewRNG(seed, streamPredict),
		timeout: sim.NewRNG(seed, streamTimeout),
	}
}

// mix is the splitmix64 finalizer: a fixed bijective scramble used to
// turn (seed, id) pairs into uniform decision bits without any RNG
// state, so static-topology decisions are query-order independent.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// decide hashes (seed, class, id) against a rate threshold.
func (i *Injector) decide(class, id uint64, rate float64) bool {
	if i == nil || rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	h := mix(i.seed ^ mix(class<<56|id+1))
	return float64(h>>11)/float64(uint64(1)<<53) < rate
}

// SenseRetries draws the number of extra senses a transiently failing
// array read needs (0 when the class is off or the sense succeeds
// first try). Bounded by MaxSenseRetries: the hardware gives up and
// hands whatever is in the page buffer to the decode path.
func (i *Injector) SenseRetries() int {
	if i == nil || i.cfg.TransientSenseRate <= 0 {
		return 0
	}
	max := i.cfg.MaxSenseRetries
	if max <= 0 {
		max = DefaultMaxSenseRetries
	}
	n := 0
	for n < max && i.sense.Bernoulli(i.cfg.TransientSenseRate) {
		n++
	}
	return n
}

// BlockStuck reports whether the physical block with the given dense
// id is grown bad for this run. Pure hash: stable under query order
// and worker count.
func (i *Injector) BlockStuck(blockID int) bool {
	if i == nil {
		return false
	}
	return i.decide(classStuckBlock, uint64(blockID), i.cfg.StuckBlockRate)
}

// DieDown reports whether the die with the given dense id dropped out
// for this run. Pure hash, like BlockStuck.
func (i *Injector) DieDown(dieID int) bool {
	if i == nil {
		return false
	}
	return i.decide(classDeadDie, uint64(dieID), i.cfg.DieDropoutRate)
}

// TransferCorrupted draws whether one completed read transfer was
// corrupted on the channel.
func (i *Injector) TransferCorrupted() bool {
	if i == nil || i.cfg.ChannelCorruptRate <= 0 {
		return false
	}
	return i.corrupt.Bernoulli(i.cfg.ChannelCorruptRate)
}

// ForceMispredict draws whether one RP prediction is forcibly
// inverted.
func (i *Injector) ForceMispredict() bool {
	if i == nil || i.cfg.MispredictRate <= 0 {
		return false
	}
	return i.predict.Bernoulli(i.cfg.MispredictRate)
}

// DecodeTimeout draws whether one page's LDPC decode times out this
// round.
func (i *Injector) DecodeTimeout() bool {
	if i == nil || i.cfg.DecodeTimeoutRate <= 0 {
		return false
	}
	return i.timeout.Bernoulli(i.cfg.DecodeTimeoutRate)
}
