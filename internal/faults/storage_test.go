package faults

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

// TestStorageConfigValidate pins the rate bounds.
func TestStorageConfigValidate(t *testing.T) {
	good := []StorageConfig{
		{},
		{WriteErrorRate: 1, TornWriteRate: 0.5, SyncErrorRate: 0.1, BitRotRate: 0.01, SlowIORate: 1, SlowIODelayMS: 50},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", c, err)
		}
	}
	bad := []StorageConfig{
		{WriteErrorRate: -0.1},
		{TornWriteRate: 1.1},
		{SyncErrorRate: 2},
		{BitRotRate: -1},
		{SlowIORate: 1.5},
		{SlowIODelayMS: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

// TestStorageInjectorDisabled pins the nil-injector contract: a zero
// config constructs nil, and every method on a nil injector is a safe
// no-decision.
func TestStorageInjectorDisabled(t *testing.T) {
	if inj := NewStorage(StorageConfig{}, 1); inj != nil {
		t.Fatal("zero config built a non-nil injector")
	}
	var inj *StorageInjector
	if inj.WriteError() {
		t.Error("nil injector injected a write error")
	}
	if torn, _ := inj.TornWrite(); torn {
		t.Error("nil injector tore a write")
	}
	if inj.SyncError() {
		t.Error("nil injector injected a sync error")
	}
	if _, rot := inj.BitRot(100); rot {
		t.Error("nil injector rotted a byte")
	}
	if inj.SlowIO() != 0 {
		t.Error("nil injector stalled")
	}
}

// TestStorageInjectorDeterministic pins that fault decisions are a
// pure function of (seed, config, query order): two injectors with the
// same seed agree draw-for-draw, and a different seed diverges
// somewhere.
func TestStorageInjectorDeterministic(t *testing.T) {
	cfg := StorageConfig{
		WriteErrorRate: 0.3, TornWriteRate: 0.3, SyncErrorRate: 0.3,
		BitRotRate: 0.3, SlowIORate: 0.3,
	}
	type draw struct {
		write, torn, sync, rot, slow bool
		frac                         float64
		idx                          int
	}
	sample := func(seed uint64) []draw {
		inj := NewStorage(cfg, seed)
		out := make([]draw, 64)
		for i := range out {
			d := &out[i]
			d.write = inj.WriteError()
			d.torn, d.frac = inj.TornWrite()
			d.sync = inj.SyncError()
			d.idx, d.rot = inj.BitRot(1000)
			d.slow = inj.SlowIO() > 0
		}
		return out
	}
	a, b, c := sample(7), sample(7), sample(8)
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical draw sequences")
	}
}

// TestStorageInjectorCertainRates pins the rate-1.0 behavior every
// fault-injection test leans on, and the shape of each decision.
func TestStorageInjectorCertainRates(t *testing.T) {
	inj := NewStorage(StorageConfig{
		WriteErrorRate: 1, TornWriteRate: 1, SyncErrorRate: 1,
		BitRotRate: 1, SlowIORate: 1, SlowIODelayMS: 7,
	}, 1)
	for i := 0; i < 32; i++ {
		if !inj.WriteError() || !inj.SyncError() {
			t.Fatal("rate-1.0 class failed to fire")
		}
		torn, frac := inj.TornWrite()
		if !torn || frac <= 0 || frac >= 1 {
			t.Fatalf("torn write (%v, %v); want fired with fraction in (0,1)", torn, frac)
		}
		idx, rot := inj.BitRot(10)
		if !rot || idx < 0 || idx >= 10 {
			t.Fatalf("bit rot (%d, %v); want fired with index in [0,10)", idx, rot)
		}
		if d := inj.SlowIO(); d != 7*time.Millisecond {
			t.Fatalf("slow io stall %v; want 7ms", d)
		}
	}
	if _, rot := inj.BitRot(0); rot {
		t.Fatal("bit rot fired on an empty read")
	}
	if d := NewStorage(StorageConfig{SlowIORate: 1}, 1).SlowIO(); d != DefaultSlowIODelayMS*time.Millisecond {
		t.Fatalf("default stall %v; want %dms", d, DefaultSlowIODelayMS)
	}
}

// TestStorageInjectorErrnos pins that injected failures wrap the
// errnos organic ones carry, so callers matching on errno treat both
// identically.
func TestStorageInjectorErrnos(t *testing.T) {
	if !errors.Is(ErrInjectedWrite, syscall.ENOSPC) {
		t.Error("injected write error does not wrap ENOSPC")
	}
	if !errors.Is(ErrInjectedSync, syscall.EIO) {
		t.Error("injected sync error does not wrap EIO")
	}
}
