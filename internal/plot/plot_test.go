package plot

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out := Chart("demo", []Series{
		{Name: "up", Points: []XY{{0, 0}, {1, 1}, {2, 2}}},
		{Name: "down", Points: []XY{{0, 2}, {1, 1}, {2, 0}}},
	}, 20, 6)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("glyphs missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 6 grid rows + axis + x labels + 2 legend entries.
	if len(lines) != 1+6+1+1+2 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("none", nil, 10, 4)
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	// Degenerate extents must not divide by zero.
	out := Chart("pt", []Series{{Name: "p", Points: []XY{{5, 5}}}}, 10, 4)
	if !strings.Contains(out, "*") {
		t.Fatal("point not plotted")
	}
}

func TestChartMonotoneCDFPlacement(t *testing.T) {
	// A rising CDF must place its max-Y point on the top row and its
	// min-Y point on the bottom row.
	pts := []XY{{0, 0}, {50, 0.5}, {100, 1}}
	out := Chart("", []Series{{Name: "cdf", Points: pts}}, 30, 8)
	lines := strings.Split(out, "\n")
	top, bottom := lines[0], lines[7]
	if !strings.Contains(top, "*") {
		t.Fatalf("top row empty: %q", top)
	}
	if !strings.Contains(bottom, "*") {
		t.Fatalf("bottom row empty: %q", bottom)
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	out := Chart("", []Series{{Name: "s", Points: []XY{{0, 0}, {1, 1}}}}, 1, 1)
	if out == "" {
		t.Fatal("no output")
	}
}

func TestHBar(t *testing.T) {
	out := HBar("bw", []Bar{
		{Label: "SENC", Value: 1.0},
		{Label: "RiFSSD", Value: 2.0},
	}, 20)
	if !strings.Contains(out, "bw") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	senc := strings.Count(lines[1], "=")
	rifd := strings.Count(lines[2], "=")
	if rifd != 20 || senc != 10 {
		t.Fatalf("bar lengths %d/%d, want 10/20", senc, rifd)
	}
	// Labels aligned.
	if !strings.HasPrefix(lines[1], "SENC   ") {
		t.Fatalf("label not padded: %q", lines[1])
	}
}

func TestHBarZeroValues(t *testing.T) {
	out := HBar("", []Bar{{Label: "a", Value: 0}, {Label: "b", Value: 0}}, 10)
	if strings.Contains(out, "=") {
		t.Fatal("zero bars drew segments")
	}
}
