// Package plot renders small ASCII charts for the experiment CLIs:
// line/scatter charts for CDFs and sweeps (Figs. 3, 19) and
// horizontal bar charts for grouped comparisons (Fig. 17). Pure text,
// no dependencies, deterministic output.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// XY is one point of a series.
type XY struct {
	X, Y float64
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []XY
}

// glyphs mark successive series in a chart.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the series as a width x height character plot with a
// shared linear axis frame and a legend. Width and height describe
// the plotting area (axes add a margin).
func Chart(title string, series []Series, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	total := 0
	for _, s := range series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
			total++
		}
	}
	if total == 0 {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			c := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			r := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - r
			if row >= 0 && row < height && c >= 0 && c < width {
				grid[row][c] = g
			}
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintln(&b, title)
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s %s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s %-*.4g%*.4g\n", strings.Repeat(" ", 9), width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// Bar is one horizontal bar.
type Bar struct {
	Label string
	Value float64
}

// HBar renders a horizontal bar chart scaled to the largest value.
// width is the maximum bar length in characters.
func HBar(title string, bars []Bar, width int) string {
	if width < 5 {
		width = 5
	}
	maxV := 0.0
	maxLabel := 0
	for _, bar := range bars {
		if bar.Value > maxV {
			maxV = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintln(&b, title)
	}
	for _, bar := range bars {
		n := 0
		if maxV > 0 && bar.Value > 0 {
			n = int(math.Round(bar.Value / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %.3g\n", maxLabel, bar.Label, strings.Repeat("=", n), bar.Value)
	}
	return b.String()
}
