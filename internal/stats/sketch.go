package stats

import (
	"fmt"
	"math"
)

// SketchAlpha is the default relative-accuracy target of NewSketch:
// quantile estimates land within ±1% of the exact nearest-rank value.
const SketchAlpha = 0.01

// SketchMinValue is the smallest positive observation the sketch
// resolves individually; anything in (0, SketchMinValue) folds into
// the underflow bucket alongside exact zeros. Latencies in this
// repository are microseconds (≥ ~0.1), far above the cutoff.
const SketchMinValue = 1e-9

// Sketch is a mergeable, fixed-memory streaming quantile sketch over
// non-negative observations (a DDSketch-style log-bucket design):
// observations land in geometrically spaced buckets whose width is set
// by the relative-accuracy parameter α, so memory is
// O(log(max/min)/α) — independent of the observation count. It exists
// so million-request open-loop replays never retain a per-request
// latency slice the way the exact Sample does.
//
// Error bound, stated against the repository's reference quantile
// convention (Sample.Quantile, nearest-rank):
//
//   - empty sketch: 0; q <= 0: the exact minimum; q >= 1: the exact
//     maximum — all identical to Sample.
//   - a single observation, and any point-mass distribution, are
//     reproduced exactly at every q (estimates are clamped to the
//     exact observed [min, max]).
//   - otherwise, for q in (0, 1), let x be Sample.Quantile(q) of the
//     same data with x >= SketchMinValue; then
//     |Quantile(q) − x| <= α·x.
//
// Observations below SketchMinValue (including zero) share one
// underflow bucket and are estimated at the exact minimum, so the
// relative bound above applies to quantiles that land on observations
// at or above the cutoff. Negative observations panic: latencies are
// never negative, so one indicates a harness bug (the GeoMean
// convention).
type Sketch struct {
	alpha   float64
	gamma   float64 // bucket growth (1+α)/(1−α)
	lnGamma float64

	// counts[i] is the population of log bucket (minKey+i); bucket k
	// covers (γ^(k−1), γ^k]. The slice grows (amortized) as the
	// observed range widens and then stays put: steady-state Add is
	// allocation-free.
	counts []int64
	minKey int

	// zero counts observations in [0, SketchMinValue).
	zero int64

	n        int64
	sum      float64
	min, max float64
}

// NewSketch returns an empty sketch with relative accuracy alpha
// (0 selects SketchAlpha). It panics on alpha outside (0, 1): the
// accuracy target is a compile-time-style constant of the harness,
// not runtime input.
func NewSketch(alpha float64) *Sketch {
	if alpha == 0 {
		alpha = SketchAlpha
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: sketch alpha %v outside (0, 1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
	}
}

// Alpha reports the sketch's relative-accuracy parameter.
func (s *Sketch) Alpha() float64 { return s.alpha }

// key maps a positive observation to its log-bucket index.
func (s *Sketch) key(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

// Add folds one observation into the sketch. Steady state (an
// observation whose bucket already exists) allocates nothing.
//
//riflint:hotpath
func (s *Sketch) Add(x float64) {
	if x < 0 || math.IsNaN(x) {
		panic(fmt.Sprintf("stats: sketch observation %v", x))
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	s.sum += x
	if x < SketchMinValue {
		s.zero++
		return
	}
	s.bucket(s.key(x))
}

// bucket increments bucket k, growing the dense range if needed.
func (s *Sketch) bucket(k int) {
	if len(s.counts) == 0 {
		//riflint:allow alloc -- first observation seeds the dense range; never reached again
		s.counts = append(s.counts, 0)
		s.minKey = k
	}
	if k < s.minKey {
		//riflint:allow alloc -- range extension: at most O(log range) growths over a run, then steady state
		grown := make([]int64, len(s.counts)+(s.minKey-k))
		copy(grown[s.minKey-k:], s.counts)
		s.counts = grown
		s.minKey = k
	}
	for k >= s.minKey+len(s.counts) {
		//riflint:allow alloc -- range extension: at most O(log range) growths over a run, then steady state
		s.counts = append(s.counts, 0)
	}
	s.counts[k-s.minKey]++
}

// N reports the number of observations.
func (s *Sketch) N() int64 { return s.n }

// Mean reports the arithmetic mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min reports the smallest observation (0 when empty).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Quantile estimates the q-th quantile under the documented error
// bound (see the type comment for the exact convention).
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	if rank <= s.zero {
		// The target observation is below the resolvable cutoff; the
		// exact minimum is the best (and for all-zero data, exact)
		// answer.
		return s.clamp(0)
	}
	seen := s.zero
	for i, cnt := range s.counts {
		if cnt == 0 {
			continue
		}
		seen += cnt
		if seen >= rank {
			k := s.minKey + i
			// The midpoint (in the 2γ/(γ+1) sense) of bucket
			// (γ^(k−1), γ^k] is within α of every value in it.
			return s.clamp(2 * math.Exp(float64(k)*s.lnGamma) / (s.gamma + 1))
		}
	}
	return s.max
}

// Percentile reports the p-th percentile (0 <= p <= 100), mirroring
// Sample.Percentile.
func (s *Sketch) Percentile(p float64) float64 {
	return s.Quantile(p / 100)
}

// clamp bounds an estimate to the exact observed extremes, which makes
// single-observation and point-mass data exact.
func (s *Sketch) clamp(x float64) float64 {
	if x < s.min {
		return s.min
	}
	if x > s.max {
		return s.max
	}
	return x
}

// Merge folds other into s. Merging is exact (bucket counts add), so
// any merge tree over the same observations yields an identical
// sketch: merge is associative and commutative. Both sketches must
// share the same alpha; merging across accuracies would silently
// loosen the documented bound, so it panics instead. The other sketch
// is not modified; a nil other is a no-op.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil || other.n == 0 {
		return
	}
	if other.alpha != s.alpha {
		panic(fmt.Sprintf("stats: merging sketches with different alpha (%v vs %v)", s.alpha, other.alpha))
	}
	if s.n == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	s.n += other.n
	s.sum += other.sum
	s.zero += other.zero
	for i, cnt := range other.counts {
		if cnt == 0 {
			continue
		}
		s.bucket(other.minKey + i)
		s.counts[other.minKey+i-s.minKey] += cnt - 1 // bucket already added 1
	}
}
