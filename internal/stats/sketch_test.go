package stats

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// addAll feeds the same data to a sketch and an exact sample.
func addAll(t *testing.T, xs []float64) (*Sketch, *Sample) {
	t.Helper()
	sk := NewSketch(0)
	sa := &Sample{}
	for _, x := range xs {
		sk.Add(x)
		sa.Add(x)
	}
	return sk, sa
}

// withinBound asserts the sketch estimate is within the documented
// α-relative bound of the exact nearest-rank answer (tiny float slack
// for the log/exp rounding of the bucket index).
func withinBound(t *testing.T, sk *Sketch, sa *Sample, q float64) {
	t.Helper()
	got := sk.Quantile(q)
	want := sa.Quantile(q)
	tol := sk.Alpha()*want*(1+1e-9) + 1e-12
	if math.Abs(got-want) > tol {
		t.Fatalf("q=%v: sketch %v vs exact %v (tol %v, n=%d)", q, got, want, tol, sa.N())
	}
}

var sketchQuantiles = []float64{0, 1e-6, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 1}

// TestSketchMatchesSampleQuantile is the cross-implementation property
// test: on a spread of hostile and realistic distributions, every
// sketch quantile must sit within the documented error bound of the
// reference stats.Sample.Quantile convention.
func TestSketchMatchesSampleQuantile(t *testing.T) {
	rng := sim.NewRNG(7, 0x5e7c)
	cases := map[string][]float64{
		"empty":          {},
		"single":         {42.5},
		"single-tiny":    {1e-12},
		"point-mass":     {3.25, 3.25, 3.25, 3.25, 3.25, 3.25, 3.25},
		"point-mass-0":   {0, 0, 0, 0, 0},
		"two-values":     {1, 1, 1, 1000000},
		"powers":         {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024},
		"with-zeros":     {0, 0, 0, 10, 20, 30, 40, 50},
		"latency-shaped": nil, // filled below: lognormal with heavy tail
		"uniform":        nil,
		"exponential":    nil,
	}
	lat := make([]float64, 20000)
	for i := range lat {
		lat[i] = 40 + rng.LogNormal(3, 1.2)
	}
	cases["latency-shaped"] = lat
	uni := make([]float64, 5000)
	for i := range uni {
		uni[i] = 1 + 9999*rng.Float64()
	}
	cases["uniform"] = uni
	exp := make([]float64, 5000)
	for i := range exp {
		exp[i] = rng.Exponential(250)
	}
	cases["exponential"] = exp

	for name, xs := range cases {
		t.Run(name, func(t *testing.T) {
			sk, sa := addAll(t, xs)
			for _, q := range sketchQuantiles {
				withinBound(t, sk, sa, q)
			}
			// Edge-case convention equalities, beyond the α bound.
			if len(xs) == 0 {
				if sk.Quantile(0.5) != 0 {
					t.Fatalf("empty sketch quantile %v", sk.Quantile(0.5))
				}
				return
			}
			if sk.Quantile(0) != sa.Quantile(0) {
				t.Fatalf("q=0 not exact: %v vs %v", sk.Quantile(0), sa.Quantile(0))
			}
			if sk.Quantile(1) != sa.Quantile(1) {
				t.Fatalf("q=1 not exact: %v vs %v", sk.Quantile(1), sa.Quantile(1))
			}
		})
	}
}

// TestSketchPointMassExact pins the exactness (not just α-closeness)
// promises: single observations and point masses reproduce exactly.
func TestSketchPointMassExact(t *testing.T) {
	for _, v := range []float64{0, 1e-12, 0.1, 1, 3.7, 1e6} {
		sk := NewSketch(0)
		for i := 0; i < 9; i++ {
			sk.Add(v)
		}
		for _, q := range sketchQuantiles {
			if got := sk.Quantile(q); got != v {
				t.Fatalf("point mass at %v: q=%v gave %v", v, q, got)
			}
		}
	}
}

func TestSketchSummaryStats(t *testing.T) {
	sk, sa := addAll(t, []float64{5, 1, 9, 3, 7})
	if sk.N() != 5 || sk.Min() != 1 || sk.Max() != 9 {
		t.Fatalf("n=%d min=%v max=%v", sk.N(), sk.Min(), sk.Max())
	}
	if math.Abs(sk.Mean()-sa.Mean()) > 1e-12 {
		t.Fatalf("mean %v vs %v", sk.Mean(), sa.Mean())
	}
	if sk.Percentile(50) != sk.Quantile(0.5) {
		t.Fatal("Percentile does not delegate to Quantile")
	}
}

func TestSketchRejectsBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("negative observation", func() { NewSketch(0).Add(-1) })
	mustPanic("NaN observation", func() { NewSketch(0).Add(math.NaN()) })
	mustPanic("alpha 1", func() { NewSketch(1) })
	mustPanic("negative alpha", func() { NewSketch(-0.5) })
	mustPanic("mixed-alpha merge", func() {
		a, b := NewSketch(0.01), NewSketch(0.02)
		b.Add(1)
		a.Merge(b)
	})
}

// TestSketchMergeAssociative pins that merging is exact: (a⊕b)⊕c and
// a⊕(b⊕c) agree with each other and with the single sketch that saw
// every observation, at every probed quantile and summary stat.
func TestSketchMergeAssociative(t *testing.T) {
	rng := sim.NewRNG(11, 0xab1e)
	parts := make([][]float64, 3)
	var all []float64
	for p := range parts {
		n := 500 + int(rng.Int64N(1500))
		for i := 0; i < n; i++ {
			// Disjoint magnitude ranges per part force the merged
			// bucket span to widen in both directions.
			x := math.Pow(10, float64(p*3)) * (0.5 + rng.Exponential(20))
			parts[p] = append(parts[p], x)
			all = append(all, x)
		}
	}
	build := func(xs []float64) *Sketch {
		sk := NewSketch(0)
		for _, x := range xs {
			sk.Add(x)
		}
		return sk
	}
	left := build(parts[0])
	left.Merge(build(parts[1]))
	left.Merge(build(parts[2]))

	bc := build(parts[1])
	bc.Merge(build(parts[2]))
	right := build(parts[0])
	right.Merge(bc)

	whole := build(all)
	for _, q := range sketchQuantiles {
		l, r, w := left.Quantile(q), right.Quantile(q), whole.Quantile(q)
		if l != r {
			t.Fatalf("q=%v: (a+b)+c = %v but a+(b+c) = %v", q, l, r)
		}
		if l != w {
			t.Fatalf("q=%v: merged %v but whole-stream %v", q, l, w)
		}
	}
	if left.N() != whole.N() || left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged summary stats diverged from whole-stream sketch")
	}
	// The exact sample must still bracket the merged sketch.
	var sa Sample
	for _, x := range all {
		sa.Add(x)
	}
	for _, q := range sketchQuantiles {
		withinBound(t, left, &sa, q)
	}
}

func TestSketchMergeEmptyAndNil(t *testing.T) {
	sk := NewSketch(0)
	sk.Add(5)
	sk.Merge(nil)
	sk.Merge(NewSketch(0))
	if sk.N() != 1 || sk.Quantile(0.5) != 5 {
		t.Fatalf("no-op merges perturbed the sketch: n=%d", sk.N())
	}
	empty := NewSketch(0)
	full := NewSketch(0)
	full.Add(2)
	full.Add(8)
	empty.Merge(full)
	if empty.N() != 2 || empty.Min() != 2 || empty.Max() != 8 {
		t.Fatalf("merge into empty lost state: n=%d min=%v max=%v", empty.N(), empty.Min(), empty.Max())
	}
}

// TestSketchSteadyStateAddAllocs is the zero-alloc pin: once the
// observed range has materialized its buckets, Add must not allocate —
// that is the property that keeps a 10M-request replay's heap flat.
func TestSketchSteadyStateAddAllocs(t *testing.T) {
	sk := NewSketch(0)
	rng := sim.NewRNG(3, 0xa110c)
	// Warm up: materialize the bucket range the steady state uses.
	for i := 0; i < 10000; i++ {
		sk.Add(1 + rng.Exponential(5000))
	}
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = 1 + rng.Exponential(5000)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		sk.Add(xs[i%len(xs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Add allocates %v per op", allocs)
	}
}
