// Package stats provides the lightweight statistics the experiment
// harness needs: streaming summaries, exact percentiles, CDF export
// and geometric means.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count/mean/min/max/variance in one pass
// (Welford's algorithm).
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N reports the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean reports the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min reports the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// Var reports the sample variance (0 for fewer than two points).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// String formats the summary for experiment logs.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.Min(), s.Max(), s.StdDev())
}

// Sample keeps every observation for exact percentile queries. For
// the volumes this simulator produces (millions of latencies) exact
// retention is affordable and avoids sketch error in the tails the
// paper cares about (P99.99, Fig. 19).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean reports the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile reports the q-th quantile (0 <= q <= 1) of the sample.
//
// This is the repository's reference quantile convention; the
// streaming estimate in obs.Histogram.Quantile implements the same
// rules so Fig. 19 tail percentiles agree whichever path computed
// them:
//
//   - empty sample: 0
//   - q <= 0: the exact minimum; q >= 1: the exact maximum
//   - otherwise nearest-rank: the value of the ceil(q*n)-th smallest
//     observation (1-based), with no interpolation between
//     observations. A rank landing exactly on an integer selects that
//     observation, not the next one.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	rank := int(math.Ceil(q * float64(len(s.xs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.xs) {
		rank = len(s.xs)
	}
	return s.xs[rank-1]
}

// Percentile reports the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted sample (see Quantile for the exact
// convention). Empty samples yield 0.
func (s *Sample) Percentile(p float64) float64 {
	return s.Quantile(p / 100)
}

// Max reports the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.Percentile(100) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction <= X
}

// CDF returns an empirical CDF downsampled to at most points entries
// (always including the extremes), suitable for plotting Fig. 19.
func (s *Sample) CDF(points int) []CDFPoint {
	if len(s.xs) == 0 || points <= 0 {
		return nil
	}
	s.sort()
	if points > len(s.xs) {
		points = len(s.xs)
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := i * (len(s.xs) - 1) / max(points-1, 1)
		out = append(out, CDFPoint{
			X: s.xs[idx],
			F: float64(idx+1) / float64(len(s.xs)),
		})
	}
	return out
}

// GeoMean reports the geometric mean of xs; non-positive entries are
// rejected with a panic because they indicate a harness bug.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	acc := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
