package stats

import "testing"

// TestQuantileConvention pins the reference edge-case convention both
// percentile implementations share (see Sample.Quantile's doc):
// empty -> 0, q <= 0 -> exact min, q >= 1 -> exact max, otherwise the
// ceil(q*n)-th smallest observation.
func TestQuantileConvention(t *testing.T) {
	var empty Sample
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	var one Sample
	one.Add(7.25)
	for _, q := range []float64{-1, 0, 1e-9, 0.5, 1 - 1e-9, 1, 2} {
		if got := one.Quantile(q); got != 7.25 {
			t.Errorf("single.Quantile(%v) = %v, want 7.25", q, got)
		}
	}

	// Unsorted input; n=4 so rank boundaries sit at q = .25/.5/.75/1.
	var s Sample
	for _, x := range []float64{30, 10, 40, 20} {
		s.Add(x)
	}
	for _, tc := range []struct{ q, want float64 }{
		{-0.5, 10}, {0, 10}, // q <= 0 is the exact minimum
		{0.1, 10}, {0.25, 10}, // rank 1 up to the first boundary
		{0.2500001, 20}, {0.5, 20}, // past a boundary the next rank takes over
		{0.51, 30}, {0.75, 30},
		{0.76, 40}, {1, 40},
		{1.5, 40}, // q >= 1 is the exact maximum
	} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestPercentileDelegatesToQuantile: Percentile(p) must be exactly
// Quantile(p/100) — one implementation, not two conventions.
func TestPercentileDelegatesToQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 101; i++ {
		s.Add(float64((i * 37) % 101))
	}
	for _, p := range []float64{0, 1, 25, 50, 75, 99, 99.99, 100} {
		if got, want := s.Percentile(p), s.Quantile(p/100); got != want {
			t.Errorf("Percentile(%v) = %v, Quantile(%v) = %v; must be identical", p, got, p/100, want)
		}
	}
}
