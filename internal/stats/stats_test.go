package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v", s.Var())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(3)
	if s.Var() != 0 {
		t.Fatal("variance of single point must be 0")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Fatal("min/max of single point wrong")
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		var sum float64
		clean := raw[:0]
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				continue
			}
			clean = append(clean, x)
			s.Add(x)
			sum += x
		}
		if len(clean) == 0 {
			return s.N() == 0
		}
		mean := sum / float64(len(clean))
		return math.Abs(s.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {99.99, 100}, {100, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5, 3, 7} {
		s.Add(x)
	}
	if got := s.Percentile(50); got != 5 {
		t.Fatalf("median = %v", got)
	}
	// Adding after a query must re-sort.
	s.Add(0)
	if got := s.Percentile(0); got != 0 {
		t.Fatalf("min after append = %v", got)
	}
}

func TestSampleMeanAndMax(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4} {
		s.Add(x)
	}
	if s.Mean() != 2.5 || s.Max() != 4 || s.N() != 4 {
		t.Fatalf("mean=%v max=%v n=%d", s.Mean(), s.Max(), s.N())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.CDF(10) != nil {
		t.Fatal("empty sample not zero-valued")
	}
}

func TestCDFShape(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(50)
	if len(cdf) != 50 {
		t.Fatalf("CDF has %d points", len(cdf))
	}
	if cdf[0].X != 0 {
		t.Fatalf("CDF does not start at min: %v", cdf[0])
	}
	if cdf[len(cdf)-1].X != 999 || cdf[len(cdf)-1].F != 1 {
		t.Fatalf("CDF does not end at (max, 1): %+v", cdf[len(cdf)-1])
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].X < cdf[i-1].X || cdf[i].F < cdf[i-1].F {
			t.Fatal("CDF not monotonic")
		}
	}
}

func TestCDFSmallSample(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	cdf := s.CDF(10)
	if len(cdf) != 2 {
		t.Fatalf("CDF of 2 points has %d entries", len(cdf))
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 10", g)
	}
	if g := GeoMean([]float64{7}); g != 7 {
		t.Fatalf("GeoMean single = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean empty = %v", g)
	}
}

func TestGeoMeanRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean accepted zero")
		}
	}()
	GeoMean([]float64{1, 0})
}
