package ssd

import (
	"testing"

	"repro/internal/nand"
	"repro/internal/trace"
)

// smallConfig shrinks the array so end-to-end runs stay fast while
// keeping the Table I channel/die topology.
func smallConfig(scheme Scheme, pe int) Config {
	cfg := DefaultConfig(scheme, pe)
	cfg.Geometry.BlocksPerPlane = 256
	cfg.Geometry.PagesPerBlock = 128
	cfg.QueueDepth = 64
	return cfg
}

// smallWorkload shrinks the footprint to fit smallConfig's pre-fill
// region.
func smallWorkload(t *testing.T, name string, seed uint64) *trace.Generator {
	t.Helper()
	spec, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.FootprintPages = 1 << 17
	g, err := trace.NewGenerator(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func run(t *testing.T, cfg Config, w Workload, n int) *Metrics {
	t.Helper()
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(RiF, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Geometry.Channels = 0 },
		func(c *Config) { c.Timing.TR = 0 },
		func(c *Config) { c.Timing.TDMAPage = 0 },
		func(c *Config) { c.PECycles = -1 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.ECCBufferSlots = 0 },
		func(c *Config) { c.SentinelExtraReadProb = 2 },
		func(c *Config) { c.MaxRetryRounds = 0 },
	}
	for i, mut := range muts {
		c := DefaultConfig(RiF, 0)
		mut(&c)
		if c.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(good, nil); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig(RiF, 1000)
	tm := cfg.Timing
	if tm.TR.Microseconds() != 40 || tm.TProg.Microseconds() != 400 {
		t.Fatalf("tR/tPROG: %v/%v", tm.TR, tm.TProg)
	}
	if tm.TErase.Milliseconds() != 3.5 {
		t.Fatalf("tBERS: %v", tm.TErase)
	}
	if tm.TPred.Microseconds() != 2.5 {
		t.Fatalf("tPRED: %v", tm.TPred)
	}
	// Channel: 16 KiB in ~13 us is 1.2 GB/s.
	bw := 16384.0 / tm.TDMAPage.Seconds() / 1e9
	if bw < 1.15 || bw > 1.25 {
		t.Fatalf("channel bandwidth %v GB/s", bw)
	}
	// Host: 16 KiB in 2 us is ~8 GB/s.
	hbw := 16384.0 / tm.THostPage.Seconds() / 1e9
	if hbw < 7.5 || hbw > 8.5 {
		t.Fatalf("host bandwidth %v GB/s", hbw)
	}
}

func TestSchemeNames(t *testing.T) {
	want := map[Scheme]string{
		Zero: "SSDzero", One: "SSDone", Sentinel: "SENC",
		SWR: "SWR", SWRPlus: "SWR+", RPOnly: "RPSSD", RiF: "RiFSSD",
	}
	for sc, name := range want {
		if sc.String() != name {
			t.Errorf("%d: %q", sc, sc.String())
		}
	}
	if len(AllSchemes()) != 7 {
		t.Fatal("AllSchemes wrong length")
	}
}

func TestRunCompletesAllRequests(t *testing.T) {
	m := run(t, smallConfig(RiF, 1000), smallWorkload(t, "Ali124", 1), 500)
	if m.RequestsCompleted != 500 {
		t.Fatalf("completed %d/500", m.RequestsCompleted)
	}
	if m.BytesRead == 0 || m.Makespan <= 0 {
		t.Fatalf("degenerate run: %+v", m)
	}
	if m.ReadLatencies.N() == 0 {
		t.Fatal("no read latencies recorded")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, smallConfig(RiF, 2000), smallWorkload(t, "Sys0", 5), 300)
	b := run(t, smallConfig(RiF, 2000), smallWorkload(t, "Sys0", 5), 300)
	if a.Makespan != b.Makespan || a.BytesRead != b.BytesRead ||
		a.PagesRetried != b.PagesRetried || a.Mispredictions != b.Mispredictions {
		t.Fatalf("runs diverged:\n%v\n%v", a, b)
	}
}

func TestSSDzeroNeverRetries(t *testing.T) {
	m := run(t, smallConfig(Zero, 2000), smallWorkload(t, "Ali124", 1), 300)
	if m.PagesRetried != 0 || m.Channels.Uncor != 0 || m.Channels.ECCWait != 0 {
		t.Fatalf("SSDzero retried: %v", m)
	}
}

func TestRetryRateGrowsWithWear(t *testing.T) {
	w := func() Workload { return smallWorkload(t, "Ali124", 1) }
	r0 := run(t, smallConfig(One, 0), w(), 300).RetryRate()
	r1 := run(t, smallConfig(One, 1000), w(), 300).RetryRate()
	r2 := run(t, smallConfig(One, 2000), w(), 300).RetryRate()
	if !(r0 < r1 && r1 < r2) {
		t.Fatalf("retry rate not increasing: %v %v %v", r0, r1, r2)
	}
	if r2 < 0.3 {
		t.Fatalf("retry rate at 2K = %v, implausibly low for a cold-read-heavy trace", r2)
	}
}

func TestSchemeBandwidthOrderingAt2K(t *testing.T) {
	// The headline Fig. 17 ordering at heavy wear: SENC is slowest,
	// SWR and SSDone close, SWR+ better, RiF near SSDzero.
	bw := map[Scheme]float64{}
	for _, sc := range AllSchemes() {
		bw[sc] = run(t, smallConfig(sc, 2000), smallWorkload(t, "Ali124", 1), 600).Bandwidth()
	}
	if !(bw[Sentinel] < bw[SWR] && bw[SWR] < bw[SWRPlus] && bw[SWRPlus] < bw[RiF]) {
		t.Fatalf("ordering violated: %v", bw)
	}
	if bw[RiF] < bw[Zero]*0.95 {
		t.Fatalf("RiF %v far from SSDzero %v (paper: within 1.8%%)", bw[RiF], bw[Zero])
	}
	// Paper: +72.1% average over SENC at 2K; the most read-intensive
	// trace must show at least that order of improvement.
	if gain := bw[RiF]/bw[Sentinel] - 1; gain < 0.4 {
		t.Fatalf("RiF over SENC = %.0f%%, want large", 100*gain)
	}
}

func TestRPSSDRemovesECCWaitButNotUncor(t *testing.T) {
	// §VI-B: "While RPSSD effectively reduces wasted channel bandwidth
	// from ECCWAIT, it still suffers unnecessary data transfers."
	one := run(t, smallConfig(One, 2000), smallWorkload(t, "Ali121", 1), 600)
	rp := run(t, smallConfig(RPOnly, 2000), smallWorkload(t, "Ali121", 1), 600)
	_, _, oneUncor, oneWait := one.Channels.Fractions()
	_, _, rpUncor, rpWait := rp.Channels.Fractions()
	if rpWait > oneWait/2 {
		t.Fatalf("RPSSD eccwait %v not much below SSDone %v", rpWait, oneWait)
	}
	if rpUncor < oneUncor*0.5 {
		t.Fatalf("RPSSD uncor %v suspiciously low vs SSDone %v", rpUncor, oneUncor)
	}
}

func TestRiFKeepsChannelClean(t *testing.T) {
	m := run(t, smallConfig(RiF, 2000), smallWorkload(t, "Ali121", 1), 600)
	_, _, uncor, wait := m.Channels.Fractions()
	if uncor > 0.03 {
		t.Fatalf("RiF uncor fraction %v (paper: 1.8%% at 2K)", uncor)
	}
	if wait > 0.03 {
		t.Fatalf("RiF eccwait fraction %v", wait)
	}
	if m.AvoidedTransfers == 0 {
		t.Fatal("RiF avoided no transfers at 2K")
	}
	if m.EnergyDeltaNJ() >= 0 {
		t.Fatalf("RiF energy delta %v nJ, want net saving at 2K", m.EnergyDeltaNJ())
	}
}

func TestSentinelExtraReads(t *testing.T) {
	m := run(t, smallConfig(Sentinel, 2000), smallWorkload(t, "Ali124", 1), 400)
	if m.SentinelExtraReads == 0 {
		t.Fatal("Sentinel never paid its extra off-chip read")
	}
	if m.SentinelExtraReads > m.PagesRetried {
		t.Fatalf("extra reads %d exceed retried pages %d", m.SentinelExtraReads, m.PagesRetried)
	}
}

func TestPredictionAccuracyNearCalibration(t *testing.T) {
	m := run(t, smallConfig(RiF, 2000), smallWorkload(t, "Sys1", 3), 600)
	if m.Predictions == 0 {
		t.Fatal("no predictions recorded")
	}
	if acc := m.PredictionAccuracy(); acc < 0.95 {
		t.Fatalf("realized prediction accuracy %v", acc)
	}
}

func TestTailLatencyOrdering(t *testing.T) {
	// Fig. 19: RiF's read tail is far shorter than SENC's at wear.
	senc := run(t, smallConfig(Sentinel, 2000), smallWorkload(t, "Ali124", 1), 800)
	rif := run(t, smallConfig(RiF, 2000), smallWorkload(t, "Ali124", 1), 800)
	sp99 := senc.ReadLatencies.Percentile(99)
	rp99 := rif.ReadLatencies.Percentile(99)
	if rp99 >= sp99 {
		t.Fatalf("RiF p99 %vus not below SENC %vus", rp99, sp99)
	}
}

func TestWriteHeavyWorkload(t *testing.T) {
	m := run(t, smallConfig(RiF, 1000), smallWorkload(t, "Ali2", 1), 400)
	if m.BytesWritten == 0 {
		t.Fatal("write-heavy trace wrote nothing")
	}
	if m.BytesWritten < m.BytesRead {
		t.Fatalf("Ali2 should be write-dominated: R=%d W=%d", m.BytesRead, m.BytesWritten)
	}
}

func TestChannelFractionsConsistent(t *testing.T) {
	for _, sc := range []Scheme{Zero, One, RiF} {
		m := run(t, smallConfig(sc, 1000), smallWorkload(t, "Sys0", 2), 300)
		idle, cor, uncor, wait := m.Channels.Fractions()
		sum := idle + cor + uncor + wait
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%v: fractions sum %v", sc, sum)
		}
	}
}

func TestMetricsCounters(t *testing.T) {
	m := run(t, smallConfig(One, 2000), smallWorkload(t, "Ali124", 1), 300)
	if m.PageReads == 0 {
		t.Fatal("no page reads")
	}
	if m.PagesRetried > m.PageReads {
		t.Fatalf("retried %d > read %d", m.PagesRetried, m.PageReads)
	}
	if m.UnrecoveredPages != 0 {
		t.Fatalf("unrecovered pages: %d (ideal NRR=1 retry must recover)", m.UnrecoveredPages)
	}
	if m.RetryRounds == 0 {
		t.Fatal("no retry rounds at 2K")
	}
}

func TestRunRejectsBadCount(t *testing.T) {
	s, err := New(smallConfig(Zero, 0), smallWorkload(t, "Sys0", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err == nil {
		t.Fatal("Run(0) accepted")
	}
}

func TestSplitRequestGrouping(t *testing.T) {
	s, err := New(smallConfig(Zero, 0), smallWorkload(t, "Sys0", 1))
	if err != nil {
		t.Fatal(err)
	}
	// 10 pages starting at lpn 2: groups [2,3], [4..7], [8..11].
	cmds := s.splitRequest(trace.Request{Op: trace.Read, LPN: 2, Pages: 10})
	if len(cmds) != 3 {
		t.Fatalf("%d commands", len(cmds))
	}
	if len(cmds[0].lpns) != 2 || len(cmds[1].lpns) != 4 || len(cmds[2].lpns) != 4 {
		t.Fatalf("group sizes: %d %d %d", len(cmds[0].lpns), len(cmds[1].lpns), len(cmds[2].lpns))
	}
	// Every command stays on one die.
	for _, cmd := range cmds {
		first := s.ftl.PlaneIndexOf(cmd.lpns[0]) / s.cfg.Geometry.PlanesPerDie
		for _, lpn := range cmd.lpns {
			if s.ftl.PlaneIndexOf(lpn)/s.cfg.Geometry.PlanesPerDie != first {
				t.Fatalf("command spans dies: %v", cmd.lpns)
			}
		}
	}
}

func TestVrefModeForScheme(t *testing.T) {
	if vrefModeForScheme(SWRPlus) != nand.TrackedVref {
		t.Fatal("SWR+ must read at tracked VREF")
	}
	for _, sc := range []Scheme{Zero, One, Sentinel, SWR, RPOnly, RiF} {
		if vrefModeForScheme(sc) != nand.DefaultVref {
			t.Fatalf("%v first-read mode wrong", sc)
		}
	}
}
