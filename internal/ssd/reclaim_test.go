package ssd

import (
	"testing"

	"repro/internal/trace"
)

// hammerWrites overwrites two lpns on one plane forever, the fastest
// deterministic way to force garbage collection through the SSD write
// path.
type hammerWrites struct {
	i      int
	stride int64 // total planes: lpns 0 and stride share plane 0
}

func (h *hammerWrites) Next() trace.Request {
	h.i++
	return trace.Request{Op: trace.Write, LPN: int64(h.i%2) * h.stride, Pages: 1}
}

func (*hammerWrites) InitialAgeDays(int64) float64 { return 0 }

// prefillBlockID finds a block in the cold pre-fill region, where
// reclaim refreshes in place instead of going through the FTL.
func prefillBlockID(t *testing.T, s *SSD) int {
	t.Helper()
	for b := 0; b < s.cfg.Geometry.TotalBlocks(); b++ {
		if s.cfg.Geometry.BlockAddr(b).Block < s.ftl.WriteBase() {
			return b
		}
	}
	t.Fatal("no pre-fill block found")
	return -1
}

// TestReclaimThresholdBoundary pins the trigger semantics: the sense
// that brings the net counter to exactly the threshold fires the
// reclaim, which erases the block and re-arms the counter at zero —
// while the gross sense counter keeps the full history.
func TestReclaimThresholdBoundary(t *testing.T) {
	cfg := smallConfig(RiF, 1000)
	cfg.ReadReclaimThreshold = 10
	s, err := New(cfg, allocStubWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	bid := prefillBlockID(t, s)
	for i := 0; i < 9; i++ {
		s.noteSense(bid)
	}
	if s.m.ReadReclaims != 0 {
		t.Fatalf("reclaim fired %d senses below threshold", s.m.ReadReclaims)
	}
	if s.readCounts[bid] != 9 {
		t.Fatalf("net counter = %d after 9 senses", s.readCounts[bid])
	}
	s.noteSense(bid) // the threshold-crossing sense
	if s.m.ReadReclaims != 1 {
		t.Fatalf("reclaims = %d, want exactly 1 at the boundary", s.m.ReadReclaims)
	}
	if s.readCounts[bid] != 0 {
		t.Fatalf("net counter = %d after reclaim, want 0", s.readCounts[bid])
	}
	if s.eraseCounts[bid] != 1 || s.reclaimErases[bid] != 1 {
		t.Fatalf("erases = %d, reclaim erases = %d, want 1/1",
			s.eraseCounts[bid], s.reclaimErases[bid])
	}
	if !s.refreshed[bid] {
		t.Fatal("pre-fill block not marked refreshed in place")
	}
	if s.grossSenses[bid] != 10 {
		t.Fatalf("gross senses = %d, want 10 (gross survives the erase)", s.grossSenses[bid])
	}
	if s.m.ReclaimPagesMigrated != int64(cfg.Geometry.PagesPerBlock) {
		t.Fatalf("migrated %d pages, want the whole block (%d)",
			s.m.ReclaimPagesMigrated, cfg.Geometry.PagesPerBlock)
	}
}

// TestGCEraseClearsDisturbCounter is the regression for the
// counter-reset rule: any erase — here GC victim erases — zeroes the
// block's net disturb counter, while gross senses are never reset.
// Every block is seeded with a sentinel count so a missed reset is
// visible: an untouched block ends at exactly seed + its own senses;
// an erased block must end strictly below that.
func TestGCEraseClearsDisturbCounter(t *testing.T) {
	cfg := smallConfig(RiF, 1000)
	cfg.ReadReclaimThreshold = 0 // isolate GC: no read-reclaim erases
	// Shrink one plane's write region so overwrites exhaust it fast.
	cfg.Geometry.BlocksPerPlane = 64
	cfg.Geometry.PagesPerBlock = 16
	geo := cfg.Geometry
	w := &hammerWrites{stride: int64(geo.Channels * geo.DiesPerChan * geo.PlanesPerDie)}
	s, err := New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	const seedReads = 50
	seed := make([]int64, cfg.Geometry.TotalBlocks())
	for i := range seed {
		seed[i] = seedReads
	}
	if err := s.SeedBlockState(seed, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1500); err != nil {
		t.Fatal(err)
	}
	st := s.BlockState()
	victims := 0
	for b := range st.Erases {
		if st.Reads[b] > seedReads+st.Senses[b] {
			t.Fatalf("block %d net counter %d exceeds seed+senses %d",
				b, st.Reads[b], seedReads+st.Senses[b])
		}
		if st.Erases[b] > 0 {
			victims++
			if st.Reads[b] >= seedReads+st.Senses[b] {
				t.Fatalf("GC victim block %d kept its disturb counter: reads=%d senses=%d",
					b, st.Reads[b], st.Senses[b])
			}
		}
	}
	if victims == 0 {
		t.Fatal("no GC victims; the regression test needs GC to fire")
	}
}

// TestFTLReclaimBlockMigratesAndFrees exercises the FTL half of
// reclaim directly: valid pages move, the mapping still resolves with
// its original write time, the victim returns to the free list, and
// GC statistics stay untouched (reclaim is not garbage collection).
func TestFTLReclaimBlockMigratesAndFrees(t *testing.T) {
	f := NewFTL(tinyGeo())
	addr, gc, err := f.Write(5, 1000, 0)
	if err != nil || gc != nil {
		t.Fatalf("write: %v gc=%v", err, gc)
	}
	work, err := f.ReclaimBlock(addr)
	if err != nil {
		t.Fatal(err)
	}
	if work == nil || work.Erases != 1 || work.PagesRelocated != 1 {
		t.Fatalf("reclaim work = %+v, want 1 page moved, 1 erase", work)
	}
	got, at, written := f.Lookup(5)
	if !written || at != 1000 {
		t.Fatalf("mapping lost after reclaim: written=%v at=%v", written, at)
	}
	if got.Block == addr.Block {
		t.Fatalf("lpn still maps into the reclaimed block %d", addr.Block)
	}
	if runs, _ := f.GCStats(); runs != 0 {
		t.Fatalf("reclaim polluted GC stats: %d runs", runs)
	}

	// An unwritten write-region block is a silent no-op: nothing to
	// migrate, nothing to erase.
	idle := addr
	for b := f.WriteBase(); b < tinyGeo().BlocksPerPlane; b++ {
		if b != got.Block {
			idle.Block = b
			break
		}
	}
	work, err = f.ReclaimBlock(idle)
	if err != nil || work != nil {
		t.Fatalf("unwritten block reclaim = (%+v, %v), want (nil, nil)", work, err)
	}
}

// TestReclaimCompetesForDieTime runs the same trace with reclaim off
// and with an aggressive threshold: the migrations must show up both
// in the metrics and as die time — the run with reclaims takes
// strictly longer.
func TestReclaimCompetesForDieTime(t *testing.T) {
	runSeeded := func(thr int64) *Metrics {
		cfg := smallConfig(RiF, 1000)
		cfg.ReadReclaimThreshold = thr
		s, err := New(cfg, smallWorkload(t, "Ali124", 1))
		if err != nil {
			t.Fatal(err)
		}
		// Every block sits five senses below the default threshold, so
		// any block read five times during the run reclaims.
		seed := make([]int64, cfg.Geometry.TotalBlocks())
		for i := range seed {
			seed[i] = DefaultConfig(RiF, 1000).ReadReclaimThreshold - 5
		}
		if err := s.SeedBlockState(seed, nil); err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(400)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m0 := runSeeded(0)
	m1 := runSeeded(DefaultConfig(RiF, 1000).ReadReclaimThreshold)
	if m0.ReadReclaims != 0 {
		t.Fatalf("reclaim disabled but counted %d", m0.ReadReclaims)
	}
	if m1.ReadReclaims == 0 || m1.ReclaimPagesMigrated == 0 {
		t.Fatalf("aggressive threshold produced no reclaims: %d/%d",
			m1.ReadReclaims, m1.ReclaimPagesMigrated)
	}
	if m1.Makespan <= m0.Makespan {
		t.Fatalf("reclaim work is free: makespan %v with vs %v without",
			m1.Makespan, m0.Makespan)
	}
}

// TestEverySenseCounted is the satellite-2 regression: gross senses
// must cover every array access. A scheme that never retries senses
// exactly once per page read; retrying schemes (off-chip ladder,
// Sentinel extra reads, RiF's RVS re-reads) must log strictly more.
func TestEverySenseCounted(t *testing.T) {
	sum := func(xs []int64) int64 {
		var s int64
		for _, x := range xs {
			s += x
		}
		return s
	}
	cfg := smallConfig(Zero, 2000)
	s, err := New(cfg, smallWorkload(t, "Ali124", 1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(s.BlockState().Senses); got != m.PageReads {
		t.Fatalf("SSDzero senses %d != page reads %d: a sense path is miscounted", got, m.PageReads)
	}

	for _, sc := range []Scheme{One, Sentinel, RiF} {
		s, err := New(smallConfig(sc, 2000), smallWorkload(t, "Ali124", 1))
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(300)
		if err != nil {
			t.Fatal(err)
		}
		senses := sum(s.BlockState().Senses)
		if senses <= m.PageReads {
			t.Errorf("%v: %d senses for %d page reads; retries are not being counted", sc, senses, m.PageReads)
		}
		if senses < m.PageReads+m.PagesRetried {
			t.Errorf("%v: %d senses < page reads %d + retried %d; each retry re-senses at least once",
				sc, senses, m.PageReads, m.PagesRetried)
		}
	}
}

// TestDisturbRaisesRetries pins the tentpole bugfix end to end: the
// same trace on the same device retries more when the blocks carry
// accumulated read disturb — before the fix, conditionAt ignored its
// reads input entirely and this test cannot pass.
func TestDisturbRaisesRetries(t *testing.T) {
	cfg := smallConfig(One, 1000)
	cfg.ReadReclaimThreshold = 0 // keep the disturb seed in place
	fresh := run(t, cfg, smallWorkload(t, "Ali124", 1), 300)

	s, err := New(cfg, smallWorkload(t, "Ali124", 1))
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]int64, cfg.Geometry.TotalBlocks())
	for i := range seed {
		seed[i] = 90_000 // just under the default reclaim threshold
	}
	if err := s.SeedBlockState(seed, nil); err != nil {
		t.Fatal(err)
	}
	disturbed, err := s.Run(300)
	if err != nil {
		t.Fatal(err)
	}
	if disturbed.RetryRate() <= fresh.RetryRate() {
		t.Fatalf("90K accumulated reads did not raise the retry rate: %v vs %v",
			disturbed.RetryRate(), fresh.RetryRate())
	}
}

// TestSeedBlockStateRoundtrip checks the fast-forward handoff:
// counters seeded into a fresh device come back verbatim from
// BlockState, nil slices are allowed, and wrong lengths are rejected.
func TestSeedBlockStateRoundtrip(t *testing.T) {
	cfg := smallConfig(RiF, 1000)
	s, err := New(cfg, allocStubWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.Geometry.TotalBlocks()
	reads := make([]int64, n)
	erases := make([]int64, n)
	for i := 0; i < n; i++ {
		reads[i] = int64(i % 7)
		erases[i] = int64(i % 3)
	}
	if err := s.SeedBlockState(reads, erases); err != nil {
		t.Fatal(err)
	}
	st := s.BlockState()
	for i := 0; i < n; i++ {
		if st.Reads[i] != reads[i] || st.Erases[i] != erases[i] {
			t.Fatalf("block %d: seeded (%d,%d), read back (%d,%d)",
				i, reads[i], erases[i], st.Reads[i], st.Erases[i])
		}
		if st.Senses[i] != 0 || st.ReclaimErases[i] != 0 {
			t.Fatalf("block %d: senses/reclaim-erases nonzero before any run", i)
		}
	}
	if err := s.SeedBlockState(make([]int64, n-1), nil); err == nil {
		t.Fatal("short reads slice accepted")
	}
	if err := s.SeedBlockState(nil, make([]int64, n+1)); err == nil {
		t.Fatal("long erases slice accepted")
	}
	if err := s.SeedBlockState(nil, nil); err != nil {
		t.Fatalf("nil/nil seed rejected: %v", err)
	}
}

// TestDeadDieClearsDisturbOnce: when a die drops out, its blocks'
// disturb counters are zeroed exactly once — replacement data re-homed
// onto spare dies must not inherit the dead array's sense history —
// and the clear never touches other dies.
func TestDeadDieClearsDisturbOnce(t *testing.T) {
	cfg := smallConfig(RiF, 1000)
	s, err := New(cfg, allocStubWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	geo := cfg.Geometry
	n := geo.TotalBlocks()
	seed := make([]int64, n)
	for i := range seed {
		seed[i] = 7
	}
	if err := s.SeedBlockState(seed, nil); err != nil {
		t.Fatal(err)
	}
	s.noteDeadDie(0)
	for b := 0; b < n; b++ {
		die := geo.DieID(geo.BlockAddr(b))
		switch {
		case die == 0 && s.readCounts[b] != 0:
			t.Fatalf("block %d on dead die 0 keeps count %d", b, s.readCounts[b])
		case die != 0 && s.readCounts[b] != 7:
			t.Fatalf("block %d on live die %d lost its count", b, die)
		}
	}
	// Idempotent: a second notification must not re-zero counters the
	// re-homed data has since accumulated.
	probe := -1
	for b := 0; b < n; b++ {
		if geo.DieID(geo.BlockAddr(b)) == 0 {
			probe = b
			break
		}
	}
	s.readCounts[probe] = 5
	s.noteDeadDie(0)
	if s.readCounts[probe] != 5 {
		t.Fatal("second dead-die notification re-cleared counters")
	}
}
