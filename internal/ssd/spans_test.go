package ssd

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

type spanWorkload struct{}

func (spanWorkload) Next() trace.Request {
	return trace.Request{Op: trace.Read, LPN: 0, Pages: 8}
}
func (spanWorkload) InitialAgeDays(lpn int64) float64 {
	if lpn < 4 {
		return 25
	}
	return 0.02
}

func spanConfig(scheme Scheme) Config {
	cfg := smallConfig(scheme, 1000)
	cfg.Geometry.Channels = 1
	cfg.Geometry.DiesPerChan = 2
	cfg.QueueDepth = 1
	cfg.RecordSpans = true
	cfg.Timing.THostPage = 0
	return cfg
}

func TestSpansRecorded(t *testing.T) {
	s, err := New(spanConfig(One), spanWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	spans := s.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	resources := map[string]bool{}
	labels := map[string]bool{}
	for i, sp := range spans {
		resources[sp.Resource] = true
		labels[sp.Label] = true
		if sp.End < sp.Start {
			t.Fatalf("span %d reversed: %+v", i, sp)
		}
		if i > 0 && sp.Start < spans[i-1].Start {
			t.Fatal("spans not sorted by start")
		}
	}
	for _, want := range []string{"die0", "die1", "ch0", "ecc-ch0"} {
		if !resources[want] {
			t.Fatalf("resource %q missing from spans (have %v)", want, resources)
		}
	}
	// The stressed command A must show a retry label A'.
	if !labels["A"] || !labels["A'"] {
		t.Fatalf("labels missing: %v", labels)
	}
}

func TestSpansOffByDefault(t *testing.T) {
	cfg := spanConfig(One)
	cfg.RecordSpans = false
	s, err := New(cfg, spanWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(s.Spans()) != 0 {
		t.Fatal("spans recorded while disabled")
	}
}

func TestRenderGantt(t *testing.T) {
	spans := []Span{
		{Resource: "die0", Label: "A", Start: 0, End: 40 * sim.Microsecond},
		{Resource: "ch0", Label: "A", Start: 40 * sim.Microsecond, End: 90 * sim.Microsecond},
		{Resource: "die0", Label: "A'", Start: 100 * sim.Microsecond, End: 140 * sim.Microsecond},
	}
	out := RenderGantt(spans, 5)
	if !strings.Contains(out, "die0") || !strings.Contains(out, "ch0") {
		t.Fatalf("rows missing:\n%s", out)
	}
	if !strings.Contains(out, "A") {
		t.Fatal("glyph A missing")
	}
	if !strings.Contains(out, "a") {
		t.Fatal("retry glyph (lowercase) missing")
	}
	if RenderGantt(nil, 5) != "(no spans recorded)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestCmdLabelSequence(t *testing.T) {
	if cmdLabel(0) != "A" || cmdLabel(25) != "Z" {
		t.Fatal("single-letter labels wrong")
	}
	if cmdLabel(26) != "A1" || cmdLabel(53) != "B2" {
		t.Fatalf("wrapped labels wrong: %q %q", cmdLabel(26), cmdLabel(53))
	}
}
