package ssd

import (
	"testing"

	"repro/internal/trace"
)

// allocStubWorkload satisfies Workload without pulling in a trace
// generator; predictFail never touches the workload.
type allocStubWorkload struct{}

func (allocStubWorkload) Next() trace.Request          { return trace.Request{} }
func (allocStubWorkload) InitialAgeDays(int64) float64 { return 0 }

// TestPredictFailZeroAlloc is the runtime half of the //riflint:hotpath
// guard on predictFail: one prediction per read in the RiF read path,
// zero heap allocations. If riflint's static check and this pin ever
// disagree, one of them has a bug.
func TestPredictFailZeroAlloc(t *testing.T) {
	s, err := New(DefaultConfig(RiF, 2000), allocStubWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	fail := pageView{rberFirst: 1e-3, fails: false}
	pass := pageView{rberFirst: 5e-4, fails: true}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.predictFail(fail)
		s.predictFail(pass)
	}); allocs != 0 {
		t.Fatalf("predictFail allocates %.1f times per call pair; the hot path must be allocation-free", allocs)
	}
}
