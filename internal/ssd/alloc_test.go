package ssd

import (
	"testing"

	"repro/internal/trace"
)

// allocStubWorkload satisfies Workload without pulling in a trace
// generator; predictFail never touches the workload.
type allocStubWorkload struct{}

func (allocStubWorkload) Next() trace.Request          { return trace.Request{} }
func (allocStubWorkload) InitialAgeDays(int64) float64 { return 0 }

// TestPredictFailZeroAlloc is the runtime half of the //riflint:hotpath
// guard on predictFail: one prediction per read in the RiF read path,
// zero heap allocations. If riflint's static check and this pin ever
// disagree, one of them has a bug.
func TestPredictFailZeroAlloc(t *testing.T) {
	s, err := New(DefaultConfig(RiF, 2000), allocStubWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	fail := pageView{rberFirst: 1e-3, fails: false}
	pass := pageView{rberFirst: 5e-4, fails: true}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.predictFail(fail)
		s.predictFail(pass)
	}); allocs != 0 {
		t.Fatalf("predictFail allocates %.1f times per call pair; the hot path must be allocation-free", allocs)
	}
}

// TestNoteSenseZeroAlloc is the runtime half of the //riflint:hotpath
// guard on noteSense: the per-read disturb bookkeeping and reclaim
// threshold check run on every array sense and must not allocate. The
// reclaim seam is stubbed so the (cold, allocating) migration path
// behind a threshold crossing stays out of the measurement — riflint's
// static check stops at the same boundary.
func TestNoteSenseZeroAlloc(t *testing.T) {
	s, err := New(DefaultConfig(RiF, 1000), allocStubWorkload{})
	if err != nil {
		t.Fatal(err)
	}
	crossings := 0
	s.reclaim = func(bid int) {
		crossings++
		s.readCounts[bid] = 0
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.noteSense(1)
		s.noteSense(2)
	}); allocs != 0 {
		t.Fatalf("noteSense allocates %.1f times per call pair; the per-sense hot path must be allocation-free", allocs)
	}
}
