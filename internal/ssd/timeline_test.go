package ssd

import (
	"testing"

	"repro/internal/nand"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fig7Workload reproduces the §III-B3 scenario: one 256-KiB
// sequential read split into four 64-KiB multi-plane commands A, B,
// C, D across two dies of one channel, where A and B (lpns 0..7) hit
// retention-stressed pages and C and D (lpns 8..15) are fresh.
type fig7Workload struct{}

func (fig7Workload) Next() trace.Request {
	return trace.Request{Op: trace.Read, LPN: 0, Pages: 16}
}

func (fig7Workload) InitialAgeDays(lpn int64) float64 {
	if lpn < 8 {
		return 25 // stressed: well beyond the retry onset at 1K P/E
	}
	return 0.02
}

// fig7Config is the two-die single-channel setup of Fig. 7 with the
// host link excluded (the paper's timeline stops at the ECC engine).
func fig7Config(scheme Scheme) Config {
	cfg := DefaultConfig(scheme, 1000)
	cfg.Geometry = nand.Geometry{
		Channels: 1, DiesPerChan: 2, PlanesPerDie: 4,
		BlocksPerPlane: 64, PagesPerBlock: 64, PageBytes: 16 * 1024,
	}
	cfg.Timing.THostPage = 0
	cfg.QueueDepth = 1
	return cfg
}

func runTimeline(t *testing.T, scheme Scheme) sim.Time {
	t.Helper()
	s, err := New(fig7Config(scheme), fig7Workload{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.RequestsCompleted != 1 {
		t.Fatalf("%v: completed %d requests", scheme, m.RequestsCompleted)
	}
	return m.Makespan
}

func within(t *testing.T, name string, got sim.Time, paperUS float64, tolFrac float64) {
	t.Helper()
	us := got.Microseconds()
	if us < paperUS*(1-tolFrac) || us > paperUS*(1+tolFrac) {
		t.Errorf("%s: %0.1fus, paper %0.0fus (tolerance %.0f%%)", name, us, paperUS, 100*tolFrac)
	}
}

func TestFig7TimelineSSDzero(t *testing.T) {
	// Paper: 252 us — one sense latency then four back-to-back 64-KiB
	// channel transfers (plus trailing pipelined decode in our model).
	within(t, "SSDzero", runTimeline(t, Zero), 252, 0.04)
}

func TestFig7TimelineSSDone(t *testing.T) {
	// Paper: 418 us — A and B fail off-chip decoding, stall the ECC
	// buffer, and are re-read and re-transferred.
	within(t, "SSDone", runTimeline(t, One), 418, 0.04)
}

func TestFig8TimelineRiF(t *testing.T) {
	// Paper: 292 us — the ODEAR engine re-reads A and B in-die; only
	// good data crosses the channel.
	within(t, "RiFSSD", runTimeline(t, RiF), 292, 0.04)
}

func TestFig7OrderingAcrossSchemes(t *testing.T) {
	zero := runTimeline(t, Zero)
	one := runTimeline(t, One)
	rif := runTimeline(t, RiF)
	if !(zero < rif && rif < one) {
		t.Fatalf("timeline ordering violated: zero=%v rif=%v one=%v", zero, one, rif)
	}
	// Paper: RiF recovers 126 of the 166 us SSDone loses.
	saved := one - rif
	lost := one - zero
	if float64(saved)/float64(lost) < 0.6 {
		t.Fatalf("RiF recovered only %v of %v", saved, lost)
	}
}

func TestFig7ECCWaitAppearsOnlyOffChip(t *testing.T) {
	for _, tc := range []struct {
		scheme   Scheme
		wantWait bool
	}{{Zero, false}, {One, true}, {RiF, false}} {
		s, err := New(fig7Config(tc.scheme), fig7Workload{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.Run(1)
		if err != nil {
			t.Fatal(err)
		}
		hasWait := m.Channels.ECCWait > 0
		if hasWait != tc.wantWait {
			t.Errorf("%v: eccwait=%v, want %v", tc.scheme, m.Channels.ECCWait, tc.wantWait)
		}
	}
}

func TestFig7UncorOnlyOffChip(t *testing.T) {
	// SSDone ships 8 doomed pages; RiF ships none (barring
	// mispredictions, which this seed does not produce).
	sOne, _ := New(fig7Config(One), fig7Workload{})
	mOne, err := sOne.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if mOne.Channels.Uncor == 0 {
		t.Fatal("SSDone transferred no uncorrectable data")
	}
	sRiF, _ := New(fig7Config(RiF), fig7Workload{})
	mRiF, err := sRiF.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if mRiF.Channels.Uncor != 0 {
		t.Fatalf("RiF transferred uncorrectable data: %v", mRiF.Channels.Uncor)
	}
	if mRiF.AvoidedTransfers != 8 {
		t.Fatalf("RiF avoided %d transfers, want 8", mRiF.AvoidedTransfers)
	}
}
