package ssd

import (
	"repro/internal/sim"
)

// writeCommand executes one multi-plane program: host link, then the
// write data crosses the channel to the die, then the die programs
// all planes in one tPROG. Garbage collection triggered by the
// allocation is charged to the die (copyback relocation plus erase)
// before the program starts.
//
// With a write cache, the host-visible write completes once the data
// is buffered in controller DRAM; the channel transfer and program
// run as a background flush that releases the buffer when durable.
func (s *SSD) writeCommand(cmd dieCommand, done func(cmdResult)) {
	var gcTime sim.Time
	for _, lpn := range cmd.lpns {
		_, work, err := s.ftl.Write(lpn, s.eng.Now(), s.cfg.GCFreeBlockLow)
		if err != nil {
			// An unplaceable write (out of space, every die down) is
			// dropped: the first error is carried in the run result and
			// the command completes with a write-error status instead
			// of panicking mid-simulation.
			s.m.Faults.DroppedWrites++
			s.failRun(err)
			done(cmdResult{writeErr: true})
			return
		}
		if work != nil {
			gcTime += s.gcTime(work)
			victim := work.Plane
			victim.Block = work.VictimBlock
			s.eraseCounts[s.cfg.Geometry.BlockID(victim)]++
			// Erasing also clears the accumulated read disturb.
			s.readCounts[s.cfg.Geometry.BlockID(victim)] = 0
		}
	}

	// Resolve the target die after the FTL writes: die failover may
	// have re-homed the pages away from a dead die.
	die, ch, _ := s.dieOf(cmd)

	pages := len(cmd.lpns)
	if !s.cache.enabled() {
		// Write-through: the host waits for the program.
		s.hostTransfer(pages, func() {
			ch.submit(&xferJob{
				kind:  xferWrite,
				pages: pages,
				label: "W",
				onDecoded: func() {
					die.Program(gcTime+s.cfg.Timing.TProg, func() { done(cmdResult{}) })
				},
			})
		})
		return
	}
	s.cache.acquire(pages, func() {
		s.hostTransfer(pages, func() {
			done(cmdResult{}) // host sees the write complete at buffer time
			addr, _, _ := s.ftl.Lookup(cmd.lpns[0])
			f := s.flushers[s.cfg.Geometry.DieID(addr)]
			for i, lpn := range cmd.lpns {
				a, _, _ := s.ftl.Lookup(lpn)
				gc := sim.Time(0)
				if i == 0 {
					gc = gcTime // the batch that carries page 0 pays the GC debt
				}
				f.enqueue(flushPage{plane: a.Plane, gcTime: gc})
			}
			f.kick()
		})
	})
}

// gcTime charges a garbage collection: valid pages move by in-die
// copyback (read + program per plane-parallel batch, no channel
// traffic) and the victim block is erased.
func (s *SSD) gcTime(work *GCWork) sim.Time {
	batches := (work.PagesRelocated + s.cfg.Geometry.PlanesPerDie - 1) / s.cfg.Geometry.PlanesPerDie
	t := sim.Time(batches) * (s.cfg.Timing.TR + s.cfg.Timing.TProg)
	t += sim.Time(work.Erases) * s.cfg.Timing.TErase
	return t
}
