package ssd

import (
	"testing"

	"repro/internal/sim"
)

func TestDieFIFOOrder(t *testing.T) {
	eng := sim.NewEngine()
	d := newDieStation(eng, DieFIFO, 0)
	var order []string
	eng.At(0, func() {
		d.Program(100, func() { order = append(order, "prog") })
		d.Read(10, func() { order = append(order, "read") })
	})
	eng.Run()
	if order[0] != "prog" || order[1] != "read" {
		t.Fatalf("FIFO violated: %v", order)
	}
	if !d.Idle() || d.Suspensions() != 0 {
		t.Fatal("die state wrong after drain")
	}
}

func TestDieReadPriorityJumpsQueue(t *testing.T) {
	eng := sim.NewEngine()
	d := newDieStation(eng, DieReadPriority, 0)
	var order []string
	var readDone sim.Time
	eng.At(0, func() {
		d.Program(100, func() { order = append(order, "p1") })
		d.Program(100, func() { order = append(order, "p2") })
		d.Read(10, func() { order = append(order, "read"); readDone = eng.Now() })
	})
	eng.Run()
	// The read overtakes p2 but does not preempt p1.
	if order[0] != "p1" || order[1] != "read" || order[2] != "p2" {
		t.Fatalf("priority order: %v", order)
	}
	if readDone != 110 {
		t.Fatalf("read done at %v, want 110", readDone)
	}
}

func TestDieSuspensionPreemptsProgram(t *testing.T) {
	eng := sim.NewEngine()
	const penalty = 20
	d := newDieStation(eng, DieSuspension, penalty)
	var readDone, progDone sim.Time
	eng.At(0, func() {
		d.Program(400, func() { progDone = eng.Now() })
	})
	eng.At(50, func() {
		d.Read(40, func() { readDone = eng.Now() })
	})
	eng.Run()
	// Read preempts at t=50, finishes at 90.
	if readDone != 90 {
		t.Fatalf("read done at %v, want 90", readDone)
	}
	// Program: 50 done + (350 remaining + 20 penalty) after the read.
	if progDone != 90+350+penalty {
		t.Fatalf("program done at %v, want %v", progDone, sim.Time(90+350+penalty))
	}
	if d.Suspensions() != 1 {
		t.Fatalf("suspensions = %d", d.Suspensions())
	}
}

func TestDieSuspensionDoesNotPreemptReads(t *testing.T) {
	eng := sim.NewEngine()
	d := newDieStation(eng, DieSuspension, 20)
	var first sim.Time
	eng.At(0, func() { d.Read(40, func() { first = eng.Now() }) })
	eng.At(10, func() { d.Read(40, nil) })
	eng.Run()
	if first != 40 {
		t.Fatalf("running read was disturbed: done at %v", first)
	}
	if d.Suspensions() != 0 {
		t.Fatal("a read was suspended")
	}
}

func TestDieSuspensionNestedPreemptions(t *testing.T) {
	// Two reads arrive during one long erase; both preempt, and the
	// erase eventually finishes with both penalties.
	eng := sim.NewEngine()
	const penalty = 20
	d := newDieStation(eng, DieSuspension, penalty)
	var eraseDone sim.Time
	eng.At(0, func() { d.Program(3500, func() { eraseDone = eng.Now() }) })
	eng.At(100, func() { d.Read(40, nil) })
	eng.At(1000, func() { d.Read(40, nil) })
	eng.Run()
	// Total = 3500 + 2*40 (reads) + 2*20 (penalties).
	if want := sim.Time(3500 + 80 + 40); eraseDone != want {
		t.Fatalf("erase done at %v, want %v", eraseDone, want)
	}
	if d.Suspensions() != 2 {
		t.Fatalf("suspensions = %d", d.Suspensions())
	}
}

func TestSuspensionImprovesReadTail(t *testing.T) {
	// End to end: with program suspension, read latencies on a mixed
	// workload improve and the metric records the preemptions.
	mk := func(policy DiePolicy) *Metrics {
		cfg := smallConfig(RiF, 1000)
		cfg.DiePolicy = policy
		return run(t, cfg, smallWorkload(t, "Sys0", 2), 400)
	}
	fifo := mk(DieFIFO)
	susp := mk(DieSuspension)
	if susp.Suspensions == 0 {
		t.Fatal("no suspensions recorded")
	}
	if fifo.Suspensions != 0 {
		t.Fatal("FIFO policy recorded suspensions")
	}
	if susp.ReadLatencies.Percentile(99) >= fifo.ReadLatencies.Percentile(99) {
		t.Fatalf("suspension did not improve read p99: %v vs %v",
			susp.ReadLatencies.Percentile(99), fifo.ReadLatencies.Percentile(99))
	}
}

func TestDiePolicyNames(t *testing.T) {
	if DieFIFO.String() != "fifo" || DieReadPriority.String() != "read-priority" || DieSuspension.String() != "suspension" {
		t.Fatal("policy names wrong")
	}
}
