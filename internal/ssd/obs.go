package ssd

import (
	"fmt"
	"math"
)

// foldObs publishes the run's final accounting into the configured
// observability registry. The simulation engine is single-threaded, so
// per-run scalars live as plain fields during the run and are folded
// here once, at drain time; only the latency histograms stream live.
// A nil registry makes every call below a no-op.
func (s *SSD) foldObs() {
	reg := s.cfg.Obs
	if reg == nil {
		return
	}

	// Simulation kernel.
	reg.Counter("sim_events_processed_total").Add(int64(s.eng.Processed()))
	reg.Gauge("sim_event_heap_highwater").SetMax(int64(s.eng.MaxPending()))
	reg.Gauge("sim_time_ns").SetMax(int64(s.m.Makespan))

	// Host-visible I/O.
	reg.Counter("ssd_requests_completed_total").Add(int64(s.m.RequestsCompleted))
	reg.Counter("ssd_bytes_read_total").Add(s.m.BytesRead)
	reg.Counter("ssd_bytes_written_total").Add(s.m.BytesWritten)

	// Retry behaviour.
	reg.Counter("ssd_page_reads_total").Add(s.m.PageReads)
	reg.Counter("ssd_pages_retried_total").Add(s.m.PagesRetried)
	reg.Counter("ssd_retry_rounds_total").Add(s.m.RetryRounds)
	reg.Counter("ssd_sentinel_extra_reads_total").Add(s.m.SentinelExtraReads)
	reg.Counter("ssd_unrecovered_pages_total").Add(s.m.UnrecoveredPages)
	reg.Counter("ssd_media_error_requests_total").Add(s.m.MediaErrorRequests)

	// Fault injection: published only when the injector is live, so a
	// fault-free run's registry (and manifest) is byte-identical to
	// one from a build without the subsystem.
	if s.inj != nil {
		f := s.m.Faults
		reg.Counter("faults_transient_sense_total").Add(f.TransientSenseFaults)
		reg.Counter("faults_stuck_page_reads_total").Add(f.StuckPageReads)
		reg.Counter("faults_grown_bad_blocks_total").Add(f.GrownBadBlocks)
		reg.Counter("faults_die_dropout_reads_total").Add(f.DieDropoutReads)
		reg.Counter("faults_die_failovers_total").Add(f.DieFailovers)
		reg.Counter("faults_channel_corruptions_total").Add(f.ChannelCorruptions)
		reg.Counter("faults_forced_mispredictions_total").Add(f.ForcedMispredictions)
		reg.Counter("faults_decode_timeouts_total").Add(f.DecodeTimeouts)
		reg.Counter("faults_dropped_writes_total").Add(f.DroppedWrites)
		reg.Counter("faults_injected_total").Add(f.Total())
	}

	// RP/RVS behaviour (the Fig. 14 confusion matrix; positive = RP
	// predicts the decode will fail).
	reg.Counter("odear_rp_predictions_total").Add(s.m.Predictions)
	reg.Counter("odear_rp_mispredictions_total").Add(s.m.Mispredictions)
	reg.Counter("odear_rp_tp_total").Add(s.m.Confusion.TP)
	reg.Counter("odear_rp_fp_total").Add(s.m.Confusion.FP)
	reg.Counter("odear_rp_fn_total").Add(s.m.Confusion.FN)
	reg.Counter("odear_rp_tn_total").Add(s.m.Confusion.TN)
	reg.Counter("odear_rvs_rereads_total").Add(s.m.RVSRereads)
	reg.Counter("odear_avoided_transfers_total").Add(s.m.AvoidedTransfers)
	reg.Gauge("odear_energy_delta_nj").Add(int64(math.Round(s.m.EnergyDeltaNJ())))

	// Per-channel usage (the Fig. 18 breakdown, in nanoseconds) plus
	// occupancy high-waters.
	for i, ch := range s.channels {
		u := ch.usage()
		p := fmt.Sprintf("ssd_ch%d_", i)
		reg.Counter(p + "idle_ns").Add(int64(u.Idle()))
		reg.Counter(p + "cor_ns").Add(int64(u.Cor))
		reg.Counter(p + "uncor_ns").Add(int64(u.Uncor))
		reg.Counter(p + "write_ns").Add(int64(u.Write))
		reg.Counter(p + "eccwait_ns").Add(int64(u.ECCWait))
		reg.Counter(p + "total_ns").Add(int64(u.Total))
		reg.Gauge(p + "ecc_buf_highwater").SetMax(int64(ch.bufHigh))
		reg.Gauge(p + "backlog_highwater").SetMax(int64(ch.pendHigh))
	}

	// Die queue pressure (aggregated over dies: with 32+ dies a
	// per-die series would dominate the snapshot).
	dieHigh := 0
	for _, d := range s.dies {
		if d.qHigh > dieHigh {
			dieHigh = d.qHigh
		}
	}
	reg.Gauge("ssd_die_queue_depth_highwater").SetMax(int64(dieHigh))
	reg.Counter("ssd_die_suspensions_total").Add(s.m.Suspensions)

	// Background machinery.
	reg.Counter("ssd_gc_runs_total").Add(s.m.GCRuns)
	reg.Counter("ssd_gc_pages_relocated_total").Add(s.m.PagesRelocated)
	reg.Counter("ssd_read_reclaims_total").Add(s.m.ReadReclaims)
	reg.Counter("ssd_reclaim_pages_migrated_total").Add(s.m.ReclaimPagesMigrated)
	reg.Counter("ssd_write_cache_hits_total").Add(s.cache.hits)
	reg.Counter("ssd_write_cache_stalls_total").Add(s.cache.stalls)
	reg.Gauge("ssd_write_cache_pages_highwater").SetMax(int64(s.cache.inUseHigh))
}
