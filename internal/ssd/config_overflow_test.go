package ssd

import (
	"testing"

	"repro/internal/sim"
)

// TestRetryBackoffOverflowRejected pins the Validate guard on the
// retry ladder: (MaxRetryRounds-1)*RetryBackoff must stay inside the
// int64 sim clock, otherwise the deepest round's sense time wraps
// into the past.
func TestRetryBackoffOverflowRejected(t *testing.T) {
	base := DefaultConfig(RiF, 1000)
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}

	over := base
	over.MaxRetryRounds = 4
	over.RetryBackoff = sim.MaxTime / 2 // *3 rounds overflows
	if over.Validate() == nil {
		t.Fatal("overflowing retry ladder accepted")
	}

	neg := base
	neg.RetryBackoff = -1
	if neg.Validate() == nil {
		t.Fatal("negative retry backoff accepted")
	}

	// The exact boundary — (rounds-1)*backoff == MaxTime — still fits
	// the clock and must be accepted.
	edge := base
	edge.MaxRetryRounds = 3
	edge.RetryBackoff = sim.MaxTime / 2
	if err := edge.Validate(); err != nil {
		t.Fatalf("boundary retry ladder rejected: %v", err)
	}

	// Degenerate ladders can never overflow: one round pays no
	// backoff at all.
	single := base
	single.MaxRetryRounds = 1
	single.RetryBackoff = sim.MaxTime
	if err := single.Validate(); err != nil {
		t.Fatalf("single-round ladder rejected: %v", err)
	}
}
