package ssd

import (
	"fmt"

	"repro/internal/odear"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ChannelUsage breaks a channel's wall-clock time into the categories
// of the paper's Fig. 18.
type ChannelUsage struct {
	// Cor is time spent transferring pages that subsequently decode.
	Cor sim.Time
	// Uncor is time spent transferring pages that fail decoding (or
	// auxiliary transfers such as sentinel-cell reads).
	Uncor sim.Time
	// Write is time spent transferring write data to the dies.
	Write sim.Time
	// ECCWait is time the channel sat idle with transfers pending
	// because the channel-level ECC buffer was full.
	ECCWait sim.Time
	// Total is the observation window.
	Total sim.Time
}

// Idle is the remaining (truly idle) time.
func (u ChannelUsage) Idle() sim.Time {
	idle := u.Total - u.Cor - u.Uncor - u.Write - u.ECCWait
	if idle < 0 {
		idle = 0
	}
	return idle
}

// Fractions reports the breakdown normalized to the window, in the
// order IDLE, COR, UNCOR, ECCWAIT (write transfer time is folded into
// COR, as it is useful data movement).
func (u ChannelUsage) Fractions() (idle, cor, uncor, eccWait float64) {
	if u.Total == 0 {
		return 1, 0, 0, 0
	}
	t := float64(u.Total)
	return float64(u.Idle()) / t,
		float64(u.Cor+u.Write) / t,
		float64(u.Uncor) / t,
		float64(u.ECCWait) / t
}

// add accumulates another channel's usage.
func (u *ChannelUsage) add(v ChannelUsage) {
	u.Cor += v.Cor
	u.Uncor += v.Uncor
	u.Write += v.Write
	u.ECCWait += v.ECCWait
	u.Total += v.Total
}

// FaultMetrics aggregates the injected-fault activity of one run and
// the degradation machinery it exercised. All zero when fault
// injection is disabled.
type FaultMetrics struct {
	// TransientSenseFaults counts injected sense glitches (each one
	// cost a full extra sense on the die).
	TransientSenseFaults int64
	// StuckPageReads counts page reads that hit a grown-bad block.
	StuckPageReads int64
	// GrownBadBlocks counts distinct blocks the FTL retired after
	// their reads proved uncorrectable.
	GrownBadBlocks int64
	// DieDropoutReads counts page reads aimed at a dead die (each
	// fails after a probe sense and surfaces as a media error).
	DieDropoutReads int64
	// DieFailovers counts writes the FTL re-homed from a dead die to
	// the next live one.
	DieFailovers int64
	// ChannelCorruptions counts read transfers corrupted in flight
	// and re-issued from the die's page buffer.
	ChannelCorruptions int64
	// ForcedMispredictions counts RP predictions inverted by
	// injection (on top of the accuracy model's own errors).
	ForcedMispredictions int64
	// DecodeTimeouts counts LDPC decodes that timed out and pushed
	// their page into the retry ladder.
	DecodeTimeouts int64
	// DroppedWrites counts host writes abandoned because the FTL
	// could not place them (out of space or every die down); the run
	// carries the first such error in its result.
	DroppedWrites int64
}

// Total sums every injected-fault event (not the derived failover /
// retirement / drop counters).
func (f FaultMetrics) Total() int64 {
	return f.TransientSenseFaults + f.StuckPageReads + f.DieDropoutReads +
		f.ChannelCorruptions + f.ForcedMispredictions + f.DecodeTimeouts
}

// Metrics is the result of one simulation run.
type Metrics struct {
	Scheme   Scheme
	PECycles int

	// Completed I/O volume.
	RequestsCompleted int
	BytesRead         int64
	BytesWritten      int64

	// Makespan is the virtual time to complete the run.
	Makespan sim.Time

	// ReadLatencies collects per-request read latencies in
	// microseconds (Fig. 19).
	ReadLatencies stats.Sample

	// Channels is the aggregated channel usage (Fig. 18).
	Channels ChannelUsage

	// Retry behaviour.
	PageReads          int64 // first-read pages sensed for the host
	PagesRetried       int64 // pages that needed at least one retry
	RetryRounds        int64 // total retry rounds executed
	SentinelExtraReads int64
	UnrecoveredPages   int64 // pages still failing after MaxRetryRounds

	// Prediction behaviour (RiF and RPSSD).
	Predictions      int64
	Mispredictions   int64
	AvoidedTransfers int64 // uncorrectable pages kept on-die by RiF

	// Confusion breaks Predictions down into the four outcomes
	// (positive = RP predicts the decode will fail), reproducing the
	// paper's Fig. 14 accuracy split.
	Confusion odear.Confusion

	// RVSRereads counts pages re-sensed inside the die by RVS (RiF
	// only): in-die recoveries that never consumed channel bandwidth.
	RVSRereads int64

	// GC activity.
	GCRuns         int64
	PagesRelocated int64

	// Read-reclaim activity: blocks erased because their sense count
	// crossed Config.ReadReclaimThreshold, and the valid pages those
	// erases migrated (or refreshed in place, for pre-fill blocks).
	ReadReclaims         int64
	ReclaimPagesMigrated int64

	// Suspensions counts program/erase preemptions by reads
	// (DieSuspension policy only).
	Suspensions int64

	// PeakInFlight is the host ring's high-water outstanding request
	// count; with Config.MaxInFlight set it never exceeds the bound.
	PeakInFlight int

	// HeldArrivals counts open-loop arrivals that found the bounded
	// ring full and waited for a completion before admission: the
	// saturation signal of an intensity sweep.
	HeldArrivals int64

	// MediaErrorRequests counts host read requests that completed
	// with at least one uncorrectable page: the graceful-degradation
	// outcome (an NVMe media-error status) instead of a stall or
	// panic.
	MediaErrorRequests int64

	// Faults is the injected-fault accounting.
	Faults FaultMetrics
}

// MediaErrorRate reports the fraction of completed requests that
// returned a media error.
func (m *Metrics) MediaErrorRate() float64 {
	if m.RequestsCompleted == 0 {
		return 0
	}
	return float64(m.MediaErrorRequests) / float64(m.RequestsCompleted)
}

// Bandwidth reports the achieved I/O bandwidth in MB/s (decimal,
// matching the paper's axes).
func (m *Metrics) Bandwidth() float64 {
	if m.Makespan <= 0 {
		return 0
	}
	return float64(m.BytesRead+m.BytesWritten) / 1e6 / m.Makespan.Seconds()
}

// ReadBandwidth reports the read-only bandwidth in MB/s.
func (m *Metrics) ReadBandwidth() float64 {
	if m.Makespan <= 0 {
		return 0
	}
	return float64(m.BytesRead) / 1e6 / m.Makespan.Seconds()
}

// RetryRate reports the fraction of host page reads that required a
// retry.
func (m *Metrics) RetryRate() float64 {
	if m.PageReads == 0 {
		return 0
	}
	return float64(m.PagesRetried) / float64(m.PageReads)
}

// PredictionAccuracy reports the realized RP accuracy.
func (m *Metrics) PredictionAccuracy() float64 {
	if m.Predictions == 0 {
		return 1
	}
	return 1 - float64(m.Mispredictions)/float64(m.Predictions)
}

// EnergyDeltaNJ reports the net read-path energy change versus a
// conventional chip (§VI-C): each prediction costs
// odear.PredictionEnergyNJ; each avoided uncorrectable transfer saves
// odear.AvoidedTransferEnergyNJ. Negative values are net savings.
func (m *Metrics) EnergyDeltaNJ() float64 {
	return float64(m.Predictions)*odear.PredictionEnergyNJ -
		float64(m.AvoidedTransfers)*odear.AvoidedTransferEnergyNJ
}

// String summarizes the run for experiment logs.
func (m *Metrics) String() string {
	idle, cor, uncor, wait := m.Channels.Fractions()
	return fmt.Sprintf(
		"%s pe=%d bw=%.0fMB/s reqs=%d retries=%.1f%% ch[idle=%.2f cor=%.2f uncor=%.2f eccwait=%.2f] p99=%.0fus",
		m.Scheme, m.PECycles, m.Bandwidth(), m.RequestsCompleted,
		100*m.RetryRate(), idle, cor, uncor, wait,
		m.ReadLatencies.Percentile(99))
}
