package ssd

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/trace"
)

// HostQueue is one NVMe-style submission queue: its own workload
// stream and its own closed-loop depth. Multiple queues share the
// device and contend for dies, channels and the ECC engines — the
// multi-queue setting MQSim was built to study.
type HostQueue struct {
	Workload Workload
	Depth    int
}

// QueueMetrics reports one queue's share of a multi-queue run.
type QueueMetrics struct {
	RequestsCompleted int
	BytesRead         int64
	BytesWritten      int64
	ReadLatencies     stats.Sample
}

// Bandwidth reports the queue's achieved bandwidth in MB/s over the
// run's makespan.
func (q *QueueMetrics) Bandwidth(makespan float64) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(q.BytesRead+q.BytesWritten) / 1e6 / makespan
}

// RunQueues executes a multi-queue closed-loop run: each queue keeps
// Depth requests outstanding and issues nPerQueue requests in total.
// It returns the device-level metrics plus per-queue breakdowns.
func (s *SSD) RunQueues(queues []HostQueue, nPerQueue int) (*Metrics, []QueueMetrics, error) {
	if s.cfg.OpenLoop {
		return nil, nil, fmt.Errorf("ssd: multi-queue host is closed-loop-only but OpenLoop is set; use Run for open-loop replay")
	}
	if len(queues) == 0 {
		return nil, nil, fmt.Errorf("ssd: no host queues")
	}
	if nPerQueue <= 0 {
		return nil, nil, fmt.Errorf("ssd: nPerQueue = %d", nPerQueue)
	}
	perQueue := make([]QueueMetrics, len(queues))
	remaining := make([]int, len(queues))

	var issue func(qi int)
	issue = func(qi int) {
		if remaining[qi] == 0 {
			return
		}
		remaining[qi]--
		s.inFlight++
		q := &queues[qi]
		req := q.Workload.Next()
		start := s.eng.Now()
		// Cold-age lookups route through the owning queue's workload.
		prev := s.workload
		s.workload = q.Workload
		s.runRequest(req, func(res cmdResult) {
			s.inFlight--
			s.m.RequestsCompleted++
			s.lastDone = s.eng.Now()
			if res.uncPages > 0 {
				s.m.MediaErrorRequests++
			}
			qm := &perQueue[qi]
			qm.RequestsCompleted++
			bytes := int64(req.Pages) * int64(s.cfg.Geometry.PageBytes)
			if req.Op == trace.Read {
				s.m.BytesRead += bytes
				qm.BytesRead += bytes
				lat := (s.eng.Now() - start).Microseconds()
				s.m.ReadLatencies.Add(lat)
				qm.ReadLatencies.Add(lat)
			} else {
				s.m.BytesWritten += bytes
				qm.BytesWritten += bytes
			}
			issue(qi)
		})
		s.workload = prev
	}

	for qi := range queues {
		if queues[qi].Workload == nil {
			return nil, nil, fmt.Errorf("ssd: queue %d has no workload", qi)
		}
		depth := queues[qi].Depth
		if depth <= 0 {
			depth = s.cfg.QueueDepth
		}
		if depth > nPerQueue {
			depth = nPerQueue
		}
		remaining[qi] = nPerQueue
		for i := 0; i < depth; i++ {
			issue(qi)
		}
	}

	s.eng.Run()
	if err := s.finishRun(); err != nil {
		return nil, nil, err
	}
	return &s.m, perQueue, nil
}
