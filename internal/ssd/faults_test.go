package ssd

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/nvme"
	"repro/internal/sim"
)

// chaosConfig is smallConfig plus an aggressive-but-survivable mix of
// every fault class.
func chaosConfig(scheme Scheme, pe int) Config {
	cfg := smallConfig(scheme, pe)
	cfg.Faults = faults.Config{
		TransientSenseRate: 0.05,
		StuckBlockRate:     0.10,
		DieDropoutRate:     0.10,
		ChannelCorruptRate: 0.05,
		MispredictRate:     0.10,
		DecodeTimeoutRate:  0.05,
	}
	return cfg
}

// TestEveryFaultClassDegradesGracefully is the acceptance test for
// the degradation ladder: with every fault class injected at once, no
// scheme's read path panics — uncorrectable reads surface as counted
// media errors and the run completes cleanly.
func TestEveryFaultClassDegradesGracefully(t *testing.T) {
	for _, scheme := range []Scheme{One, Sentinel, SWR, RPOnly, RiF} {
		t.Run(scheme.String(), func(t *testing.T) {
			m := run(t, chaosConfig(scheme, 2000), smallWorkload(t, "Ali124", 1), 600)
			if m.RequestsCompleted != 600 {
				t.Fatalf("completed %d of 600 requests", m.RequestsCompleted)
			}
			if m.Faults.Total() == 0 {
				t.Fatal("no faults injected at these rates")
			}
			if m.UnrecoveredPages == 0 || m.MediaErrorRequests == 0 {
				t.Fatalf("stuck blocks + dead dies produced no media errors: %+v", m.Faults)
			}
			// The confusion matrix must balance even with forced
			// mispredictions: every prediction lands in one quadrant.
			c := m.Confusion
			if got := c.TP + c.FP + c.FN + c.TN; got != m.Predictions {
				t.Fatalf("confusion matrix unbalanced: %d quadrant entries, %d predictions", got, m.Predictions)
			}
		})
	}
}

// TestInjectedUNCReadReturnsMediaError drives injected uncorrectable
// reads through the NVMe front end: every read must complete with the
// spec's unrecovered-read-error status, never panic.
func TestInjectedUNCReadReturnsMediaError(t *testing.T) {
	cfg := smallConfig(SWR, 0)
	cfg.Faults = faults.Config{StuckBlockRate: 1} // every block grown bad
	s, err := New(cfg, smallWorkload(t, "Ali124", 1))
	if err != nil {
		t.Fatal(err)
	}
	b := NewNVMeBackend(s)
	c := nvme.NewController(b, nvme.RoundRobin)
	sq := c.CreateQueuePair(32, 1)
	for cid := uint16(0); cid < 8; cid++ {
		if err := c.Submit(sq, nvme.Command{
			Opcode: nvme.OpRead, CID: cid, SLBA: int64(cid) * 64, NLB: 15,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Doorbell()
	m, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	cqes, err := c.Reap(sq, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cqes) != 8 {
		t.Fatalf("reaped %d completions, want 8", len(cqes))
	}
	for _, cqe := range cqes {
		if cqe.Status != nvme.StatusMediaError {
			t.Fatalf("command %d completed %v, want StatusMediaError", cqe.CID, cqe.Status)
		}
	}
	if m.MediaErrorRequests != 8 || m.UnrecoveredPages == 0 {
		t.Fatalf("media-error accounting: %+v", m)
	}
	if m.Faults.StuckPageReads != m.PageReads {
		t.Fatalf("%d stuck page reads of %d page reads, want all", m.Faults.StuckPageReads, m.PageReads)
	}
}

// TestFaultRunsAreDeterministic pins the subsystem's headline
// guarantee: same seed + same fault config reproduces the run
// metric-for-metric.
func TestFaultRunsAreDeterministic(t *testing.T) {
	a := run(t, chaosConfig(RiF, 1000), smallWorkload(t, "Ali124", 7), 400)
	b := run(t, chaosConfig(RiF, 1000), smallWorkload(t, "Ali124", 7), 400)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same-seed fault runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestDisabledFaultConfigChangesNothing pins the rate-zero no-draw
// property: a Faults config with no live class (even with non-rate
// fields set) leaves the run byte-identical to a fault-free one.
func TestDisabledFaultConfigChangesNothing(t *testing.T) {
	base := smallConfig(RiF, 2000)
	withCfg := smallConfig(RiF, 2000)
	withCfg.Faults = faults.Config{MaxSenseRetries: 5} // no rates -> disabled
	a := run(t, base, smallWorkload(t, "Ali124", 3), 400)
	b := run(t, withCfg, smallWorkload(t, "Ali124", 3), 400)
	if !reflect.DeepEqual(a.ReadLatencies, b.ReadLatencies) || a.Makespan != b.Makespan {
		t.Fatal("disabled fault config perturbed the run")
	}
	if a.Faults != (FaultMetrics{}) {
		t.Fatalf("fault-free run reported fault activity: %+v", a.Faults)
	}
}

// TestDieDropoutFailsOverWrites checks the FTL re-homes writes away
// from dead dies while reads of data stranded there surface as media
// errors.
func TestDieDropoutFailsOverWrites(t *testing.T) {
	cfg := smallConfig(One, 0)
	cfg.Faults = faults.Config{DieDropoutRate: 0.25}
	m := run(t, cfg, &cacheProbeWorkload{cold: 0}, 600)
	if m.Faults.DieFailovers == 0 {
		t.Fatal("no writes failed over with a quarter of the dies down")
	}
	if m.Faults.DieDropoutReads == 0 || m.MediaErrorRequests == 0 {
		t.Fatalf("dead-die reads did not surface: %+v", m.Faults)
	}
	if m.Faults.DroppedWrites != 0 {
		t.Fatalf("%d writes dropped despite live dies", m.Faults.DroppedWrites)
	}
}

// TestStuckBlocksAreRetired checks grown-bad blocks are pulled from
// circulation once their reads exhaust the retry ladder.
func TestStuckBlocksAreRetired(t *testing.T) {
	cfg := smallConfig(SWR, 0)
	cfg.Faults = faults.Config{StuckBlockRate: 0.3}
	m := run(t, cfg, smallWorkload(t, "Ali124", 1), 600)
	if m.Faults.StuckPageReads == 0 || m.Faults.GrownBadBlocks == 0 {
		t.Fatalf("no retirements at 30%% stuck blocks: %+v", m.Faults)
	}
	if m.Faults.GrownBadBlocks > m.Faults.StuckPageReads {
		t.Fatalf("more retirements than stuck reads: %+v", m.Faults)
	}
}

// TestTransientSenseFaultsCostLatency checks injected sense glitches
// stretch the run instead of corrupting it.
func TestTransientSenseFaultsCostLatency(t *testing.T) {
	base := smallConfig(SWR, 1000)
	glitchy := smallConfig(SWR, 1000)
	glitchy.Faults = faults.Config{TransientSenseRate: 0.5}
	a := run(t, base, smallWorkload(t, "Ali124", 1), 400)
	b := run(t, glitchy, smallWorkload(t, "Ali124", 1), 400)
	if b.Faults.TransientSenseFaults == 0 {
		t.Fatal("no transient sense faults at rate 0.5")
	}
	if b.Makespan <= a.Makespan {
		t.Fatalf("re-senses did not cost time: %v vs %v", b.Makespan, a.Makespan)
	}
	if b.MediaErrorRequests != a.MediaErrorRequests {
		t.Fatal("transient faults must not change read outcomes")
	}
}

// TestChannelCorruptionRetransfers checks corrupted transfers re-send
// from the page buffer and the channel still quiesces at drain.
func TestChannelCorruptionRetransfers(t *testing.T) {
	cfg := smallConfig(One, 1000)
	cfg.Faults = faults.Config{ChannelCorruptRate: 0.2}
	m := run(t, cfg, smallWorkload(t, "Ali124", 1), 400)
	if m.Faults.ChannelCorruptions == 0 {
		t.Fatal("no corruptions at rate 0.2")
	}
	if m.RequestsCompleted != 400 {
		t.Fatalf("corruption lost requests: %d of 400", m.RequestsCompleted)
	}
}

// TestForcedMispredictionsPerturbRP checks the injector inverts RP
// outputs and the accounting still balances.
func TestForcedMispredictionsPerturbRP(t *testing.T) {
	cfg := smallConfig(RiF, 1000)
	cfg.Faults = faults.Config{MispredictRate: 0.5}
	m := run(t, cfg, smallWorkload(t, "Ali124", 1), 400)
	if m.Faults.ForcedMispredictions == 0 {
		t.Fatal("no forced mispredictions at rate 0.5")
	}
	c := m.Confusion
	if got := c.TP + c.FP + c.FN + c.TN; got != m.Predictions {
		t.Fatalf("confusion matrix unbalanced under forcing: %d vs %d", got, m.Predictions)
	}
}

// TestDecodeTimeoutsEnterRetryLadder checks timed-out decodes ride
// the scheme's normal retry path.
func TestDecodeTimeoutsEnterRetryLadder(t *testing.T) {
	cfg := smallConfig(SWR, 0) // wear 0: retries come only from injection
	cfg.Faults = faults.Config{DecodeTimeoutRate: 0.2}
	m := run(t, cfg, smallWorkload(t, "Ali124", 1), 400)
	if m.Faults.DecodeTimeouts == 0 {
		t.Fatal("no decode timeouts at rate 0.2")
	}
	if m.PagesRetried == 0 || m.RetryRounds == 0 {
		t.Fatalf("timeouts did not trigger retries: %+v", m)
	}
	// At wear 0 the only way a page stays unrecovered is timing out
	// every round of the ladder; most must recover earlier.
	if m.UnrecoveredPages*10 > m.Faults.DecodeTimeouts {
		t.Fatalf("%d unrecovered pages from %d timeouts: ladder not recovering",
			m.UnrecoveredPages, m.Faults.DecodeTimeouts)
	}
}

// TestRetryBackoffSlowsLaterRounds checks the per-round backoff adds
// sense time without changing outcomes.
func TestRetryBackoffSlowsLaterRounds(t *testing.T) {
	base := smallConfig(SWR, 0)
	base.Faults = faults.Config{StuckBlockRate: 0.2} // force multi-round retries
	backed := base
	backed.RetryBackoff = 100 * sim.Microsecond
	a := run(t, base, smallWorkload(t, "Ali124", 1), 300)
	b := run(t, backed, smallWorkload(t, "Ali124", 1), 300)
	if b.Makespan <= a.Makespan {
		t.Fatalf("backoff did not cost time: %v vs %v", b.Makespan, a.Makespan)
	}
	if a.UnrecoveredPages != b.UnrecoveredPages {
		t.Fatal("backoff changed read outcomes")
	}
}

// TestUnknownSchemeRejectedByValidate pins the graceful replacement
// of the old read-path panic: a bad scheme is a config error at New.
func TestUnknownSchemeRejectedByValidate(t *testing.T) {
	cfg := smallConfig(RiF, 0)
	cfg.Scheme = Scheme(99)
	if _, err := New(cfg, &cacheProbeWorkload{}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
