package ssd

import (
	"testing"

	"repro/internal/nand"
)

func tinyGeo() nand.Geometry {
	return nand.Geometry{
		Channels: 2, DiesPerChan: 2, PlanesPerDie: 4,
		BlocksPerPlane: 8, PagesPerBlock: 4, PageBytes: 16 * 1024,
	}
}

func TestFTLStriping(t *testing.T) {
	f := NewFTL(tinyGeo())
	// Consecutive lpns fill planes of one die, then move to the next
	// channel.
	a0, _, _ := f.Lookup(0)
	a1, _, _ := f.Lookup(1)
	a3, _, _ := f.Lookup(3)
	a4, _, _ := f.Lookup(4)
	if a0.Channel != a1.Channel || a0.Die != a1.Die || a0.Plane == a1.Plane {
		t.Fatalf("lpn 0/1 not plane-striped: %+v %+v", a0, a1)
	}
	if a3.Plane != 3 {
		t.Fatalf("lpn 3 plane = %d", a3.Plane)
	}
	if a4.Channel == a0.Channel {
		t.Fatalf("lpn 4 did not move to the next channel: %+v", a4)
	}
}

func TestFTLMultiPlaneGroupsShareDie(t *testing.T) {
	f := NewFTL(nand.PaperGeometry())
	for group := int64(0); group < 100; group++ {
		base := group * 4
		a0, _, _ := f.Lookup(base)
		for i := int64(1); i < 4; i++ {
			a, _, _ := f.Lookup(base + i)
			if a.Channel != a0.Channel || a.Die != a0.Die {
				t.Fatalf("group %d not on one die", group)
			}
		}
	}
}

func TestFTLPrefillDeterministicAndDisjoint(t *testing.T) {
	f := NewFTL(tinyGeo())
	seen := map[nand.Address]int64{}
	// The pre-fill capacity of this geometry: 16 planes * 4 blocks
	// (write base = 8/2) * 4 pages = 256 pages.
	for lpn := int64(0); lpn < 256; lpn++ {
		a, _, written := f.Lookup(lpn)
		if written {
			t.Fatalf("lpn %d reported written on fresh FTL", lpn)
		}
		if a.Block >= 4 {
			t.Fatalf("prefill lpn %d in write region: %+v", lpn, a)
		}
		if prev, dup := seen[a]; dup {
			t.Fatalf("lpn %d and %d share prefill page %+v", prev, lpn, a)
		}
		seen[a] = lpn
		b, _, _ := f.Lookup(lpn)
		if b != a {
			t.Fatal("prefill lookup not deterministic")
		}
	}
}

func TestFTLWriteRemaps(t *testing.T) {
	f := NewFTL(tinyGeo())
	pre, _, _ := f.Lookup(5)
	addr, gc, err := f.Write(5, 1000, 0)
	if err != nil || gc != nil {
		t.Fatalf("write: %v gc=%v", err, gc)
	}
	if addr.Block < 4 {
		t.Fatalf("write landed in prefill region: %+v", addr)
	}
	got, at, written := f.Lookup(5)
	if !written || got != addr || at != 1000 {
		t.Fatalf("lookup after write: %+v at=%v written=%v", got, at, written)
	}
	if got == pre {
		t.Fatal("write did not remap")
	}
	// Second write moves again and invalidates.
	addr2, _, err := f.Write(5, 2000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if addr2 == addr {
		t.Fatal("rewrite reused the same physical page")
	}
}

func TestFTLGarbageCollection(t *testing.T) {
	f := NewFTL(tinyGeo())
	// Hammer one stripe position so a single plane fills: lpns
	// congruent to 0 mod 16 land on plane 0. 4 free blocks x 4 pages:
	// keep 2 live lpns, overwrite them repeatedly.
	var sawGC bool
	for i := 0; i < 200; i++ {
		lpn := int64((i % 2) * 16)
		_, gc, err := f.Write(lpn, 0, 1)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if gc != nil {
			sawGC = true
			if gc.Erases != 1 {
				t.Fatalf("gc erases = %d", gc.Erases)
			}
		}
	}
	if !sawGC {
		t.Fatal("garbage collection never triggered")
	}
	runs, relocated := f.GCStats()
	if runs == 0 {
		t.Fatal("GC stats empty")
	}
	if relocated < 0 || relocated > runs*int64(tinyGeo().PagesPerBlock) {
		t.Fatalf("relocated %d pages over %d runs", relocated, runs)
	}
	// Both live lpns must still resolve.
	for _, lpn := range []int64{0, 16} {
		if _, _, written := f.Lookup(lpn); !written {
			t.Fatalf("lpn %d lost after GC", lpn)
		}
	}
}

func TestFTLGCPreservesData(t *testing.T) {
	f := NewFTL(tinyGeo())
	// Fill plane 0 with distinct live lpns until GC must run, and
	// verify every mapping stays unique and resolvable.
	live := []int64{0, 16, 32, 48, 64, 80}
	for round := 0; round < 30; round++ {
		lpn := live[round%len(live)]
		if _, _, err := f.Write(lpn, 0, 1); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		addrs := map[nand.Address]int64{}
		for _, l := range live[:min(len(live), round+1)] {
			a, _, w := f.Lookup(l)
			if !w {
				continue
			}
			if other, dup := addrs[a]; dup {
				t.Fatalf("lpns %d and %d map to the same page %+v", other, l, a)
			}
			addrs[a] = l
		}
	}
}

func TestFTLWearAwareAllocation(t *testing.T) {
	// With wear feedback, GC'd planes spread erases across blocks
	// rather than hammering the most recently freed one.
	geo := tinyGeo()
	wear := make(map[[2]int]int) // (planeBlockKey) -> erases
	f := NewFTL(geo)
	f.WearOf = func(plane nand.Address, block int) int {
		return wear[[2]int{geo.BlockID(nand.Address{Channel: plane.Channel, Die: plane.Die, Plane: plane.Plane}), block}]
	}
	for i := 0; i < 400; i++ {
		lpn := int64((i % 2) * 16) // two live lpns on plane 0
		_, gc, err := f.Write(lpn, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if gc != nil {
			key := [2]int{geo.BlockID(nand.Address{Channel: gc.Plane.Channel, Die: gc.Plane.Die, Plane: gc.Plane.Plane}), gc.VictimBlock}
			wear[key]++
		}
	}
	if len(wear) < 3 {
		t.Fatalf("erases concentrated on %d blocks; wear leveling inactive", len(wear))
	}
	// No block should carry a dominant share of the erases.
	total, max := 0, 0
	for _, w := range wear {
		total += w
		if w > max {
			max = w
		}
	}
	if max*2 > total {
		t.Fatalf("one block took %d of %d erases", max, total)
	}
}

func TestFTLOutOfSpace(t *testing.T) {
	f := NewFTL(tinyGeo())
	// 4 free blocks x 4 pages = 16 physical slots on plane 0. Writing
	// 17+ distinct lpns (all live, nothing to collect) must fail
	// rather than corrupt state.
	var err error
	for i := 0; i < 40 && err == nil; i++ {
		_, _, err = f.Write(int64(i*16), 0, 0)
	}
	if err == nil {
		t.Fatal("overfilling a plane did not error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
