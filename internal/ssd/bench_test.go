package ssd

import (
	"testing"

	"repro/internal/trace"
)

// Microbenchmarks for the simulator itself: events per second is what
// bounds how large an experiment the harness can afford.

func benchWorkload(b *testing.B, name string) *trace.Generator {
	b.Helper()
	spec, err := trace.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	spec.FootprintPages = 1 << 17
	g, err := trace.NewGenerator(spec, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchConfig(scheme Scheme, pe int) Config {
	cfg := DefaultConfig(scheme, pe)
	cfg.Geometry.BlocksPerPlane = 256
	cfg.Geometry.PagesPerBlock = 128
	return cfg
}

func benchRun(b *testing.B, scheme Scheme, pe int, workload string, n int) {
	b.Helper()
	var totalEvents uint64
	for i := 0; i < b.N; i++ {
		s, err := New(benchConfig(scheme, pe), benchWorkload(b, workload))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(n); err != nil {
			b.Fatal(err)
		}
		totalEvents += s.Engine().Processed()
	}
	b.ReportMetric(float64(totalEvents)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkSimZero(b *testing.B)   { benchRun(b, Zero, 0, "Ali124", 1000) }
func BenchmarkSimRiF2K(b *testing.B)  { benchRun(b, RiF, 2000, "Ali124", 1000) }
func BenchmarkSimSENC2K(b *testing.B) { benchRun(b, Sentinel, 2000, "Ali124", 1000) }
func BenchmarkSimMixed(b *testing.B)  { benchRun(b, RiF, 1000, "Ali2", 1000) }

func BenchmarkFTLWrite(b *testing.B) {
	f := NewFTL(benchConfig(Zero, 0).Geometry)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := f.Write(int64(i%100000), 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFTLLookupCold(b *testing.B) {
	f := NewFTL(benchConfig(Zero, 0).Geometry)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Lookup(int64(i % 100000))
	}
}
