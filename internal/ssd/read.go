package ssd

import (
	"fmt"

	"repro/internal/nand"
	"repro/internal/sim"
)

// readCommand executes one multi-plane read under the configured
// scheme and calls done when the data has been delivered to the host.
// Pages that exhaust the retry ladder are reported in the result as
// uncorrectable instead of wedging or panicking.
func (s *SSD) readCommand(cmd dieCommand, done func(cmdResult)) {
	die, ch, dieIdx := s.dieOf(cmd)
	if s.inj.DieDown(dieIdx) {
		// The die dropped out: the controller's probe sense times out
		// and every page of the command is reported uncorrectable.
		s.noteDeadDie(dieIdx)
		n := len(cmd.lpns)
		s.m.PageReads += int64(n)
		s.m.UnrecoveredPages += int64(n)
		s.m.Faults.DieDropoutReads += int64(n)
		s.eng.After(s.cfg.Timing.TR, func() {
			done(cmdResult{uncPages: n})
		})
		return
	}
	pages := s.resolvePages(cmd)
	s.m.PageReads += int64(len(pages))

	finish := func(unc int) {
		s.hostTransfer(len(pages), func() { done(cmdResult{uncPages: unc}) })
	}

	var lbl string
	if s.cfg.RecordSpans || s.cfg.Trace != nil {
		lbl = cmdLabel(s.nextCmd)
		s.nextCmd++
	}

	switch s.cfg.Scheme {
	case Zero:
		s.readZero(die, ch, pages, lbl, finish)
	case One:
		s.readOffChipRetry(die, ch, pages, lbl, s.cfg.Timing.TR, false, finish)
	case Sentinel:
		s.readOffChipRetry(die, ch, pages, lbl, s.cfg.Timing.TR, true, finish)
	case SWR, SWRPlus:
		s.readOffChipRetry(die, ch, pages, lbl, 2*s.cfg.Timing.TR, false, finish)
	case RPOnly:
		s.readRPController(die, ch, pages, lbl, finish)
	case RiF:
		s.readRiF(die, ch, pages, lbl, finish)
	default:
		// Unreachable: Config.Validate rejects unknown schemes.
		// Complete the command anyway rather than wedging the drain.
		s.failRun(fmt.Errorf("ssd: unknown scheme %d", int(s.cfg.Scheme)))
		finish(0)
	}
}

// readZero is the no-retry hypothetical: every page decodes in one
// iteration.
func (s *SSD) readZero(die *dieStation, ch *channelStation, pages []pageView, lbl string, finish func(int)) {
	die.ReadLabeled(s.senseTime(s.cfg.Timing.TR, pages), lbl, func() {
		ch.submit(&xferJob{
			kind:       xferRead,
			pages:      len(pages),
			uncorPages: 0,
			engineTime: sim.Time(len(pages)) * s.dec.MinLatency(),
			onDecoded:  func() { finish(0) },
			label:      lbl,
		})
	})
}

// readOffChipRetry is the shared flow of SSDone, SENC, SWR and SWR+:
// the sensed page must cross the channel and fail the off-chip decode
// before a retry (with the given re-sense duration) is issued.
// sentinel adds the possible extra off-chip sentinel-cell read.
func (s *SSD) readOffChipRetry(die *dieStation, ch *channelStation, pages []pageView, lbl string, retrySense sim.Time, sentinel bool, finish func(int)) {
	rbers := make([]float64, len(pages))
	uncor := 0
	var failed []pageView
	for i, p := range pages {
		rbers[i] = p.rberFirst
		fails := p.fails
		if s.decodeTimeout() && !fails {
			fails = true
			rbers[i] = s.timeoutRBER()
		}
		if fails {
			uncor++
			failed = append(failed, p)
		}
	}
	die.ReadLabeled(s.senseTime(s.cfg.Timing.TR, pages), lbl, func() {
		ch.submit(&xferJob{
			kind:       xferRead,
			pages:      len(pages),
			uncorPages: uncor,
			engineTime: s.decodeLatency(rbers),
			label:      lbl,
			onDecoded: func() {
				if len(failed) == 0 {
					finish(0)
					return
				}
				s.m.PagesRetried += int64(len(failed))
				s.retryOffChip(die, ch, failed, lbl, retrySense, sentinel, 1, finish)
			},
		})
	})
}

// retryOffChip performs one controller-driven retry round for the
// failed pages and recurses while pages keep failing. Each successive
// round adds RetryBackoff of extra sense time (deeper retry-table
// entries); a page still failing after MaxRetryRounds is reported
// uncorrectable and, if its block is grown bad, the block is retired.
func (s *SSD) retryOffChip(die *dieStation, ch *channelStation, failed []pageView, lbl string, retrySense sim.Time, sentinel bool, round int, finish func(int)) {
	s.m.RetryRounds++
	sense := retrySense + sim.Time(round-1)*s.cfg.RetryBackoff
	doRetry := func() {
		// The retry round's re-sense is a real array read of every
		// still-failing page's block: it disturbs them further.
		s.noteSenses(failed)
		die.ReadLabeled(s.senseTime(sense, failed), lbl+"'", func() {
			rbers := make([]float64, len(failed))
			var still []pageView
			uncor := 0
			for i, p := range failed {
				rbers[i] = p.rberRetry
				fails := p.rberRetry > s.dec.Capability
				if s.decodeTimeout() && !fails {
					fails = true
					rbers[i] = s.timeoutRBER()
				}
				if fails {
					uncor++
					still = append(still, p)
				}
			}
			ch.submit(&xferJob{
				kind:       xferRead,
				pages:      len(failed),
				uncorPages: uncor,
				engineTime: s.decodeLatency(rbers),
				label:      lbl + "'",
				onDecoded: func() {
					if len(still) == 0 {
						finish(0)
						return
					}
					if round >= s.cfg.MaxRetryRounds {
						s.m.UnrecoveredPages += int64(len(still))
						for _, p := range still {
							s.retireBlock(p)
						}
						finish(len(still))
						return
					}
					s.retryOffChip(die, ch, still, lbl, retrySense, sentinel, round+1, finish)
				},
			})
		})
	}

	if sentinel && s.sentinelRNG.Bernoulli(s.cfg.SentinelExtraReadProb) {
		// Sentinel's extra off-chip read: the sentinel cells are read
		// with the sentinel VREF set and shipped to the controller;
		// the transfer is pure overhead (UNCOR).
		s.m.SentinelExtraReads += int64(len(failed))
		s.noteSenses(failed) // the sentinel-cell read senses the array too
		die.ReadLabeled(s.senseTime(s.cfg.Timing.TR, failed), lbl, func() {
			ch.submit(&xferJob{
				kind:       xferRead,
				pages:      len(failed),
				uncorPages: len(failed),
				engineTime: 0, // analyzed by dedicated logic, not the LDPC engine
				label:      lbl + "'",
				onDecoded:  doRetry,
			})
		})
		return
	}
	doRetry()
}

// readRPController is RPSSD: the RP module sits next to the
// controller's ECC engine. Doomed decodes are terminated after tPRED,
// but uncorrectable pages still consume channel bandwidth.
func (s *SSD) readRPController(die *dieStation, ch *channelStation, pages []pageView, lbl string, finish func(int)) {
	var engineTime sim.Time
	uncor := 0
	var failed []pageView
	for _, p := range pages {
		predFail := s.predictFail(p)
		fails := p.fails
		switch {
		case predFail:
			// Decode cut short at the prediction latency. (A false
			// positive also lands here: the page is retried anyway.)
			engineTime += s.cfg.Timing.TPred
		default:
			// Predicted correctable: the decode runs to completion —
			// for a false negative that is the full failing decode.
			engineTime += s.dec.Decode(p.rberFirst).Latency
			if s.decodeTimeout() && !fails {
				fails = true
			}
		}
		if fails {
			uncor++
		}
		if fails || predFail {
			failed = append(failed, p)
		}
	}
	die.ReadLabeled(s.senseTime(s.cfg.Timing.TR, pages), lbl, func() {
		ch.submit(&xferJob{
			kind:       xferRead,
			pages:      len(pages),
			uncorPages: uncor,
			engineTime: engineTime,
			label:      lbl,
			onDecoded: func() {
				if len(failed) == 0 {
					finish(0)
					return
				}
				s.m.PagesRetried += int64(len(failed))
				s.retryOffChip(die, ch, failed, lbl, s.cfg.Timing.TR, false, 1, finish)
			},
		})
	})
}

// readRiF is the full Retry-in-Flash flow: RP predicts on-die right
// after the sense; predicted-uncorrectable pages are re-read inside
// the die at RVS-selected voltages before anything crosses the
// channel. Only false negatives ever ship a doomed page.
func (s *SSD) readRiF(die *dieStation, ch *channelStation, pages []pageView, lbl string, finish func(int)) {
	type plan struct {
		view     pageView
		predFail bool
	}
	plans := make([]plan, len(pages))
	anyRetry := false
	flagged := int64(0)
	for i, p := range pages {
		pf := s.predictFail(p)
		plans[i] = plan{view: p, predFail: pf}
		if pf {
			anyRetry = true
			flagged++
			s.noteSense(p.blockID) // the RVS re-read senses the block again
			if p.fails {
				s.m.AvoidedTransfers++
			}
		}
	}
	s.m.RVSRereads += flagged

	dieTime := s.cfg.Timing.TR + s.cfg.Timing.TPred
	if anyRetry {
		// RVS re-reads the flagged planes in parallel: one extra
		// sense. (The initial sense doubles as Swift-Read's probe
		// read: the ones-count is already in the page buffer.)
		dieTime += s.cfg.Timing.TR
	}

	// Footnote-4 extension: RP also checks the re-read pages, and a
	// page whose adjusted-VREF read is still uncorrectable gets one
	// further in-die refinement instead of a doomed transfer.
	secondRetry := false
	if s.cfg.RiFSecondCheck && anyRetry {
		dieTime += s.cfg.Timing.TPred
		for i := range plans {
			pl := &plans[i]
			if !pl.predFail || pl.view.rberRetry <= s.dec.Capability {
				continue
			}
			s.m.Predictions++
			caught := s.acc.PredictCorrect(pl.view.rberRetry, s.predictRNG.Float64())
			s.m.Confusion.Record(caught, true)
			if caught {
				// Caught: a second Swift-Read pass refines the VREF
				// estimate further (diminishing returns).
				pl.view.rberRetry *= 0.6
				s.m.AvoidedTransfers++
				s.m.RVSRereads++
				s.noteSense(pl.view.blockID) // one more in-die sense
				secondRetry = true
			} else {
				s.m.Mispredictions++
			}
		}
		if secondRetry {
			dieTime += s.cfg.Timing.TR
		}
	}

	die.ReadLabeled(s.senseTime(dieTime, pages), lbl, func() {
		rbers := make([]float64, len(plans))
		uncor := 0
		var failed []pageView
		retriedNow := int64(0)
		for i, pl := range plans {
			if pl.predFail {
				rbers[i] = pl.view.rberRetry
				retriedNow++
				fails := pl.view.rberRetry > s.dec.Capability
				if s.decodeTimeout() && !fails {
					fails = true
					rbers[i] = s.timeoutRBER()
				}
				if fails {
					uncor++
					failed = append(failed, pl.view)
				}
			} else {
				rbers[i] = pl.view.rberFirst
				fails := pl.view.fails
				if s.decodeTimeout() && !fails {
					fails = true
					rbers[i] = s.timeoutRBER()
				}
				if fails {
					// False negative: the doomed page crosses the
					// channel and burns a full failing decode.
					uncor++
					failed = append(failed, pl.view)
					retriedNow++
				}
			}
		}
		s.m.PagesRetried += retriedNow
		if anyRetry {
			s.m.RetryRounds++
		}
		ch.submit(&xferJob{
			kind:       xferRead,
			pages:      len(plans),
			uncorPages: uncor,
			engineTime: s.decodeLatency(rbers),
			label:      lbl,
			onDecoded: func() {
				if len(failed) == 0 {
					finish(0)
					return
				}
				// Recovery path for mispredictions: conventional
				// controller-driven retry.
				s.retryOffChip(die, ch, failed, lbl, s.cfg.Timing.TR, false, 1, finish)
			},
		})
	})
}

// predictFail draws RP's prediction for a page from the calibrated
// accuracy model and accounts for it (including the confusion matrix).
// An injected forced misprediction inverts the engine's output on top
// of the accuracy model's own errors.
//
//riflint:hotpath
func (s *SSD) predictFail(p pageView) bool {
	s.m.Predictions++
	correct := s.acc.PredictCorrect(p.rberFirst, s.predictRNG.Float64())
	if s.inj.ForceMispredict() {
		s.m.Faults.ForcedMispredictions++
		correct = !correct
	}
	predFail := p.fails
	if !correct {
		s.m.Mispredictions++
		predFail = !p.fails
	}
	s.m.Confusion.Record(predFail, p.fails)
	return predFail
}

// vrefModeForScheme reports the first-read VREF mode (exported for
// tests via a tiny indirection).
func vrefModeForScheme(sc Scheme) nand.VrefMode {
	if sc == SWRPlus {
		return nand.TrackedVref
	}
	return nand.DefaultVref
}
