package ssd

import (
	"testing"

	"repro/internal/nvme"
)

func newNVMeDevice(t *testing.T, scheme Scheme, pe int) (*NVMeBackend, *nvme.Controller) {
	t.Helper()
	s, err := New(smallConfig(scheme, pe), smallWorkload(t, "Ali124", 1))
	if err != nil {
		t.Fatal(err)
	}
	b := NewNVMeBackend(s)
	return b, nvme.NewController(b, nvme.RoundRobin)
}

func TestNVMeReadWriteRoundTrip(t *testing.T) {
	b, c := newNVMeDevice(t, RiF, 1000)
	sq := c.CreateQueuePair(64, 1)

	// A 64-KiB write at LBA 0 (16 x 4-KiB blocks), then reads.
	if err := c.Submit(sq, nvme.Command{Opcode: nvme.OpWrite, CID: 1, SLBA: 0, NLB: 15}); err != nil {
		t.Fatal(err)
	}
	for cid := uint16(2); cid < 10; cid++ {
		if err := c.Submit(sq, nvme.Command{
			Opcode: nvme.OpRead, CID: cid, SLBA: int64(cid) * 64, NLB: 31,
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Doorbell()
	m, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	cqes, err := c.Reap(sq, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cqes) != 9 {
		t.Fatalf("reaped %d completions, want 9", len(cqes))
	}
	for _, cqe := range cqes {
		if cqe.Status != nvme.StatusSuccess {
			t.Fatalf("command %d failed: %+v", cqe.CID, cqe)
		}
	}
	if m.RequestsCompleted != 9 || m.BytesWritten == 0 || m.BytesRead == 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestNVMeLBAToPageConversion(t *testing.T) {
	b, c := newNVMeDevice(t, Zero, 0)
	sq := c.CreateQueuePair(8, 1)
	// A single 4-KiB read within one 16-KiB page.
	if err := c.Submit(sq, nvme.Command{Opcode: nvme.OpRead, CID: 1, SLBA: 1, NLB: 0}); err != nil {
		t.Fatal(err)
	}
	c.Doorbell()
	m, err := b.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if m.PageReads != 1 {
		t.Fatalf("4-KiB read touched %d pages, want 1", m.PageReads)
	}
	if m.BytesRead != 16*1024 {
		t.Fatalf("read bytes %d, want one page", m.BytesRead)
	}
}

func TestNVMeFlushCompletes(t *testing.T) {
	_, c := newNVMeDevice(t, Zero, 0)
	sq := c.CreateQueuePair(8, 1)
	if err := c.Submit(sq, nvme.Command{Opcode: nvme.OpFlush, CID: 1}); err != nil {
		t.Fatal(err)
	}
	c.Doorbell()
	cqes, _ := c.Reap(sq, 10)
	if len(cqes) != 1 || cqes[0].Status != nvme.StatusSuccess {
		t.Fatalf("flush: %+v", cqes)
	}
}

func TestNVMeMultiQueueSharesDevice(t *testing.T) {
	b, c := newNVMeDevice(t, One, 2000)
	q0 := c.CreateQueuePair(32, 1)
	q1 := c.CreateQueuePair(32, 1)
	for cid := uint16(0); cid < 8; cid++ {
		if err := c.Submit(q0, nvme.Command{Opcode: nvme.OpRead, CID: cid, SLBA: int64(cid) * 128, NLB: 15}); err != nil {
			t.Fatal(err)
		}
		if err := c.Submit(q1, nvme.Command{Opcode: nvme.OpWrite, CID: cid, SLBA: 100000 + int64(cid)*16, NLB: 15}); err != nil {
			t.Fatal(err)
		}
	}
	c.Doorbell()
	if _, err := b.Drain(); err != nil {
		t.Fatal(err)
	}
	c0, _ := c.Reap(q0, 100)
	c1, _ := c.Reap(q1, 100)
	if len(c0) != 8 || len(c1) != 8 {
		t.Fatalf("completions: %d/%d", len(c0), len(c1))
	}
}
