package ssd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Span is one recorded resource occupancy: which resource did what,
// when. Span recording (Config.RecordSpans) exists to regenerate the
// paper's execution-timeline figures (Figs. 7 and 8) from an actual
// simulation rather than by hand.
type Span struct {
	Resource string // "die0", "ch0", "ecc0"
	Label    string // command tag: "A", "B", "A'", ...
	Start    sim.Time
	End      sim.Time
}

// addSpan records an occupancy into the in-memory span list (when
// RecordSpans is set) and the configured tracer (when Config.Trace is
// set). Stations only call it when at least one sink is active.
func (s *SSD) addSpan(resource, label string, start, end sim.Time) {
	if s.cfg.RecordSpans {
		s.spans = append(s.spans, Span{Resource: resource, Label: label, Start: start, End: end})
	}
	s.cfg.Trace.Span(resource, label, start, end)
}

// Spans returns the recorded occupancies, ordered by start time.
func (s *SSD) Spans() []Span {
	out := append([]Span(nil), s.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Resource < out[j].Resource
	})
	return out
}

// cmdLabel names the n-th read command like the paper labels them:
// A, B, C, ..., Z, A1, B1, ...
func cmdLabel(n int) string {
	letter := string(rune('A' + n%26))
	if n < 26 {
		return letter
	}
	return fmt.Sprintf("%s%d", letter, n/26)
}

// RenderGantt draws spans as a text Gantt chart: one row per
// resource, one column per usPerCol microseconds. Retry occupancies
// (labels ending in ') render with their base letter lowercased so
// the retry phase is visible.
func RenderGantt(spans []Span, usPerCol float64) string {
	if len(spans) == 0 {
		return "(no spans recorded)\n"
	}
	var resources []string
	seen := map[string]bool{}
	var maxEnd sim.Time
	for _, sp := range spans {
		if !seen[sp.Resource] {
			seen[sp.Resource] = true
			resources = append(resources, sp.Resource)
		}
		if sp.End > maxEnd {
			maxEnd = sp.End
		}
	}
	sort.Strings(resources)
	cols := int(maxEnd.Microseconds()/usPerCol) + 1
	if cols > 400 {
		cols = 400
	}
	rows := make(map[string][]byte, len(resources))
	for _, r := range resources {
		rows[r] = []byte(strings.Repeat(".", cols))
	}
	for _, sp := range spans {
		row := rows[sp.Resource]
		glyph := byte('?')
		if len(sp.Label) > 0 {
			glyph = sp.Label[0]
			if strings.HasSuffix(sp.Label, "'") {
				glyph = byte(strings.ToLower(sp.Label[:1])[0])
			}
		}
		c0 := int(sp.Start.Microseconds() / usPerCol)
		c1 := int(sp.End.Microseconds() / usPerCol)
		for c := c0; c <= c1 && c < cols; c++ {
			row[c] = glyph
		}
	}
	var b strings.Builder
	for _, r := range resources {
		fmt.Fprintf(&b, "%-6s |%s|\n", r, rows[r])
	}
	fmt.Fprintf(&b, "%-6s  0%*s\n", "us", cols-1, fmt.Sprintf("%.0f", float64(cols)*usPerCol))
	return b.String()
}
