package ssd

import (
	"testing"

	"repro/internal/sim"
)

func TestChannelTransfersFIFO(t *testing.T) {
	eng := sim.NewEngine()
	ch := newChannelStation(eng, 10*sim.Microsecond, 2)
	var order []int
	mk := func(id int) *xferJob {
		return &xferJob{kind: xferRead, pages: 1, engineTime: sim.Microsecond,
			onDecoded: func() { order = append(order, id) }}
	}
	eng.At(0, func() {
		ch.submit(mk(1))
		ch.submit(mk(2))
		ch.submit(mk(3))
	})
	eng.Run()
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("decode order %v", order)
		}
	}
	if !ch.quiesced() {
		t.Fatal("channel not quiesced")
	}
}

func TestChannelCorUncorSplit(t *testing.T) {
	eng := sim.NewEngine()
	ch := newChannelStation(eng, 10*sim.Microsecond, 2)
	eng.At(0, func() {
		ch.submit(&xferJob{kind: xferRead, pages: 4, uncorPages: 1, engineTime: 0})
	})
	eng.Run()
	u := ch.usage()
	if u.Cor != 30*sim.Microsecond || u.Uncor != 10*sim.Microsecond {
		t.Fatalf("cor=%v uncor=%v", u.Cor, u.Uncor)
	}
}

func TestChannelWriteAccounting(t *testing.T) {
	eng := sim.NewEngine()
	ch := newChannelStation(eng, 10*sim.Microsecond, 2)
	done := false
	eng.At(0, func() {
		ch.submit(&xferJob{kind: xferWrite, pages: 3, onDecoded: func() { done = true }})
	})
	eng.Run()
	if !done {
		t.Fatal("write completion not delivered")
	}
	u := ch.usage()
	if u.Write != 30*sim.Microsecond || u.Cor != 0 {
		t.Fatalf("write=%v cor=%v", u.Write, u.Cor)
	}
}

func TestChannelECCBufferBackpressure(t *testing.T) {
	// Two slow decodes fill the two buffer slots; the third transfer
	// must wait for the first decode to finish even though the wires
	// are free — the Fig. 7 ECCWAIT condition.
	eng := sim.NewEngine()
	ch := newChannelStation(eng, 10*sim.Microsecond, 2)
	var thirdDecoded sim.Time
	eng.At(0, func() {
		ch.submit(&xferJob{kind: xferRead, pages: 1, engineTime: 100 * sim.Microsecond})
		ch.submit(&xferJob{kind: xferRead, pages: 1, engineTime: 100 * sim.Microsecond})
		ch.submit(&xferJob{kind: xferRead, pages: 1, engineTime: sim.Microsecond,
			onDecoded: func() { thirdDecoded = eng.Now() }})
	})
	eng.Run()
	// Timeline: x1 0-10, decode1 10-110; x2 10-20 (slot 2);
	// x3 blocked until decode1 frees a slot at 110; x3 110-120;
	// decode2 110-210; decode3 210-211.
	if want := 211 * sim.Microsecond; thirdDecoded != want {
		t.Fatalf("third decode at %v, want %v", thirdDecoded, want)
	}
	u := ch.usage()
	// ECCWAIT: channel idle and blocked during [20, 110).
	if want := 90 * sim.Microsecond; u.ECCWait != want {
		t.Fatalf("eccwait = %v, want %v", u.ECCWait, want)
	}
}

func TestChannelNoECCWaitWhenBufferDeep(t *testing.T) {
	eng := sim.NewEngine()
	ch := newChannelStation(eng, 10*sim.Microsecond, 8)
	eng.At(0, func() {
		for i := 0; i < 4; i++ {
			ch.submit(&xferJob{kind: xferRead, pages: 1, engineTime: 100 * sim.Microsecond})
		}
	})
	eng.Run()
	if u := ch.usage(); u.ECCWait != 0 {
		t.Fatalf("eccwait = %v with deep buffer", u.ECCWait)
	}
}

func TestChannelWriteBypassesECCBuffer(t *testing.T) {
	// A write transfer must proceed while the ECC buffer is full.
	eng := sim.NewEngine()
	ch := newChannelStation(eng, 10*sim.Microsecond, 1)
	var writeDone sim.Time
	eng.At(0, func() {
		ch.submit(&xferJob{kind: xferRead, pages: 1, engineTime: 500 * sim.Microsecond})
		ch.submit(&xferJob{kind: xferWrite, pages: 1, onDecoded: func() { writeDone = eng.Now() }})
	})
	eng.Run()
	if writeDone != 20*sim.Microsecond {
		t.Fatalf("write done at %v, want 20us (not blocked by decode)", writeDone)
	}
}

func TestChannelUsageFractionsSumToOne(t *testing.T) {
	eng := sim.NewEngine()
	ch := newChannelStation(eng, 10*sim.Microsecond, 2)
	eng.At(0, func() {
		ch.submit(&xferJob{kind: xferRead, pages: 2, uncorPages: 1, engineTime: 50 * sim.Microsecond})
		ch.submit(&xferJob{kind: xferWrite, pages: 1})
	})
	eng.At(300*sim.Microsecond, func() {}) // extend the window with idle time
	eng.Run()
	idle, cor, uncor, wait := ch.usage().Fractions()
	sum := idle + cor + uncor + wait
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if idle <= 0 {
		t.Fatal("expected idle time in the window")
	}
}

func TestChannelUsageEmptyWindow(t *testing.T) {
	eng := sim.NewEngine()
	ch := newChannelStation(eng, 10*sim.Microsecond, 2)
	idle, cor, uncor, wait := ch.usage().Fractions()
	if idle != 1 || cor != 0 || uncor != 0 || wait != 0 {
		t.Fatal("zero-window fractions wrong")
	}
}
