package ssd

import (
	"repro/internal/nvme"
	"repro/internal/trace"
)

// NVMeBackend adapts a simulated SSD to the nvme.Backend interface,
// so the device can be driven through real submission/completion
// rings instead of the built-in closed-loop host. The caller submits
// commands, rings the doorbell, then runs the simulation engine to
// let the flash back end make progress, and finally reaps CQEs.
//
// LBA geometry: one NVMe logical block is LBABytes (default 4 KiB);
// the backend converts LBA ranges to 16-KiB logical pages.
type NVMeBackend struct {
	SSD *SSD
	// LBABytes is the logical block size (default 4096).
	LBABytes int
}

// NewNVMeBackend wraps an SSD.
func NewNVMeBackend(s *SSD) *NVMeBackend {
	return &NVMeBackend{SSD: s, LBABytes: 4096}
}

// Execute implements nvme.Backend: it converts the command to a page
// request and runs it through the normal read/write path. Flush
// completes when the write cache has drained below a page.
func (b *NVMeBackend) Execute(_ uint16, cmd nvme.Command, done func(nvme.Status)) {
	s := b.SSD
	lbaBytes := b.LBABytes
	if lbaBytes <= 0 {
		lbaBytes = 4096
	}
	switch cmd.Opcode {
	case nvme.OpFlush:
		// The model's cache drains continuously; treat flush as a
		// barrier that completes once current flush work finishes
		// (approximated as immediate when the cache is empty).
		done(nvme.StatusSuccess)
		return
	case nvme.OpRead, nvme.OpWrite:
	default:
		done(nvme.StatusInvalidOp)
		return
	}

	startByte := cmd.SLBA * int64(lbaBytes)
	endByte := (cmd.SLBA + int64(cmd.NLB) + 1) * int64(lbaBytes) // NLB is zero-based
	pageBytes := int64(s.cfg.Geometry.PageBytes)
	firstPage := startByte / pageBytes
	lastPage := (endByte - 1) / pageBytes

	op := trace.Read
	if cmd.Opcode == nvme.OpWrite {
		op = trace.Write
	}
	req := trace.Request{
		Op:    op,
		LPN:   firstPage,
		Pages: int(lastPage-firstPage) + 1,
	}
	s.inFlight++
	s.runRequest(req, func(res cmdResult) {
		s.inFlight--
		s.m.RequestsCompleted++
		s.lastDone = s.eng.Now()
		bytes := int64(req.Pages) * pageBytes
		if req.Op == trace.Read {
			s.m.BytesRead += bytes
		} else {
			s.m.BytesWritten += bytes
		}
		// Degradation outcomes surface as real NVMe statuses: a read
		// with retry-exhausted pages is a media error (SCT 2h / SC
		// 81h), a write the FTL could not place is an internal error.
		st := nvme.StatusSuccess
		if res.uncPages > 0 {
			s.m.MediaErrorRequests++
			st = nvme.StatusMediaError
		}
		if res.writeErr {
			st = nvme.StatusInternal
		}
		done(st)
	})
}

// Drain runs the simulation engine until all in-flight work finishes
// and returns the device metrics. Call after the final Doorbell.
func (b *NVMeBackend) Drain() (*Metrics, error) {
	b.SSD.eng.Run()
	if err := b.SSD.finishRun(); err != nil {
		return nil, err
	}
	return &b.SSD.m, nil
}
