// Package ssd is a discrete-event simulator of a modern multi-channel
// NVMe SSD, built to evaluate read-retry schemes: it models flash
// dies, shared channels with dedicated channel-level ECC engines and
// bounded raw-data buffers, a page-mapping FTL with garbage
// collection, and a closed-loop host. It is the Go counterpart of the
// extended MQSim-E the RiF paper uses (§VI-A).
package ssd

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scheme selects the read-retry handling of the simulated SSD (§VI-A).
type Scheme int

const (
	// Zero is the hypothetical SSD whose decodes always succeed
	// (SSD_zero): the performance upper bound.
	Zero Scheme = iota
	// One is an SSD with an ideal off-chip retry: one retry loop
	// (NRR = 1) recovers any failed page (SSD_one).
	One
	// Sentinel is the Sentinel baseline: off-chip retry that may need
	// an extra off-chip read of sentinel cells before the re-read.
	Sentinel
	// SWR is Swift-Read: on decode failure the chip runs a two-sense
	// Swift-Read command, then the page is re-transferred.
	SWR
	// SWRPlus is SWR with proactive VREF tracking, which lowers the
	// first-read RBER and hence the retry frequency.
	SWRPlus
	// RPOnly places the read-retry predictor at the controller
	// (RPSSD): doomed decodes are cut short after tPRED, but
	// uncorrectable pages still cross the channel.
	RPOnly
	// RiF is the full Retry-in-Flash design: on-die prediction (RP)
	// plus in-die Swift-Read re-read (RVS); uncorrectable pages never
	// cross the channel except on misprediction.
	RiF
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case Zero:
		return "SSDzero"
	case One:
		return "SSDone"
	case Sentinel:
		return "SENC"
	case SWR:
		return "SWR"
	case SWRPlus:
		return "SWR+"
	case RPOnly:
		return "RPSSD"
	case RiF:
		return "RiFSSD"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// AllSchemes lists every scheme in the paper's comparison order.
func AllSchemes() []Scheme {
	return []Scheme{Zero, One, Sentinel, SWR, SWRPlus, RPOnly, RiF}
}

// SchemeByName resolves a scheme from its paper name (as printed by
// String), case-insensitively.
func SchemeByName(name string) (Scheme, error) {
	for _, s := range AllSchemes() {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	var names []string
	for _, s := range AllSchemes() {
		names = append(names, s.String())
	}
	return 0, fmt.Errorf("ssd: unknown scheme %q (want one of %s)", name, strings.Join(names, ", "))
}

// Timing holds the latency parameters of Table I.
type Timing struct {
	TR        sim.Time // page sense
	TProg     sim.Time // page program
	TErase    sim.Time // block erase
	TDMAPage  sim.Time // channel transfer of one 16-KiB page
	TPred     sim.Time // RP prediction of one page (4-KiB chunk checked)
	THostPage sim.Time // host-interface transfer of one 16-KiB page
}

// PaperTiming returns Table I: tR=40us, tPROG=400us, tBERS=3.5ms,
// tDMA ~13us/page (1.2 GB/s channel), tPRED=2.5us, and a PCIe 4.0 x4
// host link (8 GB/s -> 2us/page).
func PaperTiming() Timing {
	return Timing{
		TR:        40 * sim.Microsecond,
		TProg:     400 * sim.Microsecond,
		TErase:    3500 * sim.Microsecond,
		TDMAPage:  sim.Time(13.25 * float64(sim.Microsecond)), // 16 KiB / 1.2 GB/s
		TPred:     sim.Time(2.5 * float64(sim.Microsecond)),
		THostPage: 2 * sim.Microsecond, // 16 KiB / 8 GB/s
	}
}

// Config assembles a simulated SSD.
type Config struct {
	Geometry nand.Geometry
	Timing   Timing
	Scheme   Scheme

	// PECycles is the array's wear state (the paper evaluates 0K, 1K
	// and 2K).
	PECycles int

	// Seed drives every random stream of the run.
	Seed uint64

	// QueueDepth is the closed-loop host's outstanding request count.
	QueueDepth int

	// ECCBufferSlots is the channel ECC engine's raw-data capacity in
	// die-command units, including the one being decoded. Two slots
	// reproduce the paper's Fig. 7 back-pressure (one decoding + one
	// landed).
	ECCBufferSlots int

	// SentinelExtraReadProb is the chance a Sentinel retry needs an
	// extra off-chip read because the page type's VREF set differs
	// from the sentinel read's (2 of 3 TLC page types in the paper's
	// description).
	SentinelExtraReadProb float64

	// MaxRetryRounds bounds controller-driven retry loops. A page
	// still failing after the last round is reported uncorrectable:
	// it is counted in Metrics and the request completes with an NVMe
	// media-error status instead of stalling or panicking.
	MaxRetryRounds int

	// RetryBackoff adds (round-1)*RetryBackoff of extra sense time to
	// each successive controller-driven retry round, modelling the
	// deeper (slower) read-retry table entries a controller walks as
	// earlier entries keep failing. Zero (the default, used by all
	// paper figures) keeps every round at the scheme's base re-sense
	// latency.
	RetryBackoff sim.Time

	// ReadReclaimThreshold triggers the read-reclaim background job
	// when a block's sense count since its last erase reaches it: the
	// block's valid pages migrate elsewhere (competing with GC and
	// host traffic for die time) and the erase clears the disturb
	// counter, exactly like a GC-victim erase. Zero disables reclaim
	// (disturb then accumulates unboundedly, the pre-reclaim model).
	ReadReclaimThreshold int64

	// Faults configures deterministic fault injection (transient
	// sense failures, stuck blocks, die dropout, channel corruption,
	// forced RP misprediction, LDPC decode timeout). The zero value —
	// the default for every paper figure — injects nothing and leaves
	// all random streams untouched.
	Faults faults.Config

	// GCFreeBlockLow triggers garbage collection in a plane when its
	// free block count falls to this threshold.
	GCFreeBlockLow int

	// WriteCachePages sizes the controller's DRAM write buffer in
	// 16-KiB pages. Writes complete to the host once buffered; the
	// flash program happens in the background (as in MQSim-E). Zero
	// disables the cache (write-through).
	WriteCachePages int

	// PredictionFloor overrides the RP accuracy model's asymptotic
	// accuracy (0 keeps the calibrated default). Used by the
	// chunk-size ablation: smaller chunks predict faster but noisier.
	PredictionFloor float64

	// RiFSecondCheck enables the footnote-4 extension: after the
	// in-die re-read, RP checks the second sense too, catching pages
	// whose adjusted-VREF read is still uncorrectable before they
	// cross the channel (at the cost of another tPRED + tR).
	RiFSecondCheck bool

	// OpenLoop issues requests at their trace arrival times instead
	// of the closed-loop queue-depth discipline (QueueDepth is then
	// ignored). Use with timestamped traces, e.g. trace.Replayer.
	OpenLoop bool

	// MaxInFlight bounds the open-loop host's outstanding request
	// count: an arrival that finds the ring full is held (exactly one
	// is ever pending) and admitted by the next completion, with its
	// latency still measured from its arrival instant. Zero leaves
	// admission unbounded, the pre-existing open-loop behaviour. It is
	// an open-loop-only knob; Validate rejects it with closed-loop
	// hosts.
	MaxInFlight int

	// LatencySketch, when non-nil, receives every per-request read
	// latency (µs) instead of the exact Metrics.ReadLatencies sample,
	// keeping memory flat for million-request replays. Quantiles then
	// carry the stats.Sketch error bound.
	LatencySketch *stats.Sketch `json:"-"`

	// DiePolicy selects read/program scheduling on each die. The
	// default DieFIFO matches the paper-calibrated results;
	// DieReadPriority and DieSuspension are modern-controller
	// extensions.
	DiePolicy DiePolicy

	// ResumePenalty is the extra latency a suspended program pays on
	// resume (DieSuspension only).
	ResumePenalty sim.Time

	// RecordSpans captures per-resource occupancy spans so execution
	// timelines (Figs. 7/8) can be rendered; costs memory, off by
	// default.
	RecordSpans bool

	// Obs, when non-nil, receives the run's metrics: per-channel
	// usage and queue high-waters, ECC decode latency and buffer
	// occupancy, the RP confusion matrix, GC and write-cache
	// activity, and sim-kernel counters. Nil (the default) disables
	// collection at zero hot-path cost.
	Obs *obs.Registry `json:"-"`

	// Trace, when non-nil, receives every die/channel/ECC occupancy
	// as a sim-time span (bounded ring buffer); export it with
	// Tracer.WriteChromeTrace. Nil disables tracing.
	Trace *obs.Tracer `json:"-"`

	// NANDParams configures the reliability physics; zero value means
	// nand.DefaultModelParams.
	NANDParams nand.ModelParams
}

// DefaultConfig returns the paper's evaluated SSD (Table I) with the
// given scheme and wear state.
func DefaultConfig(scheme Scheme, peCycles int) Config {
	return Config{
		Geometry:              nand.PaperGeometry(),
		Timing:                PaperTiming(),
		Scheme:                scheme,
		PECycles:              peCycles,
		Seed:                  1,
		QueueDepth:            256,
		ECCBufferSlots:        2,
		SentinelExtraReadProb: 2.0 / 3.0,
		MaxRetryRounds:        3,
		ReadReclaimThreshold:  100_000, // MQSim's default read-reclaim limit
		GCFreeBlockLow:        2,
		WriteCachePages:       4096, // 64 MiB of controller DRAM
		ResumePenalty:         20 * sim.Microsecond,
		NANDParams:            nand.DefaultModelParams(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	switch {
	case c.Scheme < Zero || c.Scheme > RiF:
		return fmt.Errorf("ssd: unknown scheme %d", int(c.Scheme))
	case c.Timing.TR <= 0 || c.Timing.TProg <= 0 || c.Timing.TErase <= 0:
		return fmt.Errorf("ssd: non-positive NAND timing %+v", c.Timing)
	case c.Timing.TDMAPage <= 0:
		return fmt.Errorf("ssd: non-positive DMA time")
	case c.PECycles < 0:
		return fmt.Errorf("ssd: negative P/E cycles %d", c.PECycles)
	case c.QueueDepth <= 0:
		return fmt.Errorf("ssd: queue depth %d", c.QueueDepth)
	case c.MaxInFlight < 0:
		return fmt.Errorf("ssd: max in-flight %d is negative; use 0 for unbounded open-loop admission", c.MaxInFlight)
	case c.MaxInFlight > 0 && !c.OpenLoop:
		return fmt.Errorf("ssd: MaxInFlight=%d is an open-loop knob but OpenLoop is false; closed-loop admission is bounded by QueueDepth — set OpenLoop or drop MaxInFlight", c.MaxInFlight)
	case c.ECCBufferSlots < 1:
		return fmt.Errorf("ssd: ECC buffer slots %d", c.ECCBufferSlots)
	case c.SentinelExtraReadProb < 0 || c.SentinelExtraReadProb > 1:
		return fmt.Errorf("ssd: sentinel extra-read prob %v", c.SentinelExtraReadProb)
	case c.MaxRetryRounds < 1:
		return fmt.Errorf("ssd: max retry rounds %d", c.MaxRetryRounds)
	case c.WriteCachePages < 0:
		return fmt.Errorf("ssd: write cache pages %d", c.WriteCachePages)
	case c.PredictionFloor < 0 || c.PredictionFloor > 1:
		return fmt.Errorf("ssd: prediction floor %v", c.PredictionFloor)
	case c.DiePolicy < DieFIFO || c.DiePolicy > DieSuspension:
		return fmt.Errorf("ssd: die policy %d", c.DiePolicy)
	case c.ResumePenalty < 0:
		return fmt.Errorf("ssd: resume penalty %v", c.ResumePenalty)
	case c.RetryBackoff < 0:
		return fmt.Errorf("ssd: retry backoff %v", c.RetryBackoff)
	case c.ReadReclaimThreshold < 0:
		return fmt.Errorf("ssd: read-reclaim threshold %d is negative; use 0 to disable reclaim", c.ReadReclaimThreshold)
	}
	// The read path's deepest retry round pays
	// sim.Time(MaxRetryRounds-1)*RetryBackoff of extra sense time; a
	// ladder deep enough to overflow the int64 sim clock would wrap
	// into the past and silently corrupt event ordering, so reject it
	// here instead.
	if c.RetryBackoff > 0 && c.MaxRetryRounds > 1 &&
		c.RetryBackoff > sim.MaxTime/sim.Time(c.MaxRetryRounds-1) {
		return fmt.Errorf("ssd: retry backoff %v over %d rounds overflows the sim clock",
			c.RetryBackoff, c.MaxRetryRounds)
	}
	return nil
}
