package ssd

import (
	"testing"
)

func TestRunQueuesBasic(t *testing.T) {
	cfg := smallConfig(RiF, 1000)
	s, err := New(cfg, smallWorkload(t, "Ali124", 1))
	if err != nil {
		t.Fatal(err)
	}
	queues := []HostQueue{
		{Workload: smallWorkload(t, "Ali124", 2), Depth: 32},
		{Workload: smallWorkload(t, "Ali2", 3), Depth: 32},
	}
	m, perQueue, err := s.RunQueues(queues, 200)
	if err != nil {
		t.Fatal(err)
	}
	if m.RequestsCompleted != 400 {
		t.Fatalf("completed %d, want 400", m.RequestsCompleted)
	}
	if len(perQueue) != 2 {
		t.Fatalf("%d queue reports", len(perQueue))
	}
	for qi, q := range perQueue {
		if q.RequestsCompleted != 200 {
			t.Fatalf("queue %d completed %d", qi, q.RequestsCompleted)
		}
	}
	// The read-heavy queue must carry most of the read bytes; the
	// write-heavy queue most of the write bytes.
	if perQueue[0].BytesRead <= perQueue[1].BytesRead {
		t.Fatal("read-heavy queue read fewer bytes than the write-heavy one")
	}
	if perQueue[0].BytesWritten >= perQueue[1].BytesWritten {
		t.Fatal("write-heavy queue wrote fewer bytes than the read-heavy one")
	}
	// Per-queue bytes sum to the device totals.
	if perQueue[0].BytesRead+perQueue[1].BytesRead != m.BytesRead {
		t.Fatal("per-queue read bytes do not sum")
	}
}

func TestRunQueuesValidation(t *testing.T) {
	s, err := New(smallConfig(Zero, 0), smallWorkload(t, "Sys0", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RunQueues(nil, 10); err == nil {
		t.Fatal("empty queue list accepted")
	}
	if _, _, err := s.RunQueues([]HostQueue{{Workload: nil}}, 10); err == nil {
		t.Fatal("nil workload accepted")
	}
	s2, _ := New(smallConfig(Zero, 0), smallWorkload(t, "Sys0", 1))
	if _, _, err := s2.RunQueues([]HostQueue{{Workload: smallWorkload(t, "Sys0", 1)}}, 0); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestRunQueuesDefaultDepth(t *testing.T) {
	s, err := New(smallConfig(Zero, 0), smallWorkload(t, "Sys0", 1))
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := s.RunQueues([]HostQueue{{Workload: smallWorkload(t, "Sys0", 2)}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.RequestsCompleted != 100 {
		t.Fatalf("completed %d", m.RequestsCompleted)
	}
}

func TestMultiQueueRetryIsolation(t *testing.T) {
	// On a worn device, the read tenant's p99 should be much better
	// under RiF than under SENC even with a noisy write neighbour.
	tail := func(scheme Scheme) float64 {
		s, err := New(smallConfig(scheme, 2000), smallWorkload(t, "Ali124", 1))
		if err != nil {
			t.Fatal(err)
		}
		queues := []HostQueue{
			{Workload: smallWorkload(t, "Ali124", 2), Depth: 32},
			{Workload: smallWorkload(t, "Ali2", 3), Depth: 32},
		}
		_, perQueue, err := s.RunQueues(queues, 300)
		if err != nil {
			t.Fatal(err)
		}
		return perQueue[0].ReadLatencies.Percentile(99)
	}
	senc := tail(Sentinel)
	rf := tail(RiF)
	if rf >= senc {
		t.Fatalf("RiF read-tenant p99 %vus not below SENC %vus", rf, senc)
	}
}

func TestRunQueuesDeterministic(t *testing.T) {
	mk := func() (*Metrics, []QueueMetrics) {
		s, err := New(smallConfig(RiF, 1000), smallWorkload(t, "Ali124", 1))
		if err != nil {
			t.Fatal(err)
		}
		queues := []HostQueue{
			{Workload: smallWorkload(t, "Ali124", 7), Depth: 16},
			{Workload: smallWorkload(t, "Sys0", 8), Depth: 16},
		}
		m, pq, err := s.RunQueues(queues, 150)
		if err != nil {
			t.Fatal(err)
		}
		return m, pq
	}
	m1, q1 := mk()
	m2, q2 := mk()
	if m1.Makespan != m2.Makespan || q1[0].BytesRead != q2[0].BytesRead || q1[1].BytesWritten != q2[1].BytesWritten {
		t.Fatal("multi-queue runs diverged")
	}
}
