package ssd

import (
	"fmt"
	"sort"

	"repro/internal/nand"
	"repro/internal/sim"
)

// FTL is a page-mapping flash translation layer. Logical pages are
// striped plane-first across the array so that consecutive pages form
// multi-plane groups on one die and successive groups fan out across
// channels (maximizing both multi-plane and channel parallelism, as
// in MQSim's default mapping).
//
// The physical space of every plane is split in two: the lower half
// holds the pre-fill image (cold data present before the simulation,
// never rewritten), the upper half is the active write region managed
// with free-block lists and greedy garbage collection.
type FTL struct {
	geo       nand.Geometry
	writeBase int // first block of the write region in every plane

	// WearOf, when set, reports a block's erase count so allocation
	// can pick the least-worn free block (dynamic wear leveling).
	WearOf func(plane nand.Address, block int) int

	// DieDown, when set, reports a dead die by dense index; Write then
	// fails writes over to the same plane offset of the next live die.
	DieDown func(dieIdx int) bool

	// Logical map for pages written during the run.
	written map[int64]mapEntry

	planes []planeState

	// retired holds grown-bad blocks pulled from circulation, keyed by
	// plane index then block index.
	retired map[int]map[int]bool

	// Counters surfaced through Metrics.
	gcRuns         int64
	pagesRelocated int64
	dieFailovers   int64
}

type mapEntry struct {
	addr      nand.Address
	writtenAt sim.Time
}

type planeState struct {
	addr        nand.Address // channel/die/plane coordinates
	cursorBlock int
	cursorPage  int
	freeBlocks  []int
	blocks      map[int]*blockState // sim-written blocks by block index
}

type blockState struct {
	valid map[int]int64 // page-in-block -> lpn
}

// NewFTL builds the translation layer for a geometry.
func NewFTL(geo nand.Geometry) *FTL {
	f := &FTL{
		geo:       geo,
		writeBase: geo.BlocksPerPlane / 2,
		written:   make(map[int64]mapEntry),
	}
	nPlanes := geo.TotalDies() * geo.PlanesPerDie
	f.planes = make([]planeState, nPlanes)
	for i := range f.planes {
		ch, die, pl := f.planeCoords(i)
		p := &f.planes[i]
		p.addr = nand.Address{Channel: ch, Die: die, Plane: pl}
		p.blocks = make(map[int]*blockState)
		p.cursorBlock = -1
		// Free blocks: the whole write region, allocated low-first.
		for b := geo.BlocksPerPlane - 1; b >= f.writeBase; b-- {
			p.freeBlocks = append(p.freeBlocks, b)
		}
	}
	return f
}

// planeIndexOfAddr maps physical coordinates back to the plane index.
func (f *FTL) planeIndexOfAddr(a nand.Address) int {
	return ((a.Channel*f.geo.DiesPerChan)+a.Die)*f.geo.PlanesPerDie + a.Plane
}

// planeIndex maps an lpn to its plane (striping).
func (f *FTL) planeIndex(lpn int64) int {
	p := f.geo.PlanesPerDie
	c := f.geo.Channels
	d := f.geo.DiesPerChan
	pl := int(lpn % int64(p))
	group := lpn / int64(p)
	ch := int(group % int64(c))
	die := int((group / int64(c)) % int64(d))
	return ((ch*d)+die)*p + pl
}

func (f *FTL) planeCoords(idx int) (ch, die, pl int) {
	p := f.geo.PlanesPerDie
	d := f.geo.DiesPerChan
	pl = idx % p
	idx /= p
	die = idx % d
	ch = idx / d
	return ch, die, pl
}

// prefillAddress is the deterministic physical home of never-written
// cold data.
func (f *FTL) prefillAddress(lpn int64) nand.Address {
	pIdx := f.planeIndex(lpn)
	ch, die, pl := f.planeCoords(pIdx)
	groupsPerRound := int64(f.geo.Channels * f.geo.DiesPerChan)
	perPlane := (lpn / int64(f.geo.PlanesPerDie)) / groupsPerRound
	capacity := int64(f.writeBase) * int64(f.geo.PagesPerBlock)
	perPlane %= capacity // footprints beyond the pre-fill region alias
	return nand.Address{
		Channel: ch,
		Die:     die,
		Plane:   pl,
		Block:   int(perPlane / int64(f.geo.PagesPerBlock)),
		Page:    int(perPlane % int64(f.geo.PagesPerBlock)),
	}
}

// Lookup resolves a logical page. For pages written during the run it
// reports the mapped address and the write timestamp; for cold pages
// it reports the pre-fill address with written == false.
func (f *FTL) Lookup(lpn int64) (addr nand.Address, writtenAt sim.Time, written bool) {
	if e, ok := f.written[lpn]; ok {
		return e.addr, e.writtenAt, true
	}
	return f.prefillAddress(lpn), 0, false
}

// GCWork describes the relocation the caller must charge to the die
// before the write that triggered it proceeds.
type GCWork struct {
	Plane          nand.Address // channel/die/plane of the collected plane
	VictimBlock    int          // block index erased within the plane
	PagesRelocated int
	Erases         int
}

// Write maps lpn to a fresh physical page, invalidating any previous
// mapping. It returns the new address and any garbage-collection work
// performed to free space. gcLow is the free-block low-water mark.
func (f *FTL) Write(lpn int64, now sim.Time, gcLow int) (nand.Address, *GCWork, error) {
	pIdx := f.planeIndex(lpn)
	if f.DieDown != nil {
		live, ok := f.failover(pIdx)
		if !ok {
			return nand.Address{}, nil, fmt.Errorf("ssd: every die down, cannot place lpn %d", lpn)
		}
		if live != pIdx {
			f.dieFailovers++
		}
		pIdx = live
	}
	p := &f.planes[pIdx]

	var gc *GCWork
	if p.cursorBlock < 0 || p.cursorPage >= f.geo.PagesPerBlock {
		if len(p.freeBlocks) <= gcLow {
			work, err := f.collect(p)
			if err != nil {
				return nand.Address{}, nil, err
			}
			gc = work
		}
		if len(p.freeBlocks) == 0 {
			return nand.Address{}, nil, fmt.Errorf("ssd: plane %v out of free blocks", p.addr)
		}
		p.cursorBlock = f.popFreeBlock(p)
		p.cursorPage = 0
		p.blocks[p.cursorBlock] = &blockState{valid: make(map[int]int64)}
	}

	addr := p.addr
	addr.Block = p.cursorBlock
	addr.Page = p.cursorPage
	p.cursorPage++

	f.invalidate(lpn)
	p.blocks[p.cursorBlock].valid[addr.Page] = lpn
	f.written[lpn] = mapEntry{addr: addr, writtenAt: now}
	return addr, gc, nil
}

// invalidate drops lpn's old physical page, if any. The old mapping's
// own coordinates locate the plane: with die failover the page may
// not live on the plane the striping would predict.
func (f *FTL) invalidate(lpn int64) {
	e, ok := f.written[lpn]
	if !ok {
		return
	}
	p := &f.planes[f.planeIndexOfAddr(e.addr)]
	if b, ok := p.blocks[e.addr.Block]; ok {
		delete(b.valid, e.addr.Page)
		if len(b.valid) == 0 && e.addr.Block != p.cursorBlock {
			// A closed block just lost its last valid page. Its map's
			// bucket arrays never shrink, and over a long replay every
			// write block eventually churns through a fully-grown map —
			// release it (GC still sees the block as a free victim:
			// len(nil) == 0; only Write appends to valid, and only for
			// the open cursor block).
			b.valid = nil
		}
	}
}

// failover redirects a write aimed at a dead die to the same plane
// offset on the next live die, scanning in dense-die order. It
// reports false when every die is down.
func (f *FTL) failover(pIdx int) (int, bool) {
	planes := f.geo.PlanesPerDie
	dies := f.geo.TotalDies()
	dieIdx := pIdx / planes
	off := pIdx % planes
	for k := 0; k < dies; k++ {
		d := (dieIdx + k) % dies
		if !f.DieDown(d) {
			return d*planes + off, true
		}
	}
	return 0, false
}

// RetireBlock pulls a grown-bad block out of circulation: it is
// removed from its plane's free list (if free) and will never be
// returned to it by garbage collection.
func (f *FTL) RetireBlock(a nand.Address) {
	pIdx := f.planeIndexOfAddr(a)
	if f.retired == nil {
		f.retired = make(map[int]map[int]bool)
	}
	if f.retired[pIdx] == nil {
		f.retired[pIdx] = make(map[int]bool)
	}
	f.retired[pIdx][a.Block] = true
	p := &f.planes[pIdx]
	for i, b := range p.freeBlocks {
		if b == a.Block {
			p.freeBlocks = append(p.freeBlocks[:i], p.freeBlocks[i+1:]...)
			return
		}
	}
}

// isRetired reports whether a plane's block has been retired.
func (f *FTL) isRetired(pIdx, block int) bool {
	return f.retired[pIdx][block]
}

// Failovers reports how many writes were re-homed off dead dies.
func (f *FTL) Failovers() int64 { return f.dieFailovers }

// collect performs greedy garbage collection on a plane: the closed
// block with the fewest valid pages is relocated (copyback, so no
// channel traffic) and erased.
func (f *FTL) collect(p *planeState) (*GCWork, error) {
	victim := -1
	best := f.geo.PagesPerBlock + 1
	for b, st := range p.blocks {
		if b == p.cursorBlock {
			continue
		}
		if n := len(st.valid); n < best {
			best = n
			victim = b
		}
	}
	if victim < 0 {
		return nil, fmt.Errorf("ssd: plane %v has no GC victim", p.addr)
	}
	st := p.blocks[victim]
	work := &GCWork{Plane: p.addr, VictimBlock: victim, PagesRelocated: len(st.valid), Erases: 1}

	if _, err := f.relocateValid(p, st); err != nil {
		return nil, err
	}
	delete(p.blocks, victim)
	if !f.isRetired(f.planeIndexOfAddr(p.addr), victim) {
		p.freeBlocks = append([]int{victim}, p.freeBlocks...)
	}
	f.gcRuns++
	f.pagesRelocated += int64(work.PagesRelocated)
	return work, nil
}

// relocateValid moves a block's valid pages into the cursor chain, in
// page order: map iteration order is randomized per run, and the order
// pages land on the cursor chain decides the post-GC physical layout
// (and thus every later read's timing). Write timestamps are
// preserved — relocation does not refresh retention age.
func (f *FTL) relocateValid(p *planeState, st *blockState) (int, error) {
	pages := make([]int, 0, len(st.valid))
	for page := range st.valid {
		pages = append(pages, page)
	}
	sort.Ints(pages)
	for _, page := range pages {
		lpn := st.valid[page]
		if p.cursorBlock < 0 || p.cursorPage >= f.geo.PagesPerBlock {
			if len(p.freeBlocks) == 0 {
				return 0, fmt.Errorf("ssd: plane %v wedged during relocation", p.addr)
			}
			p.cursorBlock = f.popFreeBlock(p)
			p.cursorPage = 0
			p.blocks[p.cursorBlock] = &blockState{valid: make(map[int]int64)}
		}
		addr := p.addr
		addr.Block = p.cursorBlock
		addr.Page = p.cursorPage
		p.cursorPage++
		p.blocks[p.cursorBlock].valid[addr.Page] = lpn
		old := f.written[lpn]
		f.written[lpn] = mapEntry{addr: addr, writtenAt: old.writtenAt}
	}
	return len(pages), nil
}

// ReclaimBlock migrates a specific write-region block's valid pages
// and erases it: the read-reclaim path. Unlike collect it does not
// pick a victim — the caller's disturb counter did — and it does not
// count into the GC statistics. It returns nil work (no error) when
// the block is not reclaimable right now: never written, already
// retired, or no free block to migrate into; the caller's counter
// reset re-arms the threshold.
func (f *FTL) ReclaimBlock(a nand.Address) (*GCWork, error) {
	pIdx := f.planeIndexOfAddr(a)
	p := &f.planes[pIdx]
	st, ok := p.blocks[a.Block]
	if !ok || f.isRetired(pIdx, a.Block) || len(p.freeBlocks) == 0 {
		return nil, nil
	}
	if a.Block == p.cursorBlock {
		// Reclaiming the open block: close the cursor first so its
		// pages do not relocate onto themselves.
		p.cursorBlock = -1
	}
	moved, err := f.relocateValid(p, st)
	if err != nil {
		return nil, err
	}
	delete(p.blocks, a.Block)
	p.freeBlocks = append([]int{a.Block}, p.freeBlocks...)
	return &GCWork{Plane: p.addr, VictimBlock: a.Block, PagesRelocated: moved, Erases: 1}, nil
}

// WriteBase reports the first block index of the write region: blocks
// below it hold the immutable pre-fill image.
func (f *FTL) WriteBase() int { return f.writeBase }

// popFreeBlock takes a block from the plane's free list: the
// least-worn one when wear information is available (dynamic wear
// leveling), otherwise the most recently freed.
func (f *FTL) popFreeBlock(p *planeState) int {
	idx := len(p.freeBlocks) - 1
	if f.WearOf != nil {
		best := f.WearOf(p.addr, p.freeBlocks[idx])
		for i, b := range p.freeBlocks[:idx] {
			if w := f.WearOf(p.addr, b); w < best {
				best = w
				idx = i
			}
		}
	}
	block := p.freeBlocks[idx]
	p.freeBlocks = append(p.freeBlocks[:idx], p.freeBlocks[idx+1:]...)
	return block
}

// FreeBlocks reports a plane's free-block count (for tests).
func (f *FTL) FreeBlocks(planeIdx int) int { return len(f.planes[planeIdx].freeBlocks) }

// PlaneCount reports the number of planes.
func (f *FTL) PlaneCount() int { return len(f.planes) }

// PlaneIndexOf exposes the striping for tests and the request
// splitter.
func (f *FTL) PlaneIndexOf(lpn int64) int { return f.planeIndex(lpn) }

// GCStats reports cumulative GC activity.
func (f *FTL) GCStats() (runs, relocated int64) { return f.gcRuns, f.pagesRelocated }
