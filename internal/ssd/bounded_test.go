package ssd

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// burst returns n simultaneous single-page reads: the hostile input
// for admission control.
func burst(n int) []trace.Request {
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{Op: trace.Read, LPN: int64(i * 4), Pages: 2}
	}
	return reqs
}

func TestBoundedRingCapsInFlight(t *testing.T) {
	cfg := smallConfig(Zero, 0)
	cfg.OpenLoop = true
	cfg.MaxInFlight = 8
	m := run(t, cfg, trace.NewReplayer(burst(120), 5), 120)
	if m.RequestsCompleted != 120 {
		t.Fatalf("completed %d", m.RequestsCompleted)
	}
	if m.PeakInFlight > 8 {
		t.Fatalf("ring bound violated: peak %d > 8", m.PeakInFlight)
	}
	if m.HeldArrivals == 0 {
		t.Fatal("a t=0 burst through an 8-deep ring held no arrivals")
	}
}

// TestBoundedRingLatencyFromArrival pins that a held request's latency
// includes its head-of-line wait: under a burst, a tight ring must not
// report lower tail latency than unbounded admission, or saturation
// would be invisible in the sweep.
func TestBoundedRingLatencyFromArrival(t *testing.T) {
	mk := func(bound int) *Metrics {
		cfg := smallConfig(Zero, 0)
		cfg.OpenLoop = true
		cfg.MaxInFlight = bound
		return run(t, cfg, trace.NewReplayer(burst(100), 5), 100)
	}
	bounded := mk(4)
	unbounded := mk(0)
	if unbounded.PeakInFlight <= 4 {
		t.Fatalf("burst never exceeded the bound unbounded: peak %d", unbounded.PeakInFlight)
	}
	bp99 := bounded.ReadLatencies.Percentile(99)
	up99 := unbounded.ReadLatencies.Percentile(99)
	if bp99 < up99*0.5 {
		t.Fatalf("bounded p99 %vus hides queueing (unbounded %vus)", bp99, up99)
	}
}

func TestOpenLoopSketchMatchesSample(t *testing.T) {
	reqs := make([]trace.Request, 300)
	for i := range reqs {
		reqs[i] = trace.Request{
			At: sim.Time(i) * 30 * sim.Microsecond, Op: trace.Read,
			LPN: int64(i * 8), Pages: 2,
		}
	}
	mk := func(sk *stats.Sketch) *Metrics {
		cfg := smallConfig(RiF, 2000)
		cfg.OpenLoop = true
		cfg.MaxInFlight = 64
		cfg.LatencySketch = sk
		return run(t, cfg, trace.NewReplayer(reqs, 10), 300)
	}
	exact := mk(nil)
	sk := stats.NewSketch(0)
	sketched := mk(sk)
	if sketched.ReadLatencies.N() != 0 {
		t.Fatalf("sketch mode still retained %d exact latencies", sketched.ReadLatencies.N())
	}
	if sk.N() != int64(exact.ReadLatencies.N()) {
		t.Fatalf("sketch saw %d reads, exact saw %d", sk.N(), exact.ReadLatencies.N())
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		got, want := sk.Quantile(q), exact.ReadLatencies.Quantile(q)
		if diff := got - want; diff < -sk.Alpha()*want-1e-9 || diff > sk.Alpha()*want+1e-9 {
			t.Fatalf("q=%v: sketch %v vs exact %v", q, got, want)
		}
	}
}

// finiteReplayer serves a fixed request slice once, then reports
// exhaustion — the shape of a streamed trace file.
type finiteReplayer struct {
	reqs []trace.Request
	next int
}

func (f *finiteReplayer) Next() trace.Request {
	r := f.reqs[f.next]
	f.next++
	return r
}
func (f *finiteReplayer) InitialAgeDays(int64) float64 { return 5 }
func (f *finiteReplayer) Exhausted() bool              { return f.next >= len(f.reqs) }

func TestOpenLoopFiniteWorkloadEndsRun(t *testing.T) {
	cfg := smallConfig(Zero, 0)
	cfg.OpenLoop = true
	s, err := New(cfg, &finiteReplayer{reqs: burst(25)})
	if err != nil {
		t.Fatal(err)
	}
	// Ask for far more requests than the stream holds: the run must
	// drain cleanly after the 25 real ones.
	m, err := s.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if m.RequestsCompleted != 25 {
		t.Fatalf("completed %d, want the stream's 25", m.RequestsCompleted)
	}
}

func TestValidateHostConfigConflicts(t *testing.T) {
	base := smallConfig(Zero, 0)

	neg := base
	neg.OpenLoop = true
	neg.MaxInFlight = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative MaxInFlight validated")
	}

	closed := base
	closed.MaxInFlight = 16 // open-loop knob on a closed-loop host
	err := closed.Validate()
	if err == nil {
		t.Fatal("MaxInFlight without OpenLoop validated")
	}
	if !strings.Contains(err.Error(), "OpenLoop") {
		t.Fatalf("conflict error not actionable: %v", err)
	}

	open := base
	open.OpenLoop = true
	open.MaxInFlight = 16
	if err := open.Validate(); err != nil {
		t.Fatalf("valid bounded open loop rejected: %v", err)
	}
}

func TestRunQueuesRejectsOpenLoop(t *testing.T) {
	cfg := smallConfig(Zero, 0)
	cfg.OpenLoop = true
	s, err := New(cfg, trace.NewReplayer(burst(4), 5))
	if err != nil {
		t.Fatal(err)
	}
	q := []HostQueue{{Workload: trace.NewReplayer(burst(4), 5), Depth: 2}}
	if _, _, err := s.RunQueues(q, 4); err == nil {
		t.Fatal("multi-queue host accepted an open-loop config")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, s := range AllSchemes() {
		got, err := SchemeByName(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip %v: %v %v", s, got, err)
		}
	}
	if got, err := SchemeByName("rifssd"); err != nil || got != RiF {
		t.Fatalf("case-insensitive lookup: %v %v", got, err)
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Fatal("unknown scheme resolved")
	}
}
