package ssd

import (
	"repro/internal/sim"
)

// DiePolicy selects how a die schedules reads against programs and
// erases.
type DiePolicy int

const (
	// DieFIFO serves operations strictly in arrival order (the
	// baseline used for all paper-calibrated results).
	DieFIFO DiePolicy = iota
	// DieReadPriority serves queued reads before queued programs but
	// never interrupts a running operation.
	DieReadPriority
	// DieSuspension additionally suspends an in-flight program or
	// erase when a read arrives, resuming it afterwards with a
	// resume penalty — the read-program suspension modern chips
	// implement (and MQSim-E models).
	DieSuspension
)

// String names the policy.
func (p DiePolicy) String() string {
	switch p {
	case DieFIFO:
		return "fifo"
	case DieReadPriority:
		return "read-priority"
	case DieSuspension:
		return "suspension"
	}
	return "unknown"
}

// dieOp is one array operation.
type dieOp struct {
	dur    sim.Time
	isRead bool
	label  string
	done   func()
}

// dieStation schedules one die's array operations. Unlike the plain
// FIFO resource it can prioritize reads and suspend programs.
type dieStation struct {
	eng           *sim.Engine
	policy        DiePolicy
	resumePenalty sim.Time
	name          string
	// record, when non-nil, receives each completed occupancy (for
	// timeline rendering).
	record func(resource, label string, start, end sim.Time)

	readQ []*dieOp
	progQ []*dieOp

	running    *dieOp
	finishAt   sim.Time
	finishEvt  sim.EventID
	suspended  []*dieOp   // preempted programs, LIFO
	suspRemain []sim.Time // remaining time of each suspended op

	// suspensions counts program/erase preemptions, for metrics.
	suspensions int64
	// qHigh is the queue-depth high-water mark (reads + programs +
	// suspended), for observability.
	qHigh int
}

// noteDepth refreshes the queue-depth high-water mark.
func (d *dieStation) noteDepth() {
	depth := len(d.readQ) + len(d.progQ) + len(d.suspended)
	if d.running != nil {
		depth++
	}
	if depth > d.qHigh {
		d.qHigh = depth
	}
}

func newDieStation(eng *sim.Engine, policy DiePolicy, resumePenalty sim.Time) *dieStation {
	return &dieStation{eng: eng, policy: policy, resumePenalty: resumePenalty}
}

// Read schedules a sense operation of the given duration.
func (d *dieStation) Read(dur sim.Time, done func()) {
	d.ReadLabeled(dur, "", done)
}

// ReadLabeled is Read with a timeline label.
func (d *dieStation) ReadLabeled(dur sim.Time, label string, done func()) {
	op := &dieOp{dur: dur, isRead: true, label: label, done: done}
	if d.policy == DieFIFO {
		d.progQ = append(d.progQ, op) // single queue in FIFO mode
	} else {
		d.readQ = append(d.readQ, op)
	}
	d.noteDepth()
	d.maybePreempt()
	d.kick()
}

// Program schedules a program/erase/GC occupancy.
func (d *dieStation) Program(dur sim.Time, done func()) {
	d.progQ = append(d.progQ, &dieOp{dur: dur, label: "W", done: done})
	d.noteDepth()
	d.kick()
}

// maybePreempt suspends a running program when policy allows and a
// read is waiting.
func (d *dieStation) maybePreempt() {
	if d.policy != DieSuspension || d.running == nil || d.running.isRead || len(d.readQ) == 0 {
		return
	}
	remaining := d.finishAt - d.eng.Now()
	if remaining <= 0 {
		return // completing this instant
	}
	d.eng.Cancel(d.finishEvt)
	d.suspended = append(d.suspended, d.running)
	d.suspRemain = append(d.suspRemain, remaining+d.resumePenalty)
	d.suspensions++
	d.running = nil
}

// kick starts the next operation if the die is free.
func (d *dieStation) kick() {
	if d.running != nil {
		return
	}
	var op *dieOp
	switch {
	case len(d.readQ) > 0:
		op = d.readQ[0]
		d.readQ = d.readQ[1:]
	case len(d.suspended) > 0:
		// Resume the most recently suspended program.
		n := len(d.suspended) - 1
		op = d.suspended[n]
		op.dur = d.suspRemain[n]
		d.suspended = d.suspended[:n]
		d.suspRemain = d.suspRemain[:n]
	case len(d.progQ) > 0:
		op = d.progQ[0]
		d.progQ = d.progQ[1:]
	default:
		return
	}
	d.running = op
	start := d.eng.Now()
	d.finishAt = start + op.dur
	d.finishEvt = d.eng.After(op.dur, func() {
		d.running = nil
		if d.record != nil {
			d.record(d.name, op.label, start, d.eng.Now())
		}
		if op.done != nil {
			op.done()
		}
		d.kick()
	})
}

// Idle reports whether the die has no running or queued work.
func (d *dieStation) Idle() bool {
	return d.running == nil && len(d.readQ) == 0 && len(d.progQ) == 0 && len(d.suspended) == 0
}

// Suspensions reports how many preemptions occurred.
func (d *dieStation) Suspensions() int64 { return d.suspensions }
