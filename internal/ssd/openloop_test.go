package ssd

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestOpenLoopHonorsArrivalTimes(t *testing.T) {
	// Widely spaced arrivals: each request should complete before the
	// next arrives, so read latency is the unloaded service time, far
	// below what a saturating closed loop produces.
	var reqs []trace.Request
	for i := 0; i < 50; i++ {
		reqs = append(reqs, trace.Request{
			At:    sim.Time(i) * 2 * sim.Millisecond,
			Op:    trace.Read,
			LPN:   int64(i * 64),
			Pages: 4,
		})
	}
	cfg := smallConfig(Zero, 0)
	cfg.OpenLoop = true
	m := run(t, cfg, trace.NewReplayer(reqs, 5), 50)
	if m.RequestsCompleted != 50 {
		t.Fatalf("completed %d", m.RequestsCompleted)
	}
	// Makespan is at least the last arrival.
	if m.Makespan < 49*2*sim.Millisecond {
		t.Fatalf("makespan %v ignored arrival times", m.Makespan)
	}
	// Unloaded read: sense + transfer + decode + host, well under 1 ms.
	if p99 := m.ReadLatencies.Percentile(99); p99 > 500 {
		t.Fatalf("unloaded p99 = %vus", p99)
	}
}

func TestOpenLoopBurstQueues(t *testing.T) {
	// All requests arrive at t=0: the open loop must still complete
	// them, and latencies now include queueing.
	var reqs []trace.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, trace.Request{Op: trace.Read, LPN: int64(i * 4), Pages: 4})
	}
	cfg := smallConfig(Zero, 0)
	cfg.OpenLoop = true
	m := run(t, cfg, trace.NewReplayer(reqs, 5), 100)
	if m.RequestsCompleted != 100 {
		t.Fatalf("completed %d", m.RequestsCompleted)
	}
	if m.ReadLatencies.Percentile(99) <= m.ReadLatencies.Percentile(1) {
		t.Fatal("burst produced no queueing spread")
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	mk := func() *Metrics {
		var reqs []trace.Request
		for i := 0; i < 60; i++ {
			reqs = append(reqs, trace.Request{
				At: sim.Time(i) * 100 * sim.Microsecond, Op: trace.Read,
				LPN: int64(i * 16), Pages: 2,
			})
		}
		cfg := smallConfig(RiF, 2000)
		cfg.OpenLoop = true
		return run(t, cfg, trace.NewReplayer(reqs, 20), 60)
	}
	a, b := mk(), mk()
	if a.Makespan != b.Makespan || a.PagesRetried != b.PagesRetried {
		t.Fatal("open-loop runs diverged")
	}
}

func TestSecondCheckReducesUncorAtExtremeWear(t *testing.T) {
	// At 3K P/E with month-old data, some adjusted-VREF re-reads stay
	// uncorrectable; the footnote-4 second check keeps part of them
	// off the channel.
	mk := func(second bool) *Metrics {
		cfg := smallConfig(RiF, 3000)
		cfg.RiFSecondCheck = second
		return run(t, cfg, smallWorkload(t, "Ali124", 1), 400)
	}
	without := mk(false)
	with := mk(true)
	if with.AvoidedTransfers < without.AvoidedTransfers {
		t.Fatalf("second check avoided fewer transfers: %d vs %d",
			with.AvoidedTransfers, without.AvoidedTransfers)
	}
	if with.Channels.Uncor > without.Channels.Uncor {
		t.Fatalf("second check increased uncor channel time: %v vs %v",
			with.Channels.Uncor, without.Channels.Uncor)
	}
}

func TestSecondCheckNoEffectAtLowWear(t *testing.T) {
	// When every re-read decodes (the common case), the second check
	// must not change behaviour beyond its tPRED cost.
	mk := func(second bool) *Metrics {
		cfg := smallConfig(RiF, 1000)
		cfg.RiFSecondCheck = second
		return run(t, cfg, smallWorkload(t, "Sys0", 2), 300)
	}
	without := mk(false)
	with := mk(true)
	if with.Channels.Uncor != without.Channels.Uncor {
		t.Fatalf("second check altered uncor at low wear")
	}
	if float64(with.Makespan) > float64(without.Makespan)*1.05 {
		t.Fatalf("second check cost too much: %v vs %v", with.Makespan, without.Makespan)
	}
}
