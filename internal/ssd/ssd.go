package ssd

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/odear"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Workload supplies requests to the closed-loop host and the initial
// retention age of cold data. trace.Generator and trace.Replayer
// implement it.
type Workload interface {
	Next() trace.Request
	InitialAgeDays(lpn int64) float64
}

// FiniteWorkload is a workload that can run dry, e.g. a streamed
// trace file. The open-loop host probes Exhausted before every Next
// and ends the run early when it reports true, so Run(n) with a large
// n replays "the whole trace". Closed-loop hosts do not probe it:
// they are sized by request count, not stream length.
type FiniteWorkload interface {
	Workload
	Exhausted() bool
}

// SSD is one simulated device instance. Build it with New, run it
// with Run; an instance is single-use.
type SSD struct {
	cfg   Config
	eng   *sim.Engine
	model *nand.Model
	dec   *ecc.Engine
	acc   odear.AccuracyModel
	ftl   *FTL

	dies     []*dieStation
	channels []*channelStation
	host     *sim.Resource

	predictRNG  *sim.RNG
	sentinelRNG *sim.RNG

	// inj answers fault-injection queries; nil (the default) injects
	// nothing and costs nothing on the hot paths.
	inj *faults.Injector

	// reclaim runs the read-reclaim slow path for a threshold-crossing
	// block; New binds it to reclaimBlock. The indirection is the cold
	// boundary of the per-sense hot path: the crossing fires once per
	// ReadReclaimThreshold senses, so the migration machinery behind it
	// (FTL relocation, die occupancy) may allocate — and tests stub the
	// seam to observe trigger decisions in isolation.
	reclaim func(bid int)

	// Per-block counters, by dense block id. readCounts is the disturb
	// state: every real array sense bumps it via noteSense, and an
	// erase (GC victim, read-reclaim, retirement, die death) clears it.
	// grossSenses counts the same senses but is never cleared — the
	// epoch fast-forward extrapolates from it. int64: a drive-year on a
	// hot-read trace strands an int32.
	readCounts    []int64
	grossSenses   []int64
	eraseCounts   []int64 // per-block erase counters (wear on top of PECycles)
	reclaimErases []int64 // the subset of eraseCounts caused by read-reclaim
	retired       []bool  // grown-bad blocks retired by the FTL, by block id

	// Read-reclaim refresh state of the pre-fill (cold) region: those
	// blocks are not FTL-managed, so reclaim rewrites them in place and
	// resolvePages restarts their retention clock from refreshedAt.
	refreshed   []bool
	refreshedAt []sim.Time

	// deadDieCleared marks dies whose disturb counters were zeroed on
	// dropout, so the sweep runs once per die.
	deadDieCleared []bool

	cache    *writeCache
	flushers []*dieFlusher

	workload Workload
	toIssue  int
	inFlight int
	lastDone sim.Time

	// Bounded open-loop admission (cfg.MaxInFlight > 0): when the ring
	// is full the one pending arrival parks here until a completion
	// admits it. Because arrivals are scheduled as a chain, holding
	// exactly one request is enough to stall the entire source — the
	// stream is simply not pulled — so memory stays flat at any
	// intensity.
	held    bool
	heldReq trace.Request
	heldAt  sim.Time

	// lastArrival is the open-loop host's virtual arrival clock: each
	// request's latency anchor is max(req.At, previous arrival), so a
	// stalled admission chain (full ring) cannot shift arrivals later
	// and hide head-of-line wait, and a wrapped trace cannot move them
	// into the past.
	lastArrival sim.Time

	spans   []Span
	nextCmd int

	// readLat streams per-request read latencies (µs) into the
	// configured registry; nil (a no-op) when observability is off.
	readLat *obs.Histogram

	// runErr is the first non-fatal device error of the run (dropped
	// write, cache underflow); surfaced by finishRun instead of a
	// panic.
	runErr error

	m Metrics
}

// cmdResult is one die command's completion report: the
// graceful-degradation outcome threaded back to the host model.
type cmdResult struct {
	// uncPages counts pages that exhausted the retry ladder and were
	// reported uncorrectable.
	uncPages int
	// writeErr reports that the FTL could not place the command's
	// writes.
	writeErr bool
}

// failRun records the first device error of the run; finishRun
// returns it instead of letting the device panic mid-simulation.
func (s *SSD) failRun(err error) {
	if s.runErr == nil {
		s.runErr = err
	}
}

// New assembles an SSD from the configuration.
func New(cfg Config, w Workload) (*SSD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w == nil {
		return nil, fmt.Errorf("ssd: nil workload")
	}
	eng := sim.NewEngine()
	s := &SSD{
		cfg:           cfg,
		eng:           eng,
		model:         nand.NewModel(cfg.NANDParams, cfg.Seed),
		dec:           ecc.NewEngine(),
		acc:           accuracyModelFor(cfg),
		ftl:           NewFTL(cfg.Geometry),
		host:          sim.NewResource(eng, "host", 1),
		predictRNG:    sim.NewRNG(cfg.Seed, 101),
		sentinelRNG:   sim.NewRNG(cfg.Seed, 102),
		inj:           faults.New(cfg.Faults, cfg.Seed),
		readCounts:    make([]int64, cfg.Geometry.TotalBlocks()),
		grossSenses:   make([]int64, cfg.Geometry.TotalBlocks()),
		eraseCounts:   make([]int64, cfg.Geometry.TotalBlocks()),
		reclaimErases: make([]int64, cfg.Geometry.TotalBlocks()),
		retired:       make([]bool, cfg.Geometry.TotalBlocks()),
		refreshed:     make([]bool, cfg.Geometry.TotalBlocks()),
		refreshedAt:   make([]sim.Time, cfg.Geometry.TotalBlocks()),
		workload:      w,
	}
	s.deadDieCleared = make([]bool, cfg.Geometry.TotalDies())
	s.reclaim = s.reclaimBlock
	s.cache = newWriteCache(cfg.WriteCachePages, s.failRun)
	if cfg.Faults.DieDropoutRate > 0 {
		// Writes aimed at a dead die fail over to the next live one;
		// the dead die's disturb counters are cleared on first sight so
		// the re-homed data does not inherit the old blocks' senses.
		s.ftl.DieDown = func(dieIdx int) bool {
			down := s.inj.DieDown(dieIdx)
			if down {
				s.noteDeadDie(dieIdx)
			}
			return down
		}
	}
	// Dynamic wear leveling: allocation prefers the least-erased
	// free block.
	s.ftl.WearOf = func(plane nand.Address, block int) int {
		a := plane
		a.Block = block
		return int(s.eraseCounts[cfg.Geometry.BlockID(a)])
	}
	s.m.Scheme = cfg.Scheme
	s.m.PECycles = cfg.PECycles
	// Observability hooks: the ECC engine streams decode latencies,
	// startRequest streams read latencies. Both handles are nil-safe
	// no-ops when cfg.Obs is nil.
	s.dec.Hist = cfg.Obs.Histogram("ecc_decode_latency_us")
	s.readLat = cfg.Obs.Histogram("ssd_read_latency_us")
	recordSpans := cfg.RecordSpans || cfg.Trace != nil
	for d := 0; d < cfg.Geometry.TotalDies(); d++ {
		die := newDieStation(eng, cfg.DiePolicy, cfg.ResumePenalty)
		die.name = fmt.Sprintf("die%d", d)
		if recordSpans {
			die.record = s.addSpan
		}
		s.dies = append(s.dies, die)
	}
	for ch := 0; ch < cfg.Geometry.Channels; ch++ {
		st := newChannelStation(eng, cfg.Timing.TDMAPage, cfg.ECCBufferSlots)
		st.name = fmt.Sprintf("ch%d", ch)
		if recordSpans {
			st.record = s.addSpan
		}
		if cfg.Faults.ChannelCorruptRate > 0 {
			st.corrupt = s.inj.TransferCorrupted
		}
		s.channels = append(s.channels, st)
	}
	for d := 0; d < cfg.Geometry.TotalDies(); d++ {
		s.flushers = append(s.flushers, newDieFlusher(s, s.dies[d], s.channels[d/cfg.Geometry.DiesPerChan]))
	}
	return s, nil
}

// accuracyModelFor derives the RP accuracy model, honouring the
// ablation override.
func accuracyModelFor(cfg Config) odear.AccuracyModel {
	m := odear.DefaultAccuracyModel(nand.ECCCapabilityRBER)
	if cfg.PredictionFloor > 0 {
		m.Floor = cfg.PredictionFloor
	}
	return m
}

// Engine exposes the simulation clock (for tests).
func (s *SSD) Engine() *sim.Engine { return s.eng }

// Run executes nRequests requests in closed loop at the configured
// queue depth and returns the collected metrics.
func (s *SSD) Run(nRequests int) (*Metrics, error) {
	if nRequests <= 0 {
		return nil, fmt.Errorf("ssd: nRequests = %d", nRequests)
	}
	s.toIssue = nRequests
	if s.cfg.OpenLoop {
		s.scheduleNextArrival()
	} else {
		initial := s.cfg.QueueDepth
		if initial > nRequests {
			initial = nRequests
		}
		for i := 0; i < initial; i++ {
			s.issueNext()
		}
	}
	s.eng.Run()
	if err := s.finishRun(); err != nil {
		return nil, err
	}
	return &s.m, nil
}

// finishRun verifies the device drained cleanly and folds the final
// accounting into the metrics.
func (s *SSD) finishRun() error {
	if s.runErr != nil {
		return s.runErr
	}
	if s.inFlight != 0 {
		return fmt.Errorf("ssd: simulation drained with %d requests in flight", s.inFlight)
	}
	if !s.cache.idle() {
		return fmt.Errorf("ssd: write cache not drained at end of run")
	}
	for _, f := range s.flushers {
		if !f.idle() {
			return fmt.Errorf("ssd: die flusher not drained at end of run")
		}
	}
	for _, d := range s.dies {
		if !d.Idle() {
			return fmt.Errorf("ssd: die not drained at end of run")
		}
		s.m.Suspensions += d.Suspensions()
	}
	// Bandwidth is measured to the completion of the last host
	// request; background flushes may run on slightly past it.
	s.m.Makespan = s.lastDone
	for _, ch := range s.channels {
		if !ch.quiesced() {
			return fmt.Errorf("ssd: channel not quiesced at drain")
		}
		s.m.Channels.add(ch.usage())
		s.m.Faults.ChannelCorruptions += ch.corruptions
	}
	s.m.GCRuns, s.m.PagesRelocated = s.ftl.GCStats()
	s.m.Faults.DieFailovers = s.ftl.Failovers()
	s.foldObs()
	return nil
}

func (s *SSD) issueNext() {
	if s.toIssue == 0 {
		return
	}
	s.toIssue--
	s.admit(s.workload.Next(), s.eng.Now(), true)
}

// scheduleNextArrival drives the open-loop host: each request is
// admitted at its trace arrival time, independent of completions —
// unless the bounded ring is full, in which case the arrival parks
// until a completion admits it (its latency still counts from the
// arrival instant, so head-of-line wait shows up in the tail).
func (s *SSD) scheduleNextArrival() {
	if s.toIssue == 0 {
		return
	}
	if fw, ok := s.workload.(FiniteWorkload); ok && fw.Exhausted() {
		s.toIssue = 0
		return
	}
	s.toIssue--
	req := s.workload.Next()
	arrival := req.At
	if arrival < s.lastArrival {
		arrival = s.lastArrival
	}
	s.lastArrival = arrival
	fire := arrival
	if fire < s.eng.Now() {
		fire = s.eng.Now()
	}
	s.eng.At(fire, func() {
		if s.cfg.MaxInFlight > 0 && s.inFlight >= s.cfg.MaxInFlight {
			s.held = true
			s.heldReq = req
			s.heldAt = arrival
			s.m.HeldArrivals++
			return
		}
		s.admit(req, arrival, false)
		s.scheduleNextArrival()
	})
}

// admit puts one request in flight, its latency anchored at arrival.
func (s *SSD) admit(req trace.Request, arrival sim.Time, chain bool) {
	s.inFlight++
	if s.inFlight > s.m.PeakInFlight {
		s.m.PeakInFlight = s.inFlight
	}
	s.startRequest(req, arrival, chain)
}

// startRequest runs a request and records its completion. In closed
// loop (chain == true) the completion admits the next request; in
// bounded open loop it admits the held arrival, if any, and resumes
// the arrival chain.
func (s *SSD) startRequest(req trace.Request, arrival sim.Time, chain bool) {
	s.runRequest(req, func(res cmdResult) {
		s.inFlight--
		s.m.RequestsCompleted++
		s.lastDone = s.eng.Now()
		if res.uncPages > 0 {
			s.m.MediaErrorRequests++
		}
		bytes := int64(req.Pages) * int64(s.cfg.Geometry.PageBytes)
		if req.Op == trace.Read {
			s.m.BytesRead += bytes
			lat := (s.eng.Now() - arrival).Microseconds()
			if s.cfg.LatencySketch != nil {
				s.cfg.LatencySketch.Add(lat)
			} else {
				s.m.ReadLatencies.Add(lat)
			}
			s.readLat.Observe(lat)
		} else {
			s.m.BytesWritten += bytes
		}
		if chain {
			s.issueNext()
		} else if s.held {
			s.held = false
			held, heldAt := s.heldReq, s.heldAt
			s.heldReq = trace.Request{}
			s.admit(held, heldAt, false)
			s.scheduleNextArrival()
		}
	})
}

// dieCommand is one multi-plane operation: up to PlanesPerDie
// consecutive logical pages on distinct planes of one die.
type dieCommand struct {
	lpns []int64
}

// splitRequest groups a request's pages into die commands along the
// striping.
func (s *SSD) splitRequest(req trace.Request) []dieCommand {
	p := int64(s.cfg.Geometry.PlanesPerDie)
	var cmds []dieCommand
	lpn := req.LPN
	remaining := req.Pages
	for remaining > 0 {
		group := lpn / p
		end := (group + 1) * p // first lpn of the next group
		n := int(end - lpn)
		if n > remaining {
			n = remaining
		}
		cmd := dieCommand{}
		for i := 0; i < n; i++ {
			cmd.lpns = append(cmd.lpns, lpn+int64(i))
		}
		cmds = append(cmds, cmd)
		lpn += int64(n)
		remaining -= n
	}
	return cmds
}

func (s *SSD) runRequest(req trace.Request, done func(cmdResult)) {
	cmds := s.splitRequest(req)
	outstanding := len(cmds)
	var agg cmdResult
	oneDone := func(r cmdResult) {
		agg.uncPages += r.uncPages
		agg.writeErr = agg.writeErr || r.writeErr
		outstanding--
		if outstanding == 0 {
			done(agg)
		}
	}
	for _, cmd := range cmds {
		cmd := cmd
		if req.Op == trace.Read {
			s.readCommand(cmd, oneDone)
		} else {
			s.writeCommand(cmd, oneDone)
		}
	}
}

// pageView is the resolved physical and reliability state of one page
// at command issue.
type pageView struct {
	lpn       int64
	addr      nand.Address
	blockID   int
	ptype     nand.PageType
	retention float64 // days
	rberFirst float64 // at the scheme's first-read VREF mode
	rberRetry float64 // after VREF adjustment (near-optimal)
	fails     bool    // first read exceeds the ECC capability
}

// resolvePages looks up every page of a command and evaluates its
// RBER under the scheme's first-read VREF mode.
func (s *SSD) resolvePages(cmd dieCommand) []pageView {
	firstMode := vrefModeForScheme(s.cfg.Scheme)
	views := make([]pageView, 0, len(cmd.lpns))
	for _, lpn := range cmd.lpns {
		addr, writtenAt, written := s.ftl.Lookup(lpn)
		bid := s.cfg.Geometry.BlockID(addr)
		var age float64
		switch {
		case written:
			age = (s.eng.Now() - writtenAt).Seconds() / 86400
		case s.refreshed[bid]:
			// Pre-fill block rewritten in place by read-reclaim: its
			// retention clock restarts at the refresh.
			age = (s.eng.Now() - s.refreshedAt[bid]).Seconds() / 86400
		default:
			age = s.workload.InitialAgeDays(lpn)
		}
		reads := s.readCounts[bid]
		s.noteSense(bid)
		pt := nand.PageTypeOf(addr.Page)
		pe := s.cfg.PECycles + int(s.eraseCounts[bid])
		first := s.model.PageRBER(bid, pt, pe, age, reads, firstMode)
		retry := s.model.PageRBER(bid, pt, pe, age, reads, nand.OptimalVref)
		if s.inj.BlockStuck(bid) {
			// Grown-bad block: every read of it is hopeless at any
			// VREF, so the page rides the retry ladder to exhaustion.
			s.m.Faults.StuckPageReads++
			first, retry = stuckRBER, stuckRBER
		}
		views = append(views, pageView{
			lpn:       lpn,
			addr:      addr,
			blockID:   bid,
			ptype:     pt,
			retention: age,
			rberFirst: first,
			rberRetry: retry,
			fails:     first > s.dec.Capability,
		})
	}
	return views
}

// dieOf reports the die resource, channel station and dense die index
// of a command.
func (s *SSD) dieOf(cmd dieCommand) (*dieStation, *channelStation, int) {
	addr, _, _ := s.ftl.Lookup(cmd.lpns[0])
	dieIdx := s.cfg.Geometry.DieID(addr)
	return s.dies[dieIdx], s.channels[addr.Channel], dieIdx
}

// sense occupies the die with an array read for dur, then runs next.
func (s *SSD) sense(die *dieStation, dur sim.Time, next func()) {
	die.Read(dur, next)
}

// stuckRBER is the effective error rate of a grown-bad block's pages:
// far past any ECC capability, so every decode fails at full latency.
const stuckRBER = 0.5

// senseTime charges injected transient sense failures on top of a
// base array-read occupancy: each glitched sense is re-issued at full
// tR, and each re-issue is a real array sense, so it disturbs the
// pages' blocks again. A no-op (no draw) when the class is off.
func (s *SSD) senseTime(base sim.Time, views []pageView) sim.Time {
	n := s.inj.SenseRetries()
	if n > 0 {
		s.m.Faults.TransientSenseFaults += int64(n)
		base += sim.Time(n) * s.cfg.Timing.TR
		for i := 0; i < n; i++ {
			s.noteSenses(views)
		}
	}
	return base
}

// noteSense records one real array sense of a block: it advances the
// disturb state and, when the read-reclaim threshold is crossed,
// triggers the background migration that resets it. This is the single
// funnel every sense goes through — first reads, RVS re-reads,
// retry-ladder re-senses, Sentinel's extra read, and injected-glitch
// re-issues — so disturb accounting cannot silently miss a path again.
//
//riflint:hotpath
func (s *SSD) noteSense(bid int) {
	s.grossSenses[bid]++
	n := s.readCounts[bid] + 1
	s.readCounts[bid] = n
	if t := s.cfg.ReadReclaimThreshold; t > 0 && n >= t {
		s.reclaim(bid)
	}
}

// noteSenses records one sense per page view.
func (s *SSD) noteSenses(views []pageView) {
	for i := range views {
		s.noteSense(views[i].blockID)
	}
}

// reclaimBlock is the read-reclaim background job for one
// threshold-crossing block: migrate its valid pages elsewhere, erase
// it (clearing the disturb counter, exactly like the GC-victim erase),
// and charge the die with the migration work so reclaim competes with
// GC and host traffic for die time. Pre-fill (cold-region) blocks are
// not FTL-managed, so they are refreshed in place instead.
func (s *SSD) reclaimBlock(bid int) {
	// The erase clears accumulated disturb whether or not migration
	// proceeds; a skipped migration (dead die, no free block) simply
	// re-arms the counter.
	s.readCounts[bid] = 0
	if s.retired[bid] {
		return
	}
	addr := s.cfg.Geometry.BlockAddr(bid)
	dieIdx := s.cfg.Geometry.DieID(addr)
	if s.inj.DieDown(dieIdx) {
		return
	}
	var work *GCWork
	if addr.Block < s.ftl.WriteBase() {
		// Pre-fill block: rewrite in place, restarting its retention
		// clock from now.
		work = &GCWork{PagesRelocated: s.cfg.Geometry.PagesPerBlock, Erases: 1}
		s.refreshed[bid] = true
		s.refreshedAt[bid] = s.eng.Now()
	} else {
		w, err := s.ftl.ReclaimBlock(addr)
		if err != nil {
			s.failRun(err)
			return
		}
		if w == nil {
			return
		}
		work = w
	}
	s.eraseCounts[bid] += int64(work.Erases)
	s.reclaimErases[bid] += int64(work.Erases)
	s.m.ReadReclaims++
	s.m.ReclaimPagesMigrated += int64(work.PagesRelocated)
	// Occupy the die with the migration; no completion callback — the
	// work only delays whatever the die does next.
	s.dies[dieIdx].Program(s.gcTime(work), nil)
}

// noteDeadDie zeroes the disturb counters of a dropped-out die once:
// its array is gone, so re-homed replacement data must not inherit the
// dead blocks' accumulated senses.
func (s *SSD) noteDeadDie(dieIdx int) {
	if s.deadDieCleared[dieIdx] {
		return
	}
	s.deadDieCleared[dieIdx] = true
	per := s.cfg.Geometry.PlanesPerDie * s.cfg.Geometry.BlocksPerPlane
	for b := dieIdx * per; b < (dieIdx+1)*per; b++ {
		s.readCounts[b] = 0
	}
}

// BlockCounters is a snapshot of the per-block wear and disturb state,
// taken with BlockState and replayed into a fresh device with
// SeedBlockState — the epoch fast-forward mechanism of the drive-age
// sweep.
type BlockCounters struct {
	// Reads is the net disturb counter (senses since last erase).
	Reads []int64
	// Senses is the gross sense counter, never cleared by erases.
	Senses []int64
	// Erases is the per-block erase counter (wear beyond Config.PECycles).
	Erases []int64
	// ReclaimErases is the subset of Erases performed by read-reclaim
	// during the run (always zero at seed time). The fast-forward needs
	// the split: reclaim wear is re-derived analytically from the gross
	// sense rate, so scaling it again would double-count it.
	ReclaimErases []int64
}

// BlockState snapshots the per-block counters.
func (s *SSD) BlockState() BlockCounters {
	c := BlockCounters{
		Reads:         make([]int64, len(s.readCounts)),
		Senses:        make([]int64, len(s.grossSenses)),
		Erases:        make([]int64, len(s.eraseCounts)),
		ReclaimErases: make([]int64, len(s.reclaimErases)),
	}
	copy(c.Reads, s.readCounts)
	copy(c.Senses, s.grossSenses)
	copy(c.Erases, s.eraseCounts)
	copy(c.ReclaimErases, s.reclaimErases)
	return c
}

// SeedBlockState loads residual per-block disturb (reads) and wear
// (erases) into a freshly built device, before Run. Either slice may
// be nil to leave that counter at zero.
func (s *SSD) SeedBlockState(reads, erases []int64) error {
	n := s.cfg.Geometry.TotalBlocks()
	if reads != nil {
		if len(reads) != n {
			return fmt.Errorf("ssd: SeedBlockState reads length %d, want %d", len(reads), n)
		}
		copy(s.readCounts, reads)
	}
	if erases != nil {
		if len(erases) != n {
			return fmt.Errorf("ssd: SeedBlockState erases length %d, want %d", len(erases), n)
		}
		copy(s.eraseCounts, erases)
	}
	return nil
}

// decodeTimeout draws one page's injected LDPC decode-timeout fault.
func (s *SSD) decodeTimeout() bool {
	if s.inj.DecodeTimeout() {
		s.m.Faults.DecodeTimeouts++
		return true
	}
	return false
}

// timeoutRBER is the effective error rate charged to a timed-out
// decode: past capability, so the latency model bills a full failing
// decode and the page enters the scheme's retry ladder.
func (s *SSD) timeoutRBER() float64 { return 4 * s.dec.Capability }

// retireBlock retires the block behind a retry-exhausted page when
// the block is genuinely grown bad (every read of it is hopeless), so
// the allocator stops handing it out. Natural per-page exhaustion at
// high wear does not retire: the block's other pages are still good.
func (s *SSD) retireBlock(p pageView) {
	if !s.inj.BlockStuck(p.blockID) || s.retired[p.blockID] {
		return
	}
	s.retired[p.blockID] = true
	s.readCounts[p.blockID] = 0 // retirement erases the block
	s.m.Faults.GrownBadBlocks++
	s.ftl.RetireBlock(p.addr)
}

// hostTransfer moves pages across the host link, then runs next.
func (s *SSD) hostTransfer(pages int, next func()) {
	if s.cfg.Timing.THostPage == 0 {
		next()
		return
	}
	s.host.Use(sim.Time(pages)*s.cfg.Timing.THostPage, next)
}

// decodeLatency sums per-page tECC for the given RBERs.
func (s *SSD) decodeLatency(rbers []float64) sim.Time {
	var t sim.Time
	for _, r := range rbers {
		t += s.dec.Decode(r).Latency
	}
	return t
}
