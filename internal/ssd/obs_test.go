package ssd

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestObsChannelCountersMatchMetrics pins the acceptance criterion
// that the registry's per-channel IDLE/COR/UNCOR/ECCWAIT nanosecond
// totals agree exactly with the Metrics.Channels breakdown the Fig. 18
// report prints.
func TestObsChannelCountersMatchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallConfig(Sentinel, 2000)
	cfg.Obs = reg
	m := run(t, cfg, smallWorkload(t, "Ali124", 1), 400)

	s := reg.Snapshot()
	sum := func(metric string) sim.Time {
		var total int64
		for ch := 0; ; ch++ {
			key := fmt.Sprintf("ssd_ch%d_%s", ch, metric)
			v, ok := s.Counters[key]
			if !ok {
				break
			}
			total += v
		}
		return sim.Time(total)
	}
	if got := sum("idle_ns"); got != m.Channels.Idle() {
		t.Errorf("idle: registry %v, metrics %v", got, m.Channels.Idle())
	}
	if got := sum("cor_ns"); got != m.Channels.Cor {
		t.Errorf("cor: registry %v, metrics %v", got, m.Channels.Cor)
	}
	if got := sum("uncor_ns"); got != m.Channels.Uncor {
		t.Errorf("uncor: registry %v, metrics %v", got, m.Channels.Uncor)
	}
	if got := sum("eccwait_ns"); got != m.Channels.ECCWait {
		t.Errorf("eccwait: registry %v, metrics %v", got, m.Channels.ECCWait)
	}
	if got := sum("write_ns"); got != m.Channels.Write {
		t.Errorf("write: registry %v, metrics %v", got, m.Channels.Write)
	}
	if got := sum("total_ns"); got != m.Channels.Total {
		t.Errorf("total: registry %v, metrics %v", got, m.Channels.Total)
	}

	// The scalar fold must mirror the metrics struct.
	if got := s.Counters["ssd_requests_completed_total"]; got != int64(m.RequestsCompleted) {
		t.Errorf("requests: registry %d, metrics %d", got, m.RequestsCompleted)
	}
	if got := s.Counters["ssd_page_reads_total"]; got != m.PageReads {
		t.Errorf("page reads: registry %d, metrics %d", got, m.PageReads)
	}
	if got := s.Counters["sim_events_processed_total"]; got <= 0 {
		t.Errorf("sim events = %d, want > 0", got)
	}
	if got := s.Gauges["sim_event_heap_highwater"]; got <= 0 {
		t.Errorf("heap high-water = %d, want > 0", got)
	}
	// Live histograms: every completed read observed its latency,
	// every decode its tECC.
	if got := s.Histograms["ssd_read_latency_us"].Count; got != int64(m.ReadLatencies.N()) {
		t.Errorf("read latency histogram n = %d, sample n = %d", got, m.ReadLatencies.N())
	}
	if got := s.Histograms["ecc_decode_latency_us"].Count; got <= 0 {
		t.Errorf("decode histogram empty")
	}
}

// TestObsConfusionMatrixFig14 runs the full RiF SSD at heavy wear and
// checks (a) the confusion matrix is internally consistent with the
// prediction counters and (b) its realized accuracy on uncorrectable
// pages reproduces the paper's Fig. 14 headline (98.7% for the
// approximate hardware RP, with a tolerance band for sampling noise).
func TestObsConfusionMatrixFig14(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallConfig(RiF, 2000)
	cfg.Obs = reg
	m := run(t, cfg, smallWorkload(t, "Ali124", 1), 1200)

	c := m.Confusion
	if c.Predictions() != m.Predictions {
		t.Fatalf("confusion total %d != predictions %d", c.Predictions(), m.Predictions)
	}
	if c.Mispredictions() != m.Mispredictions {
		t.Fatalf("confusion FP+FN %d != mispredictions %d", c.Mispredictions(), m.Mispredictions)
	}
	if c.TP+c.FN == 0 {
		t.Fatal("no uncorrectable pages sampled; the wear state should produce retries")
	}

	// Fig. 14: the approximate RP stays in the 98.7%-accuracy band on
	// uncorrectable pages. The simulator draws from the calibrated
	// accuracy model; with a few thousand uncorrectable pages sampled
	// the realized rate sits within a fraction of a percent of it
	// (measured 0.989 at this seed).
	acc := c.UncorrectableAccuracy()
	if acc < 0.975 || acc > 0.998 {
		t.Errorf("uncorrectable-page accuracy %.4f outside the Fig. 14 band [0.975, 0.998]", acc)
	}
	overall := c.Accuracy()
	if overall < 0.98 {
		t.Errorf("overall RP accuracy %.4f, want >= 0.98", overall)
	}

	// And the registry carries the same four cells.
	s := reg.Snapshot()
	if s.Counters["odear_rp_tp_total"] != c.TP ||
		s.Counters["odear_rp_fp_total"] != c.FP ||
		s.Counters["odear_rp_fn_total"] != c.FN ||
		s.Counters["odear_rp_tn_total"] != c.TN {
		t.Errorf("registry confusion cells diverge from metrics: %+v vs %v", s.Counters, c)
	}
	if s.Counters["odear_rvs_rereads_total"] != m.RVSRereads {
		t.Errorf("RVS re-reads: registry %d, metrics %d", s.Counters["odear_rvs_rereads_total"], m.RVSRereads)
	}
	if m.RVSRereads <= 0 {
		t.Error("RiF at 2K P/E performed no in-die re-reads")
	}
}

// TestObsTracerCapturesSpans checks Config.Trace records die, channel
// and ECC occupancies without RecordSpans.
func TestObsTracerCapturesSpans(t *testing.T) {
	tr := obs.NewTracer(1 << 14)
	cfg := smallConfig(One, 2000)
	cfg.Trace = tr
	run(t, cfg, smallWorkload(t, "Ali124", 1), 200)

	if tr.Len() == 0 {
		t.Fatal("tracer captured no spans")
	}
	kinds := map[string]bool{}
	for _, sp := range tr.Spans() {
		if sp.End < sp.Start {
			t.Fatalf("span ends before it starts: %+v", sp)
		}
		switch {
		case len(sp.Resource) >= 4 && sp.Resource[:4] == "ecc-":
			kinds["ecc"] = true
		case len(sp.Resource) >= 3 && sp.Resource[:3] == "die":
			kinds["die"] = true
		case len(sp.Resource) >= 2 && sp.Resource[:2] == "ch":
			kinds["ch"] = true
		}
	}
	for _, k := range []string{"die", "ch", "ecc"} {
		if !kinds[k] {
			t.Errorf("no %s spans captured", k)
		}
	}
}

// TestObsDisabledChangesNothing runs the same seed with and without a
// registry attached and asserts identical simulation results: the
// instrumentation must never perturb the model.
func TestObsDisabledChangesNothing(t *testing.T) {
	base := run(t, smallConfig(RiF, 2000), smallWorkload(t, "Ali124", 7), 300)

	cfg := smallConfig(RiF, 2000)
	cfg.Obs = obs.NewRegistry()
	cfg.Trace = obs.NewTracer(0)
	observed := run(t, cfg, smallWorkload(t, "Ali124", 7), 300)

	if base.Makespan != observed.Makespan {
		t.Errorf("makespan changed with observability: %v vs %v", base.Makespan, observed.Makespan)
	}
	if base.PageReads != observed.PageReads || base.PagesRetried != observed.PagesRetried {
		t.Errorf("retry behaviour changed with observability")
	}
	if base.Predictions != observed.Predictions || base.Mispredictions != observed.Mispredictions {
		t.Errorf("prediction stream changed with observability")
	}
}
