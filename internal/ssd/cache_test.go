package ssd

import (
	"testing"

	"repro/internal/trace"
)

func TestWriteCacheImmediateGrant(t *testing.T) {
	c := newWriteCache(10, nil)
	granted := false
	c.acquire(4, func() { granted = true })
	if !granted || c.inUse != 4 {
		t.Fatalf("granted=%v inUse=%d", granted, c.inUse)
	}
	c.release(4)
	if !c.idle() {
		t.Fatal("cache not idle after release")
	}
}

func TestWriteCacheBackpressureFIFO(t *testing.T) {
	c := newWriteCache(8, nil)
	var order []int
	c.acquire(6, func() { order = append(order, 1) })
	c.acquire(4, func() { order = append(order, 2) }) // blocked (6+4 > 8)
	c.acquire(1, func() { order = append(order, 3) }) // blocked behind 2 (FIFO)
	if len(order) != 1 {
		t.Fatalf("order=%v", order)
	}
	c.release(6)
	// Both waiters now fit (4+1 <= 8) and must admit in FIFO order.
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order=%v", order)
	}
}

func TestWriteCacheOversizeRequest(t *testing.T) {
	c := newWriteCache(4, nil)
	granted := false
	c.acquire(10, func() { granted = true }) // larger than the cache
	if !granted {
		t.Fatal("oversize request must be admitted when the cache is empty")
	}
	blocked := false
	c.acquire(1, func() { blocked = true })
	if blocked {
		t.Fatal("grant while oversized entry resident")
	}
	c.release(10)
	if !blocked {
		t.Fatal("waiter not admitted after oversize release")
	}
}

func TestWriteCacheReleaseUnderflowSurfacesError(t *testing.T) {
	var got error
	c := newWriteCache(4, func(err error) { got = err })
	c.release(1)
	if got == nil {
		t.Fatal("underflow release did not report an error")
	}
	if c.inUse != 0 {
		t.Fatalf("inUse not clamped: %d", c.inUse)
	}
	// Without a fail hook the underflow must still not panic.
	c = newWriteCache(4, nil)
	c.release(1)
}

func TestWriteCacheDisabled(t *testing.T) {
	c := newWriteCache(0, nil)
	if c.enabled() {
		t.Fatal("zero-capacity cache reports enabled")
	}
}

// cacheProbeWorkload issues a deterministic alternating read/write
// stream over a small footprint.
type cacheProbeWorkload struct {
	n    int
	cold float64
}

func (w *cacheProbeWorkload) Next() trace.Request {
	w.n++
	op := trace.Read
	if w.n%3 == 0 {
		op = trace.Write
	}
	return trace.Request{Op: op, LPN: int64((w.n * 16) % 4096), Pages: 4}
}

func (w *cacheProbeWorkload) InitialAgeDays(int64) float64 { return w.cold }

func TestWriteCacheImprovesWriteLatency(t *testing.T) {
	// With the cache, a write completes at host-transfer time rather
	// than program time, so mixed-workload makespan drops.
	base := smallConfig(Zero, 0)
	base.WriteCachePages = 0
	cached := smallConfig(Zero, 0)
	cached.WriteCachePages = 4096

	mBase := run(t, base, &cacheProbeWorkload{cold: 0}, 300)
	mCached := run(t, cached, &cacheProbeWorkload{cold: 0}, 300)
	if mCached.Makespan >= mBase.Makespan {
		t.Fatalf("cache did not help: %v vs %v", mCached.Makespan, mBase.Makespan)
	}
}

func TestFlusherBatchesAcrossPlanes(t *testing.T) {
	// Four pages on four planes of one die must program together: the
	// flusher's die occupancy is ~one tPROG, not four.
	cfg := smallConfig(Zero, 0)
	cfg.QueueDepth = 8
	s, err := New(cfg, &cacheProbeWorkload{cold: 0})
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run(90) // 30 writes of 4 pages
	if err != nil {
		t.Fatal(err)
	}
	if m.BytesWritten == 0 {
		t.Fatal("no writes")
	}
	// All flushers drained (checked inside Run) and the cache is
	// empty: the background path completed.
}

func TestWriteThroughStillWorks(t *testing.T) {
	cfg := smallConfig(RiF, 1000)
	cfg.WriteCachePages = 0
	m := run(t, cfg, smallWorkload(t, "Ali2", 1), 300)
	if m.RequestsCompleted != 300 || m.BytesWritten == 0 {
		t.Fatalf("write-through run broken: %v", m)
	}
}

func TestCacheDrainsAtRunEnd(t *testing.T) {
	cfg := smallConfig(One, 0)
	s, err := New(cfg, &cacheProbeWorkload{cold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(50); err != nil {
		t.Fatal(err)
	}
	if !s.cache.idle() {
		t.Fatal("cache not drained")
	}
	for _, f := range s.flushers {
		if !f.idle() {
			t.Fatal("flusher not drained")
		}
	}
}
