package ssd

import (
	"repro/internal/sim"
)

// xferKind distinguishes channel jobs.
type xferKind int

const (
	xferRead  xferKind = iota // die -> controller, lands in the ECC buffer
	xferWrite                 // controller -> die, no ECC involvement
)

// xferJob is one channel occupancy: a die-command's worth of pages.
type xferJob struct {
	kind  xferKind
	pages int
	// uncorPages of the read's pages will fail the subsequent decode
	// (their transfer time is accounted UNCOR); auxiliary transfers
	// such as sentinel reads set uncorPages = pages.
	uncorPages int
	// engineTime is the ECC engine occupancy once transferred (decode
	// and/or controller-side RP prediction time).
	engineTime sim.Time
	// onDecoded runs when the ECC engine finishes the job (reads) or
	// when the transfer finishes (writes).
	onDecoded func()
	// label tags the job for timeline rendering.
	label string
	// resends counts injected-corruption re-transfers of this job.
	resends int
}

// maxXferResends bounds corruption-driven re-transfers of one job;
// past it the data is handed to the ECC engine as-is (which will
// reject it if it is truly damaged).
const maxXferResends = 3

// channelStation couples one flash channel with its dedicated
// channel-level ECC engine (footnote 2 of the paper: the raw page
// must cross the channel into the channel's ECC decoder). The ECC
// engine has a bounded raw-data buffer; when it is full, pending read
// transfers stall even if the channel wires are free — the ECCWAIT
// condition of Figs. 7 and 18.
type channelStation struct {
	eng      *sim.Engine
	tDMAPage sim.Time
	bufSlots int
	name     string
	// record, when non-nil, receives transfer and decode occupancies
	// (for timeline rendering).
	record func(resource, label string, start, end sim.Time)
	// corrupt, when non-nil, draws whether a completed read transfer
	// was corrupted in flight (fault injection); the job is then
	// re-issued from the die's page buffer.
	corrupt func() bool

	busy       bool
	bufInUse   int
	engineBusy bool
	// corruptions counts injected transfer corruptions (re-sends).
	corruptions int64
	// bufHigh and pendHigh are occupancy high-water marks for
	// observability (ECC raw-buffer slots, channel backlog).
	bufHigh  int
	pendHigh int

	pending     []*xferJob // waiting for channel (+ buffer for reads)
	decodeQueue []*xferJob // transferred, waiting for the ECC engine

	// Accounting.
	cor, uncor, write sim.Time
	eccWait           sim.Time
	eccWaitSince      sim.Time
	inECCWait         bool
	opened            sim.Time // window start (engine time at creation)
}

func newChannelStation(eng *sim.Engine, tDMAPage sim.Time, bufSlots int) *channelStation {
	return &channelStation{
		eng:      eng,
		tDMAPage: tDMAPage,
		bufSlots: bufSlots,
		opened:   eng.Now(),
	}
}

// submit enqueues a channel job.
func (c *channelStation) submit(job *xferJob) {
	c.pending = append(c.pending, job)
	if len(c.pending) > c.pendHigh {
		c.pendHigh = len(c.pending)
	}
	c.tryStartXfer()
}

func (c *channelStation) tryStartXfer() {
	if c.busy || len(c.pending) == 0 {
		return
	}
	job := c.pending[0]
	if job.kind == xferRead && c.bufInUse >= c.bufSlots {
		// Channel idle but the ECC buffer is full: ECCWAIT begins.
		if !c.inECCWait {
			c.inECCWait = true
			c.eccWaitSince = c.eng.Now()
		}
		return
	}
	c.pending = c.pending[1:]
	if c.inECCWait {
		c.eccWait += c.eng.Now() - c.eccWaitSince
		c.inECCWait = false
	}
	c.busy = true
	if job.kind == xferRead {
		c.bufInUse++
		if c.bufInUse > c.bufHigh {
			c.bufHigh = c.bufInUse
		}
	}
	dur := sim.Time(job.pages) * c.tDMAPage
	xferStart := c.eng.Now()
	c.eng.After(dur, func() {
		c.busy = false
		if c.record != nil {
			c.record(c.name, job.label, xferStart, c.eng.Now())
		}
		switch job.kind {
		case xferWrite:
			c.write += dur
			if job.onDecoded != nil {
				job.onDecoded()
			}
		case xferRead:
			if c.corrupt != nil && job.resends < maxXferResends && c.corrupt() {
				// The transfer arrived damaged: the wasted movement is
				// UNCOR time, the buffer slot is released, and the job
				// re-queues at the head (the page still sits intact in
				// the die's page buffer).
				c.corruptions++
				c.uncor += dur
				c.bufInUse--
				job.resends++
				c.pending = append([]*xferJob{job}, c.pending...)
				break
			}
			// Split the occupancy between useful and doomed pages.
			u := dur * sim.Time(job.uncorPages) / sim.Time(job.pages)
			c.uncor += u
			c.cor += dur - u
			c.decodeQueue = append(c.decodeQueue, job)
			c.tryStartDecode()
		}
		c.tryStartXfer()
	})
}

func (c *channelStation) tryStartDecode() {
	if c.engineBusy || len(c.decodeQueue) == 0 {
		return
	}
	job := c.decodeQueue[0]
	c.decodeQueue = c.decodeQueue[1:]
	c.engineBusy = true
	decodeStart := c.eng.Now()
	c.eng.After(job.engineTime, func() {
		c.engineBusy = false
		if c.record != nil && job.engineTime > 0 {
			c.record("ecc-"+c.name, job.label, decodeStart, c.eng.Now())
		}
		c.bufInUse--
		if job.onDecoded != nil {
			job.onDecoded()
		}
		c.tryStartDecode()
		c.tryStartXfer() // a freed buffer slot may unblock the channel
	})
}

// usage snapshots the accounting over [opened, now].
func (c *channelStation) usage() ChannelUsage {
	wait := c.eccWait
	if c.inECCWait {
		wait += c.eng.Now() - c.eccWaitSince
	}
	return ChannelUsage{
		Cor:     c.cor,
		Uncor:   c.uncor,
		Write:   c.write,
		ECCWait: wait,
		Total:   c.eng.Now() - c.opened,
	}
}

// quiesced reports whether no work is in flight or queued.
func (c *channelStation) quiesced() bool {
	return !c.busy && !c.engineBusy && len(c.pending) == 0 && len(c.decodeQueue) == 0 && c.bufInUse == 0
}
