package ssd

import (
	"repro/internal/sim"
)

// flushPage is one cached page awaiting its background program.
type flushPage struct {
	plane  int
	gcTime sim.Time // garbage-collection debt carried by this page
}

// dieFlusher drains the write cache toward one die. It coalesces
// buffered pages into full multi-plane programs — one page per plane
// per tPROG — which is how real controllers amortize the 400-us
// program over the plane parallelism (and what keeps mixed workloads
// from being program-bound).
type dieFlusher struct {
	ssd      *SSD
	die      *dieStation
	ch       *channelStation
	perPlane [][]flushPage // FIFO per plane
	pending  int
	active   bool
}

func newDieFlusher(s *SSD, die *dieStation, ch *channelStation) *dieFlusher {
	return &dieFlusher{
		ssd:      s,
		die:      die,
		ch:       ch,
		perPlane: make([][]flushPage, s.cfg.Geometry.PlanesPerDie),
	}
}

// enqueue buffers one page for background programming.
func (f *dieFlusher) enqueue(p flushPage) {
	f.perPlane[p.plane] = append(f.perPlane[p.plane], p)
	f.pending++
}

// kick starts the flusher if it is idle and work exists.
func (f *dieFlusher) kick() {
	if f.active || f.pending == 0 {
		return
	}
	f.active = true
	f.flushBatch()
}

// flushBatch assembles a multi-plane batch (at most one page per
// plane), moves it across the channel, programs it, releases the
// cache slots, and loops while work remains.
func (f *dieFlusher) flushBatch() {
	var gc sim.Time
	batch := 0
	for pl := range f.perPlane {
		if len(f.perPlane[pl]) == 0 {
			continue
		}
		p := f.perPlane[pl][0]
		f.perPlane[pl] = f.perPlane[pl][1:]
		gc += p.gcTime
		batch++
	}
	if batch == 0 {
		f.active = false
		return
	}
	f.pending -= batch
	f.ch.submit(&xferJob{
		kind:  xferWrite,
		pages: batch,
		label: "W",
		onDecoded: func() {
			f.die.Program(gc+f.ssd.cfg.Timing.TProg, func() {
				f.ssd.cache.release(batch)
				f.flushBatch()
			})
		},
	})
}

// idle reports whether the flusher has no buffered or in-flight work.
func (f *dieFlusher) idle() bool { return !f.active && f.pending == 0 }
