package ssd

import "fmt"

// writeCache is the controller's DRAM write buffer: a counting
// semaphore over page slots. A host write completes once its pages
// are buffered; the background flush (channel transfer + program)
// releases the slots when the data is durable. When the cache is
// full, new writes block until flushes drain — the same back-pressure
// a real device applies.
type writeCache struct {
	capacity int
	inUse    int
	waiters  []cacheWaiter

	// fail receives accounting errors (a release below zero) so the
	// run can surface them in its result instead of panicking.
	fail func(error)

	// Observability: immediate admissions vs back-pressured ones, and
	// the occupancy high-water mark.
	hits      int64
	stalls    int64
	inUseHigh int
}

type cacheWaiter struct {
	pages int
	fn    func()
}

func newWriteCache(pages int, fail func(error)) *writeCache {
	return &writeCache{capacity: pages, fail: fail}
}

// enabled reports whether the device has a cache at all.
func (c *writeCache) enabled() bool { return c.capacity > 0 }

// acquire grants pages slots, running fn immediately if room exists
// or queueing FIFO otherwise. Requests larger than the whole cache
// are granted alone when the cache drains completely.
func (c *writeCache) acquire(pages int, fn func()) {
	if c.admissible(pages) && len(c.waiters) == 0 {
		c.hits++
		c.inUse += pages
		if c.inUse > c.inUseHigh {
			c.inUseHigh = c.inUse
		}
		fn()
		return
	}
	c.stalls++
	c.waiters = append(c.waiters, cacheWaiter{pages: pages, fn: fn})
}

func (c *writeCache) admissible(pages int) bool {
	if pages >= c.capacity {
		return c.inUse == 0
	}
	return c.inUse+pages <= c.capacity
}

// release returns pages slots and admits as many waiters as now fit.
func (c *writeCache) release(pages int) {
	c.inUse -= pages
	if c.inUse < 0 {
		// Accounting bug: clamp and surface it through the run result
		// rather than panicking mid-simulation.
		if c.fail != nil {
			c.fail(fmt.Errorf("ssd: write cache released below zero (%d pages over)", -c.inUse))
		}
		c.inUse = 0
	}
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		if !c.admissible(w.pages) {
			return
		}
		c.waiters = c.waiters[1:]
		c.inUse += w.pages
		if c.inUse > c.inUseHigh {
			c.inUseHigh = c.inUse
		}
		w.fn()
	}
}

// idle reports whether nothing is buffered or waiting.
func (c *writeCache) idle() bool { return c.inUse == 0 && len(c.waiters) == 0 }
