package ssd

import (
	"testing"
	"testing/quick"
)

// TestMetricsInvariantsAcrossRandomRuns drives randomized small
// configurations through short runs and checks the structural
// invariants every run must satisfy, whatever the scheme, wear or
// workload mix.
func TestMetricsInvariantsAcrossRandomRuns(t *testing.T) {
	schemes := AllSchemes()
	workloads := []string{"Ali2", "Ali81", "Ali124", "Sys0"}
	f := func(schemeRaw, wlRaw uint8, peRaw uint16, seed uint64) bool {
		scheme := schemes[int(schemeRaw)%len(schemes)]
		wl := workloads[int(wlRaw)%len(workloads)]
		pe := int(peRaw) % 3000
		cfg := smallConfig(scheme, pe)
		cfg.Seed = seed
		cfg.QueueDepth = 32
		m := run(t, cfg, smallWorkload(t, wl, seed), 120)

		if m.RequestsCompleted != 120 {
			return false
		}
		if m.Makespan <= 0 || m.Bandwidth() <= 0 {
			return false
		}
		if m.PagesRetried > m.PageReads+m.Predictions {
			return false
		}
		if m.Mispredictions > m.Predictions {
			return false
		}
		idle, cor, uncor, wait := m.Channels.Fractions()
		sum := idle + cor + uncor + wait
		if sum < 0.999 || sum > 1.001 {
			return false
		}
		if scheme == Zero && (m.PagesRetried != 0 || uncor != 0) {
			return false
		}
		if scheme != RiF && scheme != RPOnly && m.Predictions != 0 {
			return false
		}
		if m.ReadLatencies.N() > 0 && m.ReadLatencies.Percentile(0) <= 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRetriesVanishForFreshData checks a physical invariant: with
// fresh data everywhere (no cold-region aging), off-chip schemes
// never retry, and RiF's only retries are its rare benign false
// positives (≲ the 0.5% accuracy floor).
func TestRetriesVanishForFreshData(t *testing.T) {
	for _, scheme := range []Scheme{One, Sentinel, SWR} {
		cfg := smallConfig(scheme, 0)
		m := run(t, cfg, &cacheProbeWorkload{cold: 0.01}, 200)
		if m.PagesRetried != 0 {
			t.Fatalf("%v: %d retries on fresh data", scheme, m.PagesRetried)
		}
	}
	cfg := smallConfig(RiF, 0)
	m := run(t, cfg, &cacheProbeWorkload{cold: 0.01}, 200)
	if m.Channels.Uncor != 0 {
		t.Fatalf("RiF shipped uncorrectable data on fresh pages")
	}
	if rate := float64(m.PagesRetried) / float64(m.PageReads); rate > 0.02 {
		t.Fatalf("RiF false-positive retry rate %v on fresh data", rate)
	}
}
