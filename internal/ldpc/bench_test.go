package ldpc

import (
	"math/rand/v2"
	"testing"
)

// Microbenchmarks for the code paths the RP module and the channel
// ECC model abstract: encode, decode, full and pruned syndrome
// weights, and the §V-B rearrangement.

func benchCodeAndWord(b *testing.B, t int, rber float64) (*Code, Bits) {
	b.Helper()
	cd := NewCode(4, 36, t, 7)
	rng := rand.New(rand.NewPCG(1, 1))
	cw := cd.Encode(RandomBits(cd.K(), rng))
	if rber > 0 {
		cw = FlipRandom(cw, rber, rng)
	}
	return cd, cw
}

func BenchmarkEncode(b *testing.B) {
	cd := NewCode(4, 36, 256, 7)
	rng := rand.New(rand.NewPCG(1, 1))
	data := RandomBits(cd.K(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd.Encode(data)
	}
	b.SetBytes(int64(cd.K() / 8))
}

func BenchmarkEncodePaperScale(b *testing.B) {
	cd := NewPaperCode(7)
	rng := rand.New(rand.NewPCG(1, 1))
	data := RandomBits(cd.K(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd.Encode(data)
	}
	b.SetBytes(int64(cd.K() / 8))
}

func BenchmarkSyndromeWeightFull(b *testing.B) {
	cd, cw := benchCodeAndWord(b, 256, 0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd.SyndromeWeight(cw)
	}
}

func BenchmarkSyndromeWeightPruned(b *testing.B) {
	// The §V-A2 pruning: must be ~R times cheaper than the full
	// computation.
	cd, cw := benchCodeAndWord(b, 256, 0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd.FirstRowSyndromeWeight(cw)
	}
}

func BenchmarkRearrangedPrunedWeight(b *testing.B) {
	// The on-die datapath form (plain XOR of segments, Fig. 16):
	// cheaper still — no rotations at read time.
	cd, cw := benchCodeAndWord(b, 256, 0.005)
	re := cd.Rearrange(cw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd.RearrangedPrunedWeight(re)
	}
}

func BenchmarkRearrange(b *testing.B) {
	cd, cw := benchCodeAndWord(b, 256, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cd.Rearrange(cw)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	cd, cw := benchCodeAndWord(b, 256, 0)
	dec := NewMinSumDecoder(cd, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(cw)
	}
}

func BenchmarkDecodeModerate(b *testing.B) {
	cd, cw := benchCodeAndWord(b, 256, 0.004)
	dec := NewMinSumDecoder(cd, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(cw)
	}
}

func BenchmarkDecodeFailing(b *testing.B) {
	// Uncorrectable input: the decoder burns all 20 iterations, the
	// case whose latency stalls the paper's channel ECC buffer.
	cd, cw := benchCodeAndWord(b, 256, 0.015)
	dec := NewMinSumDecoder(cd, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(cw)
	}
}

func BenchmarkFlipRandomSparse(b *testing.B) {
	cd, cw := benchCodeAndWord(b, 256, 0)
	rng := rand.New(rand.NewPCG(2, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FlipRandom(cw, 0.0085, rng)
	}
	_ = cd
}
