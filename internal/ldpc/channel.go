package ldpc

import (
	"math"
	"math/rand/v2"
)

// RandomBits returns a uniformly random bit vector of length n.
func RandomBits(n int, rng *rand.Rand) Bits {
	b := NewBits(n)
	for i := range b.words {
		b.words[i] = rng.Uint64()
	}
	b.maskTail()
	return b
}

// FlipRandom returns a copy of cw with each bit independently flipped
// with probability rber (a binary symmetric channel).
func FlipRandom(cw Bits, rber float64, rng *rand.Rand) Bits {
	out := cw.Clone()
	if rber <= 0 {
		return out
	}
	// For small rber, drawing a geometric gap between errors is far
	// faster than testing every bit.
	n := out.Len()
	if rber < 0.05 {
		i := nextErrorGap(rber, rng)
		for i < n {
			out.Flip(i)
			i += 1 + nextErrorGap(rber, rng)
		}
		return out
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < rber {
			out.Flip(i)
		}
	}
	return out
}

// FlipExact returns a copy of cw with exactly k distinct random bits
// flipped, giving a page with a precisely controlled raw bit error
// count (how the paper builds its 1e5 test pages per RBER point).
func FlipExact(cw Bits, k int, rng *rand.Rand) Bits {
	out := cw.Clone()
	n := out.Len()
	if k <= 0 {
		return out
	}
	if k >= n {
		for i := 0; i < n; i++ {
			out.Flip(i)
		}
		return out
	}
	// Floyd's algorithm for a k-subset of [0, n).
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		v := rng.IntN(j + 1)
		if _, dup := chosen[v]; dup {
			v = j
		}
		chosen[v] = struct{}{}
		out.Flip(v)
	}
	return out
}

// nextErrorGap draws the number of error-free bits before the next
// error on a BSC with crossover p (a geometric variate).
func nextErrorGap(p float64, rng *rand.Rand) int {
	// Inverse-CDF sampling: gap = floor(ln(U)/ln(1-p)).
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	g := int(math.Log(u) / math.Log(1-p))
	if g < 0 {
		g = 0
	}
	return g
}
