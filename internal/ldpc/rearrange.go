package ldpc

// Rearrange applies the codeword layout transformation of §V-B
// (Fig. 15): every segment j participating in block row 0 is rotated
// left by Shifts[0][j], which turns each first-row circulant into a
// logical identity matrix. On the rearranged layout, the pruned
// syndrome computation degenerates to a plain XOR of segments — the
// form the on-die RP hardware implements (Fig. 16).
//
// The flash controller applies Rearrange after ECC encoding (before
// programming) and Restore before ECC decoding (after reading).
func (cd *Code) Rearrange(cw Bits) Bits {
	return cd.rotateSegments(cw, false)
}

// Restore inverts Rearrange, recovering the original codeword layout
// expected by the LDPC decoder.
func (cd *Code) Restore(cw Bits) Bits {
	return cd.rotateSegments(cw, true)
}

func (cd *Code) rotateSegments(cw Bits, inverse bool) Bits {
	if cw.Len() != cd.N() {
		panic("ldpc: rearrange length mismatch")
	}
	out := NewBits(cd.N())
	seg := NewBits(cd.T)
	for j := 0; j < cd.C; j++ {
		sh := cd.Shifts[0][j]
		cw.Segment(seg, j*cd.T, cd.T)
		if sh == ZeroBlock || sh == 0 {
			out.SetSegment(seg, j*cd.T, cd.T)
			continue
		}
		k := sh
		if inverse {
			k = cd.T - sh
		}
		out.SetSegment(seg.RotL(k), j*cd.T, cd.T)
	}
	return out
}

// RearrangedPrunedWeight computes the first-block-row syndrome weight
// directly on a rearranged codeword: XOR all participating segments
// and count ones — exactly the RP datapath of Fig. 16 (segment
// register → XOR → weight counter → accumulator).
func (cd *Code) RearrangedPrunedWeight(rearranged Bits) int {
	if rearranged.Len() != cd.N() {
		panic("ldpc: rearranged length mismatch")
	}
	acc := NewBits(cd.T)
	seg := NewBits(cd.T)
	for j := 0; j < cd.C; j++ {
		if cd.Shifts[0][j] == ZeroBlock {
			continue
		}
		rearranged.Segment(seg, j*cd.T, cd.T)
		acc.XorInPlace(seg)
	}
	return acc.PopCount()
}
