package ldpc

import (
	"fmt"
	"math/rand/v2"
	"sync"
)

// ZeroBlock marks an all-zero circulant block in the shift table.
const ZeroBlock = -1

// Code describes a QC-LDPC code. The parity-check matrix H is an
// R-by-C block matrix of T×T circulants; block (i,j) is the identity
// cyclically shifted right by Shifts[i][j], or zero when Shifts[i][j]
// == ZeroBlock (Fig. 13 of the paper).
//
// The layout is systematic: the first C-R block columns carry data,
// the last R block columns carry parity. The parity region is block
// dual-diagonal (identity blocks on the diagonal and first
// sub-diagonal) so encoding is a linear-time accumulation.
type Code struct {
	R, C, T int
	Shifts  [][]int

	// checkVars[m] lists the variable (codeword bit) indices
	// participating in parity check m; built lazily by adjacency().
	// Guarded by adjOnce so decoders on different goroutines can
	// share one Code.
	adjOnce   sync.Once
	checkVars [][]int32
	varChecks [][]int32
}

// PaperCode are the block dimensions of the 4-KiB QC-LDPC used in the
// paper: a 4×36 block matrix of 1024×1024 circulants (footnote 6),
// giving a 36864-bit codeword with 32768 data bits.
const (
	PaperBlockRows = 4
	PaperBlockCols = 36
	PaperCirculant = 1024
)

// NewPaperCode builds the paper-scale code. It is large; tests and
// quick experiments usually use NewCode with a smaller T.
func NewPaperCode(seed uint64) *Code {
	return NewCode(PaperBlockRows, PaperBlockCols, PaperCirculant, seed)
}

// NewCode constructs a QC-LDPC code with r block rows, c block columns
// and circulant size t. Data-block shifts are drawn deterministically
// from seed; the parity region is dual-diagonal with zero shifts.
func NewCode(r, c, t int, seed uint64) *Code {
	if r < 2 || c <= r || t < 2 {
		panic(fmt.Sprintf("ldpc: invalid code dimensions r=%d c=%d t=%d", r, c, t))
	}
	rng := rand.New(rand.NewPCG(seed, 0x1dbc))
	shifts := make([][]int, r)
	dataCols := c - r
	for i := range shifts {
		shifts[i] = make([]int, c)
		for j := 0; j < dataCols; j++ {
			shifts[i][j] = rng.IntN(t)
		}
		for j := dataCols; j < c; j++ {
			shifts[i][j] = ZeroBlock
		}
	}
	// Dual-diagonal parity: p_i appears in rows i and i+1 with shift 0.
	for i := 0; i < r; i++ {
		shifts[i][dataCols+i] = 0
		if i+1 < r {
			shifts[i+1][dataCols+i] = 0
		}
	}
	return &Code{R: r, C: c, T: t, Shifts: shifts}
}

// N reports the codeword length in bits.
func (cd *Code) N() int { return cd.C * cd.T }

// M reports the number of parity checks.
func (cd *Code) M() int { return cd.R * cd.T }

// K reports the number of data bits.
func (cd *Code) K() int { return (cd.C - cd.R) * cd.T }

// Rate reports the code rate K/N.
func (cd *Code) Rate() float64 { return float64(cd.K()) / float64(cd.N()) }

// DataBlocks reports the number of data block columns.
func (cd *Code) DataBlocks() int { return cd.C - cd.R }

// synWS holds the block-sized workspace a syndrome pass needs, so
// repeated computations (decoder inner loops) allocate nothing.
type synWS struct {
	acc, seg, scratch, tmp Bits
}

func newSynWS(t int) *synWS {
	return &synWS{acc: NewBits(t), seg: NewBits(t), scratch: NewBits(t), tmp: NewBits(t)}
}

// blockRowSyndromeInto computes block row i's syndrome segment into
// ws.acc: S_i = Σ_j rotl(seg_j, shift[i][j]).
func (cd *Code) blockRowSyndromeInto(cw Bits, i int, ws *synWS) {
	ws.acc.Zero()
	for j := 0; j < cd.C; j++ {
		sh := cd.Shifts[i][j]
		if sh == ZeroBlock {
			continue
		}
		cw.Segment(ws.seg, j*cd.T, cd.T)
		xorRotatedInto(ws.acc, ws.seg, ws.scratch, ws.tmp, sh)
	}
}

// syndromeInto computes S = H·cw over GF(2) into s (an M-bit vector)
// using the caller's workspace.
func (cd *Code) syndromeInto(s, cw Bits, ws *synWS) {
	if cw.Len() != cd.N() {
		panic(fmt.Sprintf("ldpc: codeword length %d, want %d", cw.Len(), cd.N()))
	}
	for i := 0; i < cd.R; i++ {
		cd.blockRowSyndromeInto(cw, i, ws)
		s.SetSegment(ws.acc, i*cd.T, cd.T)
	}
}

// Syndrome computes S = H·cw over GF(2), one bit per parity check.
// Block row i contributes S_i = Σ_j rotl(seg_j, shift[i][j]).
func (cd *Code) Syndrome(cw Bits) Bits {
	s := NewBits(cd.M())
	cd.syndromeInto(s, cw, newSynWS(cd.T))
	return s
}

// syndromeIsZero reports whether H·cw = 0, short-circuiting on the
// first nonzero block row; it allocates nothing.
func (cd *Code) syndromeIsZero(cw Bits, ws *synWS) bool {
	if cw.Len() != cd.N() {
		panic(fmt.Sprintf("ldpc: codeword length %d, want %d", cw.Len(), cd.N()))
	}
	for i := 0; i < cd.R; i++ {
		cd.blockRowSyndromeInto(cw, i, ws)
		for _, w := range ws.acc.words {
			if w != 0 {
				return false
			}
		}
	}
	return true
}

// SyndromeWeight reports the Hamming weight of the full syndrome
// vector: the quantity Fig. 10 correlates against RBER.
func (cd *Code) SyndromeWeight(cw Bits) int {
	return cd.Syndrome(cw).PopCount()
}

// FirstRowSyndromeWeight reports the weight of only the first T
// syndromes (block row 0). This is the syndrome-pruning approximation
// of §V-A2: the remaining block rows "merely reconfigure the bit
// arrangements of the first t syndromes".
func (cd *Code) FirstRowSyndromeWeight(cw Bits) int {
	if cw.Len() != cd.N() {
		panic(fmt.Sprintf("ldpc: codeword length %d, want %d", cw.Len(), cd.N()))
	}
	ws := newSynWS(cd.T)
	cd.blockRowSyndromeInto(cw, 0, ws)
	return ws.acc.PopCount()
}

// adjacency builds (and caches) the sparse Tanner-graph adjacency.
func (cd *Code) adjacency() ([][]int32, [][]int32) {
	cd.adjOnce.Do(func() {
		m := cd.M()
		n := cd.N()
		checkVars := make([][]int32, m)
		varChecks := make([][]int32, n)
		for bi := 0; bi < cd.R; bi++ {
			for bj := 0; bj < cd.C; bj++ {
				sh := cd.Shifts[bi][bj]
				if sh == ZeroBlock {
					continue
				}
				// Circulant Q(sh): row k of the block has a 1 in column
				// (k+sh) mod T. Check (bi*T + k) touches variable
				// bj*T + (k+sh)%T.
				for k := 0; k < cd.T; k++ {
					check := int32(bi*cd.T + k)
					v := int32(bj*cd.T + (k+sh)%cd.T)
					checkVars[check] = append(checkVars[check], v)
					varChecks[v] = append(varChecks[v], check)
				}
			}
		}
		cd.checkVars = checkVars
		cd.varChecks = varChecks
	})
	return cd.checkVars, cd.varChecks
}

// CheckDegree reports the number of variables in parity check m.
func (cd *Code) CheckDegree(m int) int {
	cv, _ := cd.adjacency()
	return len(cv[m])
}

// VarDegree reports the number of checks touching variable v.
func (cd *Code) VarDegree(v int) int {
	_, vc := cd.adjacency()
	return len(vc[v])
}
