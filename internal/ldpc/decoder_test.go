package ldpc

import (
	"math/rand/v2"
	"testing"
)

func TestMinSumDecodesCleanWordInOneIteration(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(1, 10))
	cw := cd.Encode(RandomBits(cd.K(), rng))
	dec := NewMinSumDecoder(cd, 0)
	res := dec.Decode(cw)
	if !res.OK || res.Iterations != 1 {
		t.Fatalf("clean decode: ok=%v iters=%d", res.OK, res.Iterations)
	}
	if !res.Word.Equal(cw) {
		t.Fatal("clean decode modified the codeword")
	}
}

func TestMinSumCorrectsFewErrors(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(2, 10))
	dec := NewMinSumDecoder(cd, 0)
	for trial := 0; trial < 20; trial++ {
		cw := cd.Encode(RandomBits(cd.K(), rng))
		bad := FlipExact(cw, 8, rng)
		res := dec.Decode(bad)
		if !res.OK {
			t.Fatalf("trial %d: failed to correct 8 errors in %d-bit codeword", trial, cd.N())
		}
		if !res.Word.Equal(cw) {
			t.Fatalf("trial %d: converged to a different codeword", trial)
		}
	}
}

func TestMinSumFailsAtHighRBER(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(3, 10))
	dec := NewMinSumDecoder(cd, 0)
	failures := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		cw := cd.Encode(RandomBits(cd.K(), rng))
		bad := FlipRandom(cw, 0.05, rng) // far beyond any plausible capability
		if res := dec.Decode(bad); !res.OK {
			failures++
			if res.Iterations != dec.MaxIterations() {
				t.Fatalf("failed decode used %d iterations, want max %d",
					res.Iterations, dec.MaxIterations())
			}
		}
	}
	if failures < trials-1 {
		t.Fatalf("only %d/%d decodes failed at RBER 0.05", failures, trials)
	}
}

func TestMinSumIterationsGrowWithRBER(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(4, 10))
	dec := NewMinSumDecoder(cd, 0)
	avgIters := func(rber float64) float64 {
		total, n := 0, 0
		for trial := 0; trial < 30; trial++ {
			cw := cd.Encode(RandomBits(cd.K(), rng))
			res := dec.Decode(FlipRandom(cw, rber, rng))
			total += res.Iterations
			n++
		}
		return float64(total) / float64(n)
	}
	low := avgIters(0.001)
	high := avgIters(0.006)
	if high <= low {
		t.Fatalf("avg iterations did not grow with RBER: %.2f @0.001 vs %.2f @0.006", low, high)
	}
}

func TestMinSumDeterministic(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(5, 10))
	cw := FlipExact(cd.Encode(RandomBits(cd.K(), rng)), 30, rng)
	d1 := NewMinSumDecoder(cd, 0)
	d2 := NewMinSumDecoder(cd, 0)
	r1 := d1.Decode(cw)
	r2 := d2.Decode(cw)
	if r1.OK != r2.OK || r1.Iterations != r2.Iterations || !r1.Word.Equal(r2.Word) {
		t.Fatal("decoder is not deterministic")
	}
}

func TestMinSumScratchReuse(t *testing.T) {
	// Back-to-back decodes on one decoder must not leak state.
	cd := testCode()
	rng := rand.New(rand.NewPCG(6, 10))
	dec := NewMinSumDecoder(cd, 0)
	cw := cd.Encode(RandomBits(cd.K(), rng))
	bad := FlipExact(cw, 10, rng)
	first := dec.Decode(bad)
	// A heavy failing decode in between.
	dec.Decode(FlipRandom(cd.Encode(RandomBits(cd.K(), rng)), 0.08, rng))
	again := dec.Decode(bad)
	if first.OK != again.OK || first.Iterations != again.Iterations {
		t.Fatal("decoder state leaked across Decode calls")
	}
}

func TestBitFlipDecodesCleanAndLight(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(7, 10))
	dec := NewBitFlipDecoder(cd, 0)
	cw := cd.Encode(RandomBits(cd.K(), rng))
	if res := dec.Decode(cw); !res.OK || res.Iterations != 1 {
		t.Fatalf("clean bit-flip decode: ok=%v iters=%d", res.OK, res.Iterations)
	}
	bad := FlipExact(cw, 3, rng)
	if res := dec.Decode(bad); !res.OK || !res.Word.Equal(cw) {
		t.Fatal("bit-flip failed to correct 3 errors")
	}
}

func TestMinSumStrongerThanBitFlip(t *testing.T) {
	// At a moderate error count the min-sum decoder should succeed at
	// least as often as the bit-flip decoder.
	cd := testCode()
	rng := rand.New(rand.NewPCG(8, 10))
	ms := NewMinSumDecoder(cd, 0)
	bf := NewBitFlipDecoder(cd, 0)
	msOK, bfOK := 0, 0
	for trial := 0; trial < 15; trial++ {
		cw := cd.Encode(RandomBits(cd.K(), rng))
		bad := FlipExact(cw, 14, rng)
		if ms.Decode(bad).OK {
			msOK++
		}
		if bf.Decode(bad).OK {
			bfOK++
		}
	}
	if msOK < bfOK {
		t.Fatalf("min-sum (%d/15) weaker than bit-flip (%d/15)", msOK, bfOK)
	}
}

func TestDecoderMaxIterDefault(t *testing.T) {
	cd := testCode()
	if NewMinSumDecoder(cd, 0).MaxIterations() != DefaultMaxIterations {
		t.Fatal("default max iterations not applied")
	}
	if NewMinSumDecoder(cd, 5).MaxIterations() != 5 {
		t.Fatal("explicit max iterations not applied")
	}
}
