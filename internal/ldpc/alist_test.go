package ldpc

import (
	"bytes"
	"strings"
	"testing"
)

func TestAlistRoundTripStats(t *testing.T) {
	cd := NewCode(4, 12, 32, 5)
	var buf bytes.Buffer
	if err := cd.WriteAlist(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ReadAlistStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != cd.N() || s.M != cd.M() {
		t.Fatalf("dims %dx%d, want %dx%d", s.N, s.M, cd.N(), cd.M())
	}
	// Edge count: each nonzero block contributes T edges.
	wantEdges := 0
	for i := 0; i < cd.R; i++ {
		for j := 0; j < cd.C; j++ {
			if cd.Shifts[i][j] != ZeroBlock {
				wantEdges += cd.T
			}
		}
	}
	if s.Edges != wantEdges {
		t.Fatalf("edges %d, want %d", s.Edges, wantEdges)
	}
	if s.MaxVarDeg != 4 {
		t.Fatalf("max var degree %d, want 4", s.MaxVarDeg)
	}
}

func TestAlistRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",                     // empty
		"0 4\n2 2\n",           // zero N
		"4 -1\n2 2\n",          // negative M
		"2 2\n1 1\n1 1\n2 1\n", // degree over max / mismatch
	} {
		if _, err := ReadAlistStats(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestAlistEdgeBalance(t *testing.T) {
	// A stream whose var- and check-side edge totals disagree must be
	// rejected.
	in := "2 1\n1 2\n1 1\n1\n" // var edges = 2, check edges = 1
	if _, err := ReadAlistStats(strings.NewReader(in)); err == nil {
		t.Fatal("unbalanced alist accepted")
	}
}

func TestAlistHeaderShape(t *testing.T) {
	cd := NewCode(4, 12, 16, 5)
	var buf bytes.Buffer
	if err := cd.WriteAlist(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header (2) + degree lists (2) + N var lines + M check lines.
	want := 4 + cd.N() + cd.M()
	if len(lines) != want {
		t.Fatalf("%d lines, want %d", len(lines), want)
	}
	if lines[0] != "192 64" {
		t.Fatalf("header %q", lines[0])
	}
}
