package ldpc

import (
	"math/rand/v2"
	"testing"
)

// Steady-state decoding must not allocate: every buffer the decoder
// touches per codeword lives on the decoder. This pins the scratch
// reuse that keeps the code-level sweeps (Figs. 3/10/11/14) from
// allocating per sample.
func TestMinSumDecodeSteadyStateZeroAlloc(t *testing.T) {
	cd := NewCode(4, 36, 256, 7)
	rng := rand.New(rand.NewPCG(1, 9))
	clean := cd.Encode(RandomBits(cd.K(), rng))
	noisy := FlipExact(clean, 12, rng)
	dec := NewMinSumDecoder(cd, 0)
	dec.Decode(noisy) // warm
	if allocs := testing.AllocsPerRun(20, func() { dec.Decode(noisy) }); allocs != 0 {
		t.Fatalf("Decode allocates %.1f/op in steady state, want 0", allocs)
	}

	llrs := make([]float32, cd.N())
	for v := 0; v < cd.N(); v++ {
		if noisy.Get(v) {
			llrs[v] = -0.6
		} else {
			llrs[v] = 0.6
		}
	}
	if allocs := testing.AllocsPerRun(20, func() { dec.DecodeSoft(llrs) }); allocs != 0 {
		t.Fatalf("DecodeSoft allocates %.1f/op in steady state, want 0", allocs)
	}
}

// The syndromeIsZero fast path feeding the decoder's per-iteration
// check must also be allocation-free.
func TestSyndromeIsZeroZeroAlloc(t *testing.T) {
	cd := NewCode(4, 36, 256, 7)
	rng := rand.New(rand.NewPCG(2, 9))
	cw := cd.Encode(RandomBits(cd.K(), rng))
	ws := newSynWS(cd.T)
	if !cd.syndromeIsZero(cw, ws) {
		t.Fatal("clean codeword reported nonzero syndrome")
	}
	if allocs := testing.AllocsPerRun(20, func() { cd.syndromeIsZero(cw, ws) }); allocs != 0 {
		t.Fatalf("syndromeIsZero allocates %.1f/op, want 0", allocs)
	}
}
