package ldpc

import (
	"bufio"
	"fmt"
	"io"
)

// WriteAlist emits the code's parity-check matrix in MacKay's "alist"
// format, the de-facto interchange format for LDPC matrices, so the
// exact code used in an experiment can be checked against external
// decoders.
func (cd *Code) WriteAlist(w io.Writer) error {
	checkVars, varChecks := cd.adjacency()
	bw := bufio.NewWriter(w)
	n, m := cd.N(), cd.M()
	maxVar, maxCheck := 0, 0
	for _, vc := range varChecks {
		if len(vc) > maxVar {
			maxVar = len(vc)
		}
	}
	for _, cv := range checkVars {
		if len(cv) > maxCheck {
			maxCheck = len(cv)
		}
	}
	fmt.Fprintf(bw, "%d %d\n%d %d\n", n, m, maxVar, maxCheck)
	for i, vc := range varChecks {
		sep := " "
		if i == len(varChecks)-1 {
			sep = "\n"
		}
		fmt.Fprintf(bw, "%d%s", len(vc), sep)
	}
	for i, cv := range checkVars {
		sep := " "
		if i == len(checkVars)-1 {
			sep = "\n"
		}
		fmt.Fprintf(bw, "%d%s", len(cv), sep)
	}
	// Per-variable check lists (1-based, zero-padded to maxVar).
	for _, vc := range varChecks {
		for j := 0; j < maxVar; j++ {
			v := 0
			if j < len(vc) {
				v = int(vc[j]) + 1
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw)
	}
	// Per-check variable lists (1-based, zero-padded to maxCheck).
	for _, cv := range checkVars {
		for j := 0; j < maxCheck; j++ {
			v := 0
			if j < len(cv) {
				v = int(cv[j]) + 1
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// AlistStats summarizes an alist stream without materializing a code:
// dimensions and degree profile. It validates structural consistency
// (edge counts from both sides must agree).
type AlistStats struct {
	N, M                   int
	MaxVarDeg, MaxCheckDeg int
	Edges                  int
}

// ReadAlistStats parses the header and degree lists of an alist
// stream.
func ReadAlistStats(r io.Reader) (*AlistStats, error) {
	br := bufio.NewReader(r)
	var s AlistStats
	if _, err := fmt.Fscan(br, &s.N, &s.M, &s.MaxVarDeg, &s.MaxCheckDeg); err != nil {
		return nil, fmt.Errorf("ldpc: alist header: %w", err)
	}
	if s.N <= 0 || s.M <= 0 || s.MaxVarDeg <= 0 || s.MaxCheckDeg <= 0 {
		return nil, fmt.Errorf("ldpc: alist header out of range: %+v", s)
	}
	varEdges := 0
	for i := 0; i < s.N; i++ {
		var d int
		if _, err := fmt.Fscan(br, &d); err != nil {
			return nil, fmt.Errorf("ldpc: alist var degree %d: %w", i, err)
		}
		if d < 0 || d > s.MaxVarDeg {
			return nil, fmt.Errorf("ldpc: var degree %d out of range", d)
		}
		varEdges += d
	}
	checkEdges := 0
	for i := 0; i < s.M; i++ {
		var d int
		if _, err := fmt.Fscan(br, &d); err != nil {
			return nil, fmt.Errorf("ldpc: alist check degree %d: %w", i, err)
		}
		if d < 0 || d > s.MaxCheckDeg {
			return nil, fmt.Errorf("ldpc: check degree %d out of range", d)
		}
		checkEdges += d
	}
	if varEdges != checkEdges {
		return nil, fmt.Errorf("ldpc: alist edge mismatch: %d vs %d", varEdges, checkEdges)
	}
	s.Edges = varEdges
	return &s, nil
}
