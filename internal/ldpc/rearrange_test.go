package ldpc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRearrangeRestoreRoundTrip(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(1, 20))
	for trial := 0; trial < 10; trial++ {
		cw := FlipRandom(cd.Encode(RandomBits(cd.K(), rng)), 0.01, rng)
		if !cd.Restore(cd.Rearrange(cw)).Equal(cw) {
			t.Fatalf("trial %d: Restore(Rearrange(cw)) != cw", trial)
		}
	}
}

func TestRearrangePreservesWeight(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(2, 20))
	cw := FlipRandom(cd.Encode(RandomBits(cd.K(), rng)), 0.02, rng)
	if cd.Rearrange(cw).PopCount() != cw.PopCount() {
		t.Fatal("rearrangement changed the Hamming weight")
	}
}

func TestRearrangedPrunedWeightEqualsFirstRow(t *testing.T) {
	// The hardware XOR-of-segments on the rearranged layout must equal
	// the first-block-row syndrome weight on the original layout —
	// this is the entire point of Fig. 15.
	cd := testCode()
	rng := rand.New(rand.NewPCG(3, 20))
	for _, rber := range []float64{0, 0.001, 0.005, 0.02} {
		cw := FlipRandom(cd.Encode(RandomBits(cd.K(), rng)), rber, rng)
		want := cd.FirstRowSyndromeWeight(cw)
		got := cd.RearrangedPrunedWeight(cd.Rearrange(cw))
		if got != want {
			t.Fatalf("rber=%v: rearranged weight %d != first-row weight %d", rber, got, want)
		}
	}
}

func TestRearrangeValidCodewordHasZeroPrunedWeight(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(4, 20))
	cw := cd.Encode(RandomBits(cd.K(), rng))
	if w := cd.RearrangedPrunedWeight(cd.Rearrange(cw)); w != 0 {
		t.Fatalf("valid codeword pruned weight = %d, want 0", w)
	}
}

func TestRearrangeProperty_RoundTrip(t *testing.T) {
	cd := NewCode(4, 12, 32, 17)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		cw := RandomBits(cd.N(), rng) // arbitrary word, not necessarily valid
		return cd.Restore(cd.Rearrange(cw)).Equal(cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelFlipExactCount(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(5, 20))
	cw := cd.Encode(RandomBits(cd.K(), rng))
	for _, k := range []int{0, 1, 17, 100} {
		bad := FlipExact(cw, k, rng)
		if d := bad.HammingDistance(cw); d != k {
			t.Fatalf("FlipExact(%d) flipped %d bits", k, d)
		}
	}
}

func TestChannelFlipExactAllBits(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 20))
	b := RandomBits(100, rng)
	inv := FlipExact(b, 100, rng)
	if d := inv.HammingDistance(b); d != 100 {
		t.Fatalf("FlipExact(n) flipped %d bits, want all", d)
	}
}

func TestChannelFlipRandomRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 20))
	b := NewBits(200000)
	const p = 0.004
	bad := FlipRandom(b, p, rng)
	got := float64(bad.PopCount()) / 200000
	if got < p*0.7 || got > p*1.3 {
		t.Fatalf("FlipRandom rate = %v, want ~%v", got, p)
	}
}

func TestChannelFlipRandomDensePath(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 20))
	b := NewBits(50000)
	const p = 0.2 // exercises the non-geometric branch
	bad := FlipRandom(b, p, rng)
	got := float64(bad.PopCount()) / 50000
	if got < p*0.9 || got > p*1.1 {
		t.Fatalf("dense FlipRandom rate = %v, want ~%v", got, p)
	}
}

func TestChannelZeroRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 20))
	b := RandomBits(1000, rng)
	if !FlipRandom(b, 0, rng).Equal(b) {
		t.Fatal("FlipRandom(0) modified the word")
	}
	if !FlipExact(b, 0, rng).Equal(b) {
		t.Fatal("FlipExact(0) modified the word")
	}
}
