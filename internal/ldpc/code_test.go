package ldpc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// testCode returns a small code (fast) with the paper's 4×36 block
// shape but a reduced circulant.
func testCode() *Code { return NewCode(4, 36, 64, 7) }

func TestCodeDimensions(t *testing.T) {
	cd := testCode()
	if cd.N() != 36*64 || cd.M() != 4*64 || cd.K() != 32*64 {
		t.Fatalf("N=%d M=%d K=%d", cd.N(), cd.M(), cd.K())
	}
	if r := cd.Rate(); r != 32.0/36.0 {
		t.Fatalf("rate = %v", r)
	}
	if cd.DataBlocks() != 32 {
		t.Fatalf("data blocks = %d", cd.DataBlocks())
	}
}

func TestPaperCodeDimensions(t *testing.T) {
	cd := NewPaperCode(1)
	if cd.N() != 36864 {
		t.Fatalf("paper N = %d, want 36864", cd.N())
	}
	if cd.K() != 32768 {
		t.Fatalf("paper K = %d, want 32768 (4 KiB)", cd.K())
	}
	if cd.M() != 4096 {
		t.Fatalf("paper M = %d, want 4096", cd.M())
	}
}

func TestInvalidCodePanics(t *testing.T) {
	for _, dims := range [][3]int{{1, 36, 64}, {4, 4, 64}, {4, 36, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCode%v did not panic", dims)
				}
			}()
			NewCode(dims[0], dims[1], dims[2], 0)
		}()
	}
}

func TestEncodeProducesValidCodeword(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 10; trial++ {
		data := RandomBits(cd.K(), rng)
		cw := cd.Encode(data)
		if w := cd.SyndromeWeight(cw); w != 0 {
			t.Fatalf("trial %d: syndrome weight of valid codeword = %d", trial, w)
		}
		if !cd.ExtractData(cw).Equal(data) {
			t.Fatalf("trial %d: encoding is not systematic", trial)
		}
	}
}

func TestZeroDataEncodesToZero(t *testing.T) {
	cd := testCode()
	cw := cd.Encode(NewBits(cd.K()))
	if cw.PopCount() != 0 {
		t.Fatal("all-zero data must encode to the all-zero codeword")
	}
}

func TestSyndromeDetectsSingleError(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(2, 2))
	cw := cd.Encode(RandomBits(cd.K(), rng))
	for _, pos := range []int{0, 1, cd.T, cd.K() - 1, cd.K(), cd.N() - 1} {
		bad := cw.Clone()
		bad.Flip(pos)
		w := cd.SyndromeWeight(bad)
		deg := cd.VarDegree(pos)
		// A single error makes exactly deg(v) checks unsatisfied.
		if w != deg {
			t.Fatalf("pos %d: syndrome weight %d, want var degree %d", pos, w, deg)
		}
	}
}

func TestVarDegrees(t *testing.T) {
	cd := testCode()
	// Every data column participates in all 4 block rows.
	for v := 0; v < cd.K(); v += cd.T/2 + 1 {
		if d := cd.VarDegree(v); d != 4 {
			t.Fatalf("data var %d degree = %d, want 4", v, d)
		}
	}
	// Dual-diagonal parity: p_0..p_{R-2} have degree 2, the last has 1.
	for i := 0; i < cd.R; i++ {
		v := cd.K() + i*cd.T
		want := 2
		if i == cd.R-1 {
			want = 1
		}
		if d := cd.VarDegree(v); d != want {
			t.Fatalf("parity block %d degree = %d, want %d", i, d, want)
		}
	}
}

func TestCheckDegrees(t *testing.T) {
	cd := testCode()
	// Block row 0 checks touch 32 data blocks + p0 = 33 variables.
	if d := cd.CheckDegree(0); d != 33 {
		t.Fatalf("row-0 check degree = %d, want 33", d)
	}
	// Middle block rows touch 32 data + 2 parity = 34.
	if d := cd.CheckDegree(cd.T); d != 34 {
		t.Fatalf("row-1 check degree = %d, want 34", d)
	}
}

func TestSyndromeMatchesAdjacency(t *testing.T) {
	// The fast circulant syndrome must agree with a naive computation
	// from the Tanner adjacency.
	cd := NewCode(4, 12, 32, 9)
	rng := rand.New(rand.NewPCG(3, 3))
	cw := FlipRandom(cd.Encode(RandomBits(cd.K(), rng)), 0.02, rng)
	fast := cd.Syndrome(cw)
	checkVars, _ := cd.adjacency()
	for m := 0; m < cd.M(); m++ {
		parity := false
		for _, v := range checkVars[m] {
			if cw.Get(int(v)) {
				parity = !parity
			}
		}
		if fast.Get(m) != parity {
			t.Fatalf("syndrome bit %d: fast=%v naive=%v", m, fast.Get(m), parity)
		}
	}
}

func TestFirstRowSyndromeWeightMatchesFullRow(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(4, 4))
	cw := FlipRandom(cd.Encode(RandomBits(cd.K(), rng)), 0.01, rng)
	full := cd.Syndrome(cw)
	row0 := NewBits(cd.T)
	full.Segment(row0, 0, cd.T)
	if got, want := cd.FirstRowSyndromeWeight(cw), row0.PopCount(); got != want {
		t.Fatalf("pruned weight = %d, want %d", got, want)
	}
}

func TestEncodeProperty_AlwaysValid(t *testing.T) {
	cd := NewCode(4, 12, 32, 11)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		return cd.SyndromeWeight(cd.Encode(RandomBits(cd.K(), rng))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeProperty_Linear(t *testing.T) {
	// Encode(a) XOR Encode(b) == Encode(a XOR b): the code is linear.
	cd := NewCode(4, 12, 32, 13)
	f := func(s1, s2 uint64) bool {
		r1 := rand.New(rand.NewPCG(s1, 6))
		r2 := rand.New(rand.NewPCG(s2, 7))
		a := RandomBits(cd.K(), r1)
		b := RandomBits(cd.K(), r2)
		sum := a.Clone()
		sum.XorInPlace(b)
		want := cd.Encode(a)
		want.XorInPlace(cd.Encode(b))
		return cd.Encode(sum).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
