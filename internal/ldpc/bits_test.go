package ldpc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestBitsSetGetFlip(t *testing.T) {
	b := NewBits(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		b.Set(i, true)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		b.Flip(i)
		if b.Get(i) {
			t.Fatalf("bit %d still set after flip", i)
		}
	}
}

func TestBitsPopCount(t *testing.T) {
	b := NewBits(200)
	for i := 0; i < 200; i += 3 {
		b.Set(i, true)
	}
	want := 0
	for i := 0; i < 200; i += 3 {
		want++
	}
	if got := b.PopCount(); got != want {
		t.Fatalf("PopCount = %d, want %d", got, want)
	}
}

func TestBitsXor(t *testing.T) {
	a := NewBits(100)
	b := NewBits(100)
	a.Set(5, true)
	a.Set(70, true)
	b.Set(70, true)
	b.Set(99, true)
	a.XorInPlace(b)
	if !a.Get(5) || a.Get(70) || !a.Get(99) {
		t.Fatal("xor result wrong")
	}
}

func TestBitsCloneIndependent(t *testing.T) {
	a := NewBits(64)
	a.Set(10, true)
	c := a.Clone()
	c.Set(20, true)
	if a.Get(20) {
		t.Fatal("clone shares storage")
	}
	if !c.Get(10) {
		t.Fatal("clone lost bit")
	}
}

func TestBitsSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	full := RandomBits(1000, rng)
	for _, tc := range []struct{ off, t int }{
		{0, 64}, {1, 64}, {63, 65}, {128, 100}, {937, 63}, {0, 1000},
	} {
		seg := NewBits(tc.t)
		full.Segment(seg, tc.off, tc.t)
		for i := 0; i < tc.t; i++ {
			if seg.Get(i) != full.Get(tc.off+i) {
				t.Fatalf("segment(%d,%d) bit %d mismatch", tc.off, tc.t, i)
			}
		}
		// Writing back must be the identity.
		cp := full.Clone()
		cp.SetSegment(seg, tc.off, tc.t)
		if !cp.Equal(full) {
			t.Fatalf("SetSegment(%d,%d) not identity", tc.off, tc.t)
		}
	}
}

func TestBitsSetSegmentOverwrites(t *testing.T) {
	full := NewBits(256)
	for i := 0; i < 256; i++ {
		full.Set(i, true)
	}
	seg := NewBits(70) // zero segment
	full.SetSegment(seg, 50, 70)
	for i := 0; i < 256; i++ {
		want := i < 50 || i >= 120
		if full.Get(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, full.Get(i), want)
		}
	}
}

func TestRotLBasic(t *testing.T) {
	b := NewBits(8)
	b.Set(0, true) // 10000000 (bit order: index 0 first)
	r := b.RotL(1)
	// out[i] = in[(i+1) mod 8] -> out[7] = in[0]
	if !r.Get(7) || r.PopCount() != 1 {
		t.Fatalf("RotL(1) wrong: popcount=%d", r.PopCount())
	}
	r0 := b.RotL(0)
	if !r0.Equal(b) {
		t.Fatal("RotL(0) not identity")
	}
	rt := b.RotL(8)
	if !rt.Equal(b) {
		t.Fatal("RotL(t) not identity")
	}
}

func TestRotLComposition(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, size := range []int{7, 64, 100, 128, 1024} {
		b := RandomBits(size, rng)
		for _, k := range []int{1, size / 3, size - 1} {
			// RotL(k) then RotL(size-k) must be the identity.
			if !b.RotL(k).RotL(size - k).Equal(b) {
				t.Fatalf("size=%d k=%d: rotation not invertible", size, k)
			}
			// Weight is preserved.
			if b.RotL(k).PopCount() != b.PopCount() {
				t.Fatalf("size=%d k=%d: rotation changed weight", size, k)
			}
		}
	}
}

func TestRotLMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 20; trial++ {
		size := 65 + rng.IntN(200)
		k := rng.IntN(size)
		b := RandomBits(size, rng)
		got := b.RotL(k)
		for i := 0; i < size; i++ {
			if got.Get(i) != b.Get((i+k)%size) {
				t.Fatalf("size=%d k=%d bit %d mismatch", size, k, i)
			}
		}
	}
}

func TestXorRotatedIntoMatchesRotL(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 20; trial++ {
		size := 64 + rng.IntN(300)
		k := rng.IntN(size)
		seg := RandomBits(size, rng)
		acc := RandomBits(size, rng)
		want := acc.Clone()
		want.XorInPlace(seg.RotL(k))
		scratch := NewBits(size)
		tmp := NewBits(size)
		xorRotatedInto(acc, seg, scratch, tmp, k)
		if !acc.Equal(want) {
			t.Fatalf("size=%d k=%d: xorRotatedInto != RotL+Xor", size, k)
		}
	}
}

func TestHammingDistance(t *testing.T) {
	a := NewBits(128)
	b := NewBits(128)
	b.Set(0, true)
	b.Set(64, true)
	b.Set(127, true)
	if d := a.HammingDistance(b); d != 3 {
		t.Fatalf("distance = %d, want 3", d)
	}
}

func TestBitsProperty_XorSelfIsZero(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		rng := rand.New(rand.NewPCG(seed, 0))
		b := RandomBits(n, rng)
		c := b.Clone()
		c.XorInPlace(b)
		return c.PopCount() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsProperty_RotationPreservesDistance(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint16) bool {
		n := int(nRaw%1000) + 2
		k := int(kRaw) % n
		rng := rand.New(rand.NewPCG(seed, 1))
		a := RandomBits(n, rng)
		b := RandomBits(n, rng)
		return a.RotL(k).HammingDistance(b.RotL(k)) == a.HammingDistance(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
