package ldpc

import (
	"math"
	"math/rand/v2"
)

// SoftChannel models the reliability information a soft read
// produces: extra senses at offset read voltages classify each bit as
// strong (far from the threshold) or weak (in the uncertain zone
// around it). Errors concentrate in the weak zone, so weak bits get a
// small LLR magnitude and strong bits a large one.
type SoftChannel struct {
	// RBER is the channel's raw bit error rate.
	RBER float64
	// ZoneCapture is the probability that an erroneous bit lands in
	// the weak zone (higher with more sense levels); 0.9 is typical
	// of a 2-extra-sense (3-level) soft read.
	ZoneCapture float64
	// ZoneFraction is the fraction of *correct* bits that also fall
	// in the weak zone (the zone is narrow but not empty).
	ZoneFraction float64
	// StrongLLR and WeakLLR are the magnitudes assigned outside and
	// inside the zone.
	StrongLLR, WeakLLR float64
}

// DefaultSoftChannel returns a 3-level soft-read model for the given
// RBER.
func DefaultSoftChannel(rber float64) SoftChannel {
	return SoftChannel{
		RBER:         rber,
		ZoneCapture:  0.9,
		ZoneFraction: 0.06,
		StrongLLR:    4,
		WeakLLR:      0.6,
	}
}

// Observe corrupts the codeword with the channel's RBER and produces
// the per-bit LLRs a soft read would report. The returned hard word
// (sign of each LLR) equals the corrupted word.
func (c SoftChannel) Observe(cw Bits, rng *rand.Rand) (hard Bits, llrs []float32) {
	hard = FlipRandom(cw, c.RBER, rng)
	n := cw.Len()
	llrs = make([]float32, n)
	for v := 0; v < n; v++ {
		flipped := hard.Get(v) != cw.Get(v)
		inZone := false
		if flipped {
			inZone = rng.Float64() < c.ZoneCapture
		} else {
			inZone = rng.Float64() < c.ZoneFraction
		}
		mag := c.StrongLLR
		if inZone {
			mag = c.WeakLLR
		}
		if hard.Get(v) {
			llrs[v] = float32(-mag)
		} else {
			llrs[v] = float32(mag)
		}
	}
	return hard, llrs
}

// SoftGainPoint compares hard and soft decoding at one RBER.
type SoftGainPoint struct {
	RBER                 float64
	HardFail, SoftFail   float64
	HardIters, SoftIters float64
}

// MeasureSoftGain runs paired hard/soft decodes over samples
// codewords at each RBER, quantifying the capability extension soft
// reads buy.
func MeasureSoftGain(code *Code, rbers []float64, samples int, seed uint64) []SoftGainPoint {
	out := make([]SoftGainPoint, len(rbers))
	dec := NewMinSumDecoder(code, 0)
	rng := rand.New(rand.NewPCG(seed, 0x50f7))
	for i, r := range rbers {
		ch := DefaultSoftChannel(r)
		hardFails, softFails := 0, 0
		hardIters, softIters := 0, 0
		for s := 0; s < samples; s++ {
			cw := code.Encode(RandomBits(code.K(), rng))
			hard, llrs := ch.Observe(cw, rng)
			hres := dec.Decode(hard)
			if !hres.OK {
				hardFails++
			}
			hardIters += hres.Iterations
			sres := dec.DecodeSoft(llrs)
			if !sres.OK {
				softFails++
			}
			softIters += sres.Iterations
		}
		out[i] = SoftGainPoint{
			RBER:      r,
			HardFail:  float64(hardFails) / float64(samples),
			SoftFail:  float64(softFails) / float64(samples),
			HardIters: float64(hardIters) / float64(samples),
			SoftIters: float64(softIters) / float64(samples),
		}
	}
	return out
}

// SoftCapability estimates the RBER at which soft decoding starts
// failing more than half the time, by bisection over the channel
// model.
func SoftCapability(code *Code, samples int, seed uint64) float64 {
	lo, hi := 0.005, 0.05
	for i := 0; i < 12; i++ {
		mid := (lo + hi) / 2
		pts := MeasureSoftGain(code, []float64{mid}, samples, seed+uint64(i))
		if pts[0].SoftFail > 0.5 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return math.Round((lo+hi)/2*1e4) / 1e4
}
