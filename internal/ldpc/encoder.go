package ldpc

import "fmt"

// Encode produces a systematic codeword for the K data bits in data:
// the data segments followed by R parity segments. Thanks to the
// dual-diagonal parity structure, parity block i is the running XOR of
// the data-portion syndromes of block rows 0..i:
//
//	p_i = p_{i-1} ⊕ Σ_j rotl(d_j, shift[i][j])
func (cd *Code) Encode(data Bits) Bits {
	if data.Len() != cd.K() {
		panic(fmt.Sprintf("ldpc: data length %d, want %d", data.Len(), cd.K()))
	}
	cw := NewBits(cd.N())
	cw.SetSegment(data, 0, cd.K())

	dataCols := cd.DataBlocks()
	acc := NewBits(cd.T) // running parity accumulator p_i
	rowSyn := NewBits(cd.T)
	seg := NewBits(cd.T)
	scratch := NewBits(cd.T)
	tmp := NewBits(cd.T)
	for i := 0; i < cd.R; i++ {
		rowSyn.Zero()
		for j := 0; j < dataCols; j++ {
			sh := cd.Shifts[i][j]
			if sh == ZeroBlock {
				continue
			}
			data.Segment(seg, j*cd.T, cd.T)
			xorRotatedInto(rowSyn, seg, scratch, tmp, sh)
		}
		acc.XorInPlace(rowSyn)
		cw.SetSegment(acc, (dataCols+i)*cd.T, cd.T)
	}
	return cw
}

// ExtractData returns the K data bits of a systematic codeword.
func (cd *Code) ExtractData(cw Bits) Bits {
	if cw.Len() != cd.N() {
		panic(fmt.Sprintf("ldpc: codeword length %d, want %d", cw.Len(), cd.N()))
	}
	d := NewBits(cd.K())
	cw.Segment(d, 0, cd.K())
	return d
}
