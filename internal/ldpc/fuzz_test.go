package ldpc

import (
	"strings"
	"testing"
)

// FuzzReadAlistStats exercises the alist parser on arbitrary input:
// it must never panic, and whatever it accepts must be consistent.
func FuzzReadAlistStats(f *testing.F) {
	f.Add("4 2\n1 2\n1 1 1 1\n2 2\n")
	f.Add("")
	f.Add("1 1\n1 1\n1\n1\n")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ReadAlistStats(strings.NewReader(in))
		if err != nil {
			return
		}
		if s.N <= 0 || s.M <= 0 || s.Edges < 0 {
			t.Fatalf("invalid stats accepted: %+v", s)
		}
		if s.Edges > s.N*s.MaxVarDeg {
			t.Fatalf("edge count exceeds bound: %+v", s)
		}
	})
}
