// Package ldpc implements the quasi-cyclic low-density parity-check
// (QC-LDPC) code machinery the RiF paper builds on: the circulant
// parity-check matrix, a systematic encoder, iterative decoders,
// syndrome-weight computation, the first-block-row syndrome pruning of
// §V-A2, and the hardware-friendly codeword rearrangement of §V-B
// (Fig. 15).
package ldpc

import (
	"fmt"
	"math/bits"
)

// Bits is a fixed-length bit vector packed into 64-bit words. Bit i of
// the vector is bit (i%64) of word i/64. The tail bits of the last
// word beyond the length are kept zero as an invariant.
type Bits struct {
	n     int
	words []uint64
}

// NewBits returns an all-zero bit vector of length n.
func NewBits(n int) Bits {
	if n < 0 {
		panic("ldpc: negative bit length")
	}
	return Bits{n: n, words: make([]uint64, (n+63)/64)}
}

// Len reports the number of bits in the vector.
func (b Bits) Len() int { return b.n }

// Get reports bit i.
func (b Bits) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set assigns bit i.
func (b Bits) Set(i int, v bool) {
	if v {
		b.words[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b.words[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Flip inverts bit i.
func (b Bits) Flip(i int) {
	b.words[i>>6] ^= 1 << (uint(i) & 63)
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return Bits{n: b.n, words: w}
}

// CopyFrom overwrites b with src. The lengths must match.
func (b Bits) CopyFrom(src Bits) {
	if b.n != src.n {
		panic(fmt.Sprintf("ldpc: CopyFrom length mismatch %d != %d", b.n, src.n))
	}
	copy(b.words, src.words)
}

// Zero clears every bit.
func (b Bits) Zero() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// XorInPlace sets b ^= other. The lengths must match.
func (b Bits) XorInPlace(other Bits) {
	if b.n != other.n {
		panic(fmt.Sprintf("ldpc: Xor length mismatch %d != %d", b.n, other.n))
	}
	for i := range b.words {
		b.words[i] ^= other.words[i]
	}
}

// PopCount reports the number of set bits.
func (b Bits) PopCount() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether two vectors have identical length and content.
func (b Bits) Equal(other Bits) bool {
	if b.n != other.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// HammingDistance reports the number of positions at which b and other
// differ. The lengths must match.
func (b Bits) HammingDistance(other Bits) int {
	if b.n != other.n {
		panic("ldpc: HammingDistance length mismatch")
	}
	d := 0
	for i := range b.words {
		d += bits.OnesCount64(b.words[i] ^ other.words[i])
	}
	return d
}

// maskTail zeroes any bits beyond the logical length, restoring the
// packing invariant after whole-word operations.
func (b Bits) maskTail() {
	if rem := uint(b.n) & 63; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Segment copies bits [off, off+t) into dst (a t-bit vector).
func (b Bits) Segment(dst Bits, off, t int) {
	if off+t > b.n {
		panic("ldpc: segment out of range")
	}
	extractBits(dst.words, b.words, off, t)
	dst.maskTail()
}

// SetSegment writes the t-bit vector src into bits [off, off+t).
func (b Bits) SetSegment(src Bits, off, t int) {
	if off+t > b.n {
		panic("ldpc: segment out of range")
	}
	depositBits(b.words, src.words, off, t)
	b.maskTail()
}

// extractBits copies nbits starting at bit offset off of src into dst
// starting at bit 0.
func extractBits(dst, src []uint64, off, nbits int) {
	word := off >> 6
	shift := uint(off) & 63
	nWords := (nbits + 63) / 64
	for i := 0; i < nWords; i++ {
		w := src[word+i] >> shift
		if shift != 0 && word+i+1 < len(src) {
			w |= src[word+i+1] << (64 - shift)
		}
		dst[i] = w
	}
	if rem := uint(nbits) & 63; rem != 0 {
		dst[nWords-1] &= (1 << rem) - 1
	}
	for i := nWords; i < len(dst); i++ {
		dst[i] = 0
	}
}

// depositBits writes nbits from src (starting at bit 0) into dst
// starting at bit offset off.
func depositBits(dst, src []uint64, off, nbits int) {
	// Simple, correct bit-at-a-time fallback is too slow for hot paths;
	// do word-wise read-modify-write.
	word := off >> 6
	shift := uint(off) & 63
	remaining := nbits
	srcIdx := 0
	for remaining > 0 {
		take := 64
		if remaining < take {
			take = remaining
		}
		chunk := src[srcIdx]
		if take < 64 {
			chunk &= (1 << uint(take)) - 1
		}
		// Clear destination bits then OR the chunk in.
		loMask := uint64(0)
		if take == 64 {
			loMask = ^uint64(0) << shift
		} else {
			loMask = (((uint64(1) << uint(take)) - 1) << shift)
		}
		dst[word] = (dst[word] &^ loMask) | (chunk << shift)
		if shift != 0 {
			spill := take - int(64-shift)
			if spill > 0 {
				hiMask := (uint64(1) << uint(spill)) - 1
				dst[word+1] = (dst[word+1] &^ hiMask) | (chunk >> (64 - shift))
			}
		}
		remaining -= take
		srcIdx++
		word++
	}
}

// RotL cyclically rotates a t-bit vector left by k positions, in the
// QC-LDPC sense: output bit i = input bit (i+k) mod t. "Left" matches
// the paper's segment rotation that turns Q(C) into the identity.
func (b Bits) RotL(k int) Bits {
	t := b.n
	if t == 0 {
		return b.Clone()
	}
	k = ((k % t) + t) % t
	out := NewBits(t)
	if k == 0 {
		copy(out.words, b.words)
		return out
	}
	// out[i] = in[(i+k) mod t]: the first t-k output bits come from
	// in[k..t), the rest from in[0..k).
	extractBits(out.words, b.words, k, t-k)
	tmp := NewBits(k)
	extractBits(tmp.words, b.words, 0, k)
	depositBits(out.words, tmp.words, t-k, k)
	out.maskTail()
	return out
}

// xorRotatedInto computes acc ^= rotl(seg, k) for t-bit vectors
// without allocating. scratch and tmp must be t-bit vectors used as
// workspace; callers allocate them once and reuse across every block
// of a syndrome or encode pass.
func xorRotatedInto(acc, seg, scratch, tmp Bits, k int) {
	t := seg.n
	k = ((k % t) + t) % t
	if k == 0 {
		acc.XorInPlace(seg)
		return
	}
	scratch.Zero()
	extractBits(scratch.words, seg.words, k, t-k)
	extractBits(tmp.words[:(k+63)/64], seg.words, 0, k)
	depositBits(scratch.words, tmp.words, t-k, k)
	scratch.maskTail()
	acc.XorInPlace(scratch)
}
