package ldpc

import (
	"math/rand/v2"
	"testing"
)

func TestDecodeSoftMatchesHardOnUniformLLRs(t *testing.T) {
	// With constant-magnitude LLRs whose signs equal the hard word,
	// DecodeSoft must agree with Decode exactly.
	cd := testCode()
	rng := rand.New(rand.NewPCG(1, 30))
	for trial := 0; trial < 5; trial++ {
		bad := FlipExact(cd.Encode(RandomBits(cd.K(), rng)), 20, rng)
		llrs := make([]float32, cd.N())
		for v := 0; v < cd.N(); v++ {
			if bad.Get(v) {
				llrs[v] = -1
			} else {
				llrs[v] = 1
			}
		}
		h := NewMinSumDecoder(cd, 0).Decode(bad)
		s := NewMinSumDecoder(cd, 0).DecodeSoft(llrs)
		if h.OK != s.OK || h.Iterations != s.Iterations || !h.Word.Equal(s.Word) {
			t.Fatalf("trial %d: soft/hard divergence", trial)
		}
	}
}

func TestSoftDecodingExtendsCapability(t *testing.T) {
	// At an RBER just above the hard capability, reliable soft
	// information must rescue most pages hard decoding loses.
	cd := testCode()
	pts := MeasureSoftGain(cd, []float64{0.010}, 40, 7)
	p := pts[0]
	if p.HardFail < 0.5 {
		t.Fatalf("hard decoding unexpectedly strong at 0.010: %v", p.HardFail)
	}
	if p.SoftFail > p.HardFail/2 {
		t.Fatalf("soft decoding gained too little: hard %v soft %v", p.HardFail, p.SoftFail)
	}
}

func TestSoftGainMonotone(t *testing.T) {
	cd := testCode()
	pts := MeasureSoftGain(cd, []float64{0.006, 0.02, 0.035}, 20, 9)
	for i := 1; i < len(pts); i++ {
		if pts[i].SoftFail < pts[i-1].SoftFail-0.15 {
			t.Fatalf("soft failure not roughly monotone: %+v", pts)
		}
	}
	// Everything fails far beyond even the soft capability.
	if pts[2].SoftFail < 0.9 {
		t.Fatalf("soft decoding too strong at RBER 0.035: %v", pts[2].SoftFail)
	}
}

func TestSoftChannelObserveConsistency(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(2, 30))
	cw := cd.Encode(RandomBits(cd.K(), rng))
	ch := DefaultSoftChannel(0.01)
	hard, llrs := ch.Observe(cw, rng)
	if len(llrs) != cd.N() {
		t.Fatal("llr length wrong")
	}
	weakErr, strongErr := 0, 0
	for v := 0; v < cd.N(); v++ {
		// Sign must match the hard word.
		if (llrs[v] < 0) != hard.Get(v) {
			t.Fatalf("llr sign mismatch at %d", v)
		}
		if hard.Get(v) != cw.Get(v) {
			if mag := abs32(llrs[v]); mag == float32(ch.WeakLLR) {
				weakErr++
			} else {
				strongErr++
			}
		}
	}
	if weakErr <= strongErr {
		t.Fatalf("errors not concentrated in the weak zone: %d weak, %d strong", weakErr, strongErr)
	}
}

func TestSoftCapabilityAboveHard(t *testing.T) {
	cd := NewCode(4, 36, 128, 7) // small for speed
	soft := SoftCapability(cd, 12, 3)
	if soft <= 0.0085 {
		t.Fatalf("soft capability %v not above the hard capability", soft)
	}
	if soft > 0.05 {
		t.Fatalf("soft capability %v implausibly high", soft)
	}
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
