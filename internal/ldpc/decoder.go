package ldpc

import "math"

// DefaultMaxIterations is the decoding iteration cap used in the paper
// (§II-B1: "a preset maximum number of iterations (e.g., 20)").
const DefaultMaxIterations = 20

// Result reports the outcome of a decode attempt.
type Result struct {
	// OK is true when every parity check is satisfied.
	OK bool
	// Iterations is the number of message-passing (or bit-flipping)
	// rounds executed, in [1, max]. The paper maps this to tECC.
	Iterations int
	// Word is the corrected codeword (equal to the input when OK is
	// false and no useful correction was found). For MinSumDecoder it
	// aliases decoder-owned scratch: it is valid until the next
	// Decode/DecodeSoft call on the same decoder — Clone it to retain
	// it longer.
	Word Bits
}

// MinSumDecoder is a normalized min-sum LDPC decoder operating on
// hard-decision channel outputs (the flash read path senses hard
// bits). The zero value is not usable; construct with NewMinSumDecoder.
type MinSumDecoder struct {
	code    *Code
	maxIter int
	alpha   float32 // normalization factor

	// Flattened Tanner graph, edges grouped by check.
	edgeVar  []int32
	checkOff []int32
	varEdges [][]int32

	// Per-decode scratch, reused across calls so steady-state decoding
	// allocates nothing. The decoder is NOT safe for concurrent use;
	// create one per goroutine.
	ctv   []float32
	total []float32
	llrs  []float32 // hard-decision LLRs (Decode)
	work  Bits      // decision word; Result.Word aliases it
	syn   *synWS    // parity-check workspace
}

// NewMinSumDecoder builds a decoder for the code with the given
// iteration cap (0 means DefaultMaxIterations).
func NewMinSumDecoder(code *Code, maxIter int) *MinSumDecoder {
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	checkVars, _ := code.adjacency()
	var edgeVar []int32
	checkOff := make([]int32, len(checkVars)+1)
	for m, vars := range checkVars {
		checkOff[m] = int32(len(edgeVar))
		edgeVar = append(edgeVar, vars...)
	}
	checkOff[len(checkVars)] = int32(len(edgeVar))
	varEdges := make([][]int32, code.N())
	for e, v := range edgeVar {
		varEdges[v] = append(varEdges[v], int32(e))
	}
	return &MinSumDecoder{
		code:     code,
		maxIter:  maxIter,
		alpha:    0.75,
		edgeVar:  edgeVar,
		checkOff: checkOff,
		varEdges: varEdges,
		ctv:      make([]float32, len(edgeVar)),
		total:    make([]float32, code.N()),
		llrs:     make([]float32, code.N()),
		work:     NewBits(code.N()),
		syn:      newSynWS(code.T),
	}
}

// MaxIterations reports the decoder's iteration cap.
func (d *MinSumDecoder) MaxIterations() int { return d.maxIter }

// Decode attempts to correct the received hard-decision codeword.
// The input is not modified. The Result's Word aliases decoder
// scratch (see Result.Word).
//
//riflint:hotpath
func (d *MinSumDecoder) Decode(received Bits) Result {
	n := d.code.N()
	if received.Len() != n {
		panic("ldpc: received length mismatch")
	}
	// Hard input: the sign carries all the information.
	for v := 0; v < n; v++ {
		if received.Get(v) {
			d.llrs[v] = -1
		} else {
			d.llrs[v] = 1
		}
	}
	return d.DecodeSoft(d.llrs)
}

// DecodeSoft attempts to correct a codeword from per-bit channel
// log-likelihood ratios (positive = bit 0 more likely). Soft inputs —
// obtained by extra senses at offset read voltages — let the decoder
// correct pages beyond the hard-decision capability, the modern
// last-resort retry step.
//
//riflint:hotpath
func (d *MinSumDecoder) DecodeSoft(llrs []float32) Result {
	n := d.code.N()
	if len(llrs) != n {
		panic("ldpc: llr length mismatch")
	}
	for i := range d.ctv {
		d.ctv[i] = 0
	}
	work := d.work
	work.Zero()

	for iter := 1; iter <= d.maxIter; iter++ {
		// Variable update: total belief per bit.
		for v := 0; v < n; v++ {
			t := llrs[v]
			for _, e := range d.varEdges[v] {
				t += d.ctv[e]
			}
			d.total[v] = t
			work.Set(v, t < 0)
		}
		if d.satisfied(work) {
			return Result{OK: true, Iterations: iter, Word: work}
		}
		// Check update: normalized min-sum.
		for m := 0; m < d.code.M(); m++ {
			lo, hi := d.checkOff[m], d.checkOff[m+1]
			min1 := float32(math.MaxFloat32)
			min2 := float32(math.MaxFloat32)
			minIdx := int32(-1)
			signProd := float32(1)
			for e := lo; e < hi; e++ {
				vtc := d.total[d.edgeVar[e]] - d.ctv[e]
				if vtc < 0 {
					signProd = -signProd
				}
				mag := vtc
				if mag < 0 {
					mag = -mag
				}
				if mag < min1 {
					min2 = min1
					min1 = mag
					minIdx = e
				} else if mag < min2 {
					min2 = mag
				}
			}
			for e := lo; e < hi; e++ {
				vtc := d.total[d.edgeVar[e]] - d.ctv[e]
				sgn := signProd
				if vtc < 0 {
					sgn = -sgn
				}
				mag := min1
				if e == minIdx {
					mag = min2
				}
				d.ctv[e] = d.alpha * sgn * mag
			}
		}
	}
	// Final hard decision after the last check update.
	for v := 0; v < n; v++ {
		t := llrs[v]
		for _, e := range d.varEdges[v] {
			t += d.ctv[e]
		}
		work.Set(v, t < 0)
	}
	if d.satisfied(work) {
		return Result{OK: true, Iterations: d.maxIter, Word: work}
	}
	return Result{OK: false, Iterations: d.maxIter, Word: work}
}

func (d *MinSumDecoder) satisfied(cw Bits) bool {
	// Cheap full-syndrome check via the circulant structure, using the
	// decoder's workspace and bailing at the first unsatisfied block
	// row.
	return d.code.syndromeIsZero(cw, d.syn)
}

// BitFlipDecoder is a Gallager-style hard-decision bit-flipping
// decoder: cheap, lower-threshold than min-sum. It serves as the
// baseline decoder model and for cross-checking the min-sum decoder.
type BitFlipDecoder struct {
	code    *Code
	maxIter int

	// Per-decode scratch, reused across calls; not concurrency-safe.
	unsat []uint8
	syn   Bits
	ws    *synWS
}

// NewBitFlipDecoder builds a bit-flipping decoder (0 means
// DefaultMaxIterations).
func NewBitFlipDecoder(code *Code, maxIter int) *BitFlipDecoder {
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	return &BitFlipDecoder{
		code:    code,
		maxIter: maxIter,
		unsat:   make([]uint8, code.N()),
		syn:     NewBits(code.M()),
		ws:      newSynWS(code.T),
	}
}

// Decode attempts to correct the received word by flipping bits that
// participate in a majority of unsatisfied checks. The Result's Word
// is an independent copy.
func (d *BitFlipDecoder) Decode(received Bits) Result {
	checkVars, varChecks := d.code.adjacency()
	work := received.Clone()
	unsat := d.unsat
	for iter := 1; iter <= d.maxIter; iter++ {
		syn := d.syn
		d.code.syndromeInto(syn, work, d.ws)
		if syn.PopCount() == 0 {
			return Result{OK: true, Iterations: iter, Word: work}
		}
		for i := range unsat {
			unsat[i] = 0
		}
		for m := 0; m < d.code.M(); m++ {
			if !syn.Get(m) {
				continue
			}
			for _, v := range checkVars[m] {
				unsat[v]++
			}
		}
		flipped := false
		for v := 0; v < d.code.N(); v++ {
			deg := len(varChecks[v])
			if deg > 0 && int(unsat[v])*2 > deg {
				work.Flip(v)
				flipped = true
			}
		}
		if !flipped {
			// Stuck: flip the single worst bit to perturb, or give up.
			best, bestCount := -1, 0
			for v := 0; v < d.code.N(); v++ {
				if int(unsat[v]) > bestCount {
					best, bestCount = v, int(unsat[v])
				}
			}
			if best < 0 {
				break
			}
			work.Flip(best)
		}
	}
	if d.code.syndromeIsZero(work, d.ws) {
		return Result{OK: true, Iterations: d.maxIter, Word: work}
	}
	return Result{OK: false, Iterations: d.maxIter, Word: work}
}
