package nand

// Randomizer is the page data scrambler modern NAND controllers apply
// before programming (§III-B, §V-A1): XORing user data with a
// page-unique pseudo-random keystream equalizes the distribution of
// programmed Vth states regardless of the data pattern. Descrambling
// is the same operation (XOR is an involution).
//
// The keystream is a counter-based pseudo-random word sequence seeded
// from the physical page address, matching the common practice of
// per-page seeds so adjacent pages never share worst-case patterns.
type Randomizer struct {
	seed uint64
}

// NewRandomizer creates a scrambler with a device-level seed.
func NewRandomizer(seed uint64) *Randomizer {
	if seed == 0 {
		seed = 0x5eed5eed5eed5eed
	}
	return &Randomizer{seed: seed}
}

// pageState derives the per-page initial LFSR state.
func (r *Randomizer) pageState(ppn int64) uint64 {
	z := r.seed ^ uint64(ppn)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // the all-zero LFSR state is absorbing
	}
	return z
}

// keyWord produces the n-th 64-bit keystream word for a page state
// (a splitmix64-style counter mix: uncorrelated across words).
func keyWord(state, n uint64) uint64 {
	z := state + n*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Scramble XORs data in place with the page's keystream. Calling it
// twice with the same ppn restores the original data.
func (r *Randomizer) Scramble(data []byte, ppn int64) {
	s := r.pageState(ppn)
	i := 0
	var n uint64
	for i+8 <= len(data) {
		k := keyWord(s, n)
		n++
		data[i] ^= byte(k)
		data[i+1] ^= byte(k >> 8)
		data[i+2] ^= byte(k >> 16)
		data[i+3] ^= byte(k >> 24)
		data[i+4] ^= byte(k >> 32)
		data[i+5] ^= byte(k >> 40)
		data[i+6] ^= byte(k >> 48)
		data[i+7] ^= byte(k >> 56)
		i += 8
	}
	if i < len(data) {
		k := keyWord(s, n)
		for ; i < len(data); i++ {
			data[i] ^= byte(k)
			k >>= 8
		}
	}
}

// OnesBalance reports the fraction of one-bits the keystream would
// impose on an all-zero page — a scrambler health metric that should
// sit near 0.5 for every page.
func (r *Randomizer) OnesBalance(ppn int64, pageBytes int) float64 {
	buf := make([]byte, pageBytes)
	r.Scramble(buf, ppn)
	ones := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			ones++
		}
	}
	return float64(ones) / float64(8*pageBytes)
}
