package nand

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScrambleIsInvolution(t *testing.T) {
	r := NewRandomizer(99)
	f := func(data []byte, ppn int64) bool {
		if ppn < 0 {
			ppn = -ppn
		}
		buf := make([]byte, len(data))
		copy(buf, data)
		r.Scramble(buf, ppn)
		r.Scramble(buf, ppn)
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleChangesData(t *testing.T) {
	r := NewRandomizer(99)
	buf := make([]byte, 4096)
	r.Scramble(buf, 1)
	allZero := true
	for _, b := range buf {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("keystream is all zero")
	}
}

func TestScrambleDistinctPerPage(t *testing.T) {
	r := NewRandomizer(99)
	a := make([]byte, 512)
	b := make([]byte, 512)
	r.Scramble(a, 1)
	r.Scramble(b, 2)
	if bytes.Equal(a, b) {
		t.Fatal("two pages share a keystream")
	}
}

func TestScrambleBalancesOnes(t *testing.T) {
	// The purpose of randomization (§V-A1): roughly half the
	// programmed bits are ones regardless of the data pattern.
	r := NewRandomizer(99)
	for ppn := int64(0); ppn < 50; ppn++ {
		bal := r.OnesBalance(ppn, 16*1024)
		if math.Abs(bal-0.5) > 0.02 {
			t.Fatalf("page %d ones balance = %v, want ~0.5", ppn, bal)
		}
	}
}

func TestScrambleDeterministic(t *testing.T) {
	a := NewRandomizer(5)
	b := NewRandomizer(5)
	ba := make([]byte, 100)
	bb := make([]byte, 100)
	a.Scramble(ba, 77)
	b.Scramble(bb, 77)
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed and page produced different keystreams")
	}
}

func TestScrambleOddLengths(t *testing.T) {
	r := NewRandomizer(1)
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 63, 65} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		buf := make([]byte, n)
		copy(buf, data)
		r.Scramble(buf, 9)
		r.Scramble(buf, 9)
		if !bytes.Equal(buf, data) {
			t.Fatalf("length %d: double scramble not identity", n)
		}
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := NewRandomizer(0)
	buf := make([]byte, 64)
	r.Scramble(buf, 0)
	nonzero := false
	for _, b := range buf {
		if b != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced a null keystream")
	}
}
