// Package nand models 3D TLC NAND flash memory: device geometry, the
// threshold-voltage (Vth) reliability physics that drive raw bit error
// rates, read-reference voltage (VREF) adjustment including the
// Swift-Read estimator, data randomization, and operation timing.
//
// The model is calibrated against the characterization results the
// RiF paper reports for 160 real 3D TLC chips (Figs. 4 and 12): the
// retention time at which a page's RBER crosses the ECC correction
// capability, as a function of P/E cycles, and the RBER similarity of
// fixed-size chunks within a 16-KiB page.
package nand

import "fmt"

// Geometry describes the physical organization of the simulated SSD's
// flash array (Table I of the paper).
type Geometry struct {
	Channels       int // independent flash channels
	DiesPerChan    int // dies sharing one channel and one ECC engine
	PlanesPerDie   int // planes operating in parallel within a die
	BlocksPerPlane int
	PagesPerBlock  int
	PageBytes      int // user data bytes per page
}

// PaperGeometry is the Table I configuration: a 2-TiB SSD with 8
// channels, 4 dies/channel, 4 planes/die, 1888 blocks/plane and 576
// 16-KiB pages/block.
func PaperGeometry() Geometry {
	return Geometry{
		Channels:       8,
		DiesPerChan:    4,
		PlanesPerDie:   4,
		BlocksPerPlane: 1888,
		PagesPerBlock:  576,
		PageBytes:      16 * 1024,
	}
}

// Validate reports an error when any dimension is non-positive.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0:
		return fmt.Errorf("nand: channels = %d", g.Channels)
	case g.DiesPerChan <= 0:
		return fmt.Errorf("nand: dies/channel = %d", g.DiesPerChan)
	case g.PlanesPerDie <= 0:
		return fmt.Errorf("nand: planes/die = %d", g.PlanesPerDie)
	case g.BlocksPerPlane <= 0:
		return fmt.Errorf("nand: blocks/plane = %d", g.BlocksPerPlane)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("nand: pages/block = %d", g.PagesPerBlock)
	case g.PageBytes <= 0:
		return fmt.Errorf("nand: page bytes = %d", g.PageBytes)
	}
	return nil
}

// TotalDies reports the number of dies in the array.
func (g Geometry) TotalDies() int { return g.Channels * g.DiesPerChan }

// TotalBlocks reports the number of physical blocks in the array.
func (g Geometry) TotalBlocks() int {
	return g.TotalDies() * g.PlanesPerDie * g.BlocksPerPlane
}

// TotalPages reports the number of physical pages in the array.
func (g Geometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock }

// CapacityBytes reports the raw capacity in bytes.
func (g Geometry) CapacityBytes() int64 {
	return int64(g.TotalPages()) * int64(g.PageBytes)
}

// PageType identifies which bit of a TLC wordline a page stores.
// The read-reference voltages needed, and hence Sentinel's extra-read
// behaviour, depend on it.
type PageType uint8

const (
	LSB PageType = iota // read with VREF 1 and 5
	CSB                 // read with VREF 2, 4 and 6
	MSB                 // read with VREF 3 and 7
)

// String names the page type.
func (p PageType) String() string {
	switch p {
	case LSB:
		return "LSB"
	case CSB:
		return "CSB"
	case MSB:
		return "MSB"
	}
	return fmt.Sprintf("PageType(%d)", uint8(p))
}

// PageTypeOf reports the page type of the page at the given index in
// its block, following the usual LSB/CSB/MSB interleaving of TLC
// wordlines.
func PageTypeOf(pageInBlock int) PageType {
	return PageType(pageInBlock % 3)
}

// Address locates a physical page.
type Address struct {
	Channel int
	Die     int
	Plane   int
	Block   int
	Page    int
}

// BlockID flattens the block coordinates into a dense index for
// per-block metadata arrays.
func (g Geometry) BlockID(a Address) int {
	return ((a.Channel*g.DiesPerChan+a.Die)*g.PlanesPerDie+a.Plane)*g.BlocksPerPlane + a.Block
}

// BlockAddr inverts BlockID: the coordinates (page 0) of a dense
// block index, used by per-block background jobs (read-reclaim) to
// find the die and plane a block lives on.
func (g Geometry) BlockAddr(id int) Address {
	block := id % g.BlocksPerPlane
	id /= g.BlocksPerPlane
	plane := id % g.PlanesPerDie
	id /= g.PlanesPerDie
	die := id % g.DiesPerChan
	ch := id / g.DiesPerChan
	return Address{Channel: ch, Die: die, Plane: plane, Block: block}
}

// DieID flattens (channel, die) into a dense index.
func (g Geometry) DieID(a Address) int { return a.Channel*g.DiesPerChan + a.Die }

// PPN flattens the full page address into a dense physical page number.
func (g Geometry) PPN(a Address) int64 {
	return int64(g.BlockID(a))*int64(g.PagesPerBlock) + int64(a.Page)
}

// AddressOfPPN inverts PPN.
func (g Geometry) AddressOfPPN(ppn int64) Address {
	page := int(ppn % int64(g.PagesPerBlock))
	bid := int(ppn / int64(g.PagesPerBlock))
	block := bid % g.BlocksPerPlane
	bid /= g.BlocksPerPlane
	plane := bid % g.PlanesPerDie
	bid /= g.PlanesPerDie
	die := bid % g.DiesPerChan
	ch := bid / g.DiesPerChan
	return Address{Channel: ch, Die: die, Plane: plane, Block: block, Page: page}
}
